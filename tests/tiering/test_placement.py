"""Tests for access profiling and the placement optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.memory.config import MemoryConfig
from repro.memory.mapping import RowMajorPlacement
from repro.obs import InMemorySink, Tracer, metrics_from_events
from repro.obs.events import PLACEMENT_DECIDED
from repro.tiering import (
    AccessProfile,
    DecayingCountSketch,
    HotTierConfig,
    PermutedRankPlacement,
    PlacementOptimizer,
)


def test_access_profile_counts_and_heat():
    profile = AccessProfile.from_batches(
        [[[0, 1, 4], [4, 4]], [[1, 5]]]
    )
    assert profile.counts == {0: 1, 1: 2, 4: 3, 5: 1}
    assert profile.total == 7
    assert profile.rank_heat(4) == [4.0, 3.0, 0.0, 0.0]
    assert profile.table_heat(2) == [4.0, 3.0]
    assert profile.hottest_ids(2) == [4, 1]
    # Ties break deterministically by id.
    assert profile.hottest_ids(4) == [4, 1, 0, 5]


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=500), min_size=1, max_size=300
    )
)
def test_sketch_never_underestimates(keys):
    """Count-min property: estimate(k) ≥ true count (no decay here)."""
    sketch = DecayingCountSketch(num_ranks=4, decay_every=10**9)
    truth = {}
    for key in keys:
        sketch.add(key)
        truth[key] = truth.get(key, 0) + 1
    for key, count in truth.items():
        assert sketch.estimate(key) >= count
    heat = sketch.rank_heat(4)
    assert sum(heat) == pytest.approx(len(keys))


def test_sketch_decay_fades_stale_heat():
    sketch = DecayingCountSketch(num_ranks=2, decay=0.5, decay_every=8)
    for _ in range(8):
        sketch.add(3)  # the 8th add triggers one decay round
    assert sketch.estimate(3) == pytest.approx(4.0)
    assert sketch.rank_heat(2)[1] == pytest.approx(4.0)


def test_sketch_hottest_ids_tracks_the_skew():
    sketch = DecayingCountSketch(num_ranks=4, max_candidates=8, seed=1)
    for _ in range(50):
        sketch.add(11)
    for _ in range(20):
        sketch.add(7)
    for key in range(100, 130):
        sketch.add(key)
    top = sketch.hottest_ids(2)
    assert top[0] == 11 and top[1] == 7


def test_sketch_rejects_mismatched_geometry():
    sketch = DecayingCountSketch(num_ranks=4)
    with pytest.raises(ValueError):
        sketch.rank_heat(8)
    with pytest.raises(ValueError):
        sketch.table_heat(4)  # no table profiling configured


def test_plan_budgets_follow_heat_and_quantize_to_lines():
    profile = AccessProfile()
    profile.observe([[0] * 30 + [1] * 10])  # rank0: 30 accesses, rank1: 10
    base = HotTierConfig(size_bytes=1024, line_bytes=256)
    plan = PlacementOptimizer(profile, num_ranks=2).plan(base=base)
    assert plan.rank_permutation == (0, 1)  # no slow ranks → identity
    assert plan.total_budget_bytes == 2 * 1024
    assert all(size % 256 == 0 for size in plan.per_rank_size_bytes)
    assert plan.per_rank_size_bytes[0] > plan.per_rank_size_bytes[1] > 0
    config = plan.tier_config(base)
    assert config.per_rank_size_bytes == plan.per_rank_size_bytes


def test_plan_routes_hot_ranks_away_from_slow_ranks():
    profile = AccessProfile()
    profile.observe([[1] * 50 + [0] * 5 + [2] * 20 + [3]])
    optimizer = PlacementOptimizer(profile, num_ranks=4)
    plan = optimizer.plan(slow_ranks=[0, 1])
    # Heat order is logical ranks 1, 2, 0, 3; fast physical ranks are 2, 3.
    assert plan.rank_permutation[1] == 2  # hottest → first fast rank
    assert plan.rank_permutation[2] == 3
    assert set(plan.rank_permutation) == {0, 1, 2, 3}
    slow_physical = {0, 1}
    hottest_two_logical = [1, 2]
    for logical in hottest_two_logical:
        assert plan.rank_permutation[logical] not in slow_physical


def test_plan_pins_each_ranks_hottest_ids():
    profile = AccessProfile()
    profile.observe([[4] * 9 + [0] * 8 + [8] * 7 + [1] * 5 + [5] * 2])
    plan = PlacementOptimizer(profile, num_ranks=4).plan(pinned_per_rank=2)
    assert plan.pinned[0] == (4, 0)  # logical rank 0's two hottest, in order
    assert plan.pinned[1] == (1, 5)
    cfg = plan.tier_config(HotTierConfig())
    assert cfg.pinned == plan.pinned


def test_plan_emits_placement_decided_events_and_metrics():
    profile = AccessProfile.from_batches([[[0, 1, 2, 3]]])
    sink = InMemorySink()
    optimizer = PlacementOptimizer(profile, num_ranks=4, tracer=Tracer([sink]))
    plan = optimizer.plan(slow_ranks=[3])
    decided = [e for e in sink.events if e.kind == PLACEMENT_DECIDED]
    assert len(decided) == 4
    assert {e.args["logical_rank"] for e in decided} == {0, 1, 2, 3}
    assert [dict(d) for d in plan.decisions] == [e.args for e in decided]
    metrics = metrics_from_events(sink.events)
    assert metrics.counters()["placement.decisions"] == 4


def test_zero_heat_profile_falls_back_to_even_split():
    plan = PlacementOptimizer(AccessProfile(), num_ranks=4).plan(
        base=HotTierConfig(size_bytes=1024, line_bytes=256)
    )
    assert plan.per_rank_size_bytes == (1024, 1024, 1024, 1024)


def test_permuted_placement_rewrites_ranks_consistently():
    config = MemoryConfig.small_test_system()
    base = RowMajorPlacement(config.geometry, 64)
    permutation = tuple(reversed(range(config.geometry.total_ranks)))
    placement = PermutedRankPlacement(base, permutation)
    for vector_id in range(40):
        home = placement.home_rank(vector_id)
        assert home == permutation[base.home_rank(vector_id)]
        for request, original in zip(
            placement.requests_for(vector_id), base.requests_for(vector_id)
        ):
            assert request.rank == permutation[original.rank]
            assert (request.bank, request.row, request.column) == (
                original.bank,
                original.row,
                original.column,
            )
    with pytest.raises(ValueError):
        PermutedRankPlacement(base, (0, 0, 1, 2))


def test_permuted_placement_is_functionally_invisible_to_the_engine():
    """A placement-optimizer permutation changes timing at most."""
    rng = np.random.default_rng(42)
    config = FafnirConfig(
        total_ranks=8,
        ranks_per_leaf_pe=2,
        batch_size=8,
        max_query_len=4,
        vector_bytes=64,
    )
    table = {i: rng.standard_normal(config.vector_elements) for i in range(256)}
    queries = [
        rng.choice(256, size=4, replace=False).tolist() for _ in range(6)
    ]
    baseline = FafnirEngine(config=config).run_batch(queries, table.__getitem__)
    engine = FafnirEngine(config=config)
    permuted = PermutedRankPlacement(
        engine.placement, tuple(int(r) for r in rng.permutation(8))
    )
    rewired = FafnirEngine(config=config, placement=permuted).run_batch(
        queries, table.__getitem__
    )
    for a, b in zip(baseline.vectors, rewired.vectors):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)
