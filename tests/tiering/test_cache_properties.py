"""Property-based tests for the hot-index cache model.

The set-associative :class:`HotIndexCache` is checked against an
independently written *reference* model — a fully-associative LRU built
on an ``OrderedDict`` — plus structural invariants that must hold for
every access sequence:

* with one set (fully-associative geometry) the real cache's hit/miss
  stream equals the reference's, access for access;
* more generally, whenever no set ever overflows its ways, set indexing
  is invisible and the streams still agree;
* LRU evicts exactly the least-recently-used line of a full set;
* ``hits + misses == accesses`` always, hit_rate stays within [0, 1],
  and an untouched cache reports exactly 0.0;
* interleaving accesses across a tier's ranks never lets one rank's
  stream influence another's.
"""

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.tiering import (
    CacheStats,
    HotIndexCache,
    HotIndexTier,
    HotTierConfig,
    POLICY_FIFO,
    POLICY_LRU,
)

ids = st.integers(min_value=0, max_value=255)
sequences = st.lists(ids, min_size=0, max_size=200)


class ReferenceLRU:
    """Fully-associative LRU over an OrderedDict — the oracle."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = OrderedDict()

    def access(self, vector_id):
        if vector_id in self.entries:
            self.entries.move_to_end(vector_id)
            return True
        self.entries[vector_id] = True
        if len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
        return False


@settings(max_examples=120, deadline=None)
@given(sequence=sequences, ways=st.integers(min_value=1, max_value=16))
def test_single_set_cache_matches_fully_associative_reference(sequence, ways):
    """One set ⇒ the set-associative model *is* fully associative."""
    line = 64
    cache = HotIndexCache(size_bytes=ways * line, line_bytes=line, ways=ways)
    assert cache.num_sets == 1
    reference = ReferenceLRU(ways)
    for vector_id in sequence:
        assert cache.access(vector_id) == reference.access(vector_id)


@settings(max_examples=120, deadline=None)
@given(
    sequence=sequences,
    num_sets=st.integers(min_value=1, max_value=8),
    ways=st.integers(min_value=1, max_value=8),
)
def test_streams_match_reference_when_no_set_overflows(
    sequence, num_sets, ways
):
    """Set indexing is invisible until some set exceeds its ways.

    A fully-associative reference with unbounded capacity and a
    set-associative cache agree on every access up to the first moment a
    set would have to evict; the test truncates each drawn sequence at
    that point, so the property covers arbitrary prefixes.
    """
    line = 64
    cache = HotIndexCache(
        size_bytes=num_sets * ways * line, line_bytes=line, ways=ways
    )
    reference = ReferenceLRU(capacity=10**9)  # never evicts
    occupancy = {}
    for vector_id in sequence:
        index = vector_id % cache.num_sets
        resident = cache.contains(vector_id)
        if not resident and occupancy.get(index, 0) >= cache.ways:
            break  # this access would evict; the models may now diverge
        if not resident:
            occupancy[index] = occupancy.get(index, 0) + 1
        assert cache.access(vector_id) == reference.access(vector_id)


@settings(max_examples=120, deadline=None)
@given(ways=st.integers(min_value=1, max_value=12))
def test_lru_evicts_least_recently_used(ways):
    """Fill one set, touch everything but the LRU, insert — LRU leaves."""
    line = 64
    cache = HotIndexCache(size_bytes=ways * line, line_bytes=line, ways=ways)
    for vector_id in range(ways):
        assert cache.access(vector_id) is False
    # Re-touch all but id 0, making 0 the least recently used.
    for vector_id in range(1, ways):
        assert cache.access(vector_id) is True
    assert cache.access(ways) is False  # evicts 0
    assert not cache.contains(0)
    for vector_id in range(1, ways + 1):
        assert cache.contains(vector_id)


@settings(max_examples=120, deadline=None)
@given(ways=st.integers(min_value=2, max_value=12))
def test_fifo_ignores_recency(ways):
    """FIFO evicts the oldest *insertion* even if it was just re-touched."""
    line = 64
    cache = HotIndexCache(
        size_bytes=ways * line, line_bytes=line, ways=ways, policy=POLICY_FIFO
    )
    for vector_id in range(ways):
        cache.access(vector_id)
    assert cache.access(0) is True  # hit, but FIFO order unchanged
    assert cache.access(ways) is False  # still evicts 0
    assert not cache.contains(0)


@settings(max_examples=120, deadline=None)
@given(
    sequence=sequences,
    policy=st.sampled_from([POLICY_LRU, POLICY_FIFO]),
    size_lines=st.integers(min_value=1, max_value=64),
    ways=st.integers(min_value=1, max_value=8),
)
def test_stats_invariants(sequence, policy, size_lines, ways):
    """hits + misses == accesses; hit_rate in [0, 1]; floats everywhere."""
    line = 64
    if size_lines < ways:
        size_lines = ways
    cache = HotIndexCache(
        size_bytes=size_lines * line, line_bytes=line, ways=ways, policy=policy
    )
    hits = sum(1 for vector_id in sequence if cache.access(vector_id))
    stats = cache.stats
    assert stats.hits == hits
    assert stats.hits + stats.misses == stats.accesses == len(sequence)
    assert isinstance(stats.hit_rate, float)
    assert 0.0 <= stats.hit_rate <= 1.0


@settings(max_examples=100, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), ids),
        min_size=0,
        max_size=200,
    )
)
def test_tier_ranks_are_independent(accesses):
    """Interleaved (rank, id) streams behave like isolated per-rank caches."""
    config = HotTierConfig(size_bytes=8 * 64, line_bytes=64, ways=2)
    tier = HotIndexTier(config, num_ranks=4)
    # The tier strides set indexing by the rank count (rank-local
    # addressing); the isolated oracles must index identically.
    isolated = {
        rank: HotIndexCache(
            size_bytes=8 * 64, line_bytes=64, ways=2, set_stride=4
        )
        for rank in range(4)
    }
    for rank, vector_id in accesses:
        assert tier.access(rank, vector_id) == isolated[rank].access(vector_id)
    merged = CacheStats()
    for cache in isolated.values():
        merged = merged.merged_with(cache.stats)
    assert tier.stats == merged
    per_rank = tier.per_rank_stats()
    assert [s.accesses for s in per_rank] == [
        isolated[rank].stats.accesses for rank in range(4)
    ]


def test_set_stride_spreads_rank_residue_streams():
    """A rank behind ``id % num_ranks`` routing sees only one residue
    class; stride-1 indexing folds that stream into a single set (8 ways
    of effective capacity), while striding by the rank count spreads it
    across every set — the regression that motivated ``set_stride``."""
    ids = [3 + 32 * k for k in range(64)]  # everything rank 3 ever sees
    strided = HotIndexCache(
        size_bytes=64 * 64, line_bytes=64, ways=8, set_stride=32
    )
    for vector_id in ids:
        strided.access(vector_id)
    assert all(strided.contains(vector_id) for vector_id in ids)
    folded = HotIndexCache(size_bytes=64 * 64, line_bytes=64, ways=8)
    for vector_id in ids:
        folded.access(vector_id)
    assert sum(folded.contains(v) for v in ids) == folded.ways
    # And the tier wires the stride in automatically.
    tier = HotIndexTier(
        HotTierConfig(size_bytes=64 * 64, line_bytes=64, ways=8), num_ranks=32
    )
    assert tier.cache_for(3).set_stride == 32


def test_pinned_ids_always_hit_and_survive_reset():
    cache = HotIndexCache(
        size_bytes=2 * 64, line_bytes=64, ways=2, pinned=(7, 9)
    )
    assert cache.access(7) is True  # pinned: hits cold
    cache.access(1)
    cache.access(2)
    cache.access(3)  # evicts 1 from the 2-way set structure
    assert cache.access(7) is True
    cache.reset()
    assert cache.contains(7) and cache.contains(9)
    assert cache.stats.accesses == 0


def test_untouched_cache_reports_zero_hit_rate():
    assert HotIndexCache().stats.hit_rate == 0.0
    assert CacheStats().hit_rate == 0.0
    assert isinstance(CacheStats(hits=0, misses=0).hit_rate, float)


def test_hit_rate_is_clamped_and_exact_at_the_edges():
    assert CacheStats(hits=5, misses=0).hit_rate == 1.0
    assert CacheStats(hits=0, misses=5).hit_rate == 0.0
    with pytest.raises(ValueError):
        CacheStats(hits=-1, misses=0)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        HotIndexCache(size_bytes=0)
    with pytest.raises(ValueError):
        HotIndexCache(size_bytes=64, line_bytes=64, ways=2)  # capacity < ways
    with pytest.raises(ValueError):
        HotIndexCache(policy="random")
    with pytest.raises(ValueError):
        HotIndexCache(set_stride=0)
    with pytest.raises(ValueError):
        HotTierConfig(policy="mru")
    with pytest.raises(ValueError):
        HotTierConfig(hit_latency_cycles=-1)
    with pytest.raises(ValueError):
        HotIndexTier(HotTierConfig(per_rank_size_bytes=(1024,)), num_ranks=2)
    with pytest.raises(ValueError):
        HotIndexTier(HotTierConfig(pinned=((1,),)), num_ranks=2)


def test_zero_budget_rank_is_uncached():
    config = HotTierConfig(
        size_bytes=1024, line_bytes=64, per_rank_size_bytes=(0, 1024)
    )
    tier = HotIndexTier(config, num_ranks=2)
    assert tier.cache_for(0) is None
    assert tier.access(0, 5) is False
    assert tier.access(0, 5) is False  # never warms
    assert tier.stats.accesses == 0  # uncached ranks don't count
    assert tier.access(1, 5) is False
    assert tier.access(1, 5) is True


def test_tiny_budget_clamps_ways():
    config = HotTierConfig(size_bytes=3 * 64, line_bytes=64, ways=8)
    tier = HotIndexTier(config, num_ranks=1)
    cache = tier.cache_for(0)
    assert cache is not None
    assert cache.ways == 3
