"""Regression test: the Zipf generator's skew matches its analytics.

The placement optimizer's whole premise is that the workload generators
really produce Zipf(α) popularity — budgets, pinned residents, and the
≥30 % DRAM-traffic claim in ``BENCH_cache.json`` all lean on the top-k
mass being what Zipf's law predicts.  This suite pins the calibration:
the empirical frequency of the k hottest pool positions under
:class:`~repro.workloads.embedding.QueryGenerator` sampling (the same
generator :mod:`repro.serving.loadgen` wraps) must match the analytic
mass ``Σ_{i≤k} i^{-α} / H_{n,α}`` within tolerance, across seeds.
"""

import numpy as np
import pytest

from repro.serving.loadgen import OpenLoopGenerator, RampStage
from repro.workloads.embedding import EmbeddingTableSet, QueryGenerator


def analytic_top_k_mass(alpha: float, pool: int, k: int) -> float:
    """Σ_{i≤k} i^-α / Σ_{i≤n} i^-α — the expected hit mass of the top k."""
    weights = 1.0 / np.power(np.arange(1, pool + 1, dtype=np.float64), alpha)
    return float(weights[:k].sum() / weights.sum())


def empirical_top_k_mass(generator: QueryGenerator, k: int, draws: int) -> float:
    """Fraction of drawn rows landing in the k hottest pool positions.

    Drawn ids are *rows* scattered through ``_hot_row_ids``; the inverse
    map recovers each draw's pool position so the comparison happens in
    rank space, where the analytic distribution lives.
    """
    tables = generator.tables
    position_of = [
        {int(row): position for position, row in enumerate(generator._hot_row_ids[t])}
        for t in range(tables.num_tables)
    ]
    in_top = 0
    total = 0
    while total < draws:
        for global_id in generator.query():
            table, row = tables.decode(global_id)
            if position_of[table][row] < k:
                in_top += 1
            total += 1
    return in_top / total


@pytest.mark.parametrize("seed", [0, 7, 1234])
@pytest.mark.parametrize("alpha,pool", [(1.05, 256), (1.65, 48)])
def test_top_k_mass_matches_analytic_zipf(seed, alpha, pool):
    tables = EmbeddingTableSet(
        num_tables=8, rows_per_table=10_000, vector_elements=4
    )
    generator = QueryGenerator(
        tables, query_len=8, skew=alpha, hot_rows=pool, seed=seed
    )
    for k in (1, 8, pool // 4):
        expected = analytic_top_k_mass(alpha, pool, k)
        observed = empirical_top_k_mass(generator, k, draws=12_000)
        assert observed == pytest.approx(expected, abs=0.02), (
            f"top-{k} mass drifted: analytic {expected:.4f}, "
            f"observed {observed:.4f} (alpha={alpha}, pool={pool}, seed={seed})"
        )


@pytest.mark.parametrize("seed", [0, 3])
def test_loadgen_requests_inherit_the_calibrated_skew(seed):
    """The serving load generator samples through the same Zipf machinery."""
    tables = EmbeddingTableSet(
        num_tables=8, rows_per_table=10_000, vector_elements=4
    )
    generator = QueryGenerator(
        tables, query_len=8, skew=1.05, hot_rows=256, seed=seed
    )
    load = OpenLoopGenerator(
        generator,
        stages=[RampStage(qps=2000.0, duration_us=400_000.0)],
        slo_us=1000.0,
        seed=seed,
    )
    position_of = [
        {int(row): position for position, row in enumerate(generator._hot_row_ids[t])}
        for t in range(tables.num_tables)
    ]
    k = 32
    in_top = 0
    total = 0
    for request in load.initial():
        for global_id in request.indices:
            table, row = tables.decode(global_id)
            if position_of[table][row] < k:
                in_top += 1
            total += 1
    assert total > 4000, "load generator produced too few draws to test"
    expected = analytic_top_k_mass(1.05, 256, k)
    assert in_top / total == pytest.approx(expected, abs=0.03)


def test_uniform_skew_is_actually_uniform():
    """skew=0 must not sneak Zipf mass in — the cache smoke's control arm."""
    tables = EmbeddingTableSet(
        num_tables=8, rows_per_table=10_000, vector_elements=4
    )
    generator = QueryGenerator(tables, query_len=8, skew=0.0, seed=5)
    rows = [
        tables.decode(global_id)[1]
        for _ in range(500)
        for global_id in generator.query()
    ]
    # Uniform over 10k rows: 4000 draws should rarely repeat any row often.
    _, counts = np.unique(rows, return_counts=True)
    assert counts.max() <= 6
