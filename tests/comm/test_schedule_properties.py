"""Property-based tests (hypothesis) for cross-shard reduction invariants.

The load-bearing claim of src/repro/comm/ is that the *numeric* fold is
schedule-independent: gather, recursive doubling, and reduce-scatter are
cost/routing models over the same canonical tournament, so any shard
count, any partition of the index space, and any ordering of the shards'
partials must produce bit-identical reduced vectors.  These tests check
that claim on randomly generated batches and partitions, plus the
textbook step-count bounds the schedules advertise.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.comm import IndexPartition, get_schedule
from repro.comm.schedule import SCHEDULES, canonical_fold
from repro.core import FafnirConfig, FafnirEngine
from repro.core.sharding import ShardedRunner
from repro.hw.link import LinkModel

ELEMENTS = 16
UNIVERSE = 64
LINK = LinkModel(latency_ns=200.0, bandwidth_gb_s=10.0)


def _config():
    return FafnirConfig(
        batch_size=8,
        max_query_len=8,
        vector_bytes=ELEMENTS * 4,
        total_ranks=16,
        ranks_per_leaf_pe=2,
        num_tables=8,
    )


def _source(index):
    rng = np.random.default_rng(200_000 + index)
    return rng.normal(size=ELEMENTS)


batches_strategy = st.lists(
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=UNIVERSE - 1),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=2,
)

vectors_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=2**31 - 1),
    min_size=1,
    max_size=16,
)


@settings(max_examples=60, deadline=None)
@given(seeds=vectors_strategy, order=st.randoms(use_true_random=False))
def test_canonical_fold_ignores_shard_arrival_order(seeds, order):
    """Folding the same partials in any order yields identical bytes."""
    vectors = {
        piece: np.random.default_rng(seed).standard_normal(ELEMENTS)
        for piece, seed in seeds.items()
    }
    baseline = canonical_fold(vectors, 16, np.add)
    items = list(vectors.items())
    order.shuffle(items)
    permuted = canonical_fold(dict(items), 16, np.add)
    assert permuted.tobytes() == baseline.tobytes()


@settings(max_examples=15, deadline=None)
@given(
    batches=batches_strategy,
    num_shards=st.integers(min_value=1, max_value=16),
)
def test_any_shard_count_reduces_identically_across_schedules(
    batches, num_shards
):
    """Shard count 1-16: every schedule folds to the same bytes, and the
    fold matches the single-node oracle numerically."""
    config = _config()
    partition = IndexPartition.by_home_rank(config, num_shards)
    single = FafnirEngine(config=config, operator="sum").run_batches(
        batches, _source
    )
    folds = {}
    for name in sorted(SCHEDULES):
        runner = ShardedRunner(
            config=config,
            operator="sum",
            max_workers=1,
            reduction=name,
            partition=partition,
            link=LINK,
        )
        reduced = runner.run_reduced(batches, _source)
        folds[name] = [vector.tobytes() for vector in reduced.vectors]
        assert reduced.statuses == single.statuses
        for got, want in zip(reduced.vectors, single.vectors):
            np.testing.assert_allclose(got, want, rtol=1e-10)
    assert len(set(map(tuple, folds.values()))) == 1, (
        "schedules disagree on reduced bytes"
    )


@settings(max_examples=15, deadline=None)
@given(
    batches=batches_strategy,
    owners=st.lists(
        st.integers(min_value=0, max_value=4), min_size=UNIVERSE, max_size=UNIVERSE
    ),
)
def test_arbitrary_explicit_partitions_agree_across_schedules(batches, owners):
    """Any partition of the index space — even one that ignores the tree —
    still reduces to the same bytes under every schedule."""
    pieces = max(owners) + 1
    partition = IndexPartition.explicit(
        {index: owner for index, owner in enumerate(owners)}, pieces=pieces
    )
    config = _config()
    folds = []
    for name in sorted(SCHEDULES):
        runner = ShardedRunner(
            config=config,
            operator="sum",
            max_workers=1,
            reduction=name,
            partition=partition,
            link=LINK,
        )
        reduced = runner.run_reduced(batches, _source)
        folds.append([vector.tobytes() for vector in reduced.vectors])
    assert all(fold == folds[0] for fold in folds[1:])
    oracle = FafnirEngine(config=config, operator="sum").run_batches(
        batches, _source
    )
    for got, want in zip(folds[0], oracle.vectors):
        np.testing.assert_allclose(
            np.frombuffer(got, dtype=want.dtype), want, rtol=1e-10
        )


touched_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=15),
    st.frozensets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
    min_size=1,
    max_size=16,
)


@settings(max_examples=100, deadline=None)
@given(touched=touched_strategy, name=st.sampled_from(sorted(SCHEDULES)))
def test_every_schedule_completes_routing_for_any_touched_map(touched, name):
    """finish() verifies the consumer ends up holding every touched piece;
    no sparsity pattern may strand a partial mid-tree."""
    pieces = max(touched) + 1
    outcome = get_schedule(name).run(touched, pieces, 64, LINK)
    assert outcome.total_bytes == sum(m.payload_bytes for m in outcome.messages)
    assert outcome.comm_pe_cycles >= 0


@settings(max_examples=60, deadline=None)
@given(touched=touched_strategy)
def test_reduce_scatter_step_count_matches_log2_bound(touched):
    """Satellite bound: reduce-scatter + allgather runs 2*log2(core) steps
    (plus one fold-in step when the shard count is not a power of two)."""
    pieces = max(touched) + 1
    outcome = get_schedule("reduce_scatter").run(touched, pieces, 64, LINK)
    if pieces == 1:
        assert outcome.steps == 0
        return
    core = 1 << (pieces.bit_length() - 1)
    log2 = core.bit_length() - 1
    extras = 1 if pieces != core else 0
    assert outcome.steps == extras + 2 * log2


@settings(max_examples=60, deadline=None)
@given(touched=touched_strategy)
def test_recursive_doubling_step_count_matches_log2_bound(touched):
    pieces = max(touched) + 1
    outcome = get_schedule("recursive_doubling").run(touched, pieces, 64, LINK)
    if pieces == 1:
        assert outcome.steps == 0
        return
    core = 1 << (pieces.bit_length() - 1)
    extras = 1 if pieces != core else 0
    assert outcome.steps == extras + (core.bit_length() - 1)
