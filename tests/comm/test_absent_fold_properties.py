"""Property tests: absent-piece folds are schedule- and order-invariant.

Route-around rests on one algebraic fact: skipping an absent piece in the
canonical tournament must not disturb the association of the surviving
pieces.  These tests drive that claim with hypothesis — arbitrary partial
sets with arbitrary absent subsets fold to the same bytes regardless of
arrival order, and an end-to-end run with arbitrary dead shards produces
bit-identical vectors under every reduction schedule.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.comm import IndexPartition
from repro.comm.schedule import SCHEDULES, canonical_fold
from repro.core import FafnirConfig, FafnirEngine
from repro.core.sharding import ShardedRunner
from repro.faults import FaultPlan, FaultPolicy
from repro.hw.link import LinkModel

ELEMENTS = 16
UNIVERSE = 64
LINK = LinkModel(latency_ns=200.0, bandwidth_gb_s=10.0)


def _config():
    return FafnirConfig(
        batch_size=8,
        max_query_len=8,
        vector_bytes=ELEMENTS * 4,
        total_ranks=16,
        ranks_per_leaf_pe=2,
        num_tables=8,
    )


def _source(index):
    rng = np.random.default_rng(200_000 + index)
    return rng.normal(size=ELEMENTS)


entries_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=2**31 - 1),
    min_size=1,
    max_size=16,
)


@settings(max_examples=80, deadline=None)
@given(
    seeds=entries_strategy,
    absent_mask=st.integers(min_value=0, max_value=2**16 - 1),
    order=st.randoms(use_true_random=False),
)
def test_fold_with_absent_subset_is_order_invariant(seeds, absent_mask, order):
    """Dropping any subset of pieces, the survivors fold to the same
    bytes in every arrival order — and match folding a dict that never
    contained the absent pieces at all."""
    vectors = {
        piece: np.random.default_rng(seed).standard_normal(ELEMENTS)
        for piece, seed in seeds.items()
    }
    present = {
        piece: vector
        for piece, vector in vectors.items()
        if not absent_mask & (1 << piece)
    }
    if not present:
        return  # nothing survives; canonical_fold refuses empty input
    baseline = canonical_fold(present, 16, np.add)
    items = list(present.items())
    order.shuffle(items)
    assert canonical_fold(dict(items), 16, np.add).tobytes() == baseline.tobytes()


@settings(max_examples=40, deadline=None)
@given(seeds=entries_strategy, absent_mask=st.integers(0, 2**16 - 1))
def test_fold_skips_absences_without_reassociating_survivors(seeds, absent_mask):
    """Removing absent pieces must leave every *complete* surviving
    subtree's partial fold bit-identical: survivors combine along the
    same tournament edges whether or not the absentees ever existed."""
    vectors = {
        piece: np.random.default_rng(seed).standard_normal(ELEMENTS)
        for piece, seed in seeds.items()
    }
    present = {
        piece: vector
        for piece, vector in vectors.items()
        if not absent_mask & (1 << piece)
    }
    low = {piece: vector for piece, vector in present.items() if piece < 8}
    high = {piece: vector for piece, vector in present.items() if piece >= 8}
    if not low or not high:
        return
    # The root combines exactly fold(low half) with fold(high half):
    # absences inside one half never leak association into the other.
    expected = np.add(
        canonical_fold(low, 16, np.add), canonical_fold(high, 16, np.add)
    )
    assert canonical_fold(present, 16, np.add).tobytes() == expected.tobytes()


batches_strategy = st.lists(
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=UNIVERSE - 1),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=2,
)


@settings(max_examples=10, deadline=None)
@given(
    batches=batches_strategy,
    num_shards=st.integers(min_value=2, max_value=8),
    dead_mask=st.integers(min_value=0, max_value=2**8 - 1),
)
def test_dead_shard_route_around_agrees_across_schedules(
    batches, num_shards, dead_mask
):
    """Any dead-shard subset: every schedule routes around it to the same
    bytes, and queries touching no dead piece match the clean oracle."""
    config = _config()
    partition = IndexPartition.by_home_rank(config, num_shards)
    dead = frozenset(
        piece for piece in range(num_shards) if dead_mask & (1 << piece)
    )
    if len(dead) >= num_shards:
        dead = frozenset(sorted(dead)[: num_shards - 1])
    plan = FaultPlan(seed=7, dead_shards=dead)
    oracle = FafnirEngine(config=config, operator="sum").run_batches(
        batches, _source
    )
    folds = {}
    statuses = {}
    for name in sorted(SCHEDULES):
        def runner(**kwargs):
            return ShardedRunner(
                config=config,
                operator="sum",
                max_workers=1,
                reduction=name,
                partition=partition,
                link=LINK,
                **kwargs,
            )

        clean = runner().run_reduced(batches, _source)
        reduced = runner(
            faults=plan, fault_policy=FaultPolicy.graceful()
        ).run_reduced(batches, _source)
        folds[name] = [vector.tobytes() for vector in reduced.vectors]
        statuses[name] = reduced.statuses
        flat = [query for batch in batches for query in batch]
        for position, query in enumerate(flat):
            if not any(partition.owner(index) in dead for index in query):
                # Route-around: a query touching no dead piece is served
                # bit-identically to the clean sharded run, and within
                # numeric tolerance of the single-node oracle.
                assert reduced.statuses[position] == "ok"
                assert (
                    reduced.vectors[position].tobytes()
                    == clean.vectors[position].tobytes()
                )
                np.testing.assert_allclose(
                    reduced.vectors[position],
                    oracle.vectors[position],
                    rtol=1e-10,
                )
            else:
                assert reduced.statuses[position] != "ok"
    assert len(set(map(tuple, folds.values()))) == 1, (
        "schedules disagree on route-around bytes"
    )
    assert len(set(map(tuple, statuses.values()))) == 1, (
        "schedules disagree on route-around statuses"
    )
