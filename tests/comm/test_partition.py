"""Unit tests for index-space partitioning."""

import pytest

from repro.comm.partition import IndexPartition
from repro.core.config import FafnirConfig


def _config(ranks=16, per_leaf=2):
    return FafnirConfig(total_ranks=ranks, ranks_per_leaf_pe=per_leaf)


def test_by_home_rank_covers_every_rank_contiguously():
    config = _config(16, 2)  # 8 leaves
    partition = IndexPartition.by_home_rank(config, 4)
    assert partition.rank_owner == (0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3)


def test_by_home_rank_owner_follows_modulo_placement():
    config = _config(16, 2)
    partition = IndexPartition.by_home_rank(config, 4)
    for index in range(100):
        assert partition.owner(index) == partition.rank_owner[index % 16]


def test_by_home_rank_snaps_to_leaf_boundaries_when_uneven():
    config = _config(16, 2)  # 8 leaves of 2 ranks
    partition = IndexPartition.by_home_rank(config, 3)
    # 8 leaves over 3 pieces → 3/3/2 leaves → 6/6/4 ranks.
    counts = [partition.rank_owner.count(piece) for piece in range(3)]
    assert counts == [6, 6, 4]
    # Every piece boundary falls on a leaf (2-rank) boundary.
    for boundary in range(0, 16, 2):
        assert partition.rank_owner[boundary] == partition.rank_owner[boundary + 1]


def test_by_home_rank_rejects_more_pieces_than_ranks():
    with pytest.raises(ValueError, match="exceed"):
        IndexPartition.by_home_rank(_config(8, 2), 9)


def test_contiguous_ranges():
    partition = IndexPartition.contiguous(universe=100, pieces=4)
    assert partition.owner(0) == 0
    assert partition.owner(24) == 0
    assert partition.owner(25) == 1
    assert partition.owner(99) == 3
    # Indices past the universe clamp to the last piece instead of raising.
    assert partition.owner(1000) == 3


def test_explicit_mapping_and_errors():
    partition = IndexPartition.explicit({0: 1, 5: 0, 9: 1}, pieces=2)
    assert partition.owner(5) == 0
    assert partition.owner(9) == 1
    with pytest.raises(KeyError):
        partition.owner(3)
    with pytest.raises(ValueError, match="outside"):
        IndexPartition.explicit({1: 7}, pieces=2)


def test_split_query_preserves_order_and_omits_untouched_pieces():
    config = _config(16, 2)
    partition = IndexPartition.by_home_rank(config, 4)
    # All indices home to ranks 0..3 → piece 0 only.
    query = [32, 0, 16, 3]
    split = partition.split_query(query)
    assert set(split) == {0}
    assert split[0] == [32, 0, 16, 3]  # original order, untouched pieces absent


def test_split_query_partitions_without_loss():
    config = _config(16, 2)
    partition = IndexPartition.by_home_rank(config, 4)
    query = list(range(40))
    split = partition.split_query(query)
    recombined = sorted(index for piece in split.values() for index in piece)
    assert recombined == query
    for piece, indices in split.items():
        assert all(partition.owner(index) == piece for index in indices)


def test_subtree_alignment():
    config = _config(16, 2)
    assert IndexPartition.by_home_rank(config, 4).subtree_aligned(config)
    assert IndexPartition.by_home_rank(config, 8).subtree_aligned(config)
    # Non-power-of-two piece counts are not aligned subtrees.
    assert not IndexPartition.by_home_rank(config, 3).subtree_aligned(config)
    # Range sharding ignores the tree entirely.
    assert not IndexPartition.contiguous(100, 4).subtree_aligned(config)
    # A different machine shape breaks the alignment claim.
    other = _config(32, 2)
    assert not IndexPartition.by_home_rank(config, 4).subtree_aligned(other)


def test_validation():
    with pytest.raises(ValueError, match="at least one piece"):
        IndexPartition(num_pieces=0)
    with pytest.raises(ValueError, match="unknown partition mode"):
        IndexPartition(num_pieces=2, mode="banana")
    with pytest.raises(ValueError, match="covers"):
        IndexPartition(num_pieces=2, rank_owner=(0, 1), total_ranks=4)
    with pytest.raises(ValueError, match="non-negative"):
        IndexPartition.contiguous(16, 2).owner(-1)
