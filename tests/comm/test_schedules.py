"""Unit tests for the reduction schedules and the canonical fold."""

import numpy as np
import pytest

from repro.comm.schedule import (
    GatherToRoot,
    RecursiveDoubling,
    ReduceScatterAllgather,
    ReductionSchedule,
    SCHEDULES,
    SEGMENT_HEADER_BYTES,
    _RoutingState,
    canonical_fold,
    get_schedule,
    segment_count,
)
from repro.hw.link import LinkModel
from repro.obs.events import SHARD_MSG_SENT, SHARD_REDUCED

LINK = LinkModel(latency_ns=100.0, bandwidth_gb_s=10.0)
VEC = 64


def _vec(seed):
    return np.random.default_rng(seed).standard_normal(8)


# --- canonical fold --------------------------------------------------------
def test_canonical_fold_is_a_fixed_tournament():
    a, b, c = _vec(1), _vec(2), _vec(3)
    folded = canonical_fold({0: a, 1: b, 2: c}, 3, np.add)
    expected = np.add(np.add(a, b), c)  # ((0⊕1)⊕2), piece 3 absent
    assert folded.tobytes() == expected.tobytes()


def test_canonical_fold_skips_absent_pieces_without_reassociating():
    a, d = _vec(1), _vec(4)
    folded = canonical_fold({0: a, 3: d}, 4, np.add)
    assert folded.tobytes() == np.add(a, d).tobytes()


def test_canonical_fold_is_insertion_order_invariant():
    vectors = {piece: _vec(piece) for piece in range(5)}
    forward = canonical_fold(dict(sorted(vectors.items())), 5, np.add)
    backward = canonical_fold(
        dict(sorted(vectors.items(), reverse=True)), 5, np.add
    )
    assert forward.tobytes() == backward.tobytes()


def test_canonical_fold_single_entry_and_empty():
    a = _vec(0)
    assert canonical_fold({2: a}, 4, np.add).tobytes() == a.tobytes()
    with pytest.raises(ValueError):
        canonical_fold({}, 4, np.add)


# --- segment accounting ----------------------------------------------------
@pytest.mark.parametrize(
    "held, present, pieces, expected",
    [
        (frozenset(), frozenset({0, 1}), 2, 0),
        (frozenset({0, 1, 2, 3}), frozenset({0, 1, 2, 3}), 4, 1),
        (frozenset({0, 1}), frozenset({0, 1, 2, 3}), 4, 1),
        (frozenset({1, 2}), frozenset({0, 1, 2, 3}), 4, 2),  # crosses the mid
        (frozenset({0, 2}), frozenset({0, 1, 2, 3}), 4, 2),
        (frozenset({0, 3}), frozenset({0, 3}), 4, 1),  # covers all present
        (frozenset({0}), frozenset({0, 3}), 4, 1),
    ],
)
def test_segment_count(held, present, pieces, expected):
    assert segment_count(held, present, pieces) == expected


# --- gather-to-root --------------------------------------------------------
def test_gather_is_one_serialized_step():
    touched = {0: frozenset({0}), 1: frozenset({0}), 2: frozenset({0, 1})}
    outcome = GatherToRoot().run(touched, 3, VEC, LINK)
    assert outcome.steps == 1
    assert outcome.message_count == 2  # the root ships nothing
    per_message = [
        LINK.transfer_pe_cycles(m.payload_bytes) for m in outcome.messages
    ]
    assert outcome.comm_pe_cycles == sum(per_message)  # serialized ingress
    assert all(m.dst == 0 for m in outcome.messages)


def test_gather_skips_empty_shards():
    touched = {0: frozenset({0}), 2: frozenset({0})}
    outcome = GatherToRoot().run(touched, 4, VEC, LINK)
    assert {m.src for m in outcome.messages} == {2}  # pieces 1,3 silent


def test_single_shard_costs_nothing():
    for schedule in SCHEDULES.values():
        outcome = schedule.run({0: frozenset({0, 1})}, 1, VEC, LINK)
        assert outcome.steps == 0
        assert outcome.message_count == 0
        assert outcome.comm_pe_cycles == 0


# --- recursive doubling ----------------------------------------------------
def test_recursive_doubling_step_count_is_logarithmic():
    touched = {p: frozenset({0}) for p in range(8)}
    outcome = RecursiveDoubling().run(touched, 8, VEC, LINK)
    assert outcome.steps == 3
    # Pair-parallel: each step costs one max-message, so total comm time is
    # far below gather's serialized sum at this shard count.
    gather = GatherToRoot().run(touched, 8, VEC, LINK)
    assert outcome.comm_pe_cycles < gather.comm_pe_cycles


def test_recursive_doubling_non_power_of_two_adds_one_fold_in_step():
    touched = {p: frozenset({0}) for p in range(6)}
    outcome = RecursiveDoubling().run(touched, 6, VEC, LINK)
    assert outcome.steps == 1 + 2  # fold-in + log2(4)
    pre = [m for m in outcome.messages if m.step == 0]
    assert {(m.src, m.dst) for m in pre} == {(4, 0), (5, 1)}


def test_half_duplex_serializes_exchange_directions():
    touched = {p: frozenset({0}) for p in range(4)}
    duplex = RecursiveDoubling().run(touched, 4, VEC, LINK)
    half = RecursiveDoubling().run(
        touched, 4, VEC, LinkModel(latency_ns=100.0, bandwidth_gb_s=10.0, duplex=False)
    )
    assert half.comm_pe_cycles > duplex.comm_pe_cycles


# --- reduce-scatter + allgather --------------------------------------------
def test_reduce_scatter_step_count_is_two_log():
    touched = {p: frozenset(range(8)) for p in range(8)}
    outcome = ReduceScatterAllgather().run(touched, 8, VEC, LINK)
    assert outcome.steps == 6  # log2(8) halving + log2(8) doubling


def test_reduce_scatter_halving_ships_smaller_messages_than_doubling_full():
    touched = {p: frozenset(range(16)) for p in range(4)}
    rs = ReduceScatterAllgather().run(touched, 4, VEC, LINK)
    rd = RecursiveDoubling().run(touched, 4, VEC, LINK)
    # The reduce phase keeps only each node's chunk, so its messages stay
    # half-sized; recursive doubling exchanges full holdings every round.
    # (The allgather tail re-assembles full vectors, so only the halving
    # steps — the first log2(S) — carry the smaller payloads.)
    halving = [m for m in rs.messages if m.step < 2]  # log2(4) reduce steps
    assert halving
    assert max(m.payload_bytes for m in halving) < max(
        m.payload_bytes for m in rd.messages
    )


# --- shared outcome contract ------------------------------------------------
@pytest.mark.parametrize("name", sorted(SCHEDULES))
@pytest.mark.parametrize("pieces", [2, 3, 4, 6, 8])
def test_every_schedule_delivers_all_pieces_to_the_consumer(name, pieces):
    touched = {
        p: frozenset(q for q in range(6) if (q + p) % 3) for p in range(pieces)
    }
    outcome = get_schedule(name).run(touched, pieces, VEC, LINK)
    # finish() asserted coverage internally; cross-check the books.
    assert outcome.total_bytes == sum(m.payload_bytes for m in outcome.messages)
    assert outcome.comm_pe_cycles == sum(outcome.step_cycles)
    assert len(outcome.step_cycles) == outcome.steps
    kinds = {event.kind for event in outcome.events}
    assert kinds <= {SHARD_MSG_SENT, SHARD_REDUCED}
    sent = [e for e in outcome.events if e.kind == SHARD_MSG_SENT]
    assert len(sent) == outcome.message_count
    for message in outcome.messages:
        assert message.payload_bytes == message.segments * (
            VEC + SEGMENT_HEADER_BYTES
        )


def test_incomplete_routing_is_rejected():
    class Broken(ReductionSchedule):
        name = "broken"

        def run(self, touched, num_pieces, vector_bytes, link):
            state = _RoutingState(
                touched, num_pieces, vector_bytes, link, self.name
            )
            return state.finish()  # never moved anything to the consumer

    touched = {1: frozenset({0})}
    with pytest.raises(RuntimeError, match="incomplete"):
        Broken().run(touched, 2, VEC, LINK)


def test_get_schedule_rejects_unknown_names():
    with pytest.raises(KeyError, match="unknown reduction schedule"):
        get_schedule("ring")
