"""Unit tests for the inter-node link model."""

import pytest

from repro.clocks import PE_CLOCK
from repro.hw.link import LinkModel


def test_defaults_are_pcie_class():
    link = LinkModel()
    assert link.latency_ns == 500.0
    assert link.bandwidth_gb_s == 25.0
    assert link.duplex


def test_transfer_time_is_latency_plus_bytes_over_bandwidth():
    link = LinkModel(latency_ns=100.0, bandwidth_gb_s=10.0)
    # 1 GB/s == 1 byte/ns, so 10 GB/s moves 1000 bytes in 100 ns.
    assert link.transfer_ns(0) == 100.0
    assert link.transfer_ns(1000) == pytest.approx(200.0)


def test_transfer_pe_cycles_is_integral_and_rounds_up():
    link = LinkModel(latency_ns=500.0, bandwidth_gb_s=25.0)
    cycles = link.transfer_pe_cycles(4096)
    assert isinstance(cycles, int)
    assert cycles == PE_CLOCK.ns_to_cycles(link.transfer_ns(4096))
    # A bigger payload can never be cheaper.
    assert link.transfer_pe_cycles(8192) >= cycles


def test_zero_byte_message_still_pays_latency():
    link = LinkModel(latency_ns=500.0)
    assert link.transfer_pe_cycles(0) == PE_CLOCK.ns_to_cycles(500.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"latency_ns": -1.0},
        {"bandwidth_gb_s": 0.0},
        {"bandwidth_gb_s": -5.0},
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        LinkModel(**kwargs)


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        LinkModel().transfer_ns(-1)


def test_dict_roundtrip():
    link = LinkModel(latency_ns=250.0, bandwidth_gb_s=50.0, duplex=False)
    restored = LinkModel.from_dict(link.to_dict())
    assert restored == link


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown link keys"):
        LinkModel.from_dict({"latency_ns": 10.0, "bandwdith": 1.0})
