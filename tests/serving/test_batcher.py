"""Tests for the continuous batcher's dispatch policy."""

import pytest

from repro.serving import ContinuousBatcher, Request


def make_request(request_id, arrival_us, indices=None, slo_us=25.0):
    return Request(
        request_id=request_id,
        indices=tuple(indices or [request_id * 100, request_id * 100 + 1]),
        arrival_us=arrival_us,
        deadline_us=arrival_us + slo_us,
    )


class TestDispatchPolicy:
    def test_waits_for_sharers_when_slo_budget_remains(self):
        batcher = ContinuousBatcher(batch_size=4, window=8, dispatch_margin_us=3.0)
        batcher.enqueue(make_request(0, arrival_us=0.0))
        # Budget remaining: deadline 25, margin 3 → forced at t = 22.
        assert batcher.pop_batch(now_us=0.0) is None
        assert batcher.pop_batch(now_us=21.9) is None
        assert len(batcher) == 1

    def test_forced_partial_dispatch_at_deadline_margin(self):
        batcher = ContinuousBatcher(batch_size=4, window=8, dispatch_margin_us=3.0)
        batcher.enqueue(make_request(0, arrival_us=0.0))
        batcher.enqueue(make_request(1, arrival_us=1.0))
        assert batcher.next_forced_dispatch_us() == pytest.approx(22.0)
        batch = batcher.pop_batch(now_us=22.0)
        assert batch is not None
        assert [r.request_id for r in batch] == [0, 1]
        assert len(batcher) == 0

    def test_full_batch_dispatches_immediately(self):
        batcher = ContinuousBatcher(batch_size=2, window=4, dispatch_margin_us=3.0)
        batcher.enqueue(make_request(0, arrival_us=0.0))
        batcher.enqueue(make_request(1, arrival_us=0.5))
        batch = batcher.pop_batch(now_us=0.5)
        assert batch is not None and len(batch) == 2

    def test_draining_flushes_partials(self):
        batcher = ContinuousBatcher(batch_size=8, window=8, dispatch_margin_us=3.0)
        batcher.enqueue(make_request(0, arrival_us=0.0))
        assert batcher.pop_batch(now_us=0.0) is None
        batch = batcher.pop_batch(now_us=0.0, draining=True)
        assert batch is not None and len(batch) == 1

    def test_empty_queue_returns_none(self):
        batcher = ContinuousBatcher(batch_size=4)
        assert batcher.pop_batch(now_us=0.0, draining=True) is None
        assert batcher.next_forced_dispatch_us() is None
        assert batcher.oldest() is None

    def test_sharing_aware_batch_composition(self):
        """With a full window the formed batch groups sharers, exactly like
        the offline scheduler would."""
        batcher = ContinuousBatcher(batch_size=2, window=4, dispatch_margin_us=3.0)
        batcher.enqueue(make_request(0, arrival_us=0.0, indices=[1, 2, 3]))
        batcher.enqueue(make_request(1, arrival_us=0.1, indices=[100, 200]))
        batcher.enqueue(make_request(2, arrival_us=0.2, indices=[1, 2, 4]))
        batcher.enqueue(make_request(3, arrival_us=0.3, indices=[100, 300]))
        first = batcher.pop_batch(now_us=0.3)
        second = batcher.pop_batch(now_us=0.3)
        assert first is not None and second is not None
        assert {r.request_id for r in first} == {0, 2}
        assert {r.request_id for r in second} == {1, 3}

    def test_enqueue_rejects_out_of_order_arrivals(self):
        batcher = ContinuousBatcher(batch_size=4)
        batcher.enqueue(make_request(0, arrival_us=10.0))
        with pytest.raises(ValueError):
            batcher.enqueue(make_request(1, arrival_us=5.0))

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            ContinuousBatcher(batch_size=4, dispatch_margin_us=-1.0)

    def test_window_floor_is_batch_size(self):
        batcher = ContinuousBatcher(batch_size=8, window=2)
        assert batcher.window == 8
