"""Integration tests: overload control and breaker routing in serving.

The two resilience hooks the serving loop grew — deadline-aware load
shedding (``overload=``) and the per-rank circuit breaker with boosted-
tier route-around (``breaker=``) — exercised end to end against the
byte-identity contract: with protection installed but idle, the serving
path must produce exactly the bytes of an unprotected run.
"""

import pytest

from repro.faults import STATUS_SHED, FaultPlan
from repro.obs import metrics_from_events
from repro.resilience import BreakerConfig, OverloadPolicy
from repro.serving import (
    ContinuousBatcher,
    OpenLoopGenerator,
    RampStage,
    ServingSimulator,
)
from repro.workloads import EmbeddingTableSet, QueryGenerator

SLO_US = 25.0


@pytest.fixture(scope="module")
def tables():
    return EmbeddingTableSet.random(seed=0)


def open_load(tables, qps, n_requests=120, slo_us=SLO_US, seed=2):
    duration_us = n_requests / qps * 1e6
    return OpenLoopGenerator(
        QueryGenerator.paper_calibrated(tables, seed=seed, query_len=16),
        [RampStage(qps=qps, duration_us=duration_us)],
        slo_us=slo_us,
        seed=seed,
    )


def make_simulator(**kwargs):
    return ServingSimulator(
        batcher=ContinuousBatcher(batch_size=16, window=64), **kwargs
    )


def _burst(tables, protect):
    # Probe capacity with an instantaneous burst, then offer 2× capacity
    # for long enough that the backlog outgrows the SLO budget.
    probe = make_simulator().run(
        open_load(tables, qps=1e9, n_requests=120), tables.vector
    )
    capacity = probe.observed_qps
    n = max(120, int(capacity * SLO_US * 3 / 1e6))
    simulator = make_simulator(overload=OverloadPolicy() if protect else None)
    return simulator.run(
        open_load(tables, qps=2 * capacity, n_requests=n), tables.vector
    )


class TestLoadShedding:
    def test_shedding_keeps_the_admitted_stream_on_slo(self, tables):
        burst = _burst(tables, protect=False)
        shed = _burst(tables, protect=True)
        assert shed.shed_fraction > 0.0
        admitted = [r for r in shed.records if r.status != STATUS_SHED]
        admitted_ok = sum(1 for r in admitted if r.slo_met) / len(admitted)
        assert admitted_ok >= burst.slo_attainment
        assert shed.latency_percentile_us(99) <= burst.latency_percentile_us(99)

    def test_shed_requests_count_as_slo_misses(self, tables):
        shed = _burst(tables, protect=True)
        for record in shed.records:
            if record.status == STATUS_SHED:
                assert not record.slo_met
                # Shed immediately at arrival, never dispatched.
                assert record.complete_us == record.request.arrival_us
                assert record.batch_index == -1

    def test_shed_latencies_excluded_from_percentiles(self, tables):
        shed = _burst(tables, protect=True)
        served = [r.latency_us for r in shed.records if r.status != STATUS_SHED]
        assert shed.latency_percentile_us(100) == max(served)
        # Sheds report zero latency; the floor percentile must still be a
        # served request's latency, not a shed's zero.
        assert shed.latency_percentile_us(0.1) >= min(served) > 0.0

    def test_shed_events_and_metrics_agree(self, tables):
        shed = _burst(tables, protect=True)
        shed_events = [e for e in shed.events if e.kind == "request_shed"]
        assert len(shed_events) == shed.shed_requests > 0
        for event in shed_events:
            assert event.args["estimated_us"] > 0
        counters = shed.metrics.counters()
        assert counters["serving.requests.shed"] == shed.shed_requests
        derived = metrics_from_events(shed.events).counters()
        assert derived["events.request_shed"] == shed.shed_requests
        assert derived["serving.shed"] == shed.shed_requests
        assert shed.status_counts()[STATUS_SHED] == shed.shed_requests

    def test_underload_sheds_nothing_and_stays_byte_identical(self, tables):
        plain = make_simulator().run(open_load(tables, qps=2e6), tables.vector)
        guarded = make_simulator(overload=OverloadPolicy()).run(
            open_load(tables, qps=2e6), tables.vector
        )
        assert guarded.shed_requests == 0
        assert guarded.slo_attainment == 1.0
        assert set(plain.vectors) == set(guarded.vectors)
        for request_id, vector in plain.vectors.items():
            assert guarded.vectors[request_id].tobytes() == vector.tobytes()


class TestCircuitBreaker:
    def _degraded(self, tables, breaker, qps=4e6, n_requests=160):
        plan = FaultPlan(seed=0, rank_latency_multipliers={0: 8.0, 1: 8.0})
        simulator = make_simulator(
            faults=plan,
            breaker=BreakerConfig(min_samples=2) if breaker else None,
        )
        return simulator.run(
            open_load(tables, qps=qps, n_requests=n_requests), tables.vector
        )

    def test_opens_exactly_the_degraded_ranks(self, tables):
        report = self._degraded(tables, breaker=True)
        assert report.breaker_opens > 0
        opened = {e.rank for e in report.events if e.kind == "breaker_opened"}
        assert opened <= {0, 1}
        for event in report.events:
            if event.kind == "breaker_opened":
                assert event.args["ratio"] >= 2.0
        derived = metrics_from_events(report.events).counters()
        assert derived["breaker.opens"] == report.breaker_opens
        for rank in opened:
            assert derived[f"breaker.opens.rank{rank}"] >= 1

    def test_boosted_tier_absorbs_the_degraded_ranks(self, tables):
        unprotected = self._degraded(tables, breaker=False)
        protected = self._degraded(tables, breaker=True)
        # Route-around serves the open ranks' hot rows from the pinned
        # tier instead of their degraded DRAM.
        assert protected.cache_hits > 0
        assert protected.latency_percentile_us(99) <= (
            unprotected.latency_percentile_us(99)
        )
        # Bytes must not change: the tier is a timing overlay.
        for request_id, vector in unprotected.vectors.items():
            assert protected.vectors[request_id].tobytes() == vector.tobytes()

    def test_healthy_run_never_opens_and_stays_byte_identical(self, tables):
        plain = make_simulator(interactive_fallback=False).run(
            open_load(tables, qps=4e6), tables.vector
        )
        guarded = make_simulator(
            interactive_fallback=False, breaker=BreakerConfig()
        ).run(open_load(tables, qps=4e6), tables.vector)
        assert guarded.breaker_opens == 0
        assert guarded.cache_hits == 0 and guarded.cache_misses == 0
        assert not [e for e in guarded.events if e.kind == "breaker_opened"]
        for request_id, vector in plain.vectors.items():
            assert guarded.vectors[request_id].tobytes() == vector.tobytes()
