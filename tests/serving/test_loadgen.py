"""Tests for the open- and closed-loop load generators."""

import numpy as np
import pytest

from repro.serving import ClosedLoopGenerator, OpenLoopGenerator, RampStage, Request
from repro.workloads import EmbeddingTableSet, QueryGenerator


@pytest.fixture(scope="module")
def tables():
    return EmbeddingTableSet.random(seed=0)


def make_queries(tables, seed=1):
    return QueryGenerator.paper_calibrated(tables, seed=seed, query_len=8)


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(request_id=0, indices=(), arrival_us=0.0, deadline_us=1.0)
        with pytest.raises(ValueError):
            Request(request_id=0, indices=(1,), arrival_us=5.0, deadline_us=1.0)


class TestRampStage:
    def test_validation(self):
        with pytest.raises(ValueError):
            RampStage(qps=0, duration_us=1.0)
        with pytest.raises(ValueError):
            RampStage(qps=100.0, duration_us=0)


class TestOpenLoop:
    def test_deterministic_under_seed(self, tables):
        stages = [RampStage(qps=1e6, duration_us=100.0)]
        first = OpenLoopGenerator(
            make_queries(tables), stages, slo_us=25.0, seed=7
        ).initial()
        second = OpenLoopGenerator(
            make_queries(tables), stages, slo_us=25.0, seed=7
        ).initial()
        assert [r.indices for r in first] == [r.indices for r in second]
        assert [r.arrival_us for r in first] == [r.arrival_us for r in second]

    def test_poisson_rate_roughly_matches(self, tables):
        qps = 2e6
        duration_us = 2_000.0
        requests = OpenLoopGenerator(
            make_queries(tables),
            [RampStage(qps=qps, duration_us=duration_us)],
            slo_us=25.0,
            seed=3,
        ).initial()
        expected = qps * duration_us / 1e6
        assert 0.7 * expected < len(requests) < 1.3 * expected

    def test_ramp_stages_partition_time(self, tables):
        stages = [
            RampStage(qps=5e5, duration_us=200.0),
            RampStage(qps=4e6, duration_us=200.0),
        ]
        requests = OpenLoopGenerator(
            make_queries(tables), stages, slo_us=25.0, seed=5
        ).initial()
        arrivals = [r.arrival_us for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] < 400.0
        low = sum(1 for a in arrivals if a < 200.0)
        high = len(arrivals) - low
        # The second stage offers 8× the rate over the same duration.
        assert high > 3 * low

    def test_deadline_is_arrival_plus_slo(self, tables):
        requests = OpenLoopGenerator(
            make_queries(tables),
            [RampStage(qps=1e6, duration_us=50.0)],
            slo_us=17.5,
            seed=1,
        ).initial()
        assert requests
        for request in requests:
            assert request.deadline_us == pytest.approx(request.arrival_us + 17.5)

    def test_ids_are_dense_and_ordered(self, tables):
        requests = OpenLoopGenerator(
            make_queries(tables),
            [RampStage(qps=1e6, duration_us=100.0)],
            slo_us=25.0,
            seed=2,
        ).initial()
        assert [r.request_id for r in requests] == list(range(len(requests)))

    def test_open_loop_ignores_completions(self, tables):
        generator = OpenLoopGenerator(
            make_queries(tables),
            [RampStage(qps=1e6, duration_us=10.0)],
            slo_us=25.0,
        )
        [first, *_] = generator.initial()
        assert generator.on_complete(first, 99.0) is None

    def test_requires_stage_and_positive_slo(self, tables):
        with pytest.raises(ValueError):
            OpenLoopGenerator(make_queries(tables), [], slo_us=25.0)
        with pytest.raises(ValueError):
            OpenLoopGenerator(
                make_queries(tables),
                [RampStage(qps=1e6, duration_us=1.0)],
                slo_us=0,
            )


class TestClosedLoop:
    def test_quota_per_user(self, tables):
        generator = ClosedLoopGenerator(
            make_queries(tables),
            users=4,
            think_time_us=2.0,
            slo_us=25.0,
            requests_per_user=3,
            seed=0,
        )
        outstanding = generator.initial()
        assert len(outstanding) == 4
        total = len(outstanding)
        while outstanding:
            request = outstanding.pop()
            follow_up = generator.on_complete(request, request.arrival_us + 5.0)
            if follow_up is not None:
                assert follow_up.user == request.user
                assert follow_up.arrival_us >= request.arrival_us + 5.0
                outstanding.append(follow_up)
                total += 1
        assert total == 4 * 3

    def test_zero_think_time(self, tables):
        generator = ClosedLoopGenerator(
            make_queries(tables),
            users=2,
            think_time_us=0.0,
            slo_us=25.0,
            requests_per_user=2,
            seed=0,
        )
        first = generator.initial()
        assert all(r.arrival_us == 0.0 for r in first)
        follow_up = generator.on_complete(first[0], 7.0)
        assert follow_up is not None and follow_up.arrival_us == 7.0

    def test_validation(self, tables):
        queries = make_queries(tables)
        with pytest.raises(ValueError):
            ClosedLoopGenerator(queries, users=0, think_time_us=1.0, slo_us=25.0)
        with pytest.raises(ValueError):
            ClosedLoopGenerator(queries, users=1, think_time_us=-1.0, slo_us=25.0)
        with pytest.raises(ValueError):
            ClosedLoopGenerator(
                queries, users=1, think_time_us=1.0, slo_us=25.0, requests_per_user=0
            )

    def test_zipf_skew_shows_in_indices(self, tables):
        """The Zipf-skewed generator must produce repeated indices across
        users — that sharing is what the batcher exploits."""
        generator = ClosedLoopGenerator(
            make_queries(tables, seed=11),
            users=64,
            think_time_us=1.0,
            slo_us=25.0,
            seed=11,
        )
        requests = generator.initial()
        all_indices = [i for r in requests for i in r.indices]
        assert len(set(all_indices)) < len(all_indices)
