"""End-to-end tests for the serving simulator."""

import numpy as np
import pytest

from repro.core import FafnirConfig, FafnirEngine
from repro.serving import (
    ClosedLoopGenerator,
    ContinuousBatcher,
    OpenLoopGenerator,
    RampStage,
    ServingSimulator,
)
from repro.workloads import EmbeddingTableSet, QueryGenerator


@pytest.fixture(scope="module")
def tables():
    return EmbeddingTableSet.random(seed=0)


def open_load(tables, qps, n_requests=120, slo_us=25.0, seed=2):
    duration_us = n_requests / qps * 1e6
    return OpenLoopGenerator(
        QueryGenerator.paper_calibrated(tables, seed=seed, query_len=16),
        [RampStage(qps=qps, duration_us=duration_us)],
        slo_us=slo_us,
        seed=seed,
    )


def make_simulator(batch_size=16, window=64, margin=3.0, **kwargs):
    return ServingSimulator(
        batcher=ContinuousBatcher(
            batch_size=batch_size, window=window, dispatch_margin_us=margin
        ),
        **kwargs,
    )


class TestServingSimulator:
    def test_every_request_served_exactly_once(self, tables):
        load = open_load(tables, qps=2e6)
        report = make_simulator().run(load, tables.vector)
        served = sorted(record.request.request_id for record in report.records)
        assert served == sorted(set(served))
        assert len(report.vectors) == len(report.records)
        assert sum(len(m) for m in report.members) == len(report.records)

    def test_timeline_invariants(self, tables):
        load = open_load(tables, qps=2e6)
        report = make_simulator().run(load, tables.vector)
        assert report.records
        for record in report.records:
            assert record.request.arrival_us <= record.dispatch_us
            assert record.dispatch_us < record.complete_us
            assert 1 <= record.batch_size <= 16

    def test_byte_identical_to_offline_engine(self, tables):
        """Acceptance: for identical formed batches, online results match
        the offline FafnirEngine path byte for byte."""
        load = open_load(tables, qps=4e6)
        simulator = make_simulator(interactive_fallback=False)
        report = simulator.run(load, tables.vector)
        assert report.batches
        offline = FafnirEngine(config=FafnirConfig())
        for queries, member_ids in zip(report.batches, report.members):
            result = offline.run_batch(queries, tables.vector)
            for slot, request_id in enumerate(member_ids):
                online = report.vectors[request_id]
                assert online.tobytes() == result.vectors[slot].tobytes()

    def test_slo_attainment_degrades_past_saturation(self, tables):
        """Capacity is ~batch_size / service_time; far past it queueing
        delay must show up as missed SLOs."""
        healthy = make_simulator().run(
            open_load(tables, qps=2e6, slo_us=25.0), tables.vector
        )
        swamped = make_simulator().run(
            open_load(tables, qps=40e6, n_requests=400, slo_us=25.0), tables.vector
        )
        assert healthy.slo_attainment == 1.0
        assert swamped.slo_attainment < healthy.slo_attainment
        assert swamped.latency_percentile_us(99) > healthy.latency_percentile_us(99)

    def test_low_load_uses_interactive_fallback(self, tables):
        report = make_simulator().run(
            open_load(tables, qps=2e4, n_requests=40), tables.vector
        )
        assert report.interactive_dispatches > 0
        assert report.metrics.counters()["serving.dispatch.interactive"] > 0
        # Results still correct: each singleton equals the CPU oracle.
        for record in report.records:
            if record.interactive:
                want = np.sum(
                    [tables.vector(i) for i in set(record.request.indices)], axis=0
                )
                got = report.vectors[record.request.request_id]
                assert np.allclose(got, want)

    def test_interactive_fallback_can_be_disabled(self, tables):
        report = make_simulator(interactive_fallback=False).run(
            open_load(tables, qps=2e4, n_requests=30), tables.vector
        )
        assert report.interactive_dispatches == 0

    def test_dedup_savings_reported(self, tables):
        report = make_simulator().run(open_load(tables, qps=4e6), tables.vector)
        assert report.total_lookups > report.unique_reads > 0
        assert 0.0 < report.dedup_savings_fraction < 1.0

    def test_metrics_threaded_through_obs(self, tables):
        load = open_load(tables, qps=2e6)
        report = make_simulator().run(load, tables.vector)
        snapshot = report.metrics.snapshot()
        n = len(report.records)
        assert snapshot["counters"]["serving.requests"] == n
        assert snapshot["histograms"]["serving.latency_us"]["count"] == n
        assert snapshot["histograms"]["serving.queue_us"]["count"] == n
        assert snapshot["histograms"]["serving.batch_size"]["count"] == len(
            report.batches
        )
        assert snapshot["gauges"]["serving.queue_depth"]["high_water"] >= 1
        # Report-level percentiles agree with the registry's histogram.
        assert report.latency_percentile_us(99) == pytest.approx(
            report.metrics.histogram("serving.latency_us").percentile(99)
        )

    def test_closed_loop_serves_full_quota(self, tables):
        load = ClosedLoopGenerator(
            QueryGenerator.paper_calibrated(tables, seed=5, query_len=16),
            users=24,
            think_time_us=4.0,
            slo_us=25.0,
            requests_per_user=3,
            seed=5,
        )
        report = make_simulator().run(load, tables.vector)
        assert len(report.records) == 24 * 3
        assert report.slo_attainment > 0.0

    def test_deterministic_end_to_end(self, tables):
        first = make_simulator().run(open_load(tables, qps=2e6), tables.vector)
        second = make_simulator().run(open_load(tables, qps=2e6), tables.vector)
        assert first.summary() == second.summary()
        assert first.batches == second.batches

    def test_batch_size_must_fit_engine(self):
        with pytest.raises(ValueError):
            ServingSimulator(
                batcher=ContinuousBatcher(batch_size=64),
                config=FafnirConfig(batch_size=32),
            )

    def test_empty_load_is_empty_report(self, tables):
        class NoLoad:
            def initial(self):
                return []

            def on_complete(self, request, complete_us):
                return None

        report = make_simulator().run(NoLoad(), tables.vector)
        assert report.records == []
        assert report.slo_attainment == 1.0
        assert report.summary()["requests"] == 0.0
