"""Tests for the paper-anchor validation harness."""

import pytest

from repro.core import FafnirConfig
from repro.validation import AnchorResult, all_anchors_hold, validate_anchors


class TestAnchorResult:
    def test_approx_within_tolerance(self):
        assert AnchorResult("x", 1.01, 1.0, 0.02).ok
        assert not AnchorResult("x", 1.10, 1.0, 0.02).ok

    def test_exact_zero_tolerance(self):
        assert AnchorResult("x", 12, 12, 0.0).ok
        assert not AnchorResult("x", 13, 12, 0.0).ok

    def test_at_most_mode(self):
        assert AnchorResult("x", 4.9, 5.0, 0.0, mode="at_most").ok
        assert not AnchorResult("x", 5.1, 5.0, 0.0, mode="at_most").ok

    def test_zero_expected(self):
        assert AnchorResult("x", 0.0, 0.0, 0.1).ok
        assert not AnchorResult("x", 0.5, 0.0, 0.1).ok

    def test_str_rendering(self):
        text = str(AnchorResult("area", 1.25, 1.25, 0.01))
        assert "ok" in text and "area" in text


class TestValidateAnchors:
    def test_all_reference_anchors_hold(self):
        assert all_anchors_hold()

    def test_anchor_coverage(self):
        """Every bookkeeping table contributes anchors."""
        names = [check.name for check in validate_anchors()]
        text = " ".join(names)
        for marker in ("Table I", "Table IV", "Table V", "area", "power",
                       "connections", "PE count"):
            assert marker in text, marker

    def test_deviations_reported(self):
        for check in validate_anchors():
            assert abs(check.deviation_percent) < 5.0

    def test_detects_a_broken_configuration(self):
        """A mis-sized configuration must fail Table I anchors."""
        tampered = FafnirConfig(vector_bytes=1024)
        assert not all_anchors_hold(tampered)
