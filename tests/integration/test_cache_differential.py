"""Differential matrix: the hot-index tier must be functionally invisible.

The tier (:mod:`repro.tiering`) is a *timing* mechanism — a hit replaces
a DRAM read's modeled latency, nothing else.  This suite pits cached
runs against uncached runs on randomly drawn machines and Zipf-skewed
multi-batch streams (repeats across batches are what make the cache
actually hit) and requires:

* byte-identical vectors, identical per-query statuses, and identical
  per-PE work counters across all three engine variants (scalar kernel,
  vector kernel, SoA sweep);
* the same invariance under fault injection, in both fail-fast-survivable
  and degrade modes — injected read timeouts are keyed by batch position,
  and the tier keeps positions intact, so the *same* queries degrade;
* identical per-level reduce/forward/merge counts derived from traces
  (PE work seen through the event stream, not just the aggregates);
* modeled DRAM access counts strictly non-increasing with the cache on,
  and strictly decreasing once a skewed stream has warmed the tier;
* byte-identity through the sharded ``run_reduced`` path, whose worker
  replicas each build their own tier from the picklable config.
"""

import numpy as np
import pytest

from repro.comm import LinkModel
from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.core.sharding import ShardedRunner
from repro.faults import FaultPlan, FaultPolicy
from repro.faults.policy import MODE_DEGRADE
from repro.obs import InMemorySink, Tracer, per_level_counts
from repro.obs.events import (
    CACHE_HIT,
    CACHE_MISS,
    PE_FORWARD,
    PE_MERGE,
    PE_REDUCE,
)
from repro.tiering import HotTierConfig

UNIVERSE = 96  # small on purpose: cross-batch repeats keep the tier hot
LINK = LinkModel(latency_ns=300.0, bandwidth_gb_s=20.0)
VARIANTS = [("scalar", "object"), ("vector", "object"), ("vector", "soa")]


def random_setup(seed):
    """One machine + skewed multi-batch stream + random tier geometry."""
    rng = np.random.default_rng(seed)
    leaves = int(rng.choice([2, 4, 8]))
    ranks_per_leaf = int(rng.choice([1, 2]))
    config = FafnirConfig(
        total_ranks=leaves * ranks_per_leaf,
        ranks_per_leaf_pe=ranks_per_leaf,
        batch_size=int(rng.integers(2, 13)),
        max_query_len=6,
        vector_bytes=int(rng.choice([32, 64])),
    )
    # Zipf-ish popularity over a small universe: rank r of the universe is
    # drawn ∝ 1/(r+1), so a handful of ids dominate every batch.
    weights = 1.0 / np.arange(1, UNIVERSE + 1)
    probabilities = weights / weights.sum()
    batches = []
    for _ in range(int(rng.integers(2, 5))):
        batch = []
        for _ in range(int(rng.integers(1, config.batch_size + 1))):
            length = int(rng.integers(1, 7))
            pool = rng.choice(
                UNIVERSE, size=length, replace=False, p=probabilities
            )
            batch.append([int(index) for index in pool])
        batches.append(batch)
    cache = HotTierConfig(
        size_bytes=int(rng.choice([2, 4, 8])) * 1024,
        line_bytes=int(rng.choice([128, 256])),
        ways=int(rng.choice([2, 4, 8])),
        policy=str(rng.choice(["lru", "fifo"])),
        hit_latency_cycles=int(rng.integers(0, 9)),
    )
    deduplicate = bool(rng.random() < 0.7)
    return config, batches, cache, deduplicate


class make_source:
    """Picklable deterministic vector source (crosses process pools)."""

    def __init__(self, seed, elements):
        self.seed = seed
        self.elements = elements

    def __call__(self, index):
        rng = np.random.default_rng(50_000 + self.seed * 1000 + index)
        return rng.standard_normal(self.elements)


def run_variant(
    config,
    batches,
    source,
    kernel,
    engine,
    cache,
    deduplicate,
    faults=None,
    fault_policy=None,
    trace=False,
):
    sink = InMemorySink() if trace else None
    instance = FafnirEngine(
        config=config,
        kernel=kernel,
        engine=engine,
        cache=cache,
        faults=faults,
        fault_policy=fault_policy,
        tracer=Tracer([sink]) if sink is not None else None,
    )
    result = instance.run_batches(batches, source, deduplicate=deduplicate)
    functional = (
        tuple(vector.tobytes() for vector in result.vectors),
        tuple(result.statuses),
        tuple(
            tuple(sorted(item.stats.per_pe_work.items()))
            for item in result.results
        ),
    )
    reads = result.memory_stats.reads
    events = sink.events if sink is not None else None
    return functional, reads, events, instance


SEEDS = range(10)


@pytest.mark.parametrize("seed", SEEDS)
def test_cached_runs_are_byte_identical_across_engines(seed):
    config, batches, cache, deduplicate = random_setup(seed)
    source = make_source(seed, config.vector_elements)

    reference, base_reads, _, _ = run_variant(
        config, batches, source, "vector", "object", None, deduplicate
    )
    for kernel, engine in VARIANTS:
        cached, cached_reads, _, instance = run_variant(
            config, batches, source, kernel, engine, cache, deduplicate
        )
        assert cached == reference, f"{kernel}/{engine} diverged under cache"
        assert cached_reads <= base_reads
        stats = instance.memory.cache_stats
        assert stats.hits + stats.misses == stats.accesses
        # Every hit is exactly one DRAM read that did not happen (vector
        # reads are single-piece on these geometries only when the vector
        # fits one column; in general a hit removes >= 1 request).
        if stats.hits:
            assert cached_reads < base_reads


@pytest.mark.parametrize("seed", SEEDS)
def test_cached_runs_are_byte_identical_under_faults(seed):
    """Fault injection is keyed by batch position; a cached run keeps
    positions intact, so the same reads degrade in both worlds."""
    config, batches, cache, deduplicate = random_setup(seed)
    source = make_source(seed, config.vector_elements)
    plan = FaultPlan(
        seed=seed,
        rank_latency_multipliers={1: 1.4},
        rank_timeout_probability={0: 0.2},
    )
    policy = FaultPolicy(mode=MODE_DEGRADE, max_read_retries=1)

    reference, base_reads, _, _ = run_variant(
        config,
        batches,
        source,
        "vector",
        "object",
        None,
        deduplicate,
        faults=plan,
        fault_policy=policy,
    )
    for kernel, engine in VARIANTS:
        cached, cached_reads, _, _ = run_variant(
            config,
            batches,
            source,
            kernel,
            engine,
            cache,
            deduplicate,
            faults=plan,
            fault_policy=policy,
        )
        assert cached == reference, (
            f"{kernel}/{engine} diverged under cache + faults"
        )
        assert cached_reads <= base_reads


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_trace_derived_pe_work_is_invariant(seed):
    """Per-level reduce/forward/merge *counts* from the event stream must
    not move when the tier turns on (cycles may — timing is the point)."""
    config, batches, cache, deduplicate = random_setup(seed)
    source = make_source(seed, config.vector_elements)

    _, _, base_events, _ = run_variant(
        config, batches, source, "vector", "soa", None, deduplicate, trace=True
    )
    _, _, cached_events, _ = run_variant(
        config, batches, source, "vector", "soa", cache, deduplicate, trace=True
    )
    for kind in (PE_REDUCE, PE_FORWARD, PE_MERGE):
        assert per_level_counts(base_events, kind) == per_level_counts(
            cached_events, kind
        )
    hits = sum(1 for e in cached_events if e.kind == CACHE_HIT)
    misses = sum(1 for e in cached_events if e.kind == CACHE_MISS)
    assert not any(e.kind == CACHE_HIT for e in base_events)
    # The events agree with the tier's own accounting.
    assert hits + misses > 0


def test_warmed_zipf_stream_strictly_reduces_dram_reads():
    """Deterministic pin: one hot id repeated across batches must hit."""
    config = FafnirConfig(
        total_ranks=4,
        ranks_per_leaf_pe=1,
        batch_size=4,
        max_query_len=4,
        vector_bytes=64,
    )
    source = make_source(0, config.vector_elements)
    batches = [[[0, 1, 2]], [[0, 5, 9]], [[0, 13, 2]]]
    _, base_reads, _, _ = run_variant(
        config, batches, source, "vector", "object", None, True
    )
    cache = HotTierConfig(size_bytes=4096, line_bytes=64)
    _, cached_reads, _, instance = run_variant(
        config, batches, source, "vector", "object", cache, True
    )
    # id 0 re-read twice, id 2 once: three DRAM reads replaced by hits.
    assert instance.memory.cache_stats.hits == 3
    assert cached_reads == base_reads - 3


@pytest.mark.parametrize("seed", SEEDS[:4])
@pytest.mark.parametrize("schedule", ["gather", "recursive_doubling"])
def test_run_reduced_is_byte_identical_with_cache(seed, schedule):
    config, batches, cache, deduplicate = random_setup(seed)
    source = make_source(seed, config.vector_elements)

    def run(tier):
        runner = ShardedRunner(
            config=config,
            operator="sum",
            max_workers=1,
            reduction=schedule,
            num_shards=2,
            link=LINK,
            cache=tier,
        )
        return runner.run_reduced(batches, source, deduplicate=deduplicate)

    baseline = run(None)
    cached = run(cache)
    assert len(baseline.vectors) == len(cached.vectors)
    for a, b in zip(baseline.vectors, cached.vectors):
        assert a.tobytes() == b.tobytes()
    assert baseline.statuses == cached.statuses


def test_uncached_system_is_untouched():
    """cache=None must leave the memory system's behavior and accounting
    exactly as before the tier existed (the opt-in contract)."""
    config = FafnirConfig(
        total_ranks=4,
        ranks_per_leaf_pe=1,
        batch_size=4,
        max_query_len=4,
        vector_bytes=64,
    )
    engine = FafnirEngine(config=config)
    assert engine.memory.tier is None
    assert engine.memory.cache_stats.accesses == 0
    source = make_source(1, config.vector_elements)
    result = engine.run_batch([[0, 1], [0, 2]], source)
    assert engine.memory.cache_stats.accesses == 0
    assert len(result.vectors) == 2
