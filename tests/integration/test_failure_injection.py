"""Failure-injection tests: the system fails loudly, not wrongly."""

import numpy as np
import pytest

from repro.core import (
    FafnirConfig,
    FafnirEngine,
    Header,
    Message,
    ProcessingElement,
    SUM,
)
from repro.faults import (
    FaultError,
    FaultPlan,
    FaultPolicy,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUSES,
)
from repro.memory import MemoryConfig


def good_source(index):
    rng = np.random.default_rng(1000 + index)
    return rng.normal(size=128)


class TestSourceFailures:
    def test_raising_source_propagates(self):
        engine = FafnirEngine()

        def broken(index):
            raise KeyError(f"vector {index} missing from storage")

        with pytest.raises(KeyError, match="missing from storage"):
            engine.run_batch([[1, 2]], broken)

    def test_wrong_dtype_is_coerced_not_corrupted(self):
        engine = FafnirEngine()
        result = engine.run_batch([[1, 2]], lambda i: np.full(128, i, dtype=np.int32))
        assert result.vectors[0].dtype == np.float64
        assert np.allclose(result.vectors[0], 3.0)

    def test_nan_values_propagate_visibly(self):
        """A poisoned vector poisons exactly the queries using it."""
        engine = FafnirEngine()

        def poisoned(index):
            if index == 2:
                return np.full(128, np.nan)
            return good_source(index)

        result = engine.run_batch([[1, 2], [3, 4]], poisoned)
        assert np.isnan(result.vectors[0]).all()
        assert not np.isnan(result.vectors[1]).any()

    def test_shape_mismatch_rejected_before_tree(self):
        engine = FafnirEngine()
        with pytest.raises(ValueError, match="expected"):
            engine.run_batch([[1]], lambda i: np.zeros((2, 64)))


class TestHeaderTampering:
    def test_overlapping_entry_rejected_at_construction(self):
        with pytest.raises(ValueError, match="overlaps"):
            Header.make({1, 2}, [{2, 3}])

    def test_reduce_with_non_matching_partner_rejected(self):
        header = Header.make({1}, [{2, 3}])
        with pytest.raises(ValueError, match="not contained"):
            header.reduced_with(frozenset({9}), frozenset({2, 3}))

    def test_merge_unit_catches_value_divergence(self):
        """check_values turns a silently-wrong merge into a loud failure."""
        config = FafnirConfig(batch_size=8, total_ranks=8, ranks_per_leaf_pe=2)
        pe = ProcessingElement(config, SUM, check_values=True)
        clean = Message(Header.make({1}, [{2}]), np.ones(4))
        tampered = Message(Header.make({1}, [{2, 3}]), np.full(4, 99.0))
        partner = Message(Header.make({2}, [{1}, {1, 3}]), np.ones(4))
        with pytest.raises(AssertionError, match="merge-unit invariant"):
            pe.process([clean, tampered], [partner])


class TestSeededChaos:
    """Property test over seeded chaos runs: every query accounted, every
    surviving result correct against a CPU oracle, fail_fast unchanged."""

    RANKS = 8
    ELEMENTS = 16

    def make_engine(self, **kwargs):
        return FafnirEngine(
            config=FafnirConfig(
                batch_size=16,
                max_query_len=8,
                vector_bytes=self.ELEMENTS * 4,
                total_ranks=self.RANKS,
                ranks_per_leaf_pe=2,
                num_tables=self.RANKS,
            ),
            memory_config=MemoryConfig().scaled_to_ranks(self.RANKS),
            **kwargs,
        )

    def source(self, index):
        return np.random.default_rng(50_000 + index).normal(size=self.ELEMENTS)

    def chaos_plan(self, seed):
        return FaultPlan(
            seed=seed,
            rank_latency_multipliers={0: 4.0},
            rank_timeout_probability={1: 0.3},
            vector_corruption_probability=0.1,
            source_failure_probability=0.1,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_every_query_accounted_and_correct(self, seed):
        rng = np.random.default_rng(1_000 + seed)
        queries = [
            rng.choice(64, size=int(rng.integers(2, 8)), replace=False).tolist()
            for _ in range(int(rng.integers(4, 13)))
        ]
        engine = self.make_engine(
            faults=self.chaos_plan(seed),
            fault_policy=FaultPolicy.graceful(max_read_retries=1),
        )
        result = engine.run_batch(queries, self.source)

        assert len(result.vectors) == len(queries)
        statuses = result.query_statuses
        assert all(status in STATUSES for status in statuses)
        dropped = result.dropped_indices
        for query, vector, status in zip(queries, result.vectors, statuses):
            survivors = [i for i in sorted(set(query)) if i not in dropped]
            if status == STATUS_FAILED:
                assert not survivors
                assert np.isnan(vector).all(), "failed queries are NaN poison"
            else:
                if status == STATUS_OK:
                    assert len(survivors) == len(set(query))
                else:
                    assert status == STATUS_DEGRADED
                    assert 0 < len(survivors) < len(set(query))
                oracle = sum(self.source(i) for i in survivors)
                assert np.allclose(vector, oracle), (
                    "degraded results must match the CPU oracle on exactly "
                    "the surviving indices"
                )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_chaos_run_is_reproducible(self, seed):
        queries = [[1, 2, 3], [4, 5, 6], [7, 8], [9, 10, 11]]
        runs = []
        for _ in range(2):
            engine = self.make_engine(
                faults=self.chaos_plan(seed),
                fault_policy=FaultPolicy.graceful(max_read_retries=1),
            )
            runs.append(engine.run_batch(queries, self.source))
        assert runs[0].query_statuses == runs[1].query_statuses
        assert runs[0].dropped_indices == runs[1].dropped_indices
        for a, b in zip(runs[0].vectors, runs[1].vectors):
            assert a.tobytes() == b.tobytes()

    def test_fail_fast_reproduces_todays_exceptions(self):
        """Under the default policy an unrecoverable fault raises a typed
        error, exactly like the pre-fault-subsystem failure modes above."""
        plan = FaultPlan(seed=0, source_failure_probability=1.0)
        engine = self.make_engine(faults=plan)
        with pytest.raises(FaultError):
            engine.run_batch([[1, 2]], self.source)

    def test_no_plan_is_not_a_chaos_run(self):
        """Without a FaultPlan the engine never invents fault machinery:
        a raising source propagates untouched (no retries, no statuses)."""
        engine = self.make_engine()
        calls = []

        def flaky(index):
            calls.append(index)
            raise KeyError(index)

        with pytest.raises(KeyError):
            engine.run_batch([[1, 2]], flaky)
        assert len(calls) == 1, "no retry loop without a plan"


class TestConfigurationGuards:
    def test_engine_rejects_query_longer_than_hardware(self):
        engine = FafnirEngine(FafnirConfig(max_query_len=4))
        with pytest.raises(ValueError, match="exceeding"):
            engine.run_batch([[1, 2, 3, 4, 5]], good_source)

    def test_engine_rejects_batch_larger_than_hardware(self):
        engine = FafnirEngine(FafnirConfig(batch_size=2))
        with pytest.raises(ValueError, match="exceeds configured batch size"):
            engine.run_batch([[1], [2], [3]], good_source)

    def test_operator_name_typo_is_loud(self):
        from repro.core import get_operator

        with pytest.raises(KeyError, match="available"):
            get_operator("summ")
