"""Failure-injection tests: the system fails loudly, not wrongly."""

import numpy as np
import pytest

from repro.core import (
    FafnirConfig,
    FafnirEngine,
    Header,
    Message,
    ProcessingElement,
    SUM,
)


def good_source(index):
    rng = np.random.default_rng(1000 + index)
    return rng.normal(size=128)


class TestSourceFailures:
    def test_raising_source_propagates(self):
        engine = FafnirEngine()

        def broken(index):
            raise KeyError(f"vector {index} missing from storage")

        with pytest.raises(KeyError, match="missing from storage"):
            engine.run_batch([[1, 2]], broken)

    def test_wrong_dtype_is_coerced_not_corrupted(self):
        engine = FafnirEngine()
        result = engine.run_batch([[1, 2]], lambda i: np.full(128, i, dtype=np.int32))
        assert result.vectors[0].dtype == np.float64
        assert np.allclose(result.vectors[0], 3.0)

    def test_nan_values_propagate_visibly(self):
        """A poisoned vector poisons exactly the queries using it."""
        engine = FafnirEngine()

        def poisoned(index):
            if index == 2:
                return np.full(128, np.nan)
            return good_source(index)

        result = engine.run_batch([[1, 2], [3, 4]], poisoned)
        assert np.isnan(result.vectors[0]).all()
        assert not np.isnan(result.vectors[1]).any()

    def test_shape_mismatch_rejected_before_tree(self):
        engine = FafnirEngine()
        with pytest.raises(ValueError, match="expected"):
            engine.run_batch([[1]], lambda i: np.zeros((2, 64)))


class TestHeaderTampering:
    def test_overlapping_entry_rejected_at_construction(self):
        with pytest.raises(ValueError, match="overlaps"):
            Header.make({1, 2}, [{2, 3}])

    def test_reduce_with_non_matching_partner_rejected(self):
        header = Header.make({1}, [{2, 3}])
        with pytest.raises(ValueError, match="not contained"):
            header.reduced_with(frozenset({9}), frozenset({2, 3}))

    def test_merge_unit_catches_value_divergence(self):
        """check_values turns a silently-wrong merge into a loud failure."""
        config = FafnirConfig(batch_size=8, total_ranks=8, ranks_per_leaf_pe=2)
        pe = ProcessingElement(config, SUM, check_values=True)
        clean = Message(Header.make({1}, [{2}]), np.ones(4))
        tampered = Message(Header.make({1}, [{2, 3}]), np.full(4, 99.0))
        partner = Message(Header.make({2}, [{1}, {1, 3}]), np.ones(4))
        with pytest.raises(AssertionError, match="merge-unit invariant"):
            pe.process([clean, tampered], [partner])


class TestConfigurationGuards:
    def test_engine_rejects_query_longer_than_hardware(self):
        engine = FafnirEngine(FafnirConfig(max_query_len=4))
        with pytest.raises(ValueError, match="exceeding"):
            engine.run_batch([[1, 2, 3, 4, 5]], good_source)

    def test_engine_rejects_batch_larger_than_hardware(self):
        engine = FafnirEngine(FafnirConfig(batch_size=2))
        with pytest.raises(ValueError, match="exceeds configured batch size"):
            engine.run_batch([[1], [2], [3]], good_source)

    def test_operator_name_typo_is_loud(self):
        from repro.core import get_operator

        with pytest.raises(KeyError, match="available"):
            get_operator("summ")
