"""Differential matrix: single-node engines vs every cross-shard schedule.

The cross-shard reduction (src/repro/comm/) claims byte-identity with the
single-node tree for subtree-aligned partitions: each shard computes an
exact subtree of the single-node tournament, and the canonical fold
replays the missing upper levels in the same association.  This module
pits every single-node engine variant (scalar kernel, vector kernel, SoA
sweep) against every sharded ``reduction=`` schedule at power-of-two
shard counts and requires bit-for-bit agreement on vectors and statuses —
on clean runs and under index-keyed fault injection, where retries and
dropped rows must land on exactly the same queries in both worlds.

Latencies are compared where the model says they must agree: the three
sharded schedules share identical shard-local per-query latencies (a
schedule only re-times the comm phase), and the single-node kernels share
identical latencies among themselves.  Single-node and sharded latencies
legitimately differ — a shard's private memory system sees less
contention than one node serving the whole stream.
"""

import numpy as np
import pytest

from repro.comm import SCHEDULES, IndexPartition, LinkModel
from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.core.sharding import ShardedRunner
from repro.faults import FaultPlan, FaultPolicy
from repro.obs import SHARD_MSG_SENT, SHARD_REDUCED

UNIVERSE = 512
LINK = LinkModel(latency_ns=300.0, bandwidth_gb_s=20.0)
SINGLE_VARIANTS = [("scalar", "object"), ("vector", "object"), ("vector", "soa")]


def random_setup(seed):
    """One machine + stream whose partitions stay subtree-aligned."""
    rng = np.random.default_rng(seed)
    leaves = int(rng.choice([4, 8]))
    ranks_per_leaf = int(rng.choice([1, 2, 4]))
    config = FafnirConfig(
        total_ranks=leaves * ranks_per_leaf,
        ranks_per_leaf_pe=ranks_per_leaf,
        batch_size=int(rng.integers(2, 13)),
        max_query_len=8,
        vector_bytes=int(rng.choice([32, 64])),
    )
    batches = [
        [
            rng.choice(
                UNIVERSE, size=rng.integers(1, 9), replace=False
            ).tolist()
            for _ in range(rng.integers(1, config.batch_size + 1))
        ]
        for _ in range(int(rng.integers(1, 4)))
    ]
    return config, batches


class make_source:
    """Picklable deterministic vector source (crosses process pools)."""

    def __init__(self, seed, elements):
        self.seed = seed
        self.elements = elements

    def __call__(self, index):
        rng = np.random.default_rng(30_000 + self.seed * 1000 + index)
        return rng.standard_normal(self.elements)


def run_single(config, batches, source, kernel, engine, **kwargs):
    instance = FafnirEngine(
        config=config, operator="sum", kernel=kernel, engine=engine, **kwargs
    )
    result = instance.run_batches(batches, source)
    latencies = [
        cycles for item in result.results for cycles in item.ready_pe_cycles
    ]
    return result.vectors, result.statuses, latencies


def run_sharded(config, batches, source, schedule, shards, **kwargs):
    runner = ShardedRunner(
        config=config,
        operator="sum",
        max_workers=1,
        reduction=schedule,
        num_shards=shards,
        link=LINK,
        **kwargs,
    )
    reduced = runner.run_reduced(batches, source)
    return reduced


SEEDS = range(8)


@pytest.mark.parametrize("seed", SEEDS)
def test_matrix_agrees_on_vectors_and_statuses(seed):
    """Every cell — 3 single-node variants x {2,4} shards x 3 schedules —
    produces the same bytes and the same per-query statuses."""
    config, batches = random_setup(seed)
    source = make_source(seed, config.vector_elements)

    reference, ref_statuses, _ = run_single(
        config, batches, source, "vector", "object"
    )
    ref_bytes = [vector.tobytes() for vector in reference]

    for kernel, engine in SINGLE_VARIANTS:
        vectors, statuses, _ = run_single(
            config, batches, source, kernel, engine
        )
        assert [v.tobytes() for v in vectors] == ref_bytes, (kernel, engine)
        assert statuses == ref_statuses

    for shards in (2, 4):
        for name in sorted(SCHEDULES):
            reduced = run_sharded(config, batches, source, name, shards)
            assert [v.tobytes() for v in reduced.vectors] == ref_bytes, (
                shards,
                name,
            )
            assert reduced.statuses == ref_statuses


@pytest.mark.parametrize("seed", SEEDS)
def test_local_latencies_are_schedule_independent(seed):
    """A schedule re-times only the comm phase: per-query shard-local
    latencies must be identical across all three schedules (and the
    single-node kernels must agree among themselves)."""
    config, batches = random_setup(seed)
    source = make_source(seed, config.vector_elements)

    single = {
        (kernel, engine): run_single(
            config, batches, source, kernel, engine
        )[2]
        for kernel, engine in SINGLE_VARIANTS
    }
    assert len({tuple(lat) for lat in single.values()}) == 1

    sharded = {
        name: run_sharded(config, batches, source, name, 4).local_latencies
        for name in sorted(SCHEDULES)
    }
    assert len({tuple(lat) for lat in sharded.values()}) == 1
    # And the comm phase genuinely differs between schedules, so the
    # equality above is not vacuous.
    ends = {
        name: run_sharded(config, batches, source, name, 4).comm_pe_cycles
        for name in sorted(SCHEDULES)
    }
    assert len(set(ends.values())) > 1


@pytest.mark.parametrize("seed", range(6))
def test_matrix_agrees_under_fault_injection(seed):
    """Index-keyed faults (corruption, source failures) drop the same rows
    in every cell, so byte-identity must survive degraded and failed
    queries — including the NaN fill of fully failed ones."""
    config, batches = random_setup(seed)
    source = make_source(seed, config.vector_elements)
    plan = FaultPlan(
        seed=seed,
        vector_corruption_probability=0.4,
        source_failure_probability=0.25,
    )
    policy = FaultPolicy.graceful(
        max_corruption_retries=0, max_source_retries=0
    )

    reference, ref_statuses, _ = run_single(
        config,
        batches,
        source,
        "vector",
        "object",
        faults=plan,
        fault_policy=policy,
    )
    ref_bytes = [vector.tobytes() for vector in reference]
    assert set(ref_statuses) != {"ok"}, "faults never fired; weak test"

    for shards in (2, 4):
        for name in sorted(SCHEDULES):
            reduced = run_sharded(
                config,
                batches,
                source,
                name,
                shards,
                faults=plan,
                fault_policy=policy,
            )
            assert [v.tobytes() for v in reduced.vectors] == ref_bytes, (
                shards,
                name,
            )
            assert reduced.statuses == ref_statuses


@pytest.mark.parametrize("seed", range(4))
def test_crashed_shard_is_redispatched_before_the_tree_completes(seed):
    """A shard crash re-dispatches that shard's sub-stream; the fold then
    completes with the replacement partials, byte-identical to a clean
    run, and the re-dispatch is visible in the shard-local trace."""
    config, batches = random_setup(seed)
    source = make_source(seed, config.vector_elements)

    clean = run_sharded(config, batches, source, "recursive_doubling", 4)
    crashed = ShardedRunner(
        config=config,
        operator="sum",
        max_workers=1,
        trace=True,
        reduction="recursive_doubling",
        num_shards=4,
        link=LINK,
        # Crash the first *active* position: tiny streams may touch a
        # single piece, and crash plans address active shard positions.
        faults=FaultPlan(seed=seed, crash_shards={0}, crash_attempts=1),
    ).run_reduced(batches, source)

    assert [v.tobytes() for v in crashed.vectors] == [
        v.tobytes() for v in clean.vectors
    ]
    assert crashed.statuses == clean.statuses
    redispatches = [
        event
        for result in crashed.shard_results
        if result.events
        for event in result.events
        if event.kind == "shard_redispatched"
    ]
    assert redispatches, "crash never surfaced in the trace"


@pytest.mark.parametrize("seed", range(4))
def test_serial_and_process_paths_ship_identical_reduction_events(seed):
    """Satellite fix: the serial fallback (max_workers=1) must emit the
    same comm event stream as the process-pool path — the events are
    synthesized from deterministic partials, so the execution vehicle
    may not leak into the trace."""
    config, batches = random_setup(seed)
    source = make_source(seed, config.vector_elements)

    def run(workers):
        runner = ShardedRunner(
            config=config,
            operator="sum",
            max_workers=workers,
            trace=True,
            reduction="reduce_scatter",
            num_shards=4,
            link=LINK,
        )
        return runner.run_reduced(batches, source)

    serial = run(1)
    pooled = run(2)

    assert [v.tobytes() for v in serial.vectors] == [
        v.tobytes() for v in pooled.vectors
    ]
    assert serial.events == pooled.events
    assert serial.events, "reduction emitted no comm events"
    kinds = {event.kind for event in serial.events}
    assert kinds == {SHARD_MSG_SENT, SHARD_REDUCED}
    # Shard-local streams must match too: same sub-batches, same engine,
    # same physics, regardless of which process hosted them.
    assert len(serial.shard_results) == len(pooled.shard_results)
    for a, b in zip(serial.shard_results, pooled.shard_results):
        assert a.events == b.events


@pytest.mark.parametrize("seed", range(4))
def test_resilience_hooks_idle_are_byte_and_cycle_identical(seed):
    """Installing the resilience machinery without any fault to react to
    must be a no-op: an empty FaultPlan under the graceful policy, with
    hedging armed, produces the same bytes, statuses, comm cycles, and
    makespan as the plain run — and issues zero hedges."""
    from repro.resilience import HedgePolicy

    config, batches = random_setup(seed)
    source = make_source(seed, config.vector_elements)

    for name in sorted(SCHEDULES):
        plain = run_sharded(config, batches, source, name, 4)
        armed = run_sharded(
            config,
            batches,
            source,
            name,
            4,
            faults=FaultPlan(seed=seed),
            fault_policy=FaultPolicy.graceful(),
            hedge=HedgePolicy(),
        )
        assert [v.tobytes() for v in armed.vectors] == [
            v.tobytes() for v in plain.vectors
        ], name
        assert armed.statuses == plain.statuses
        assert armed.comm_pe_cycles == plain.comm_pe_cycles
        assert armed.makespan_pe_cycles == plain.makespan_pe_cycles
        assert armed.hedges.issued == 0
