"""Differential harness: FAFNIR vs a CPU oracle across randomized configs.

Two independent implementations of the same contract are compared on
randomly drawn machines and workloads:

* **functional** — the tree's per-query outputs must equal a plain NumPy
  reduction of the same table rows, whatever the tree arity, rank count,
  rank→leaf wiring permutation, batch shape, or dedup setting;
* **behavioural** — the scalar kernel, the vectorized kernel, and the
  level-synchronous SoA sweep must emit *identical* event streams (same
  kinds, cycles, PEs, levels, args, in the same order) and identical
  per-level event counts, recorded through in-memory sinks.
  Byte-identical outputs could still hide divergent internal
  scheduling; stream equality cannot.

The three-way engine comparison runs plain, traced (object and columnar
sinks), and fault-injected (latency degradation + read timeouts under
the degrade policy) — the SoA sweep must be indistinguishable from the
object walk in every observable, not just on the happy path.

Configs are drawn from a seeded RNG so every run covers the same
machines (failures reproduce) while spanning the space far wider than
hand-written cases would.
"""

import numpy as np
import pytest

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.core.operators import MAX, MEAN, SUM
from repro.faults import FaultPlan
from repro.obs import ColumnarSink, InMemorySink, Tracer, per_level_counts

UNIVERSE = 512


def random_setup(seed):
    """Draw one machine + workload: (config, rank_order, queries, dedup)."""
    rng = np.random.default_rng(seed)
    leaves = int(rng.choice([2, 4, 8]))
    ranks_per_leaf = int(rng.choice([1, 2, 4]))
    total_ranks = leaves * ranks_per_leaf
    max_query_len = int(rng.integers(2, 9))
    batch_size = int(rng.integers(2, 17))
    config = FafnirConfig(
        total_ranks=total_ranks,
        ranks_per_leaf_pe=ranks_per_leaf,
        batch_size=batch_size,
        max_query_len=max_query_len,
        vector_bytes=int(rng.choice([32, 64, 128])),
    )
    rank_order = (
        [int(r) for r in rng.permutation(total_ranks)]
        if rng.random() < 0.5
        else None
    )
    num_queries = int(rng.integers(1, batch_size + 1))
    queries = [
        rng.choice(
            UNIVERSE, size=rng.integers(1, max_query_len + 1), replace=False
        ).tolist()
        for _ in range(num_queries)
    ]
    deduplicate = bool(rng.random() < 0.7)
    return config, rank_order, queries, deduplicate


def make_table(config, seed):
    rng = np.random.default_rng(10_000 + seed)
    return {
        index: rng.standard_normal(config.vector_elements)
        for index in range(UNIVERSE)
    }


def cpu_reduce(operator, table, query):
    """The oracle: reduce the same rows with plain NumPy."""
    rows = [np.asarray(table[index], dtype=np.float64) for index in sorted(query)]
    return operator.reduce_many(rows)


SEEDS = range(12)


@pytest.mark.parametrize("seed", SEEDS)
def test_fafnir_matches_cpu_reduction(seed):
    config, rank_order, queries, deduplicate = random_setup(seed)
    table = make_table(config, seed)
    engine = FafnirEngine(config=config, rank_order=rank_order)
    result = engine.run_batch(
        queries, table.__getitem__, deduplicate=deduplicate
    )
    assert len(result.vectors) == len(queries)
    for query, vector in zip(queries, result.vectors):
        expected = cpu_reduce(SUM, table, query)
        np.testing.assert_allclose(vector, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("operator", [SUM, MAX, MEAN], ids=lambda o: o.name)
def test_fafnir_matches_cpu_reduction_all_operators(operator):
    config, rank_order, queries, deduplicate = random_setup(99)
    table = make_table(config, 99)
    engine = FafnirEngine(
        config=config, operator=operator, rank_order=rank_order
    )
    result = engine.run_batch(
        queries, table.__getitem__, deduplicate=deduplicate
    )
    for query, vector in zip(queries, result.vectors):
        expected = cpu_reduce(operator, table, query)
        np.testing.assert_allclose(vector, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("seed", SEEDS)
def test_scalar_and_vector_kernels_emit_identical_event_streams(seed):
    config, rank_order, queries, deduplicate = random_setup(seed)
    table = make_table(config, seed)

    def run(kernel):
        sink = InMemorySink()
        engine = FafnirEngine(
            config=config,
            kernel=kernel,
            rank_order=rank_order,
            tracer=Tracer([sink]),
        )
        result = engine.run_batch(
            queries, table.__getitem__, deduplicate=deduplicate
        )
        return result, sink.events

    scalar_result, scalar_events = run("scalar")
    vector_result, vector_events = run("vector")

    # Same physics, bit for bit.
    for a, b in zip(scalar_result.vectors, vector_result.vectors):
        assert a.tobytes() == b.tobytes()
    assert (
        scalar_result.stats.latency_pe_cycles
        == vector_result.stats.latency_pe_cycles
    )
    assert scalar_result.stats.per_pe_work == vector_result.stats.per_pe_work

    # Same observable behaviour, event for event.
    assert scalar_events == vector_events


def _assert_runs_identical(reference, candidate):
    """Every observable of two engine runs must match bit for bit."""
    ref_result, ref_events = reference
    cand_result, cand_events = candidate
    assert len(ref_result.vectors) == len(cand_result.vectors)
    for a, b in zip(ref_result.vectors, cand_result.vectors):
        assert a.tobytes() == b.tobytes()
    assert (
        ref_result.stats.latency_pe_cycles
        == cand_result.stats.latency_pe_cycles
    )
    assert ref_result.stats.per_pe_work == cand_result.stats.per_pe_work
    assert ref_result.query_statuses == cand_result.query_statuses
    assert ref_events == cand_events
    # Per-level counts are implied by stream equality, but assert them
    # explicitly: if streams ever diverge, the level histogram localizes
    # which tree stage drifted.
    assert per_level_counts(ref_events) == per_level_counts(cand_events)


@pytest.mark.parametrize("seed", SEEDS)
def test_three_engine_paths_are_indistinguishable(seed):
    """scalar kernel == vector kernel == SoA sweep, on every observable.

    The SoA sweep is a from-scratch rewrite of the tree walk (bitset
    pools instead of frozensets, level-synchronous batches instead of a
    per-PE object loop), so nothing is shared with the object paths
    except the contract — making stream equality here the strongest
    evidence the rewrite preserved the machine's semantics.
    """
    config, rank_order, queries, deduplicate = random_setup(seed)
    table = make_table(config, seed)

    def run(kernel, engine):
        sink = InMemorySink()
        instance = FafnirEngine(
            config=config,
            kernel=kernel,
            engine=engine,
            rank_order=rank_order,
            tracer=Tracer([sink]),
        )
        result = instance.run_batch(
            queries, table.__getitem__, deduplicate=deduplicate
        )
        return result, sink.events

    scalar = run("scalar", "object")
    vector = run("vector", "object")
    soa = run("vector", "soa")

    _assert_runs_identical(scalar, vector)
    _assert_runs_identical(vector, soa)


@pytest.mark.parametrize("seed", SEEDS)
def test_soa_sweep_matches_object_walk_under_faults(seed):
    """Fault injection exercises retry/timeout paths the happy-path seeds
    never reach; the SoA sweep must replicate the object walk's behaviour
    there too — same degraded timings, same statuses, same streams."""
    config, rank_order, queries, deduplicate = random_setup(seed)
    table = make_table(config, seed)
    plan = FaultPlan(
        seed=seed,
        rank_latency_multipliers={1: 1.4},
        rank_timeout_probability={0: 0.15},
    )

    def run(engine):
        sink = InMemorySink()
        instance = FafnirEngine(
            config=config,
            engine=engine,
            rank_order=rank_order,
            faults=plan,
            tracer=Tracer([sink]),
        )
        result = instance.run_batch(
            queries, table.__getitem__, deduplicate=deduplicate
        )
        return result, sink.events

    _assert_runs_identical(run("object"), run("soa"))


@pytest.mark.parametrize("seed", SEEDS)
def test_columnar_sink_materializes_object_stream(seed):
    """The packed columnar ring buffer and the object in-memory sink are
    two encodings of one stream: recording an SoA run through both at
    once must materialize to ``==``-equal event lists."""
    config, rank_order, queries, deduplicate = random_setup(seed)
    table = make_table(config, seed)
    columnar = ColumnarSink()
    objects = InMemorySink()
    engine = FafnirEngine(
        config=config,
        engine="soa",
        rank_order=rank_order,
        tracer=Tracer([columnar, objects]),
    )
    engine.run_batch(queries, table.__getitem__, deduplicate=deduplicate)
    assert objects.events, "run recorded nothing"
    assert len(columnar) == len(objects.events)
    assert columnar.to_events() == objects.events


@pytest.mark.parametrize("seed", SEEDS)
def test_rank_order_permutation_is_functionally_invisible(seed):
    """Rewiring ranks to different leaves changes timing at most — every
    query's reduced vector must be unchanged."""
    config, _, queries, deduplicate = random_setup(seed)
    table = make_table(config, seed)
    rng = np.random.default_rng(777 + seed)
    permuted = [int(r) for r in rng.permutation(config.total_ranks)]

    identity = FafnirEngine(config=config).run_batch(
        queries, table.__getitem__, deduplicate=deduplicate
    )
    rewired = FafnirEngine(config=config, rank_order=permuted).run_batch(
        queries, table.__getitem__, deduplicate=deduplicate
    )
    for a, b in zip(identity.vectors, rewired.vectors):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("seed", SEEDS)
def test_dedup_ablation_is_functionally_invisible(seed):
    """Redundant-access elimination is a performance mechanism: outputs
    with and without it must agree on every random machine."""
    config, rank_order, queries, _ = random_setup(seed)
    table = make_table(config, seed)

    def run(deduplicate):
        engine = FafnirEngine(config=config, rank_order=rank_order)
        return engine.run_batch(
            queries, table.__getitem__, deduplicate=deduplicate
        )

    with_dedup = run(True)
    without = run(False)
    for a, b in zip(with_dedup.vectors, without.vectors):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)
    # The ablation can only read more, never less.
    assert (
        without.stats.memory.reads >= with_dedup.stats.memory.reads
    )
