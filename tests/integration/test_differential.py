"""Differential harness: FAFNIR vs a CPU oracle across randomized configs.

Two independent implementations of the same contract are compared on
randomly drawn machines and workloads:

* **functional** — the tree's per-query outputs must equal a plain NumPy
  reduction of the same table rows, whatever the tree arity, rank count,
  rank→leaf wiring permutation, batch shape, or dedup setting;
* **behavioural** — the scalar and vectorized PE kernels must emit
  *identical* event streams (same kinds, cycles, PEs, levels, args, in
  the same order), recorded through in-memory sinks.  Byte-identical
  outputs could still hide divergent internal scheduling; stream
  equality cannot.

Configs are drawn from a seeded RNG so every run covers the same
machines (failures reproduce) while spanning the space far wider than
hand-written cases would.
"""

import numpy as np
import pytest

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.core.operators import MAX, MEAN, SUM
from repro.obs import InMemorySink, Tracer

UNIVERSE = 512


def random_setup(seed):
    """Draw one machine + workload: (config, rank_order, queries, dedup)."""
    rng = np.random.default_rng(seed)
    leaves = int(rng.choice([2, 4, 8]))
    ranks_per_leaf = int(rng.choice([1, 2, 4]))
    total_ranks = leaves * ranks_per_leaf
    max_query_len = int(rng.integers(2, 9))
    batch_size = int(rng.integers(2, 17))
    config = FafnirConfig(
        total_ranks=total_ranks,
        ranks_per_leaf_pe=ranks_per_leaf,
        batch_size=batch_size,
        max_query_len=max_query_len,
        vector_bytes=int(rng.choice([32, 64, 128])),
    )
    rank_order = (
        [int(r) for r in rng.permutation(total_ranks)]
        if rng.random() < 0.5
        else None
    )
    num_queries = int(rng.integers(1, batch_size + 1))
    queries = [
        rng.choice(
            UNIVERSE, size=rng.integers(1, max_query_len + 1), replace=False
        ).tolist()
        for _ in range(num_queries)
    ]
    deduplicate = bool(rng.random() < 0.7)
    return config, rank_order, queries, deduplicate


def make_table(config, seed):
    rng = np.random.default_rng(10_000 + seed)
    return {
        index: rng.standard_normal(config.vector_elements)
        for index in range(UNIVERSE)
    }


def cpu_reduce(operator, table, query):
    """The oracle: reduce the same rows with plain NumPy."""
    rows = [np.asarray(table[index], dtype=np.float64) for index in sorted(query)]
    return operator.reduce_many(rows)


SEEDS = range(12)


@pytest.mark.parametrize("seed", SEEDS)
def test_fafnir_matches_cpu_reduction(seed):
    config, rank_order, queries, deduplicate = random_setup(seed)
    table = make_table(config, seed)
    engine = FafnirEngine(config=config, rank_order=rank_order)
    result = engine.run_batch(
        queries, table.__getitem__, deduplicate=deduplicate
    )
    assert len(result.vectors) == len(queries)
    for query, vector in zip(queries, result.vectors):
        expected = cpu_reduce(SUM, table, query)
        np.testing.assert_allclose(vector, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("operator", [SUM, MAX, MEAN], ids=lambda o: o.name)
def test_fafnir_matches_cpu_reduction_all_operators(operator):
    config, rank_order, queries, deduplicate = random_setup(99)
    table = make_table(config, 99)
    engine = FafnirEngine(
        config=config, operator=operator, rank_order=rank_order
    )
    result = engine.run_batch(
        queries, table.__getitem__, deduplicate=deduplicate
    )
    for query, vector in zip(queries, result.vectors):
        expected = cpu_reduce(operator, table, query)
        np.testing.assert_allclose(vector, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("seed", SEEDS)
def test_scalar_and_vector_kernels_emit_identical_event_streams(seed):
    config, rank_order, queries, deduplicate = random_setup(seed)
    table = make_table(config, seed)

    def run(kernel):
        sink = InMemorySink()
        engine = FafnirEngine(
            config=config,
            kernel=kernel,
            rank_order=rank_order,
            tracer=Tracer([sink]),
        )
        result = engine.run_batch(
            queries, table.__getitem__, deduplicate=deduplicate
        )
        return result, sink.events

    scalar_result, scalar_events = run("scalar")
    vector_result, vector_events = run("vector")

    # Same physics, bit for bit.
    for a, b in zip(scalar_result.vectors, vector_result.vectors):
        assert a.tobytes() == b.tobytes()
    assert (
        scalar_result.stats.latency_pe_cycles
        == vector_result.stats.latency_pe_cycles
    )
    assert scalar_result.stats.per_pe_work == vector_result.stats.per_pe_work

    # Same observable behaviour, event for event.
    assert scalar_events == vector_events


@pytest.mark.parametrize("seed", SEEDS)
def test_rank_order_permutation_is_functionally_invisible(seed):
    """Rewiring ranks to different leaves changes timing at most — every
    query's reduced vector must be unchanged."""
    config, _, queries, deduplicate = random_setup(seed)
    table = make_table(config, seed)
    rng = np.random.default_rng(777 + seed)
    permuted = [int(r) for r in rng.permutation(config.total_ranks)]

    identity = FafnirEngine(config=config).run_batch(
        queries, table.__getitem__, deduplicate=deduplicate
    )
    rewired = FafnirEngine(config=config, rank_order=permuted).run_batch(
        queries, table.__getitem__, deduplicate=deduplicate
    )
    for a, b in zip(identity.vectors, rewired.vectors):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("seed", SEEDS)
def test_dedup_ablation_is_functionally_invisible(seed):
    """Redundant-access elimination is a performance mechanism: outputs
    with and without it must agree on every random machine."""
    config, rank_order, queries, _ = random_setup(seed)
    table = make_table(config, seed)

    def run(deduplicate):
        engine = FafnirEngine(config=config, rank_order=rank_order)
        return engine.run_batch(
            queries, table.__getitem__, deduplicate=deduplicate
        )

    with_dedup = run(True)
    without = run(False)
    for a, b in zip(with_dedup.vectors, without.vectors):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)
    # The ablation can only read more, never less.
    assert (
        without.stats.memory.reads >= with_dedup.stats.memory.reads
    )
