"""Cross-module integration tests: the full stacks working together."""

import numpy as np
import pytest

from repro.baselines import (
    CentaurGatherEngine,
    CpuGatherEngine,
    FafnirGatherEngine,
    RecNmpGatherEngine,
    TensorDimmGatherEngine,
)
from repro.baselines.twostep import TwoStepSpmvEngine
from repro.core import FafnirAccelerator, FafnirConfig, InteractiveEngine
from repro.memory import hbm2_stack
from repro.sparse import laplacian_2d, rmat
from repro.spmv import FafnirSpmvEngine, jacobi_solve, pagerank
from repro.workloads import (
    EmbeddingTableSet,
    InferenceModel,
    QueryGenerator,
    fig14_suite,
)


@pytest.fixture(scope="module")
def tables():
    return EmbeddingTableSet(num_tables=32, rows_per_table=50_000, seed=10)


class TestEmbeddingStack:
    def test_five_engines_agree_on_one_batch(self, tables):
        batch = QueryGenerator.paper_calibrated(tables, seed=11).batch(8)
        engines = [
            CpuGatherEngine(),
            TensorDimmGatherEngine(),
            CentaurGatherEngine(),
            RecNmpGatherEngine(with_cache=True),
            FafnirGatherEngine(),
        ]
        outputs = [engine.lookup(batch, tables.vector).vectors for engine in engines]
        for other in outputs[1:]:
            for a, b in zip(outputs[0], other):
                assert np.allclose(a, b)

    def test_interactive_and_batch_modes_agree(self, tables):
        query = QueryGenerator.paper_calibrated(tables, seed=12).query()
        batch_result = FafnirAccelerator().lookup(tables.vector, [query])
        interactive = InteractiveEngine().lookup_one(query, tables.vector)
        assert np.allclose(batch_result.vectors[0], interactive.vector)

    def test_full_inference_pipeline(self, tables):
        """Workload generator → engine → inference model, end to end."""
        batch = QueryGenerator.paper_calibrated(tables, seed=13).batch(64)
        model = InferenceModel()
        engine = FafnirGatherEngine()
        result = engine.lookup(batch, tables.vector)
        breakdown = model.breakdown(result.total_ns / 1e6)
        assert breakdown.total_ms > breakdown.fc_ms
        assert result.dram_reads < sum(len(set(q)) for q in batch)

    def test_fafnir_on_hbm_full_stack(self, tables):
        engine = FafnirGatherEngine(
            config=FafnirConfig(), memory_config=hbm2_stack()
        )
        batch = QueryGenerator.paper_calibrated(tables, seed=14).batch(16)
        assert engine.oracle_check(batch, tables.vector)


class TestSpmvStack:
    def test_fig14_suite_runs_on_both_engines(self):
        fafnir = FafnirSpmvEngine()
        twostep = TwoStepSpmvEngine()
        rng = np.random.default_rng(15)
        for workload in fig14_suite()[:4]:  # keep runtime modest
            matrix = workload.matrix()
            x = rng.normal(size=matrix.shape[1])
            f = fafnir.multiply(matrix, x)
            t = twostep.multiply(matrix, x)
            assert np.allclose(f.y, t.y)
            assert np.allclose(f.y, matrix.matvec(x))

    def test_pagerank_agrees_across_engines(self):
        graph = rmat(9, edge_factor=4, seed=16)
        fafnir_rank = pagerank(graph, FafnirSpmvEngine(), tolerance=1e-10)
        twostep_rank = pagerank(graph, TwoStepSpmvEngine(), tolerance=1e-10)
        assert np.allclose(fafnir_rank.values, twostep_rank.values)
        assert fafnir_rank.total_ns < twostep_rank.total_ns

    def test_solver_feeds_back_into_matvec(self):
        matrix = laplacian_2d(20)
        # Regularise for Jacobi convergence.
        dense = matrix.to_dense() + 2.0 * np.eye(matrix.shape[0])
        from repro.sparse import LilMatrix

        system = LilMatrix.from_dense(dense)
        rhs = np.random.default_rng(17).normal(size=system.shape[0])
        solution = jacobi_solve(system, rhs, FafnirSpmvEngine(), tolerance=1e-10)
        assert solution.converged
        assert np.linalg.norm(system.matvec(solution.values) - rhs) < 1e-8


class TestGenericityClaim:
    def test_same_config_serves_both_domains(self):
        """§IV contribution 4: one hardware configuration runs embedding
        lookup and SpMV without modification."""
        config = FafnirConfig()
        embedding_engine = FafnirGatherEngine(config=config)
        spmv_engine = FafnirSpmvEngine(config=config)

        tables = EmbeddingTableSet(rows_per_table=10_000, seed=18)
        batch = QueryGenerator.paper_calibrated(tables, seed=18).batch(8)
        assert embedding_engine.oracle_check(batch, tables.vector)

        matrix = laplacian_2d(30)
        x = np.ones(matrix.shape[1])
        assert spmv_engine.oracle_check(matrix, x)
