"""ColumnarSink: packed recording must materialize the exact object stream.

The columnar sink's whole contract is equivalence — a run traced through
packed typed-array columns must read back as precisely the TraceEvent
list an :class:`InMemorySink` would have captured, bools and all.  These
tests pin that equivalence on real engine runs (including fault runs,
whose events travel the object side table) plus the ring-overwrite and
slab-write semantics the engine-level tests don't reach.
"""

import numpy as np
import pytest

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.faults.plan import FaultPlan
from repro.obs import (
    ColumnarSink,
    InMemorySink,
    MEM_READ_COMPLETE,
    PE_REDUCE,
    QUERY_COMPLETE,
    TraceEvent,
    Tracer,
)
from repro.obs.events import KIND_CODES, PE_FORWARD

UNIVERSE = 128


def _table(config, seed=0):
    rng = np.random.default_rng(seed)
    return {
        index: rng.standard_normal(config.vector_elements)
        for index in range(UNIVERSE)
    }


def _queries(count, length, seed=1):
    rng = np.random.default_rng(seed)
    return [
        rng.choice(UNIVERSE, size=length, replace=False).tolist()
        for _ in range(count)
    ]


@pytest.fixture
def config():
    return FafnirConfig(
        total_ranks=8, vector_bytes=64, batch_size=8, max_query_len=8
    )


class TestMaterializationEquivalence:
    def test_engine_run_matches_inmemory_capture(self, config):
        table = _table(config)
        queries = _queries(8, 4)
        object_sink = InMemorySink()
        FafnirEngine(config=config, tracer=Tracer([object_sink])).run_batch(
            queries, table.__getitem__
        )
        columnar = ColumnarSink()
        FafnirEngine(config=config, tracer=Tracer([columnar])).run_batch(
            queries, table.__getitem__
        )
        assert columnar.to_events() == object_sink.events

    def test_mixed_sinks_fall_back_to_object_path(self, config):
        # One object sink alongside the columnar one forces the tracer's
        # fallback; both must still capture identical streams.
        table = _table(config)
        queries = _queries(6, 4)
        columnar = ColumnarSink()
        object_sink = InMemorySink()
        tracer = Tracer([columnar, object_sink])
        assert not tracer.all_packed
        FafnirEngine(config=config, tracer=tracer).run_batch(
            queries, table.__getitem__
        )
        assert columnar.to_events() == object_sink.events

    def test_fault_run_matches_inmemory_capture(self, config):
        table = _table(config)
        queries = _queries(8, 4)
        plan = lambda: FaultPlan(
            seed=7,
            rank_latency_multipliers={1: 1.5},
            rank_timeout_probability={2: 0.2},
        )
        object_sink = InMemorySink()
        FafnirEngine(
            config=config, tracer=Tracer([object_sink]), faults=plan()
        ).run_batch(queries, table.__getitem__)
        columnar = ColumnarSink()
        FafnirEngine(
            config=config, tracer=Tracer([columnar]), faults=plan()
        ).run_batch(queries, table.__getitem__)
        assert columnar.to_events() == object_sink.events

    def test_row_hit_materializes_as_bool(self, config):
        table = _table(config)
        columnar = ColumnarSink()
        FafnirEngine(config=config, tracer=Tracer([columnar])).run_batch(
            _queries(4, 4), table.__getitem__
        )
        completes = [
            e for e in columnar.to_events() if e.kind == MEM_READ_COMPLETE
        ]
        assert completes
        assert all(isinstance(e.args["row_hit"], bool) for e in completes)

    def test_events_property_matches_to_events(self, config):
        columnar = ColumnarSink()
        FafnirEngine(config=config, tracer=Tracer([columnar])).run_batch(
            _queries(4, 4), _table(config).__getitem__
        )
        assert columnar.events == columnar.to_events()


class TestRingSemantics:
    def test_overwrite_keeps_most_recent_window(self):
        sink = ColumnarSink(capacity=4)
        tracer = Tracer([sink])
        for cycle in range(10):
            tracer.emit_packed(PE_REDUCE, cycle, pe=1, level=0, args=(28,))
        assert len(sink) == 4
        assert sink.recorded == 10
        assert sink.dropped == 6
        assert [e.cycle for e in sink.to_events()] == [6, 7, 8, 9]

    def test_overwrite_evicts_side_table_objects(self):
        sink = ColumnarSink(capacity=3)
        tracer = Tracer([sink])
        tracer.emit(TraceEvent("batch_start", cycle=0))
        for cycle in range(1, 6):
            tracer.emit_packed(PE_FORWARD, cycle, pe=0, level=0, args=(14,))
        # The object slot was overwritten; no leak, and the window reads.
        assert not sink._objects
        assert [e.cycle for e in sink.to_events()] == [3, 4, 5]

    def test_clear_resets(self):
        sink = ColumnarSink(capacity=8)
        tracer = Tracer([sink])
        tracer.emit_packed(QUERY_COMPLETE, 5, args=(0, 4))
        sink.clear()
        assert len(sink) == 0
        assert sink.to_events() == []


class TestSlabWrites:
    def test_record_rows_preserves_interleaved_order(self):
        sink = ColumnarSink(capacity=16)
        tracer = Tracer([sink])
        codes = np.array(
            [KIND_CODES[PE_REDUCE], KIND_CODES[PE_FORWARD], KIND_CODES[PE_REDUCE]],
            dtype=np.int16,
        )
        cycles = np.array([10, 11, 12], dtype=np.int64)
        args = np.array([28, 14, 28], dtype=np.int64)
        tracer.emit_rows(codes, cycles, pe=3, level=1, arg0=args)
        events = sink.to_events()
        assert [e.kind for e in events] == [PE_REDUCE, PE_FORWARD, PE_REDUCE]
        assert [e.cycle for e in events] == [10, 11, 12]
        assert [e.args for e in events] == [
            {"dur_cycles": 28},
            {"dur_cycles": 14},
            {"dur_cycles": 28},
        ]
        assert all(e.pe == 3 and e.level == 1 for e in events)

    def test_record_rows_wraps_ring(self):
        sink = ColumnarSink(capacity=4)
        tracer = Tracer([sink])
        codes = np.full(10, KIND_CODES[PE_REDUCE], dtype=np.int16)
        cycles = np.arange(10, dtype=np.int64)
        tracer.emit_rows(codes, cycles, pe=0, level=0, arg0=cycles)
        assert sink.dropped == 6
        assert [e.cycle for e in sink.to_events()] == [6, 7, 8, 9]

    def test_emit_rows_object_fallback_matches_packed(self):
        codes = np.array(
            [KIND_CODES[PE_FORWARD], KIND_CODES[PE_REDUCE]], dtype=np.int16
        )
        cycles = np.array([4, 5], dtype=np.int64)
        args = np.array([14, 28], dtype=np.int64)
        packed_sink = ColumnarSink()
        Tracer([packed_sink]).emit_rows(codes, cycles, pe=2, level=1, arg0=args)
        object_sink = InMemorySink()
        Tracer([object_sink]).emit_rows(codes, cycles, pe=2, level=1, arg0=args)
        assert packed_sink.to_events() == object_sink.events


class TestTracerCapability:
    def test_all_packed_flag(self):
        assert Tracer([ColumnarSink()]).all_packed
        assert not Tracer([InMemorySink()]).all_packed
        assert not Tracer([]).all_packed

    def test_add_sink_updates_flag(self):
        tracer = Tracer([])
        tracer.add_sink(ColumnarSink())
        assert tracer.enabled and tracer.all_packed
        tracer.add_sink(InMemorySink())
        assert tracer.enabled and not tracer.all_packed
