"""Unit tests for the trace-event vocabulary."""

import pickle

import pytest

from repro.obs import (
    CLOCK_DRAM,
    CLOCK_PE,
    EVENT_KINDS,
    MEM_READ_COMPLETE,
    PE_REDUCE,
    TraceEvent,
)


class TestTraceEvent:
    def test_minimal_event(self):
        event = TraceEvent(PE_REDUCE, cycle=7)
        assert event.kind == PE_REDUCE
        assert event.cycle == 7
        assert event.clock == CLOCK_PE
        assert event.pe is None and event.level is None and event.rank is None
        assert event.args == {}

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            TraceEvent("made_up_kind", cycle=0)

    def test_rejects_unknown_clock(self):
        with pytest.raises(ValueError, match="unknown clock"):
            TraceEvent(PE_REDUCE, cycle=0, clock="gpu")

    def test_rejects_negative_cycle(self):
        with pytest.raises(ValueError, match="non-negative"):
            TraceEvent(PE_REDUCE, cycle=-1)

    def test_every_kind_constructs(self):
        for kind in EVENT_KINDS:
            assert TraceEvent(kind, cycle=0).kind == kind

    def test_equality_is_structural(self):
        a = TraceEvent(PE_REDUCE, cycle=3, pe=1, level=0, args={"d": 2})
        b = TraceEvent(PE_REDUCE, cycle=3, pe=1, level=0, args={"d": 2})
        assert a == b
        assert a != TraceEvent(PE_REDUCE, cycle=4, pe=1, level=0, args={"d": 2})

    def test_frozen(self):
        event = TraceEvent(PE_REDUCE, cycle=0)
        with pytest.raises(AttributeError):
            event.cycle = 5

    def test_picklable(self):
        event = TraceEvent(
            MEM_READ_COMPLETE,
            cycle=90,
            clock=CLOCK_DRAM,
            rank=3,
            args={"bytes": 64, "start_cycle": 10},
        )
        assert pickle.loads(pickle.dumps(event)) == event


class TestDictRoundTrip:
    def test_to_dict_is_compact(self):
        event = TraceEvent(PE_REDUCE, cycle=5)
        assert event.to_dict() == {"kind": PE_REDUCE, "cycle": 5}

    def test_to_dict_keeps_set_fields(self):
        event = TraceEvent(
            MEM_READ_COMPLETE, cycle=8, clock=CLOCK_DRAM, rank=2, args={"b": 1}
        )
        record = event.to_dict()
        assert record["clock"] == CLOCK_DRAM
        assert record["rank"] == 2
        assert record["args"] == {"b": 1}
        assert "pe" not in record and "level" not in record

    def test_round_trip_every_kind(self):
        for kind in EVENT_KINDS:
            event = TraceEvent(kind, cycle=11, pe=4, level=2, args={"x": 1})
            assert TraceEvent.from_dict(event.to_dict()) == event
