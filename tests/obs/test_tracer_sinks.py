"""Unit tests for the tracer and the three sinks."""

import io
import json

import pytest

from repro.clocks import DRAM_CLOCK, PE_CLOCK
from repro.obs import (
    CLOCK_DRAM,
    ChromeTraceSink,
    FIFO_ENQUEUE,
    InMemorySink,
    JsonlSink,
    LEAF_INJECT,
    MEM_READ_COMPLETE,
    NULL_TRACER,
    PE_REDUCE,
    QUERY_COMPLETE,
    TraceEvent,
    Tracer,
    chrome_trace_json,
)


def _sample_events():
    return [
        TraceEvent(
            MEM_READ_COMPLETE,
            cycle=120,
            clock=CLOCK_DRAM,
            rank=1,
            args={"bytes": 64, "start_cycle": 100, "row_hit": True, "bursts": 8},
        ),
        TraceEvent(LEAF_INJECT, cycle=30, pe=0, level=0, rank=1, args={"index": 7}),
        TraceEvent(
            FIFO_ENQUEUE, cycle=30, pe=0, level=0, args={"fifo": 1, "depth": 3}
        ),
        TraceEvent(PE_REDUCE, cycle=40, pe=0, level=0, args={"dur_cycles": 4}),
        TraceEvent(QUERY_COMPLETE, cycle=55, args={"query": 0, "terms": 2}),
    ]


class TestTracer:
    def test_disabled_without_sinks(self):
        assert not Tracer().enabled
        assert not Tracer([]).enabled

    def test_enabled_with_sink(self):
        assert Tracer([InMemorySink()]).enabled

    def test_add_sink_enables(self):
        tracer = Tracer()
        tracer.add_sink(InMemorySink())
        assert tracer.enabled

    def test_fans_out_to_all_sinks(self):
        a, b = InMemorySink(), InMemorySink()
        tracer = Tracer([a, b])
        event = TraceEvent(PE_REDUCE, cycle=1)
        tracer.emit(event)
        assert a.events == [event]
        assert b.events == [event]

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer([JsonlSink(str(path))]) as tracer:
            tracer.emit(TraceEvent(PE_REDUCE, cycle=1))
        assert path.read_text().strip()

    def test_null_tracer_is_disabled_and_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit(TraceEvent(PE_REDUCE, cycle=1))  # no-op, no error

    def test_null_tracer_refuses_sinks(self):
        with pytest.raises(RuntimeError, match="shared disabled tracer"):
            NULL_TRACER.add_sink(InMemorySink())


class TestInMemorySink:
    def test_records_in_order(self):
        sink = InMemorySink()
        events = _sample_events()
        for event in events:
            sink.record(event)
        assert sink.events == events
        assert len(sink) == len(events)
        sink.clear()
        assert not sink.events


class TestJsonlSink:
    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        events = _sample_events()
        for event in events:
            sink.record(event)
        sink.close()
        assert JsonlSink.load(str(path)) == events

    def test_writes_one_json_object_per_line(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        for event in _sample_events():
            sink.record(event)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == len(_sample_events())
        for line in lines:
            assert isinstance(json.loads(line), dict)


class TestChromeTraceJson:
    def test_structure(self):
        document = chrome_trace_json(_sample_events())
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert document["otherData"]["pe_clock_mhz"] == PE_CLOCK.freq_mhz
        assert document["otherData"]["dram_clock_mhz"] == DRAM_CLOCK.freq_mhz
        for record in document["traceEvents"]:
            assert record["ph"] in ("M", "X", "i", "C")
            if record["ph"] != "M":
                assert record["ts"] >= 0

    def test_memory_read_becomes_duration_slice(self):
        document = chrome_trace_json(_sample_events())
        slices = [
            r
            for r in document["traceEvents"]
            if r.get("name") == MEM_READ_COMPLETE and r["ph"] == "X"
        ]
        assert len(slices) == 1
        record = slices[0]
        start_us = DRAM_CLOCK.cycles_to_ns(100) / 1000.0
        end_us = DRAM_CLOCK.cycles_to_ns(120) / 1000.0
        assert record["ts"] == pytest.approx(start_us)
        assert record["dur"] == pytest.approx(end_us - start_us)
        assert record["pid"] == 2  # memory process

    def test_pe_op_becomes_duration_slice_on_pe_thread(self):
        document = chrome_trace_json(_sample_events())
        slices = [
            r
            for r in document["traceEvents"]
            if r.get("name") == PE_REDUCE and r["ph"] == "X"
        ]
        assert len(slices) == 1
        assert slices[0]["pid"] == 1  # tree process
        assert slices[0]["tid"] == 1  # PE 0 → tid 1
        assert slices[0]["dur"] == pytest.approx(
            PE_CLOCK.cycles_to_ns(4) / 1000.0
        )

    def test_fifo_enqueue_becomes_counter(self):
        document = chrome_trace_json(_sample_events())
        counters = [r for r in document["traceEvents"] if r["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "fifo_depth_pe0_side1"
        assert counters[0]["args"] == {"depth": 3}

    def test_metadata_names_processes_and_threads(self):
        document = chrome_trace_json(_sample_events())
        metadata = [r for r in document["traceEvents"] if r["ph"] == "M"]
        names = {
            (r["name"], r.get("args", {}).get("name")) for r in metadata
        }
        assert ("process_name", "fafnir tree") in names
        assert ("process_name", "memory system") in names
        assert ("thread_name", "PE0 (level 0)") in names
        assert ("thread_name", "rank 1") in names

    def test_json_serialisable(self):
        json.dumps(chrome_trace_json(_sample_events()))


class TestChromeTraceSink:
    def test_writes_valid_json_on_close(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path))
        for event in _sample_events():
            sink.record(event)
        sink.close()
        document = json.loads(path.read_text())
        assert document["traceEvents"]
