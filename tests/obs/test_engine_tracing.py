"""Acceptance tests: the event stream describes the same run as the stats.

The tracer and :class:`LookupStats` observe one simulation through two
independent paths — events at each emission site, counters aggregated by
the PEs and the memory system.  These tests pin the two together on real
engine runs, which is what makes a captured trace trustworthy evidence.
"""

import numpy as np
import pytest

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.core.sharding import ShardedRunner, shard_batches
from repro.core.stats import tree_utilization
from repro.obs import (
    BATCH_COMPLETE,
    BATCH_START,
    FIFO_ENQUEUE,
    FIFO_STALL,
    InMemorySink,
    LEAF_INJECT,
    MEM_READ_COMPLETE,
    MEM_READ_ISSUE,
    NULL_TRACER,
    PIPELINE_BATCH,
    QUERY_COMPLETE,
    Tracer,
    chrome_trace_json,
    per_level_counts,
)

UNIVERSE = 256


def _table(config, seed=0):
    rng = np.random.default_rng(seed)
    return {
        index: rng.standard_normal(config.vector_elements)
        for index in range(UNIVERSE)
    }


def _queries(count, length, seed=1):
    rng = np.random.default_rng(seed)
    return [
        rng.choice(UNIVERSE, size=length, replace=False).tolist()
        for _ in range(count)
    ]


@pytest.fixture
def config():
    return FafnirConfig(
        total_ranks=8, vector_bytes=64, batch_size=16, max_query_len=8
    )


@pytest.fixture
def traced_run(config):
    table = _table(config)
    queries = _queries(12, 4)
    sink = InMemorySink()
    engine = FafnirEngine(config=config, tracer=Tracer([sink]))
    result = engine.run_batch(queries, table.__getitem__)
    return engine, result, sink.events, queries


class TestStatsCrossCheck:
    def test_reduce_events_match_level_aggregation(self, traced_run):
        engine, result, events, _ = traced_run
        utilization = tree_utilization(
            engine.tree, result.stats, engine.memory.config.geometry
        )
        event_levels = per_level_counts(events)
        for level in utilization.levels:
            assert event_levels.get(level.level, 0) == level.work.reduces

    def test_memory_events_match_access_stats(self, traced_run):
        _, result, events, _ = traced_run
        issues = [e for e in events if e.kind == MEM_READ_ISSUE]
        completes = [e for e in events if e.kind == MEM_READ_COMPLETE]
        assert len(issues) == len(completes) == result.stats.memory.reads
        assert (
            sum(e.args["bytes"] for e in completes)
            == result.stats.memory.bytes_read
        )
        assert (
            max(e.cycle for e in completes) == result.stats.memory.finish_cycle
        )

    def test_query_completions_match_batch(self, traced_run):
        _, result, events, queries = traced_run
        completions = [e for e in events if e.kind == QUERY_COMPLETE]
        assert len(completions) == len(queries)
        assert {e.args["query"] for e in completions} == set(
            range(len(queries))
        )
        assert (
            max(e.cycle for e in completions)
            == result.stats.latency_pe_cycles
        )

    def test_leaf_injects_match_unique_reads(self, traced_run):
        _, result, events, _ = traced_run
        injects = [e for e in events if e.kind == LEAF_INJECT]
        assert len(injects) == result.stats.unique_reads
        enqueues = [e for e in events if e.kind == FIFO_ENQUEUE]
        assert len(enqueues) == len(injects)

    def test_no_dedup_injects_every_occurrence(self, config):
        table = _table(config)
        queries = _queries(12, 4)
        sink = InMemorySink()
        engine = FafnirEngine(config=config, tracer=Tracer([sink]))
        result = engine.run_batch(queries, table.__getitem__, deduplicate=False)
        injects = [e for e in sink.events if e.kind == LEAF_INJECT]
        assert len(injects) == result.stats.total_lookups

    def test_batch_bracketing_events(self, traced_run):
        _, result, events, _ = traced_run
        assert events[0].kind == BATCH_START
        assert events[-1].kind == BATCH_COMPLETE
        assert events[-1].cycle == result.stats.latency_pe_cycles


class TestFifoStall:
    def test_stall_emitted_past_buffer_capacity(self):
        # batch_size sets buffer_entries; 2 ranks funnel a whole batch's
        # messages into two FIFOs, so depth exceeds a small capacity.
        config = FafnirConfig(
            total_ranks=2, vector_bytes=64, batch_size=2, max_query_len=8
        )
        table = _table(config)
        rng = np.random.default_rng(3)
        queries = [
            rng.choice(UNIVERSE, size=8, replace=False).tolist()
            for _ in range(2)
        ]
        sink = InMemorySink()
        engine = FafnirEngine(config=config, tracer=Tracer([sink]))
        engine.run_batch(queries, table.__getitem__)
        stalls = [e for e in sink.events if e.kind == FIFO_STALL]
        assert stalls
        assert all(
            e.args["depth"] > config.buffer_entries for e in stalls
        )


class TestTracingIsObservationOnly:
    def test_untraced_engine_uses_null_tracer(self, config):
        engine = FafnirEngine(config=config)
        assert engine.tracer is NULL_TRACER
        assert not engine.tracer.enabled

    def test_traced_and_untraced_runs_identical(self, config):
        table = _table(config)
        queries = _queries(10, 4)
        traced = FafnirEngine(config=config, tracer=Tracer([InMemorySink()]))
        untraced = FafnirEngine(config=config)
        a = traced.run_batch(queries, table.__getitem__)
        b = untraced.run_batch(queries, table.__getitem__)
        assert all(
            x.tobytes() == y.tobytes() for x, y in zip(a.vectors, b.vectors)
        )
        assert a.stats.latency_pe_cycles == b.stats.latency_pe_cycles
        assert a.stats.per_pe_work == b.stats.per_pe_work

    def test_disabled_tracer_records_nothing(self, config):
        sink = InMemorySink()
        tracer = Tracer([])  # no sinks: disabled
        assert not tracer.enabled
        engine = FafnirEngine(config=config, tracer=tracer)
        engine.run_batch(_queries(4, 4), _table(config).__getitem__)
        assert not sink.events


class TestChromeExport:
    def test_engine_trace_exports_valid_chrome_json(self, traced_run):
        import json

        _, _, events, _ = traced_run
        document = chrome_trace_json(events)
        json.dumps(document)  # serialisable
        phases = {record["ph"] for record in document["traceEvents"]}
        assert {"M", "X", "i", "C"} <= phases
        non_meta = [r for r in document["traceEvents"] if r["ph"] != "M"]
        assert len(non_meta) == len(events)


class TestMultiBatchTracing:
    def test_run_batches_emits_pipeline_events(self, config):
        table = _table(config)
        batches = [_queries(6, 4, seed=s) for s in range(3)]
        sink = InMemorySink()
        engine = FafnirEngine(config=config, tracer=Tracer([sink]))
        multi = engine.run_batches(batches, table.__getitem__)
        pipeline_events = [
            e for e in sink.events if e.kind == PIPELINE_BATCH
        ]
        assert [e.args["batch"] for e in pipeline_events] == [0, 1, 2]
        assert [
            e.cycle for e in pipeline_events
        ] == multi.pipeline.batch_completion_cycles

    def test_sharded_runner_returns_event_streams(self, config):
        table = _table(config)
        batches = [_queries(4, 4, seed=s) for s in range(4)]
        shards = shard_batches(batches, 2)
        runner = ShardedRunner(config=config, max_workers=2, trace=True)
        results = runner.run(shards, table.__getitem__)
        assert len(results) == len(shards)
        for result in results:
            assert result.events
            kinds = {e.kind for e in result.events}
            assert QUERY_COMPLETE in kinds
            assert MEM_READ_COMPLETE in kinds

    def test_sharded_runner_untraced_has_no_events(self, config):
        table = _table(config)
        batches = [_queries(4, 4, seed=s) for s in range(2)]
        runner = ShardedRunner(config=config, max_workers=1)
        results = runner.run(shard_batches(batches, 2), table.__getitem__)
        assert all(result.events is None for result in results)
