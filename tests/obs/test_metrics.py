"""Unit tests for counters, gauges, histograms, and event-derived metrics."""

import pytest

from repro.obs import (
    CLOCK_DRAM,
    Counter,
    FIFO_ENQUEUE,
    Gauge,
    Histogram,
    MEM_READ_COMPLETE,
    MetricsRegistry,
    PE_FORWARD,
    PE_REDUCE,
    QUERY_COMPLETE,
    TraceEvent,
    metrics_from_events,
    per_level_counts,
)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_high_water(self):
        gauge = Gauge()
        for value in (2, 9, 4):
            gauge.set(value)
        assert gauge.value == 4
        assert gauge.high_water == 9


class TestHistogram:
    def test_empty(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0

    def test_percentiles_nearest_rank(self):
        histogram = Histogram()
        for value in range(1, 101):  # 1..100
            histogram.record(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(95) == 95
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        assert histogram.percentile(0) == 1  # smallest sample

    def test_single_sample(self):
        histogram = Histogram()
        histogram.record(42)
        for p in (0, 50, 99, 100):
            assert histogram.percentile(p) == 42

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_mean_and_max(self):
        histogram = Histogram()
        for value in (1, 2, 3):
            histogram.record(value)
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.max == 3


class TestRegistry:
    def test_instruments_are_memoised(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").record(1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"]["g"] == {"value": 7, "high_water": 7}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert set(snapshot["histograms"]["h"]) == {
            "count", "mean", "max", "p50", "p95", "p99",
        }


class TestMetricsFromEvents:
    def _events(self):
        return [
            TraceEvent(PE_REDUCE, cycle=4, pe=0, level=0),
            TraceEvent(PE_REDUCE, cycle=6, pe=2, level=1),
            TraceEvent(PE_FORWARD, cycle=5, pe=0, level=0),
            TraceEvent(FIFO_ENQUEUE, cycle=2, pe=0, level=0,
                       args={"fifo": 0, "depth": 2}),
            TraceEvent(FIFO_ENQUEUE, cycle=3, pe=0, level=0,
                       args={"fifo": 0, "depth": 5}),
            TraceEvent(MEM_READ_COMPLETE, cycle=80, clock=CLOCK_DRAM, rank=1,
                       args={"bytes": 64, "start_cycle": 60}),
            TraceEvent(MEM_READ_COMPLETE, cycle=90, clock=CLOCK_DRAM, rank=1,
                       args={"bytes": 64, "start_cycle": 70}),
            TraceEvent(QUERY_COMPLETE, cycle=100, args={"query": 0}),
            TraceEvent(QUERY_COMPLETE, cycle=140, args={"query": 1}),
        ]

    def test_kind_counters(self):
        counters = metrics_from_events(self._events()).counters()
        assert counters["events.pe_reduce"] == 2
        assert counters["events.pe_forward"] == 1
        assert counters["events.query_complete"] == 2

    def test_per_level_occupancy(self):
        counters = metrics_from_events(self._events()).counters()
        assert counters["pe.reduces.level0"] == 1
        assert counters["pe.reduces.level1"] == 1
        assert counters["pe.forwards.level0"] == 1

    def test_fifo_high_water(self):
        registry = metrics_from_events(self._events())
        assert registry.gauge("fifo.depth.pe0.side0").high_water == 5

    def test_memory_traffic(self):
        registry = metrics_from_events(self._events())
        assert registry.counter("memory.reads.rank1").value == 2
        assert registry.counter("memory.bytes.rank1").value == 128
        assert registry.gauge("memory.finish_cycle").value == 90

    def test_query_latency_histogram(self):
        registry = metrics_from_events(self._events())
        histogram = registry.histogram("query.latency_pe_cycles")
        assert histogram.count == 2
        assert histogram.max == 140

    def test_accepts_existing_registry(self):
        registry = MetricsRegistry()
        assert metrics_from_events(self._events(), registry) is registry


class TestPerLevelCounts:
    def test_counts_by_level(self):
        events = [
            TraceEvent(PE_REDUCE, cycle=1, pe=0, level=0),
            TraceEvent(PE_REDUCE, cycle=2, pe=1, level=0),
            TraceEvent(PE_REDUCE, cycle=3, pe=4, level=2),
            TraceEvent(PE_FORWARD, cycle=4, pe=0, level=0),
        ]
        assert per_level_counts(events) == {0: 2, 2: 1}
        assert per_level_counts(events, kind=PE_FORWARD) == {0: 1}


class TestHistogramSortCaching:
    def test_empty_histogram_uniform_zero(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.max == 0.0
        for p in (0, 50, 95, 99, 100):
            assert h.percentile(p) == 0.0

    def test_snapshot_sorts_once(self, monkeypatch):
        registry = MetricsRegistry()
        h = registry.histogram("latency")
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            h.record(v)
        import builtins

        calls = {"sorted": 0}
        real_sorted = builtins.sorted

        def counting_sorted(*args, **kwargs):
            calls["sorted"] += 1
            return real_sorted(*args, **kwargs)

        monkeypatch.setattr(builtins, "sorted", counting_sorted)
        snap = registry.snapshot()
        # p50/p95/p99 share one sort (snapshot() also sorts instrument
        # names; only the histogram's sample sort counts here).
        hist_sorts = calls["sorted"] - 3  # counters/gauges/histograms name sorts
        assert hist_sorts == 1
        assert snap["histograms"]["latency"]["p50"] == 3.0
        assert snap["histograms"]["latency"]["p99"] == 5.0

    def test_record_invalidates_cache(self):
        h = Histogram()
        h.record(1.0)
        assert h.percentile(100) == 1.0
        h.record(9.0)
        assert h.percentile(100) == 9.0
        assert h.mean == 5.0
