"""Tests for the command-line interface."""

import pytest

from repro.cli import ENGINES, build_parser, main


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, type(parser._subparsers._group_actions[0]))
        )
        assert set(subparsers.choices) == {
            "lookup",
            "compare",
            "spmv",
            "pagerank",
            "hw",
            "validate",
            "experiments",
            "trace",
            "chaos",
            "serve",
            "reduce",
            "resilience",
            "cache",
        }

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_choices(self):
        assert set(ENGINES) == {
            "fafnir",
            "recnmp",
            "recnmp-cache",
            "tensordimm",
            "centaur",
            "cpu",
        }


class TestCommands:
    def test_lookup(self, capsys):
        assert main(["lookup", "--engine", "fafnir", "--batch-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "total latency" in out
        assert "DRAM reads" in out

    def test_lookup_recnmp_cache(self, capsys):
        assert main(["lookup", "--engine", "recnmp-cache", "--batch-size", "8"]) == 0
        assert "engine: recnmp-cache" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--batch-size", "4", "--query-len", "8"]) == 0
        out = capsys.readouterr().out
        for engine in ("cpu", "tensordimm", "centaur", "recnmp", "fafnir"):
            assert engine in out

    def test_spmv(self, capsys):
        assert main(["spmv", "--kind", "stencil", "--size", "30"]) == 0
        out = capsys.readouterr().out
        assert "fafnir speedup" in out

    def test_pagerank(self, capsys):
        assert main(["pagerank", "--scale", "7", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "converged=True" in out

    def test_hw(self, capsys):
        assert main(["hw"]) == 0
        out = capsys.readouterr().out
        assert "system area" in out
        assert "FPGA utilization" in out

    def test_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "trace",
                    "--batch-size",
                    "4",
                    "--query-len",
                    "4",
                    "--out",
                    str(out_path),
                    "--jsonl",
                    str(jsonl_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reduces(events)" in out
        assert "MISMATCH" not in out
        document = json.loads(out_path.read_text())
        assert document["traceEvents"]
        assert {"ph", "ts", "pid", "name"} <= set(document["traceEvents"][-1])
        assert jsonl_path.read_text().strip()

    def test_chaos_quick(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "chaos.json"
        assert main(["chaos", "--seed", "0", "--quick", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "fault recovery report" in out
        assert "accounted" in out
        assert "p99 query latency" in out
        document = json.loads(out_path.read_text())
        assert document["traceEvents"]

    def test_serve_quick(self, capsys):
        assert main(["serve", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "serving sweep" in out
        assert "slo_attain" in out
        assert "dedup_savings" in out

    def test_serve_closed_loop_quick(self, capsys):
        assert main(["serve", "--quick", "--closed-loop", "--users", "16"]) == 0
        assert "closed-loop" in capsys.readouterr().out

    def test_reduce_quick(self, capsys):
        assert main(["reduce", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "reduction sweep" in out
        for name in ("gather", "recursive_doubling", "reduce_scatter"):
            assert name in out
        assert "all cells byte-identical" in out
        assert "DIVERGED" not in out

    def test_reduce_mean_operator_quick(self, capsys):
        assert main(["reduce", "--quick", "--operator", "mean"]) == 0
        assert "operator mean" in capsys.readouterr().out

    def test_resilience_quick_check(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "resilience.json"
        assert (
            main(
                [
                    "resilience",
                    "--quick",
                    "--check",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reduction resilience" in out
        assert "serving overload" in out
        assert "all resilience invariants held" in out
        assert "NO" not in out
        payload = json.loads(out_path.read_text())
        assert payload["failures"] == []
        assert payload["hedged_makespan"] <= payload["unhedged_makespan"]
        assert payload["hedge_wins"] >= 1
        assert payload["shed_fraction"] > 0.0
        assert payload["admitted_attainment"] >= payload["burst_attainment"]

    def test_resilience_min_attainment_floor(self, capsys):
        # An impossible floor must flip the exit code under --check.
        assert (
            main(
                [
                    "resilience",
                    "--quick",
                    "--check",
                    "--min-attainment",
                    "1.01",
                ]
            )
            == 1
        )
        assert "below floor" in capsys.readouterr().out

    def test_cache_quick(self, capsys):
        assert main(["cache", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "hot-index tier sweep" in out
        assert "dedup-only" in out
        assert "byte-identical" in out
        assert "NO" not in out

    def test_cache_check_quick(self, capsys):
        assert main(["cache", "--quick", "--check"]) == 0
        out = capsys.readouterr().out
        assert "cache smoke passed" in out
        assert "uniform hit rate 0.000" in out

    def test_serve_with_cache(self, capsys):
        assert main(["serve", "--quick", "--cache-kb", "128"]) == 0
        out = capsys.readouterr().out
        assert "cache 128 KB/rank" in out
        assert "cache_hit" in out

    def test_serve_min_attainment_floor(self, capsys):
        # Far past capacity (~8.7M QPS) queueing delay accumulates with the
        # backlog, so with enough requests the SLO floor of 1.0 cannot hold.
        argv = ["serve", "--qps", "4e7", "--requests", "400", "--min-attainment", "1.0"]
        assert main(argv) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_serve_min_attainment_floor_holds_when_attainable(self, capsys):
        # The floor must not trip spuriously: well under capacity with a
        # modest floor, the same flag exits 0.
        argv = ["serve", "--quick", "--qps", "5e5", "--min-attainment", "0.5"]
        assert main(argv) == 0
        assert "FAIL" not in capsys.readouterr().out
