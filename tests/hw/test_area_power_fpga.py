"""Tests for ASIC area/power and FPGA utilization models (Tables V/VI)."""

import pytest

from repro.hw import (
    AsicPower,
    CHANNEL_NODE_AREA_MM2,
    PE_AREA_MM2,
    PE_MW,
    SYSTEM_MW,
    XCVU9P,
    fpga_node_power_w,
    fpga_power_breakdown_w,
    memory_energy_saving,
    pe_area_mm2,
    pe_utilization,
    recnmp_comparison_mw,
    recnmp_system_area_mm2,
    reference_system_area,
    system_utilization,
    table5,
)


class TestArea:
    def test_pe_matches_published_layout(self):
        """274 µm × 282 µm ≈ 0.077 mm²."""
        assert PE_AREA_MM2 == pytest.approx(0.274 * 0.282, rel=0.01)

    def test_reference_system_close_to_paper_total(self):
        """4 DIMM/rank nodes + 1 channel node ≈ 1.2–1.25 mm²."""
        area = reference_system_area()
        assert area.total_mm2 == pytest.approx(1.249, rel=0.01)
        assert 1.2 <= area.total_mm2 <= 1.3

    def test_channel_node_is_tiny(self):
        assert CHANNEL_NODE_AREA_MM2 == pytest.approx(0.121)

    def test_fafnir_far_smaller_than_recnmp(self):
        """§VI: RecNMP needs 8.64 mm² across 16 DIMMs."""
        assert recnmp_system_area_mm2(16) == pytest.approx(8.64)
        assert reference_system_area().total_mm2 < recnmp_system_area_mm2(16) / 5

    def test_embedding_only_pe_smaller(self):
        assert pe_area_mm2(with_multiplier=False) < pe_area_mm2()


class TestPower:
    def test_system_power_matches_table6(self):
        power = AsicPower()
        assert power.total_mw == pytest.approx(SYSTEM_MW, rel=0.001)
        assert power.total_mw == pytest.approx(111.64, rel=0.001)

    def test_per_dimm_power(self):
        assert AsicPower().per_dimm_mw == pytest.approx(5.9, abs=0.1)

    def test_negligible_vs_dram(self):
        """§VI: 111.64 mW against 16 DIMMs × 13 W."""
        assert AsicPower().fraction_of_dram_power < 0.001

    def test_recnmp_comparison(self):
        """RecNMP adds 184.2 mW per DIMM — far above FAFNIR's 5.9 mW."""
        assert recnmp_comparison_mw(1) == pytest.approx(184.2)
        assert recnmp_comparison_mw(1) > 20 * AsicPower().per_dimm_mw

    def test_pe_power_consistent(self):
        assert 7 * PE_MW == pytest.approx(23.82, rel=0.001)


class TestFpgaPower:
    def test_node_power_anchors(self):
        assert fpga_node_power_w("dimm_rank") == pytest.approx(0.23)
        assert fpga_node_power_w("channel") == pytest.approx(0.18)
        with pytest.raises(ValueError):
            fpga_node_power_w("other")

    def test_breakdown_sums_to_total(self):
        breakdown = fpga_power_breakdown_w("dimm_rank")
        assert sum(breakdown.values()) == pytest.approx(0.23)
        assert set(breakdown) == {"signals", "logic", "bram", "clocks", "dsp"}


class TestFpgaUtilization:
    def test_table5_within_paper_bounds(self):
        """Table V: ≤5 % LUT, ≤0.15 % LUTRAM, ≤1 % FF, ≤13 % BRAM."""
        utilization = table5()
        assert utilization["lut"] <= 5.0
        assert utilization["lutram"] <= 0.16
        assert utilization["ff"] <= 1.0
        assert utilization["bram"] <= 13.0

    def test_reference_system_fits(self):
        assert system_utilization().fits()

    def test_scales_with_pe_count(self):
        one = pe_utilization(1)
        system = pe_utilization(31)
        for resource in XCVU9P:
            assert system.used[resource] == 31 * one.used[resource]

    def test_rejects_zero_pes(self):
        with pytest.raises(ValueError):
            pe_utilization(0)


class TestMemoryEnergySaving:
    def test_saving_tracks_access_elimination(self):
        assert memory_energy_saving(100, 66) == pytest.approx(0.34)
        assert memory_energy_saving(100, 42) == pytest.approx(0.58)

    def test_no_sharing_no_saving(self):
        assert memory_energy_saving(100, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_energy_saving(0, 0)
        with pytest.raises(ValueError):
            memory_energy_saving(10, 11)
