"""Tests for buffer sizing against paper Table I."""

import pytest

from repro.core import FafnirConfig
from repro.hw import size_buffers, table1


class TestTable1:
    """Paper Table I: PE 4.6/9.3/18.5 KB, DIMM/rank node 32.4/64.8/129.5 KB
    for B = 8/16/32."""

    @pytest.mark.parametrize(
        "batch_size, pe_kb, node_kb",
        [(8, 4.6, 32.4), (16, 9.3, 64.8), (32, 18.5, 129.5)],
    )
    def test_matches_paper_within_two_percent(self, batch_size, pe_kb, node_kb):
        sizing = size_buffers(FafnirConfig().with_batch_size(batch_size))
        assert sizing.pe_buffer_kb == pytest.approx(pe_kb, rel=0.02)
        assert sizing.dimm_rank_node_kb == pytest.approx(node_kb, rel=0.02)

    def test_buffer_scales_linearly_with_batch(self):
        small = size_buffers(FafnirConfig().with_batch_size(8))
        large = size_buffers(FafnirConfig().with_batch_size(32))
        assert large.pe_buffer_bytes == pytest.approx(4 * small.pe_buffer_bytes)

    def test_node_is_seven_pes(self):
        sizing = size_buffers(FafnirConfig())
        assert sizing.dimm_rank_node_kb == pytest.approx(7 * sizing.pe_buffer_kb)
        assert sizing.channel_node_kb == pytest.approx(3 * sizing.pe_buffer_kb)

    def test_table1_helper_covers_paper_batch_sizes(self):
        rows = table1()
        assert set(rows) == {8, 16, 32}
        assert rows[8]["pe_kb"] < rows[16]["pe_kb"] < rows[32]["pe_kb"]

    def test_entry_includes_value_header_metadata(self):
        sizing = size_buffers(FafnirConfig())
        assert sizing.entry_bytes > 512 + 10  # value + header + metadata
