"""Tests for the connection-count model (§III-D / §IV-A)."""

import pytest

from repro.hw import (
    ConnectionComparison,
    all_to_all_connections,
    crossover_memory_devices,
    fafnir_connections,
)


class TestConnectionCounts:
    def test_all_to_all_formula(self):
        assert all_to_all_connections(16, 4) == 64

    def test_fafnir_formula(self):
        """(2m − 2) + c from §IV-A."""
        assert fafnir_connections(16, 4) == 34

    def test_reference_system(self):
        """32 memory devices, 4 compute devices."""
        comparison = ConnectionComparison(memory_devices=32, compute_devices=4)
        assert comparison.all_to_all == 128
        assert comparison.fafnir == 66
        assert comparison.reduction_factor > 1.9

    def test_advantage_grows_with_scale(self):
        small = ConnectionComparison(8, 4).reduction_factor
        large = ConnectionComparison(64, 16).reduction_factor
        assert large > small

    def test_crossover(self):
        """For c > 2, the tree wins from m = 2 onward."""
        assert crossover_memory_devices(4) == 2
        assert crossover_memory_devices(16) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            all_to_all_connections(0, 4)
        with pytest.raises(ValueError):
            fafnir_connections(4, 0)
        with pytest.raises(ValueError):
            crossover_memory_devices(0)
