"""Tests for the CSR format."""

import numpy as np
import pytest

from repro.sparse import CooMatrix, CsrMatrix, LilMatrix


@pytest.fixture
def dense():
    rng = np.random.default_rng(5)
    matrix = rng.normal(size=(6, 8))
    matrix[rng.random(size=matrix.shape) < 0.5] = 0.0
    return matrix


class TestCsr:
    def test_round_trip_dense(self, dense):
        assert np.allclose(CsrMatrix.from_dense(dense).to_dense(), dense)

    def test_round_trip_coo(self, dense):
        csr = CsrMatrix.from_coo(CooMatrix.from_dense(dense))
        assert np.allclose(csr.to_coo().to_dense(), dense)

    def test_to_lil(self, dense):
        lil = CsrMatrix.from_dense(dense).to_lil()
        assert isinstance(lil, LilMatrix)
        assert np.allclose(lil.to_dense(), dense)

    def test_matvec(self, dense):
        csr = CsrMatrix.from_dense(dense)
        x = np.random.default_rng(6).normal(size=dense.shape[1])
        assert np.allclose(csr.matvec(x), dense @ x)

    def test_row_accessor(self, dense):
        csr = CsrMatrix.from_dense(dense)
        for r in range(dense.shape[0]):
            indices, values = csr.row(r)
            reconstructed = np.zeros(dense.shape[1])
            reconstructed[indices] = values
            assert np.allclose(reconstructed, dense[r])
        with pytest.raises(ValueError):
            csr.row(dense.shape[0])

    def test_nnz(self, dense):
        assert CsrMatrix.from_dense(dense).nnz == np.count_nonzero(dense)

    def test_validation(self):
        with pytest.raises(ValueError):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])  # indptr wrong length
        with pytest.raises(ValueError):
            CsrMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])  # decreasing
        with pytest.raises(ValueError):
            CsrMatrix((2, 2), [0, 1, 2], [0, 5], [1.0, 2.0])  # col OOB
        with pytest.raises(ValueError):
            CsrMatrix((2, 2), [0, 1, 2], [0, 1], [1.0])  # len mismatch

    def test_matvec_shape_checked(self, dense):
        with pytest.raises(ValueError):
            CsrMatrix.from_dense(dense).matvec(np.zeros(3))
