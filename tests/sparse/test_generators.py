"""Tests for synthetic sparse-matrix generators."""

import numpy as np
import pytest

from repro.sparse import (
    diagonally_dominant,
    laplacian_2d,
    random_sparse,
    rmat,
    road_mesh,
)


class TestRandomSparse:
    def test_density_approximate(self):
        matrix = random_sparse(100, 100, 0.05, seed=1)
        assert matrix.nnz == 500

    def test_deterministic(self):
        a = random_sparse(50, 50, 0.1, seed=3)
        b = random_sparse(50, 50, 0.1, seed=3)
        assert np.allclose(a.to_dense(), b.to_dense())

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            random_sparse(10, 10, 0.0)
        with pytest.raises(ValueError):
            random_sparse(10, 10, 1.5)


class TestLaplacian:
    def test_shape_and_structure(self):
        matrix = laplacian_2d(4, 5)
        assert matrix.shape == (20, 20)
        dense = matrix.to_dense()
        assert np.allclose(dense, dense.T)  # symmetric
        assert np.all(np.diag(dense) == 4.0)

    def test_interior_row_has_five_nonzeros(self):
        matrix = laplacian_2d(5)
        center = 2 * 5 + 2
        assert matrix.row_nnz(center) == 5

    def test_positive_definite(self):
        dense = laplacian_2d(6).to_dense()
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.min() > 0

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            laplacian_2d(0)


class TestRmat:
    def test_power_law_degree_skew(self):
        graph = rmat(12, edge_factor=8, seed=0)
        degrees = np.array([graph.row_nnz(r) for r in range(graph.shape[0])])
        # Heavy tail: the top 1% of vertices holds far more than 1% of edges.
        top = np.sort(degrees)[-len(degrees) // 100 :].sum()
        assert top > 0.05 * degrees.sum() * 2

    def test_vertex_count(self):
        graph = rmat(8, edge_factor=4, seed=1)
        assert graph.shape == (256, 256)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            rmat(0)
        with pytest.raises(ValueError):
            rmat(30)


class TestRoadMesh:
    def test_near_constant_degree(self):
        graph = road_mesh(20, seed=0)
        degrees = np.array([graph.row_nnz(r) for r in range(graph.shape[0])])
        assert degrees.mean() < 6  # road-like, not social-like
        assert degrees.max() <= 10

    def test_symmetric(self):
        dense = road_mesh(10, seed=1).to_dense()
        assert np.allclose((dense != 0), (dense.T != 0))

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            road_mesh(1)


class TestDiagonallyDominant:
    def test_dominance(self):
        dense = diagonally_dominant(50, density=0.05, seed=2).to_dense()
        off_diagonal = np.abs(dense) - np.diag(np.abs(np.diag(dense)))
        assert np.all(np.abs(np.diag(dense)) > off_diagonal.sum(axis=1) - 1e-9)

    def test_jacobi_spectral_radius_below_one(self):
        dense = diagonally_dominant(40, density=0.05, seed=3).to_dense()
        d = np.diag(dense)
        iteration_matrix = -(dense - np.diag(d)) / d[:, None]
        radius = np.abs(np.linalg.eigvals(iteration_matrix)).max()
        assert radius < 1.0
