"""Tests for COO/LIL sparse formats."""

import numpy as np
import pytest

from repro.sparse import CooMatrix, LilMatrix


@pytest.fixture
def dense():
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(7, 9))
    matrix[rng.random(size=matrix.shape) < 0.6] = 0.0
    return matrix


class TestCoo:
    def test_round_trip_dense(self, dense):
        assert np.allclose(CooMatrix.from_dense(dense).to_dense(), dense)

    def test_coalesce_sums_duplicates(self):
        coo = CooMatrix(
            shape=(2, 2), rows=[0, 0, 1], cols=[1, 1, 0], values=[1.0, 2.0, 5.0]
        )
        merged = coo.coalesce()
        assert merged.nnz == 2
        assert merged.to_dense()[0, 1] == 3.0

    def test_matvec_oracle(self, dense):
        coo = CooMatrix.from_dense(dense)
        x = np.random.default_rng(1).normal(size=dense.shape[1])
        assert np.allclose(coo.matvec(x), dense @ x)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            CooMatrix(shape=(2, 2), rows=[2], cols=[0], values=[1.0])
        with pytest.raises(ValueError):
            CooMatrix(shape=(2, 2), rows=[0], cols=[-1], values=[1.0])
        with pytest.raises(ValueError):
            CooMatrix(shape=(2, 2), rows=[0, 1], cols=[0], values=[1.0])

    def test_matvec_shape_checked(self, dense):
        coo = CooMatrix.from_dense(dense)
        with pytest.raises(ValueError):
            coo.matvec(np.zeros(3))

    def test_density(self):
        coo = CooMatrix(shape=(10, 10), rows=[0], cols=[0], values=[1.0])
        assert coo.density == pytest.approx(0.01)


class TestLil:
    def test_round_trips(self, dense):
        lil = LilMatrix.from_dense(dense)
        assert np.allclose(lil.to_dense(), dense)
        assert np.allclose(lil.to_coo().to_dense(), dense)
        assert lil.nnz == np.count_nonzero(dense)

    def test_matvec_matches_dense(self, dense):
        lil = LilMatrix.from_dense(dense)
        x = np.random.default_rng(2).normal(size=dense.shape[1])
        assert np.allclose(lil.matvec(x), dense @ x)

    def test_iter_nonzeros_row_major(self, dense):
        lil = LilMatrix.from_dense(dense)
        triples = list(lil.iter_nonzeros())
        assert len(triples) == lil.nnz
        rows = [r for r, _, _ in triples]
        assert rows == sorted(rows)
        for row, col, value in triples:
            assert dense[row, col] == value

    def test_stream_bytes(self, dense):
        lil = LilMatrix.from_dense(dense)
        assert lil.stream_bytes() == lil.nnz * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            LilMatrix((1, 2), [np.array([5])], [np.array([1.0])])  # col OOB
        with pytest.raises(ValueError):
            LilMatrix((1, 2), [np.array([0, 1])], [np.array([1.0])])  # len mismatch
        with pytest.raises(ValueError):
            LilMatrix((2, 2), [np.array([0])], [np.array([1.0])])  # row count


class TestSplitColumns:
    def test_chunks_reassemble(self, dense):
        lil = LilMatrix.from_dense(dense)
        chunks = lil.split_columns(4)
        assert [c.shape[1] for c in chunks] == [4, 4, 1]
        reassembled = np.hstack([c.to_dense() for c in chunks])
        assert np.allclose(reassembled, dense)

    def test_chunk_matvecs_sum_to_full(self, dense):
        """The split is exactly FAFNIR's iteration-0 decomposition: chunk
        partial products sum to the full SpMV."""
        lil = LilMatrix.from_dense(dense)
        x = np.random.default_rng(3).normal(size=dense.shape[1])
        partial_sum = np.zeros(dense.shape[0])
        for k, chunk in enumerate(lil.split_columns(3)):
            partial_sum += chunk.matvec(x[3 * k : 3 * k + chunk.shape[1]])
        assert np.allclose(partial_sum, lil.matvec(x))

    def test_nnz_preserved(self, dense):
        lil = LilMatrix.from_dense(dense)
        assert sum(c.nnz for c in lil.split_columns(2)) == lil.nnz

    def test_invalid_width(self, dense):
        with pytest.raises(ValueError):
            LilMatrix.from_dense(dense).split_columns(0)
