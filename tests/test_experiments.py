"""Tests for the experiment registry and lightweight runners.

The heavyweight performance experiments are exercised by the benches in
``benchmarks/``; here we verify the registry machinery and run the cheap
bookkeeping experiments end to end.
"""

import pytest

from repro.experiments import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
)

EXPECTED_IDS = {
    "connections",
    "fig02",
    "fig03",
    "fig09",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "table1",
    "table4",
    "table5",
    "table6",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = {experiment.experiment_id for experiment in list_experiments()}
        assert ids == EXPECTED_IDS

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("table1", "duplicate")(lambda: None)

    def test_runner_id_mismatch_detected(self):
        @register("selftest-mismatch", "mismatching runner")
        def bad_runner():
            from repro.analysis import Table

            return ExperimentResult("other-id", "x", Table(["a"]))

        with pytest.raises(RuntimeError, match="tagged"):
            get_experiment("selftest-mismatch").run()


class TestBookkeepingExperiments:
    @pytest.mark.parametrize(
        "experiment_id",
        ["table1", "table4", "table5", "table6", "fig16", "connections", "fig09"],
    )
    def test_runs_and_renders(self, experiment_id):
        result = get_experiment(experiment_id).run()
        assert result.experiment_id == experiment_id
        text = result.render()
        assert experiment_id in text
        assert len(text.splitlines()) >= 4

    def test_fig03_runs(self):
        result = get_experiment("fig03").run()
        stats = result.data["stats"]
        fractions = [entry.mean_unique_fraction for entry in stats]
        assert fractions == sorted(fractions, reverse=True)

    def test_fig11_runs(self):
        result = get_experiment("fig11").run()
        assert result.data["memory_ratio"] > 1.0
        assert result.data["compute_ratio"] > 1.0
