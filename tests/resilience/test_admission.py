"""Unit tests for deadline-aware admission control."""

import pickle

import pytest

from repro.resilience import ADMIT, SHED, AdmissionController, OverloadPolicy
from repro.serving.loadgen import Request


def _request(arrival_us=0.0, slo_us=25.0):
    return Request(
        request_id=0,
        indices=(1, 2, 3),
        arrival_us=arrival_us,
        deadline_us=arrival_us + slo_us,
    )


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = OverloadPolicy()
        assert policy.safety_margin_us == 0.0
        assert policy.max_queue_depth is None

    def test_rejects_negative_margin(self):
        with pytest.raises(ValueError, match="safety_margin_us"):
            OverloadPolicy(safety_margin_us=-1.0)

    def test_rejects_nonpositive_depth_cap(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            OverloadPolicy(max_queue_depth=0)

    def test_rejects_alpha_out_of_range(self):
        with pytest.raises(ValueError, match="ewma_alpha"):
            OverloadPolicy(ewma_alpha=0.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            OverloadPolicy(ewma_alpha=1.5)

    def test_rejects_negative_initial_estimate(self):
        with pytest.raises(ValueError, match="initial_service_us"):
            OverloadPolicy(initial_service_us=-0.1)

    def test_picklable_and_frozen(self):
        policy = OverloadPolicy(safety_margin_us=2.0, max_queue_depth=32)
        assert pickle.loads(pickle.dumps(policy)) == policy
        with pytest.raises(AttributeError):
            policy.safety_margin_us = 1.0


class TestController:
    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            AdmissionController(OverloadPolicy(), batch_size=0, default_service_us=5.0)

    def test_initial_estimate_prefers_policy_override(self):
        controller = AdmissionController(
            OverloadPolicy(initial_service_us=9.0),
            batch_size=4,
            default_service_us=5.0,
        )
        assert controller.estimated_batch_us == 9.0

    def test_initial_estimate_falls_back_to_default(self):
        controller = AdmissionController(
            OverloadPolicy(), batch_size=4, default_service_us=5.0
        )
        assert controller.estimated_batch_us == 5.0

    def test_ewma_converges_toward_observations(self):
        controller = AdmissionController(
            OverloadPolicy(ewma_alpha=0.5), batch_size=4, default_service_us=10.0
        )
        controller.observe(20.0)
        assert controller.estimated_batch_us == pytest.approx(15.0)
        controller.observe(20.0)
        assert controller.estimated_batch_us == pytest.approx(17.5)

    def test_forecast_charges_whole_batches_ahead(self):
        controller = AdmissionController(
            OverloadPolicy(), batch_size=4, default_service_us=10.0
        )
        # Depth 0 → 1 batch ahead (the request's own).
        assert controller.forecast_complete_us(0.0, 0, 0.0) == pytest.approx(10.0)
        # Depth 7 with batch size 4 → 1 full batch queued + own batch.
        assert controller.forecast_complete_us(0.0, 7, 0.0) == pytest.approx(20.0)
        # A busy accelerator pushes the start time out.
        assert controller.forecast_complete_us(0.0, 0, 30.0) == pytest.approx(40.0)
        # `now` dominates when the accelerator is already free.
        assert controller.forecast_complete_us(50.0, 0, 30.0) == pytest.approx(60.0)

    def test_admits_when_forecast_meets_deadline(self):
        controller = AdmissionController(
            OverloadPolicy(), batch_size=4, default_service_us=10.0
        )
        verdict = controller.decide(_request(slo_us=25.0), 0.0, 0, 0.0)
        assert verdict == ADMIT
        assert controller.admitted_count == 1
        assert controller.shed_count == 0

    def test_sheds_when_forecast_overruns_deadline(self):
        controller = AdmissionController(
            OverloadPolicy(), batch_size=4, default_service_us=10.0
        )
        # 3 batches queued ahead → forecast 40µs against a 25µs deadline.
        verdict = controller.decide(_request(slo_us=25.0), 0.0, 11, 0.0)
        assert verdict == SHED
        assert controller.shed_count == 1
        assert controller.admitted_count == 0

    def test_safety_margin_tightens_the_deadline(self):
        lax = AdmissionController(
            OverloadPolicy(), batch_size=4, default_service_us=10.0
        )
        strict = AdmissionController(
            OverloadPolicy(safety_margin_us=20.0),
            batch_size=4,
            default_service_us=10.0,
        )
        request = _request(slo_us=25.0)
        assert lax.decide(request, 0.0, 4, 0.0) == ADMIT  # forecast 20 ≤ 25
        assert strict.decide(request, 0.0, 4, 0.0) == SHED  # 20 > 25 − 20

    def test_depth_cap_sheds_regardless_of_deadline(self):
        controller = AdmissionController(
            OverloadPolicy(max_queue_depth=8),
            batch_size=4,
            default_service_us=1.0,
        )
        generous = _request(slo_us=1e9)
        assert controller.decide(generous, 0.0, 8, 0.0) == SHED
        assert controller.decide(generous, 0.0, 7, 0.0) == ADMIT

    def test_decisions_are_deterministic(self):
        def run():
            controller = AdmissionController(
                OverloadPolicy(ewma_alpha=0.3), batch_size=4, default_service_us=8.0
            )
            verdicts = []
            for step in range(32):
                verdicts.append(
                    controller.decide(
                        _request(slo_us=25.0), step * 2.0, step % 12, step * 1.5
                    )
                )
                controller.observe(6.0 + (step % 5))
            return verdicts, controller.shed_count, controller.admitted_count

        assert run() == run()
