"""Unit tests for the peer-comparison circuit breaker."""

import pytest

from repro.resilience import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    CircuitBreaker,
)

#: min_samples=2 everywhere below unless a test says otherwise.
CONFIG = BreakerConfig(threshold_ratio=2.0, min_samples=2, cooldown_us=500.0)


def _healthy(n=4, latency=100.0):
    return {rank: latency for rank in range(n)}


class TestConfigValidation:
    def test_rejects_threshold_at_or_below_one(self):
        with pytest.raises(ValueError, match="threshold_ratio"):
            BreakerConfig(threshold_ratio=1.0)

    def test_rejects_nonpositive_min_samples(self):
        with pytest.raises(ValueError, match="min_samples"):
            BreakerConfig(min_samples=0)

    def test_rejects_negative_cooldown(self):
        with pytest.raises(ValueError, match="cooldown_us"):
            BreakerConfig(cooldown_us=-1.0)

    def test_rejects_nonpositive_cache_boost(self):
        with pytest.raises(ValueError, match="cache_boost_kb"):
            BreakerConfig(cache_boost_kb=0)


class TestTripLogic:
    def test_healthy_fleet_never_trips(self):
        breaker = CircuitBreaker(CONFIG)
        for step in range(16):
            # ±60% noise around a common mean must stay under a 2× ratio
            # against the fleet median.
            samples = {
                rank: 100.0 * (0.6 + 0.1 * ((step + rank) % 9))
                for rank in range(8)
            }
            assert breaker.observe(samples, float(step)) == []
        assert breaker.total_opens == 0
        assert breaker.open_ranks() == frozenset()

    def test_asymmetric_degradation_trips_only_the_degraded_rank(self):
        breaker = CircuitBreaker(CONFIG)
        samples = _healthy(4) | {0: 500.0}
        assert breaker.observe(samples, 0.0) == []  # first strike
        assert breaker.observe(samples, 1.0) == [0]  # second strike opens
        assert breaker.open_ranks() == frozenset({0})
        assert breaker.state(1) == STATE_CLOSED
        assert breaker.total_opens == 1

    def test_uniform_slowdown_trips_nothing(self):
        # A fleet-wide 10× slowdown moves the median with it: that is an
        # overload condition for admission control, not a routing fault.
        breaker = CircuitBreaker(CONFIG)
        for step in range(8):
            assert breaker.observe(_healthy(4, latency=1000.0), float(step)) == []
        assert breaker.total_opens == 0

    def test_healthy_sample_resets_strikes(self):
        breaker = CircuitBreaker(CONFIG)
        degraded = _healthy(4) | {0: 500.0}
        assert breaker.observe(degraded, 0.0) == []
        assert breaker.observe(_healthy(4), 1.0) == []  # strike reset
        assert breaker.observe(degraded, 2.0) == []  # back to one strike
        assert breaker.observe(degraded, 3.0) == [0]

    def test_min_samples_one_trips_immediately(self):
        breaker = CircuitBreaker(BreakerConfig(min_samples=1))
        assert breaker.observe(_healthy(4) | {2: 900.0}, 0.0) == [2]

    def test_fewer_than_two_positive_samples_is_a_no_op(self):
        breaker = CircuitBreaker(CONFIG)
        assert breaker.observe({}, 0.0) == []
        assert breaker.observe({0: 500.0}, 1.0) == []  # no peer group
        assert breaker.observe({0: 500.0, 1: 0.0}, 2.0) == []
        assert breaker.total_opens == 0

    def test_absent_rank_holds_state(self):
        # An open rank served from the boosted tier contributes no DRAM
        # completions; its absence from samples must not close it.
        breaker = CircuitBreaker(CONFIG)
        degraded = _healthy(4) | {0: 500.0}
        breaker.observe(degraded, 0.0)
        breaker.observe(degraded, 1.0)
        assert breaker.open_ranks() == frozenset({0})
        breaker.observe({1: 100.0, 2: 100.0, 3: 100.0}, 2.0)
        assert breaker.open_ranks() == frozenset({0})


class TestRecovery:
    def _tripped(self):
        breaker = CircuitBreaker(CONFIG)
        degraded = _healthy(4) | {0: 500.0}
        breaker.observe(degraded, 0.0)
        breaker.observe(degraded, 1.0)
        assert breaker.state(0) == STATE_OPEN
        return breaker

    def test_poll_half_opens_after_cooldown(self):
        breaker = self._tripped()
        assert breaker.poll(1.0 + CONFIG.cooldown_us - 1.0) == []
        assert breaker.state(0) == STATE_OPEN
        assert breaker.poll(1.0 + CONFIG.cooldown_us) == [0]
        assert breaker.state(0) == STATE_HALF_OPEN
        # Half-open ranks are no longer routed around.
        assert breaker.open_ranks() == frozenset()

    def test_healthy_probe_closes(self):
        breaker = self._tripped()
        breaker.poll(1.0 + CONFIG.cooldown_us)
        assert breaker.observe(_healthy(4), 600.0) == []
        assert breaker.state(0) == STATE_CLOSED

    def test_degraded_probe_reopens_without_reporting(self):
        breaker = self._tripped()
        breaker.poll(1.0 + CONFIG.cooldown_us)
        # Same incident: the re-open is not reported as a fresh trip and
        # does not bump total_opens.
        assert breaker.observe(_healthy(4) | {0: 500.0}, 600.0) == []
        assert breaker.state(0) == STATE_OPEN
        assert breaker.total_opens == 1

    def test_ratios_reports_last_observation(self):
        breaker = CircuitBreaker(CONFIG)
        breaker.observe(_healthy(4) | {0: 400.0}, 0.0)
        assert breaker.ratios()[0] == pytest.approx(4.0)
        assert breaker.ratios()[1] == pytest.approx(1.0)
