"""Unit tests for the resilience package."""
