"""Unit tests for hedged re-dispatch planning."""

import pytest

from repro.resilience import HedgeAccounting, HedgeDecision, HedgePolicy, plan_hedges


class TestPolicyValidation:
    def test_rejects_trigger_at_or_below_one(self):
        with pytest.raises(ValueError, match="trigger_ratio"):
            HedgePolicy(trigger_ratio=1.0)

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="max_hedges_per_batch"):
            HedgePolicy(max_hedges_per_batch=-1)

    def test_rejects_negative_min_trigger(self):
        with pytest.raises(ValueError, match="min_trigger_cycles"):
            HedgePolicy(min_trigger_cycles=-1)


class TestPlanHedges:
    def test_no_straggler_no_hedge(self):
        completions = {0: 100, 1: 110, 2: 95, 3: 105}
        effective, decisions = plan_hedges(
            completions, completions, HedgePolicy(trigger_ratio=2.0)
        )
        assert decisions == []
        assert effective == completions

    def test_empty_batch_is_a_no_op(self):
        assert plan_hedges({}, {}, HedgePolicy()) == ({}, [])

    def test_zero_budget_disables_hedging(self):
        completions = {0: 100, 1: 100, 2: 1000}
        effective, decisions = plan_hedges(
            completions, completions, HedgePolicy(max_hedges_per_batch=0)
        )
        assert decisions == []
        assert effective == completions

    def test_winning_hedge_cuts_the_tail(self):
        # Median 100 → hedge issues at 200; replica needs 100 clean
        # cycles → finishes at 300, beating the 1000-cycle straggler.
        completions = {0: 100, 1: 100, 2: 1000}
        clean = {0: 100, 1: 100, 2: 100}
        effective, decisions = plan_hedges(completions, clean, HedgePolicy())
        (decision,) = decisions
        assert decision.piece == 2
        assert decision.issued_at == 200
        assert decision.won
        assert decision.hedged_cycles == 300
        assert effective[2] == 300
        assert effective[0] == 100
        assert decision.saved_cycles == 700
        # The cancelled original ran from 0 until the hedge won at 300.
        assert decision.wasted_cycles == 300

    def test_losing_hedge_keeps_the_original(self):
        # Straggler at 250 vs hedge finishing at 200 + 100 = 300: the
        # original wins; the hedge burned 250 − 200 = 50 cycles.
        completions = {0: 100, 1: 100, 2: 250}
        clean = {0: 100, 1: 100, 2: 100}
        effective, decisions = plan_hedges(completions, clean, HedgePolicy())
        (decision,) = decisions
        assert not decision.won
        assert effective[2] == 250
        assert decision.saved_cycles == 0
        assert decision.wasted_cycles == 50

    def test_budget_hedges_slowest_stragglers_first(self):
        completions = {0: 100, 1: 100, 2: 100, 3: 600, 4: 900}
        clean = dict.fromkeys(completions, 100)
        _, decisions = plan_hedges(
            completions, clean, HedgePolicy(max_hedges_per_batch=1)
        )
        assert [decision.piece for decision in decisions] == [4]
        _, decisions = plan_hedges(
            completions, clean, HedgePolicy(max_hedges_per_batch=8)
        )
        assert [decision.piece for decision in decisions] == [4, 3]

    def test_min_trigger_cycles_delays_short_batches(self):
        completions = {0: 10, 1: 10, 2: 100}
        clean = {0: 10, 1: 10, 2: 10}
        policy = HedgePolicy(min_trigger_cycles=150)
        effective, decisions = plan_hedges(completions, clean, policy)
        # Trigger would be 20, but the floor pushes it to 150 > 100: the
        # straggler finishes before the hedge would even be issued.
        assert decisions == []
        assert effective == completions

    def test_hedging_never_slows_any_piece(self):
        # A winning hedge (900 → 300), a losing one (250 stays), and
        # healthy pieces untouched: first-result-wins by construction.
        completions = {0: 100, 1: 100, 2: 100, 3: 250, 4: 900}
        clean = dict.fromkeys(completions, 100)
        effective, _ = plan_hedges(
            completions, clean, HedgePolicy(max_hedges_per_batch=8)
        )
        for piece, done in completions.items():
            assert effective[piece] <= done


class TestAccounting:
    def test_absorb_and_merge_totals(self):
        win = HedgeDecision(
            piece=0, issued_at=200, straggler_cycles=1000, hedged_cycles=300, won=True
        )
        loss = HedgeDecision(
            piece=1, issued_at=200, straggler_cycles=250, hedged_cycles=300, won=False
        )
        first = HedgeAccounting()
        first.absorb(win)
        second = HedgeAccounting()
        second.absorb(loss)
        first.merge(second)
        assert first.issued == 2
        assert first.wins == 1
        assert first.saved_cycles == 700
        assert first.wasted_cycles == 300 + 50
