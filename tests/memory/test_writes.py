"""Tests for the DRAM write path."""

import pytest

from repro.memory import DramTiming, MemoryConfig, MemorySystem, ReadRequest
from repro.memory.bank import Bank
from repro.memory.request import WriteRequest


@pytest.fixture
def timing():
    return DramTiming()


class TestWriteRequests:
    def test_is_write_flags(self):
        read = ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64)
        write = WriteRequest(rank=0, bank=0, row=0, column=0, bytes_=64)
        assert not read.is_write
        assert write.is_write

    def test_write_validation_shared_with_reads(self):
        with pytest.raises(ValueError):
            WriteRequest(rank=0, bank=0, row=0, column=0, bytes_=0)


class TestBankWrites:
    def test_write_uses_cwl(self, timing):
        bank = Bank(timing)
        outcome = bank.access(row=3, at_cycle=0, bursts=1, is_write=True)
        assert outcome.data_ready == timing.tRCD + timing.tCWL

    def test_write_recovery_delays_next_access(self, timing):
        bank = Bank(timing)
        bank.access(row=3, at_cycle=0, bursts=1, is_write=True)
        after_write = bank.ready_cycle
        bank.reset()
        bank.access(row=3, at_cycle=0, bursts=1, is_write=False)
        after_read = bank.ready_cycle
        assert after_write == after_read + timing.tWR

    def test_write_then_read_same_row_hits(self, timing):
        bank = Bank(timing)
        bank.access(row=3, at_cycle=0, bursts=1, is_write=True)
        outcome = bank.access(row=3, at_cycle=1000, bursts=1, is_write=False)
        assert outcome.row_hit


class TestSystemWrites:
    def test_mixed_read_write_stream(self):
        system = MemorySystem(MemoryConfig.small_test_system())
        requests = [
            WriteRequest(rank=0, bank=0, row=0, column=0, bytes_=512),
            ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=512),
        ]
        completions, stats = system.execute(requests)
        assert stats.reads == 2  # accesses, read or write
        # The read-back of the just-written row hits the open row buffer.
        assert completions[1].row_hit
        assert completions[1].finish_cycle > completions[0].finish_cycle

    def test_write_recovery_visible_through_system(self):
        system = MemorySystem(MemoryConfig.small_test_system())
        timing = system.config.timing
        write_then_read = [
            WriteRequest(rank=0, bank=0, row=0, column=0, bytes_=64),
            ReadRequest(rank=0, bank=0, row=0, column=64, bytes_=64),
        ]
        _, after_write = system.execute(write_then_read)
        system.reset()
        read_then_read = [
            ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64),
            ReadRequest(rank=0, bank=0, row=0, column=64, bytes_=64),
        ]
        _, after_read = system.execute(read_then_read)
        assert (
            after_write.finish_cycle - after_read.finish_cycle == timing.tWR
        )

    def test_parallel_bank_writes_overlap(self):
        system = MemorySystem(MemoryConfig.small_test_system())
        requests = [
            WriteRequest(rank=0, bank=bank, row=0, column=0, bytes_=64)
            for bank in range(4)
        ]
        completions, _ = system.execute(requests)
        spread = completions[-1].finish_cycle - completions[0].finish_cycle
        timing = system.config.timing
        # Bus-limited spacing, not serialized full accesses.
        assert spread == 3 * timing.tBL
