"""Tests for periodic-refresh modelling."""

import dataclasses

import pytest

from repro.memory import DramTiming, MemoryConfig, MemorySystem, ReadRequest
from repro.memory.config import MemoryGeometry


def refresh_config():
    base = MemoryConfig.small_test_system()
    return MemoryConfig(
        geometry=base.geometry,
        timing=dataclasses.replace(base.timing, refresh_enabled=True),
        energy=base.energy,
    )


class TestRefresh:
    def test_disabled_by_default(self):
        assert not DramTiming().refresh_enabled

    def test_request_in_blackout_is_delayed(self):
        system = MemorySystem(refresh_config())
        timing = system.config.timing
        # Rank 0's blackout starts at cycle 0 (offset 0).
        request = ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64, issue_cycle=0)
        completion = system.execute([request])[0][0]
        assert completion.finish_cycle >= timing.tRFC

    def test_request_outside_blackout_unaffected(self):
        plain = MemorySystem(MemoryConfig.small_test_system())
        refreshing = MemorySystem(refresh_config())
        timing = plain.config.timing
        safe_cycle = timing.tRFC + 100  # past rank 0's blackout
        request = ReadRequest(
            rank=0, bank=0, row=0, column=0, bytes_=64, issue_cycle=safe_cycle
        )
        a = plain.execute([request])[0][0]
        b = refreshing.execute([request])[0][0]
        assert a.finish_cycle == b.finish_cycle

    def test_blackouts_staggered_across_ranks(self):
        system = MemorySystem(refresh_config())
        timing = system.config.timing
        # At cycle 0, rank 0 is refreshing but a later-offset rank is not.
        r0 = ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64)
        r3 = ReadRequest(rank=3, bank=0, row=0, column=0, bytes_=64)
        c0 = system.execute([r0])[0][0]
        system.reset()
        c3 = system.execute([r3])[0][0]
        assert c0.finish_cycle > c3.finish_cycle

    def test_blackout_recurs_every_trefi(self):
        system = MemorySystem(refresh_config())
        timing = system.config.timing
        request = ReadRequest(
            rank=0, bank=0, row=0, column=0, bytes_=64,
            issue_cycle=timing.tREFI + 1,
        )
        completion = system.execute([request])[0][0]
        assert completion.start_cycle >= timing.tREFI + timing.tRFC
