"""Property-based tests for the memory substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    ColumnMajorPlacement,
    DramTiming,
    MemoryConfig,
    MemorySystem,
    ReadRequest,
    RowMajorPlacement,
)
from repro.memory.bank import Bank


request_strategy = st.builds(
    ReadRequest,
    rank=st.integers(min_value=0, max_value=3),
    bank=st.integers(min_value=0, max_value=15),
    row=st.integers(min_value=0, max_value=63),
    column=st.just(0),
    bytes_=st.sampled_from([64, 128, 512]),
    issue_cycle=st.integers(min_value=0, max_value=500),
)


@settings(max_examples=60, deadline=None)
@given(requests=st.lists(request_strategy, min_size=1, max_size=24))
def test_completions_causal_and_consistent(requests):
    """Every completion finishes after its issue; stats add up."""
    system = MemorySystem(MemoryConfig.small_test_system())
    completions, stats = system.execute(requests)
    assert len(completions) == len(requests)
    for completion in completions:
        assert completion.finish_cycle > completion.request.issue_cycle
        assert completion.start_cycle >= completion.request.issue_cycle
    assert stats.reads == len(requests)
    assert stats.row_hits + stats.row_misses == len(requests)
    assert stats.bytes_read == sum(r.bytes_ for r in requests)
    assert stats.finish_cycle == max(c.finish_cycle for c in completions)


@settings(max_examples=60, deadline=None)
@given(requests=st.lists(request_strategy, min_size=1, max_size=16))
def test_frfcfs_never_loses_row_hits(requests):
    """FR-FCFS can only trade equal-or-more row hits than FCFS."""
    config = MemoryConfig.small_test_system()
    _, fcfs = MemorySystem(config, policy="fcfs").execute(requests)
    _, frfcfs = MemorySystem(config, policy="frfcfs").execute(requests)
    assert frfcfs.row_hits >= fcfs.row_hits


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=12)
)
def test_bank_time_monotone(rows):
    """A bank's command timeline never goes backwards."""
    bank = Bank(DramTiming())
    last_ready = 0
    for row in rows:
        outcome = bank.access(row, at_cycle=0, bursts=1)
        assert outcome.data_ready >= outcome.command_start
        assert bank.ready_cycle >= last_ready
        last_ready = bank.ready_cycle


@settings(max_examples=60, deadline=None)
@given(vector_id=st.integers(min_value=0, max_value=1_000_000))
def test_placements_cover_vector_exactly(vector_id):
    geometry = MemoryConfig.ddr4_2400_quad_channel().geometry
    for placement in (
        RowMajorPlacement(geometry, 512),
        ColumnMajorPlacement(geometry, 512),
    ):
        requests = placement.requests_for(vector_id)
        assert sum(r.bytes_ for r in requests) == 512
        for request in requests:
            assert 0 <= request.rank < geometry.total_ranks
            assert request.column + request.bytes_ <= geometry.row_bytes


@settings(max_examples=40, deadline=None)
@given(
    vector_a=st.integers(min_value=0, max_value=100_000),
    vector_b=st.integers(min_value=0, max_value=100_000),
)
def test_row_major_distinct_vectors_distinct_slots(vector_a, vector_b):
    """No two vectors may alias the same DRAM bytes."""
    geometry = MemoryConfig.ddr4_2400_quad_channel().geometry
    placement = RowMajorPlacement(geometry, 512)
    if vector_a == vector_b:
        return
    a = placement.requests_for(vector_a)[0]
    b = placement.requests_for(vector_b)[0]
    assert (a.rank, a.bank, a.row, a.column) != (b.rank, b.bank, b.row, b.column)
