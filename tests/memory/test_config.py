"""Unit tests for memory geometry/timing configuration."""

import pytest

from repro.memory import DramEnergy, DramTiming, MemoryConfig, MemoryGeometry


class TestMemoryGeometry:
    def test_paper_target_has_32_ranks(self):
        geometry = MemoryConfig.ddr4_2400_quad_channel().geometry
        assert geometry.channels == 4
        assert geometry.ranks_per_channel == 8
        assert geometry.total_ranks == 32

    def test_rank_of_round_trips_with_locate(self):
        geometry = MemoryGeometry()
        for global_rank in range(geometry.total_ranks):
            channel, dimm, rank = geometry.locate(global_rank)
            assert geometry.rank_of(channel, dimm, rank) == global_rank

    def test_rank_of_rejects_out_of_range(self):
        geometry = MemoryGeometry()
        with pytest.raises(ValueError):
            geometry.rank_of(4, 0, 0)
        with pytest.raises(ValueError):
            geometry.rank_of(0, 4, 0)
        with pytest.raises(ValueError):
            geometry.rank_of(0, 0, 2)

    def test_locate_rejects_out_of_range(self):
        geometry = MemoryGeometry()
        with pytest.raises(ValueError):
            geometry.locate(geometry.total_ranks)
        with pytest.raises(ValueError):
            geometry.locate(-1)

    def test_dimm_of_groups_rank_pairs(self):
        geometry = MemoryGeometry()
        assert geometry.dimm_of(0) == geometry.dimm_of(1)
        assert geometry.dimm_of(0) != geometry.dimm_of(2)

    def test_channel_of_is_contiguous_blocks(self):
        geometry = MemoryGeometry()
        assert geometry.channel_of(0) == 0
        assert geometry.channel_of(7) == 0
        assert geometry.channel_of(8) == 1
        assert geometry.channel_of(31) == 3

    def test_total_banks(self):
        geometry = MemoryGeometry()
        assert geometry.total_banks == 32 * 16


class TestDramTiming:
    def test_row_miss_penalty_exceeds_closed_penalty(self):
        timing = DramTiming()
        assert timing.row_miss_penalty > timing.row_closed_penalty
        assert timing.row_miss_penalty == timing.tRP + timing.tRCD


class TestDramEnergy:
    def test_access_energy_scales_with_bursts_and_activates(self):
        energy = DramEnergy()
        base = energy.access_energy_pj(bursts=1, activates=0)
        assert energy.access_energy_pj(bursts=2, activates=0) == pytest.approx(2 * base)
        with_act = energy.access_energy_pj(bursts=1, activates=1)
        assert with_act > base

    def test_access_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            DramEnergy().access_energy_pj(bursts=-1, activates=0)


class TestScaledConfig:
    def test_scaled_to_ranks_matches_request(self):
        base = MemoryConfig()
        for ranks in (2, 4, 8, 16, 32):
            scaled = base.scaled_to_ranks(ranks)
            assert scaled.geometry.total_ranks == ranks

    def test_scaled_uses_at_most_four_channels(self):
        scaled = MemoryConfig().scaled_to_ranks(32)
        assert scaled.geometry.channels == 4

    def test_small_rank_counts_use_fewer_channels(self):
        scaled = MemoryConfig().scaled_to_ranks(2)
        assert scaled.geometry.channels == 2
        assert scaled.geometry.total_ranks == 2

    def test_scaled_rejects_invalid(self):
        with pytest.raises(ValueError):
            MemoryConfig().scaled_to_ranks(0)
