"""Tests for placement policies and the MemorySystem facade."""

import pytest

from repro.memory import (
    ColumnMajorPlacement,
    MemoryConfig,
    MemorySystem,
    ReadRequest,
    RowMajorPlacement,
    StreamPlacement,
)


@pytest.fixture
def config():
    return MemoryConfig.ddr4_2400_quad_channel()


class TestRowMajorPlacement:
    def test_single_request_per_vector(self, config):
        placement = RowMajorPlacement(config.geometry, vector_bytes=512)
        requests = placement.requests_for(7)
        assert len(requests) == 1
        assert requests[0].bytes_ == 512
        assert requests[0].rank == 7 % config.geometry.total_ranks

    def test_round_robin_home_ranks(self, config):
        placement = RowMajorPlacement(config.geometry, vector_bytes=512)
        total = config.geometry.total_ranks
        assert placement.home_rank(0) == 0
        assert placement.home_rank(total) == 0
        assert placement.home_rank(total + 3) == 3

    def test_consecutive_slots_share_rows(self, config):
        placement = RowMajorPlacement(config.geometry, vector_bytes=512)
        total = config.geometry.total_ranks
        first = placement.requests_for(0)[0]
        second = placement.requests_for(total)[0]  # next slot in rank 0
        assert (first.bank, first.row) == (second.bank, second.row)
        assert second.column == first.column + 512

    def test_requests_stay_within_row(self, config):
        placement = RowMajorPlacement(config.geometry, vector_bytes=512)
        for vector_id in range(0, 4096, 37):
            for request in placement.requests_for(vector_id):
                assert request.column + request.bytes_ <= config.geometry.row_bytes

    def test_rejects_oversized_vector(self, config):
        with pytest.raises(ValueError):
            RowMajorPlacement(config.geometry, vector_bytes=config.geometry.row_bytes * 2)


class TestColumnMajorPlacement:
    def test_touches_every_rank(self, config):
        placement = ColumnMajorPlacement(config.geometry, vector_bytes=512)
        requests = placement.requests_for(3)
        assert len(requests) == config.geometry.total_ranks
        assert {r.rank for r in requests} == set(range(config.geometry.total_ranks))

    def test_slices_sum_to_vector(self, config):
        placement = ColumnMajorPlacement(config.geometry, vector_bytes=512)
        requests = placement.requests_for(3)
        assert sum(r.bytes_ for r in requests) == 512
        assert placement.slice_bytes == 512 // 32

    def test_has_no_home_rank(self, config):
        placement = ColumnMajorPlacement(config.geometry, vector_bytes=512)
        assert placement.home_rank(11) is None

    def test_rejects_indivisible_vector(self, config):
        with pytest.raises(ValueError):
            ColumnMajorPlacement(config.geometry, vector_bytes=100)


class TestStreamPlacement:
    def test_stream_splits_on_row_boundaries(self, config):
        stream = StreamPlacement(config.geometry, rank=5)
        row_bytes = config.geometry.row_bytes
        requests = stream.requests_for_stream(start_byte=row_bytes - 100, total_bytes=300)
        assert [r.bytes_ for r in requests] == [100, 200]
        assert requests[0].row != requests[1].row or requests[0].bank != requests[1].bank

    def test_stream_covers_extent_exactly(self, config):
        stream = StreamPlacement(config.geometry, rank=0)
        requests = stream.requests_for_stream(0, 3 * config.geometry.row_bytes + 17)
        assert sum(r.bytes_ for r in requests) == 3 * config.geometry.row_bytes + 17

    def test_rejects_bad_extent(self, config):
        stream = StreamPlacement(config.geometry, rank=0)
        with pytest.raises(ValueError):
            stream.requests_for_stream(-1, 10)
        with pytest.raises(ValueError):
            stream.requests_for_stream(0, 0)


class TestMemorySystem:
    def test_channels_run_in_parallel(self, config):
        system = MemorySystem(config)
        # One 512 B read on each of the four channels.
        ranks = [0, 8, 16, 24]
        requests = [
            ReadRequest(rank=rank, bank=0, row=0, column=0, bytes_=512)
            for rank in ranks
        ]
        completions, stats = system.execute(requests)
        finishes = {c.finish_cycle for c in completions}
        assert len(finishes) == 1  # identical: fully parallel channels
        assert stats.reads == 4
        assert stats.ranks_touched == 4

    def test_same_channel_serialises_bus(self, config):
        system = MemorySystem(config)
        requests = [
            ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=512),
            ReadRequest(rank=1, bank=0, row=0, column=0, bytes_=512),
        ]
        completions, _ = system.execute(requests)
        assert completions[1].finish_cycle > completions[0].finish_cycle

    def test_completions_in_request_order(self, config):
        system = MemorySystem(config)
        requests = [
            ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64, issue_cycle=100, tag="late"),
            ReadRequest(rank=0, bank=1, row=0, column=0, bytes_=64, issue_cycle=0, tag="early"),
        ]
        completions, _ = system.execute(requests)
        assert completions[0].request.tag == "late"
        assert completions[1].request.tag == "early"

    def test_reset_restores_cold_state(self, config):
        system = MemorySystem(config)
        request = ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64)
        first, _ = system.execute([request])
        again, _ = system.execute([request])
        assert again[0].row_hit  # warm row buffer
        system.reset()
        cold, _ = system.execute([request])
        assert not cold[0].row_hit
        assert len(system.trace) == 1

    def test_stats_row_hit_rate(self, config):
        system = MemorySystem(config)
        request = ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64)
        _, first = system.execute([request, request, request])
        assert first.row_hits == 2
        assert first.row_misses == 1
        assert first.row_hit_rate == pytest.approx(2 / 3)

    def test_stats_merge(self, config):
        system = MemorySystem(config)
        request = ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64)
        _, a = system.execute([request])
        _, b = system.execute([request])
        merged = a.merged_with(b)
        assert merged.reads == 2
        assert merged.per_rank_reads[0] == 2
        assert merged.finish_cycle == max(a.finish_cycle, b.finish_cycle)

    def test_energy_accounting_positive(self, config):
        system = MemorySystem(config)
        request = ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=512)
        _, stats = system.execute([request])
        assert stats.energy_pj(config) > 0
        assert stats.bursts == 8
