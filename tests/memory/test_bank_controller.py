"""Unit tests for bank row-buffer behaviour and channel scheduling."""

import pytest

from repro.memory import DramTiming, MemoryConfig, ReadRequest
from repro.memory.bank import Bank
from repro.memory.controller import ChannelController


@pytest.fixture
def timing():
    return DramTiming()


@pytest.fixture
def config():
    return MemoryConfig.small_test_system()


class TestBank:
    def test_first_access_activates(self, timing):
        bank = Bank(timing)
        outcome = bank.access(row=5, at_cycle=0, bursts=1)
        assert outcome.activated
        assert not outcome.row_hit
        assert outcome.data_ready == timing.tRCD + timing.tCAS

    def test_second_access_same_row_hits(self, timing):
        bank = Bank(timing)
        bank.access(row=5, at_cycle=0, bursts=1)
        outcome = bank.access(row=5, at_cycle=100, bursts=1)
        assert outcome.row_hit
        assert not outcome.activated
        assert outcome.data_ready == 100 + timing.tCAS

    def test_row_conflict_pays_precharge_and_activate(self, timing):
        bank = Bank(timing)
        bank.access(row=5, at_cycle=0, bursts=1)
        hit = bank.access(row=5, at_cycle=100, bursts=1)
        miss = bank.access(row=9, at_cycle=200, bursts=1)
        assert not miss.row_hit
        assert miss.activated
        conflict_latency = miss.data_ready - 200
        hit_latency = hit.data_ready - 100
        assert conflict_latency == hit_latency + timing.tRP + timing.tRCD

    def test_tras_delays_early_precharge(self, timing):
        bank = Bank(timing)
        bank.access(row=1, at_cycle=0, bursts=1)
        # Conflict immediately after activation must wait out tRAS.
        outcome = bank.access(row=2, at_cycle=timing.tRCD + 1, bursts=1)
        precharge_at = timing.tRCD + timing.tRAS
        expected = precharge_at + timing.tRP + timing.tRCD + timing.tCAS
        assert outcome.data_ready == expected

    def test_reset_clears_open_row(self, timing):
        bank = Bank(timing)
        bank.access(row=5, at_cycle=0, bursts=1)
        bank.reset()
        outcome = bank.access(row=5, at_cycle=0, bursts=1)
        assert not outcome.row_hit

    def test_back_to_back_reads_respect_tccd(self, timing):
        bank = Bank(timing)
        bank.access(row=5, at_cycle=0, bursts=4)
        outcome = bank.access(row=5, at_cycle=0, bursts=1)
        assert outcome.command_start >= 4 * timing.tCCD

    def test_rejects_nonpositive_bursts(self, timing):
        with pytest.raises(ValueError):
            Bank(timing).access(row=0, at_cycle=0, bursts=0)


class TestChannelController:
    def test_routes_only_its_channel(self, config):
        controller = ChannelController(0, config)
        bad_rank_channel = MemoryConfig.ddr4_2400_quad_channel()
        controller_q = ChannelController(0, bad_rank_channel)
        request = ReadRequest(rank=9, bank=0, row=0, column=0, bytes_=64)
        with pytest.raises(ValueError):
            controller_q.service(request)

    def test_rejects_row_spanning_request(self, config):
        controller = ChannelController(0, config)
        row_bytes = config.geometry.row_bytes
        request = ReadRequest(rank=0, bank=0, row=0, column=row_bytes - 32, bytes_=64)
        with pytest.raises(ValueError):
            controller.service(request)

    def test_single_read_latency_composition(self, config):
        controller = ChannelController(0, config)
        timing = config.timing
        completion = controller.service(
            ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64)
        )
        assert completion.bursts == 1
        assert completion.finish_cycle == timing.tRCD + timing.tCAS + timing.tBL
        assert not completion.row_hit

    def test_bus_serialises_parallel_banks(self, config):
        """Two reads to different banks overlap commands but share the bus."""
        controller = ChannelController(0, config)
        timing = config.timing
        first = controller.service(
            ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64)
        )
        second = controller.service(
            ReadRequest(rank=0, bank=1, row=0, column=0, bytes_=64)
        )
        # The second read's activate overlapped the first's, so it finishes
        # one burst after the first, not a full access later.
        assert second.finish_cycle == first.finish_cycle + timing.tBL

    def test_rank_switch_pays_trtrs(self, config):
        controller = ChannelController(0, config)
        timing = config.timing
        first = controller.service(
            ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64)
        )
        second = controller.service(
            ReadRequest(rank=1, bank=0, row=0, column=0, bytes_=64)
        )
        assert second.finish_cycle == first.finish_cycle + timing.tRTRS + timing.tBL

    def test_multi_burst_read_occupies_bus_longer(self, config):
        controller = ChannelController(0, config)
        timing = config.timing
        completion = controller.service(
            ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=512)
        )
        assert completion.bursts == 8
        assert completion.finish_cycle == timing.tRCD + timing.tCAS + 8 * timing.tBL

    def test_service_all_orders_by_issue_cycle(self, config):
        controller = ChannelController(0, config)
        late = ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64, issue_cycle=500)
        early = ReadRequest(rank=0, bank=1, row=0, column=0, bytes_=64, issue_cycle=0)
        completions = controller.service_all([late, early])
        assert completions[0].request is early
        assert completions[1].request is late
