"""Tests for controller scheduling policies (FCFS vs FR-FCFS)."""

import pytest

from repro.memory import MemoryConfig, MemorySystem, ReadRequest
from repro.memory.controller import ChannelController


def interleaved_rows(count=16):
    """Alternating rows in one bank: worst case for in-order open-page."""
    return [
        ReadRequest(rank=0, bank=0, row=i % 2, column=(i // 2) * 64, bytes_=64)
        for i in range(count)
    ]


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            ChannelController(0, MemoryConfig.small_test_system(), policy="random")
        with pytest.raises(ValueError):
            ChannelController(
                0, MemoryConfig.small_test_system(), frfcfs_window=0
            )

    def test_default_is_fcfs(self):
        system = MemorySystem(MemoryConfig.small_test_system())
        assert system.policy == "fcfs"

    def test_frfcfs_improves_row_hits_on_interleaved_pattern(self):
        config = MemoryConfig.small_test_system()
        fcfs = MemorySystem(config, policy="fcfs")
        frfcfs = MemorySystem(config, policy="frfcfs")
        _, fcfs_stats = fcfs.execute(interleaved_rows())
        _, frfcfs_stats = frfcfs.execute(interleaved_rows())
        assert frfcfs_stats.row_hits > fcfs_stats.row_hits
        assert frfcfs_stats.finish_cycle < fcfs_stats.finish_cycle

    def test_frfcfs_returns_completions_in_request_order(self):
        system = MemorySystem(MemoryConfig.small_test_system(), policy="frfcfs")
        requests = interleaved_rows(8)
        completions, _ = system.execute(requests)
        for request, completion in zip(requests, completions):
            assert completion.request is request

    def test_policies_agree_on_row_friendly_stream(self):
        """With no conflicts to dodge, FR-FCFS degenerates to FCFS."""
        config = MemoryConfig.small_test_system()
        stream = [
            ReadRequest(rank=0, bank=0, row=0, column=i * 64, bytes_=64)
            for i in range(8)
        ]
        _, a = MemorySystem(config, policy="fcfs").execute(stream)
        _, b = MemorySystem(config, policy="frfcfs").execute(stream)
        assert a.finish_cycle == b.finish_cycle
        assert a.row_hits == b.row_hits

    def test_frfcfs_bounded_window_prevents_starvation(self):
        """A request never waits behind more than window row-hitters."""
        config = MemoryConfig.small_test_system()
        system = MemorySystem(config, policy="frfcfs")
        # One row-0 miss buried under many row-1 hits.
        requests = [ReadRequest(rank=0, bank=0, row=1, column=0, bytes_=64)]
        requests += [
            ReadRequest(rank=0, bank=0, row=1, column=64 * (i + 1), bytes_=64)
            for i in range(20)
        ]
        requests.append(ReadRequest(rank=0, bank=0, row=0, column=0, bytes_=64))
        completions, _ = system.execute(requests)
        # The row-0 request completed (no starvation) — trivially true here,
        # but its finish is bounded by the whole stream's span.
        assert completions[-1].finish_cycle <= max(c.finish_cycle for c in completions)
