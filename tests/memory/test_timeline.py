"""Tests for the ASCII DRAM timeline renderer."""

import pytest

from repro.memory import MemoryConfig, MemorySystem, ReadRequest
from repro.memory.timeline import (
    TimelineOptions,
    render_rank_timeline,
    utilization_summary,
)


@pytest.fixture
def completions():
    system = MemorySystem(MemoryConfig.small_test_system())
    requests = [
        ReadRequest(rank=rank, bank=0, row=0, column=0, bytes_=512)
        for rank in range(4)
    ]
    done, _ = system.execute(requests)
    return done


class TestRender:
    def test_one_row_per_rank(self, completions):
        text = render_rank_timeline(completions)
        lines = text.splitlines()
        assert lines[0].startswith("cycles 0..")
        assert sum(1 for line in lines if line.startswith("rank")) == 4

    def test_busy_marks_present(self, completions):
        text = render_rank_timeline(completions)
        assert "#" in text

    def test_width_respected(self, completions):
        options = TimelineOptions(width=40)
        for line in render_rank_timeline(completions, options).splitlines()[1:]:
            strip = line.split("|")[1]
            assert len(strip) == 40

    def test_validation(self, completions):
        with pytest.raises(ValueError):
            render_rank_timeline([])
        with pytest.raises(ValueError):
            TimelineOptions(width=4)
        with pytest.raises(ValueError):
            TimelineOptions(busy_char="##")


class TestFaultTimeline:
    @pytest.fixture
    def chaos_events(self):
        from repro.faults import FaultPlan, FaultPolicy
        from repro.obs import InMemorySink, Tracer

        sink = InMemorySink()
        plan = FaultPlan(
            seed=0,
            rank_latency_multipliers={0: 3.0},
            rank_timeout_probability={1: 1.0},
        )
        system = MemorySystem(
            MemoryConfig.small_test_system(),
            faults=plan,
            fault_policy=FaultPolicy.graceful(max_read_retries=1),
            tracer=Tracer([sink]),
        )
        requests = [
            ReadRequest(rank=rank, bank=0, row=0, column=0, bytes_=512)
            for rank in range(4)
        ]
        system.execute(requests)
        return sink.events

    def test_fault_marks_overlaid(self, chaos_events):
        from repro.memory.timeline import render_fault_timeline

        text = render_fault_timeline(chaos_events)
        assert "~" in text  # injected on the degraded rank
        assert "!" in text  # detected / retried on the flaky rank
        assert "rank_degraded" in text
        assert "rank_timeout" in text

    def test_rejects_event_stream_without_memory_activity(self):
        from repro.memory.timeline import render_fault_timeline

        with pytest.raises(ValueError):
            render_fault_timeline([])

    def test_all_events_at_cycle_zero_renders(self):
        """An all-failed run (every shard dead, nothing dispatched) puts
        every fault event at cycle 0; the renderer must degrade to a
        one-cycle horizon rather than raising."""
        from repro.faults import FAULT_SHARD_DEAD
        from repro.memory.timeline import render_fault_timeline
        from repro.obs.events import FAULT_INJECTED, TraceEvent

        events = [
            TraceEvent(
                FAULT_INJECTED,
                cycle=0,
                rank=rank,
                args={"fault": FAULT_SHARD_DEAD},
            )
            for rank in range(2)
        ]
        text = render_fault_timeline(events)
        assert "cycles 0..1" in text
        assert text.count("~") >= 2
        assert FAULT_SHARD_DEAD in text

    def test_marks_only_stream_renders_without_spans(self):
        """Fault marks with no mem_read_complete spans still render —
        a dead rank emits injections but never completes a read."""
        from repro.memory.timeline import render_fault_timeline
        from repro.obs.events import FAULT_DETECTED, TraceEvent

        events = [
            TraceEvent(FAULT_DETECTED, cycle=40, rank=1, args={"fault": "x"})
        ]
        text = render_fault_timeline(events)
        assert "rank   1" in text
        assert "!" in text


class TestUtilization:
    def test_fractions_bounded(self, completions):
        summary = utilization_summary(completions)
        assert set(summary) == {0, 1, 2, 3}
        for fraction in summary.values():
            assert 0.0 < fraction <= 1.0

    def test_overlaps_merged(self):
        """Two overlapping spans must not double-count."""
        from repro.memory.request import Completion, ReadRequest as RR

        r = RR(rank=0, bank=0, row=0, column=0, bytes_=64)
        spans = [
            Completion(r, start_cycle=0, finish_cycle=60, row_hit=True, bursts=1, activated=False),
            Completion(r, start_cycle=30, finish_cycle=100, row_hit=True, bursts=1, activated=False),
        ]
        summary = utilization_summary(spans)
        assert summary[0] == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            utilization_summary([])
