"""Tests for the HBM integration preset (§VIII future work)."""

import numpy as np
import pytest

from repro.core import FafnirConfig, FafnirEngine
from repro.memory import (
    HBM2_GEOMETRY,
    MemoryConfig,
    MemorySystem,
    ReadRequest,
    hbm2_stack,
    pseudo_channel_count,
)


class TestHbmPreset:
    def test_32_pseudo_channels(self):
        config = hbm2_stack()
        assert pseudo_channel_count(config) == 32
        assert config.geometry.total_ranks == 32

    def test_no_rank_to_rank_penalty(self):
        assert hbm2_stack().timing.tRTRS == 0

    def test_faster_than_ddr4_for_scattered_reads(self):
        """32 independent pseudo-channels beat 4 shared DDR4 buses."""
        ddr4 = MemorySystem(MemoryConfig.ddr4_2400_quad_channel())
        hbm = MemorySystem(hbm2_stack())
        requests = [
            ReadRequest(rank=rank, bank=rank % 16, row=rank * 7, column=0, bytes_=512)
            for rank in range(32)
        ]
        _, ddr4_stats = ddr4.execute(requests)
        _, hbm_stats = hbm.execute(requests)
        assert hbm_stats.finish_cycle < ddr4_stats.finish_cycle

    def test_rows_are_smaller(self):
        assert HBM2_GEOMETRY.row_bytes == 2048


class TestFafnirOnHbm:
    def test_engine_runs_on_hbm_stack(self):
        """Leaf PEs on pseudo-channels (1PE:2PC) — the paper's §VIII sketch."""
        engine = FafnirEngine(
            config=FafnirConfig(),  # 32 leaves' worth of ranks, 1PE:2R
            memory_config=hbm2_stack(),
        )
        rng = np.random.default_rng(8)
        store = {}

        def source(index):
            if index not in store:
                store[index] = rng.normal(size=128)
            return store[index]

        queries = [list(rng.choice(2048, size=8, replace=False)) for _ in range(8)]
        result = engine.run_batch(queries, source)
        for query, vector in zip(queries, result.vectors):
            assert np.allclose(vector, np.sum([source(i) for i in set(query)], axis=0))

    def test_hbm_lookup_faster_than_ddr4(self):
        rng = np.random.default_rng(9)
        store = {}

        def source(index):
            if index not in store:
                store[index] = rng.normal(size=128)
            return store[index]

        queries = [list(rng.choice(4096, size=16, replace=False)) for _ in range(16)]
        ddr4 = FafnirEngine().run_batch(queries, source)
        hbm = FafnirEngine(memory_config=hbm2_stack()).run_batch(queries, source)
        assert hbm.stats.latency_pe_cycles < ddr4.stats.latency_pe_cycles
