"""Tests for the SpMV iteration/round planner (paper Fig. 8/9)."""

import pytest

from repro.spmv import SpmvPlan, sweep


class TestSpmvPlan:
    def test_single_chunk_needs_no_merging(self):
        plan = SpmvPlan(n_cols=2048, vector_size=2048)
        assert plan.chunks == 1
        assert plan.iterations == 1
        assert plan.merge_iterations == 0
        assert plan.total_merges == 0

    def test_small_matrix_single_chunk(self):
        plan = SpmvPlan(n_cols=100, vector_size=2048)
        assert plan.chunks == 1

    def test_chunk_count(self):
        plan = SpmvPlan(n_cols=10_000, vector_size=2048)
        assert plan.chunks == 5
        assert plan.rounds_per_iteration == [5, 1]
        assert plan.merge_iterations == 1
        assert plan.total_merges == 4

    def test_paper_claim_5m_columns_two_merge_iterations(self):
        """Fig. 9: beyond 5 M columns, no more than two merge iterations at
        vector size 2048."""
        for n_cols in (5_000_000, 10_000_000, 20_000_000):
            plan = SpmvPlan(n_cols=n_cols, vector_size=2048)
            assert plan.merge_iterations <= 2, n_cols

    def test_merge_iterations_grow_logarithmically(self):
        small = SpmvPlan(n_cols=2048 * 10, vector_size=2048)
        large = SpmvPlan(n_cols=2048 * 10_000, vector_size=2048)
        assert small.merge_iterations == 1
        assert large.merge_iterations == 2

    def test_smaller_vector_size_needs_more_rounds(self):
        """Fig. 9a vs 9b: vector size 1024 needs ~2× the rounds of 2048."""
        at_1024 = SpmvPlan(n_cols=1_000_000, vector_size=1024)
        at_2048 = SpmvPlan(n_cols=1_000_000, vector_size=2048)
        assert at_1024.chunks == pytest.approx(2 * at_2048.chunks, rel=0.01)
        assert at_1024.total_merges >= at_2048.total_merges

    def test_monotone_in_columns(self):
        plans = sweep(
            [2048 * (1 << k) for k in range(12)], vector_size=2048
        )
        chunk_counts = [plan.chunks for plan in plans]
        assert chunk_counts == sorted(chunk_counts)
        merge_counts = [plan.total_merges for plan in plans]
        assert merge_counts == sorted(merge_counts)

    def test_merges_equal_streams_minus_one(self):
        """Merging S streams down to 1 always takes S−1 merges."""
        for n_cols in (2048, 10_000, 500_000, 20_000_000):
            plan = SpmvPlan(n_cols=n_cols, vector_size=2048)
            assert plan.total_merges == plan.chunks - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SpmvPlan(n_cols=0)
        with pytest.raises(ValueError):
            SpmvPlan(n_cols=10, vector_size=0)
        with pytest.raises(ValueError):
            SpmvPlan(n_cols=10, merge_fan_in=1)
