"""Tests for the FAFNIR SpMV engine and the Two-Step baseline."""

import numpy as np
import pytest

from repro.baselines.twostep import TwoStepSpmvEngine
from repro.sparse import laplacian_2d, random_sparse, rmat
from repro.spmv import FafnirSpmvEngine


@pytest.fixture(scope="module")
def fafnir():
    return FafnirSpmvEngine()


@pytest.fixture(scope="module")
def twostep():
    return TwoStepSpmvEngine()


class TestFunctional:
    def test_fafnir_matches_oracle_small(self, fafnir):
        matrix = random_sparse(50, 60, 0.1, seed=1)
        x = np.random.default_rng(2).normal(size=60)
        assert fafnir.oracle_check(matrix, x)

    def test_fafnir_matches_oracle_multi_chunk(self, fafnir):
        matrix = laplacian_2d(70)  # 4 900 columns → 3 chunks
        x = np.random.default_rng(3).normal(size=matrix.shape[1])
        result = fafnir.multiply(matrix, x)
        assert result.plan.chunks == 3
        assert np.allclose(result.y, matrix.matvec(x))

    def test_twostep_matches_oracle(self, twostep):
        matrix = rmat(11, edge_factor=4, seed=4)
        x = np.random.default_rng(5).normal(size=matrix.shape[1])
        assert twostep.oracle_check(matrix, x)

    def test_engines_agree(self, fafnir, twostep):
        matrix = laplacian_2d(50)
        x = np.random.default_rng(6).normal(size=matrix.shape[1])
        assert np.allclose(
            fafnir.multiply(matrix, x).y, twostep.multiply(matrix, x).y
        )

    def test_operand_shape_checked(self, fafnir, twostep):
        matrix = laplacian_2d(10)
        for engine in (fafnir, twostep):
            with pytest.raises(ValueError):
                engine.multiply(matrix, np.zeros(7))

    def test_empty_rows_handled(self, fafnir):
        from repro.sparse import CooMatrix, LilMatrix

        matrix = LilMatrix.from_coo(
            CooMatrix(shape=(5, 5), rows=[0], cols=[4], values=[2.0])
        )
        x = np.ones(5)
        result = fafnir.multiply(matrix, x)
        assert np.allclose(result.y, [2.0, 0, 0, 0, 0])


class TestTimingShape:
    def test_fafnir_step1_beats_twostep(self, fafnir, twostep):
        """FAFNIR applies SpMV in-stream; Two-Step writes intermediates."""
        matrix = laplacian_2d(45)
        x = np.ones(matrix.shape[1])
        f = fafnir.multiply(matrix, x).stats
        t = twostep.multiply(matrix, x).stats
        assert f.step1_ns < t.step1_ns

    def test_twostep_merges_faster_per_iteration(self, fafnir, twostep):
        """The dedicated multi-way merge core outpaces the generic tree."""
        matrix = rmat(15, edge_factor=8, seed=7)
        x = np.ones(matrix.shape[1])
        f = fafnir.multiply(matrix, x).stats
        t = twostep.multiply(matrix, x).stats
        assert f.merge_ns > t.merge_ns > 0

    def test_speedup_range_matches_fig14(self, fafnir, twostep):
        """Fig. 14: FAFNIR 1.1–4.6× over Two-Step; small scientific inputs
        at the top, large merge-bound graphs at the bottom."""
        rng = np.random.default_rng(8)
        small_sci = laplacian_2d(45)
        large_graph = rmat(15, edge_factor=8, seed=9)
        speedups = {}
        for name, matrix in (("sci", small_sci), ("graph", large_graph)):
            x = rng.normal(size=matrix.shape[1])
            f = fafnir.multiply(matrix, x).stats.total_ns
            t = twostep.multiply(matrix, x).stats.total_ns
            speedups[name] = t / f
        assert speedups["sci"] > speedups["graph"]
        assert 1.0 < speedups["graph"] < 2.5
        assert 2.5 < speedups["sci"] < 6.0

    def test_single_chunk_fafnir_has_no_merge_time(self, fafnir):
        matrix = laplacian_2d(40)
        result = fafnir.multiply(matrix, np.ones(matrix.shape[1]))
        assert result.plan.merge_iterations == 0
        assert result.stats.merge_ns == 0.0

    def test_single_chunk_twostep_still_pays_second_step(self, twostep):
        """The algorithm always reads its runs back — its namesake step."""
        matrix = laplacian_2d(40)
        result = twostep.multiply(matrix, np.ones(matrix.shape[1]))
        assert result.stats.merge_ns > 0.0

    def test_step1_scales_with_nnz(self, fafnir):
        small = random_sparse(1000, 1000, 0.005, seed=10)
        dense = random_sparse(1000, 1000, 0.05, seed=10)
        x = np.ones(1000)
        assert (
            fafnir.multiply(dense, x).stats.step1_ns
            > fafnir.multiply(small, x).stats.step1_ns
        )
