"""Tests for the CG and power-iteration solvers."""

import numpy as np
import pytest

from repro.sparse import LilMatrix, laplacian_2d
from repro.spmv import (
    FafnirSpmvEngine,
    conjugate_gradient,
    power_iteration,
)


@pytest.fixture(scope="module")
def engine():
    return FafnirSpmvEngine()


class TestConjugateGradient:
    def test_solves_laplacian_system(self, engine):
        matrix = laplacian_2d(15)
        rhs = np.random.default_rng(1).normal(size=matrix.shape[0])
        result = conjugate_gradient(matrix, rhs, engine, tolerance=1e-10)
        assert result.converged
        assert np.linalg.norm(matrix.matvec(result.values) - rhs) < 1e-8

    def test_matches_numpy_solve(self, engine):
        matrix = laplacian_2d(8)
        rhs = np.random.default_rng(2).normal(size=matrix.shape[0])
        result = conjugate_gradient(matrix, rhs, engine, tolerance=1e-12)
        expected = np.linalg.solve(matrix.to_dense(), rhs)
        assert np.allclose(result.values, expected, atol=1e-8)

    def test_residuals_shrink(self, engine):
        matrix = laplacian_2d(12)
        rhs = np.ones(matrix.shape[0])
        result = conjugate_gradient(matrix, rhs, engine, tolerance=1e-10)
        assert result.residuals[-1] < result.residuals[0]
        assert result.total_ns > 0

    def test_rejects_indefinite_matrix(self, engine):
        indefinite = LilMatrix.from_dense(np.diag([1.0, -1.0]))
        with pytest.raises(ValueError, match="positive definite"):
            conjugate_gradient(indefinite, np.ones(2), engine)

    def test_validation(self, engine):
        matrix = laplacian_2d(4)
        with pytest.raises(ValueError):
            conjugate_gradient(matrix, np.ones(3), engine)
        with pytest.raises(ValueError):
            conjugate_gradient(matrix, np.ones(16), engine, tolerance=0)
        with pytest.raises(ValueError):
            conjugate_gradient(
                LilMatrix.from_dense(np.ones((2, 3))), np.ones(2), engine
            )


class TestPowerIteration:
    def test_finds_dominant_eigenpair(self, engine):
        dense = np.diag([5.0, 2.0, 1.0])
        dense[0, 1] = 0.1  # break symmetry of the iterate
        matrix = LilMatrix.from_dense(dense)
        result = power_iteration(matrix, engine, tolerance=1e-12)
        assert result.converged
        assert result.eigenvalue == pytest.approx(5.0, rel=1e-6)

    def test_matches_numpy_on_laplacian(self, engine):
        matrix = laplacian_2d(7)
        result = power_iteration(matrix, engine, tolerance=1e-12)
        expected = np.max(np.linalg.eigvalsh(matrix.to_dense()))
        assert result.eigenvalue == pytest.approx(expected, rel=1e-6)

    def test_eigenvector_satisfies_definition(self, engine):
        matrix = laplacian_2d(6)
        result = power_iteration(matrix, engine, tolerance=1e-12)
        product = matrix.matvec(result.eigenvector)
        assert np.allclose(
            product, result.eigenvalue * result.eigenvector, atol=1e-5
        )

    def test_accumulates_hardware_time(self, engine):
        matrix = laplacian_2d(5)
        result = power_iteration(matrix, engine, tolerance=1e-10)
        assert result.total_ns > 0
        assert len(result.history) == result.iterations

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            power_iteration(LilMatrix.from_dense(np.ones((2, 3))), engine)
        with pytest.raises(ValueError):
            power_iteration(laplacian_2d(4), engine, tolerance=0)
