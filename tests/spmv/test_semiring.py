"""Tests for semiring-generalized SpMV and the SSSP application."""

import numpy as np
import pytest

from repro.baselines.twostep import TwoStepSpmvEngine
from repro.sparse import CooMatrix, LilMatrix, rmat
from repro.spmv import (
    FafnirSpmvEngine,
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    get_semiring,
    sssp,
)


@pytest.fixture(scope="module")
def engine():
    return FafnirSpmvEngine()


def weighted_graph():
    """0→1 (w=2), 0→2 (w=10), 1→2 (w=3), 2→3 (w=1): shortest 0→3 is 6."""
    return LilMatrix.from_coo(
        CooMatrix(
            shape=(4, 4),
            rows=[0, 0, 1, 2],
            cols=[1, 2, 2, 3],
            values=[2.0, 10.0, 3.0, 1.0],
        )
    )


class TestSemiringAlgebra:
    def test_lookup_by_name(self):
        for name in ("plus_times", "min_plus", "max_times", "or_and"):
            assert get_semiring(name).name == name
        with pytest.raises(KeyError):
            get_semiring("xor_mul")

    def test_plus_times_matches_matvec(self):
        matrix = weighted_graph()
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(PLUS_TIMES.matvec(matrix, x), matrix.matvec(x))

    def test_min_plus_identity_is_infinity(self):
        assert MIN_PLUS.zero == np.inf
        assert MIN_PLUS.reduce(np.array([])) == np.inf

    def test_min_plus_matvec(self):
        matrix = weighted_graph()
        x = np.array([0.0, np.inf, np.inf, np.inf])
        y = MIN_PLUS.matvec(matrix, x)
        # Row 0 has edges to 1 (w2) and 2 (w10): min(2+inf? no — w + x[col])
        assert y[0] == min(2.0 + x[1], 10.0 + x[2])  # inf
        # Empty rows give the identity.
        assert y[3] == np.inf

    def test_max_times(self):
        matrix = LilMatrix.from_dense(np.array([[0.5, 0.9], [0.0, 0.4]]))
        x = np.array([1.0, 1.0])
        y = MAX_TIMES.matvec(matrix, x)
        assert y[0] == pytest.approx(0.9)
        assert y[1] == pytest.approx(0.4)

    def test_or_and_reachability(self):
        matrix = weighted_graph()
        frontier = np.array([1.0, 0.0, 0.0, 0.0])
        # One step backwards: who can reach the frontier — use transpose
        # semantics implicitly by applying to rows: row v = edges from v.
        reached = OR_AND.matvec(matrix, frontier)
        assert list(reached) == [0.0, 0.0, 0.0, 0.0]  # no row points at 0
        frontier = np.array([0.0, 1.0, 1.0, 0.0])
        reached = OR_AND.matvec(matrix, frontier)
        assert reached[0] == 1.0  # 0 has edges into {1,2}


class TestEnginesWithSemirings:
    def test_fafnir_min_plus_matches_direct(self, engine):
        matrix = weighted_graph()
        x = np.array([0.0, 4.0, 1.0, np.inf])
        result = engine.multiply(matrix, x, semiring=MIN_PLUS)
        assert np.allclose(result.y, MIN_PLUS.matvec(matrix, x))

    def test_engines_agree_on_min_plus(self, engine):
        graph = rmat(8, edge_factor=4, seed=30)
        x = np.random.default_rng(31).uniform(0, 10, size=graph.shape[1])
        fafnir = engine.multiply(graph, x, semiring=MIN_PLUS)
        twostep = TwoStepSpmvEngine().multiply(graph, x, semiring=MIN_PLUS)
        assert np.allclose(fafnir.y, twostep.y)

    def test_multi_chunk_min_plus(self, engine):
        """Chunk partials must combine with min, not plus."""
        graph = rmat(12, edge_factor=4, seed=32)  # 4096 cols → 2 chunks
        x = np.random.default_rng(33).uniform(0, 10, size=graph.shape[1])
        result = engine.multiply(graph, x, semiring=MIN_PLUS)
        assert result.plan.chunks == 2
        assert np.allclose(result.y, MIN_PLUS.matvec(graph, x))


class TestSssp:
    def test_chain_distances(self, engine):
        distances = sssp(weighted_graph(), engine, source=0)
        assert distances.converged
        assert list(distances.values) == [0.0, 2.0, 5.0, 6.0]

    def test_unreachable_is_infinite(self, engine):
        graph = LilMatrix.from_coo(
            CooMatrix(shape=(3, 3), rows=[0], cols=[1], values=[4.0])
        )
        distances = sssp(graph, engine, source=0)
        assert distances.values[2] == np.inf

    def test_matches_dijkstra_reference(self, engine):
        rng = np.random.default_rng(34)
        graph = rmat(7, edge_factor=4, seed=35)
        # Positive weights.
        weighted = LilMatrix(
            graph.shape,
            graph.row_indices,
            [rng.uniform(1, 5, size=len(v)) for v in graph.row_values],
        )
        result = sssp(weighted, engine, source=0)

        # Reference: Bellman-Ford on the dense matrix.
        dense = weighted.to_dense()
        n = dense.shape[0]
        reference = np.full(n, np.inf)
        reference[0] = 0.0
        for _ in range(n - 1):
            for u in range(n):
                if np.isfinite(reference[u]):
                    for v in np.nonzero(dense[u])[0]:
                        reference[v] = min(reference[v], reference[u] + dense[u, v])
        assert np.allclose(result.values, reference)

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            sssp(weighted_graph(), engine, source=9)
        with pytest.raises(ValueError):
            sssp(LilMatrix.from_dense(np.ones((2, 3))), engine, source=0)

    def test_iteration_cap(self, engine):
        result = sssp(weighted_graph(), engine, source=0, max_iterations=1)
        assert result.iterations == 1
        assert not result.converged
