"""Tests for the SpMV applications (PageRank, BFS, Jacobi)."""

import numpy as np
import pytest

from repro.sparse import CooMatrix, LilMatrix, diagonally_dominant, rmat
from repro.spmv import FafnirSpmvEngine, bfs, jacobi_solve, pagerank


@pytest.fixture(scope="module")
def engine():
    return FafnirSpmvEngine()


def tiny_chain():
    """Directed path 0→1→2→3 plus a back edge 3→0."""
    return LilMatrix.from_coo(
        CooMatrix(
            shape=(4, 4),
            rows=[0, 1, 2, 3],
            cols=[1, 2, 3, 0],
            values=[1.0, 1.0, 1.0, 1.0],
        )
    )


class TestPageRank:
    def test_cycle_graph_is_uniform(self, engine):
        result = pagerank(tiny_chain(), engine, tolerance=1e-12)
        assert result.converged
        assert np.allclose(result.values, 0.25, atol=1e-6)

    def test_rank_sums_to_one(self, engine):
        graph = rmat(9, edge_factor=4, seed=1)
        result = pagerank(graph, engine, tolerance=1e-10)
        assert result.converged
        assert result.values.sum() == pytest.approx(1.0)

    def test_matches_dense_oracle(self, engine):
        graph = rmat(8, edge_factor=4, seed=2)
        result = pagerank(graph, engine, tolerance=1e-12, max_iterations=300)
        dense = graph.to_dense()
        n = dense.shape[0]
        out_degree = dense.sum(axis=1)
        transition = np.zeros_like(dense)
        has_out = out_degree > 0
        transition[has_out] = (dense[has_out].T / out_degree[has_out]).T
        rank = np.full(n, 1 / n)
        for _ in range(500):
            updated = (
                0.85 * transition.T @ rank
                + 0.15 / n
                + 0.85 * rank[~has_out].sum() / n
            )
            if np.abs(updated - rank).sum() < 1e-14:
                break
            rank = updated
        assert np.allclose(result.values, rank, atol=1e-8)

    def test_accumulates_hardware_time(self, engine):
        result = pagerank(tiny_chain(), engine, tolerance=1e-12)
        assert result.total_ns > 0
        assert len(result.residuals) == result.iterations

    def test_rejects_non_square(self, engine):
        bad = LilMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError):
            pagerank(bad, engine)

    def test_rejects_bad_damping(self, engine):
        with pytest.raises(ValueError):
            pagerank(tiny_chain(), engine, damping=1.5)


class TestBfs:
    def test_chain_levels(self, engine):
        result = bfs(tiny_chain(), engine, source=0)
        assert result.converged
        assert list(result.values) == [0, 1, 2, 3]

    def test_unreachable_vertices_stay_minus_one(self, engine):
        graph = LilMatrix.from_coo(
            CooMatrix(shape=(3, 3), rows=[0], cols=[1], values=[1.0])
        )
        result = bfs(graph, engine, source=0)
        assert list(result.values) == [0, 1, -1]

    def test_matches_networkx_style_bfs(self, engine):
        graph = rmat(7, edge_factor=4, seed=3)
        result = bfs(graph, engine, source=0)
        # Reference BFS on the dense adjacency.
        dense = graph.to_dense() != 0
        n = dense.shape[0]
        levels = np.full(n, -1)
        levels[0] = 0
        frontier = [0]
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for u in frontier:
                for v in np.nonzero(dense[u])[0]:
                    if levels[v] < 0:
                        levels[v] = depth
                        next_frontier.append(v)
            frontier = next_frontier
        assert np.array_equal(result.values.astype(int), levels)

    def test_source_validated(self, engine):
        with pytest.raises(ValueError):
            bfs(tiny_chain(), engine, source=9)

    def test_max_levels_cap(self, engine):
        result = bfs(tiny_chain(), engine, source=0, max_levels=1)
        assert result.iterations == 1
        assert list(result.values) == [0, 1, -1, -1]


class TestJacobi:
    def test_solves_diagonally_dominant_system(self, engine):
        matrix = diagonally_dominant(120, density=0.03, seed=4)
        rhs = np.random.default_rng(5).normal(size=120)
        result = jacobi_solve(matrix, rhs, engine, tolerance=1e-10)
        assert result.converged
        assert np.linalg.norm(matrix.matvec(result.values) - rhs) < 1e-9

    def test_matches_numpy_solve(self, engine):
        matrix = diagonally_dominant(60, density=0.05, seed=6)
        rhs = np.random.default_rng(7).normal(size=60)
        result = jacobi_solve(matrix, rhs, engine, tolerance=1e-12)
        expected = np.linalg.solve(matrix.to_dense(), rhs)
        assert np.allclose(result.values, expected, atol=1e-8)

    def test_residuals_decrease(self, engine):
        matrix = diagonally_dominant(80, density=0.04, seed=8)
        rhs = np.ones(80)
        result = jacobi_solve(matrix, rhs, engine, tolerance=1e-10)
        assert result.residuals[-1] < result.residuals[0]

    def test_zero_diagonal_rejected(self, engine):
        matrix = LilMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError, match="zero diagonal"):
            jacobi_solve(matrix, np.ones(2), engine)

    def test_shape_validation(self, engine):
        matrix = diagonally_dominant(10, seed=9)
        with pytest.raises(ValueError):
            jacobi_solve(matrix, np.ones(5), engine)
        with pytest.raises(ValueError):
            jacobi_solve(LilMatrix.from_dense(np.ones((2, 3))), np.ones(2), engine)
