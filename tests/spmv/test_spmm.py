"""Tests for SpMM (sparse × dense block)."""

import numpy as np
import pytest

from repro.sparse import laplacian_2d, random_sparse
from repro.spmv import FafnirSpmvEngine
from repro.spmv.spmm import spmm


@pytest.fixture(scope="module")
def engine():
    return FafnirSpmvEngine()


class TestSpmm:
    def test_matches_dense_product(self, engine):
        matrix = random_sparse(40, 50, 0.1, seed=1)
        block = np.random.default_rng(2).normal(size=(50, 4))
        result = spmm(engine, matrix, block)
        assert result.y.shape == (40, 4)
        assert np.allclose(result.y, matrix.to_dense() @ block)

    def test_single_column_equals_spmv(self, engine):
        matrix = laplacian_2d(12)
        x = np.random.default_rng(3).normal(size=matrix.shape[1])
        block_result = spmm(engine, matrix, x[:, None])
        spmv_result = engine.multiply(matrix, x)
        assert np.allclose(block_result.y[:, 0], spmv_result.y)

    def test_stream_sharing_saves_time(self, engine):
        """The shared matrix stream makes SpMM cheaper than k SpMVs."""
        matrix = laplacian_2d(30)
        block = np.random.default_rng(4).normal(size=(matrix.shape[1], 8))
        result = spmm(engine, matrix, block)
        assert result.stats.total_ns < result.naive_ns
        assert result.stream_sharing_speedup > 2.0

    def test_merge_cost_still_paid_per_column(self, engine):
        matrix = laplacian_2d(70)  # multi-chunk → merge iterations exist
        narrow = spmm(engine, matrix, np.ones((matrix.shape[1], 1)))
        wide = spmm(engine, matrix, np.ones((matrix.shape[1], 4)))
        assert wide.stats.merge_ns == pytest.approx(4 * narrow.stats.merge_ns)

    def test_validation(self, engine):
        matrix = laplacian_2d(8)
        with pytest.raises(ValueError):
            spmm(engine, matrix, np.ones(matrix.shape[1]))  # 1-D
        with pytest.raises(ValueError):
            spmm(engine, matrix, np.ones((3, 2)))  # wrong rows
        with pytest.raises(ValueError):
            spmm(engine, matrix, np.ones((matrix.shape[1], 0)))  # no columns
