"""Property-based tests (hypothesis) for the header algebra.

``Header`` implements the paper's (indices, queries) bookkeeping as set
algebra over frozensets; Python's ``set`` semantics are the oracle.  The
canonical entry ordering is load-bearing — the scalar and vector PE
kernels iterate entries in header order, so two headers built from the
same sets in different orders must be ``==``-equal or the differential
event-stream tests could never pass.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.header import Header, entry_sort_key, sorted_tuple

index_strategy = st.integers(min_value=0, max_value=200)
indices_strategy = st.frozensets(index_strategy, min_size=1, max_size=8)
entry_strategy = st.frozensets(index_strategy, max_size=6)
entries_strategy = st.lists(entry_strategy, min_size=1, max_size=8)


def _disjoint_entries(indices, entries):
    return [frozenset(entry) - indices for entry in entries]


@settings(max_examples=100, deadline=None)
@given(indices=indices_strategy, entries=entries_strategy)
def test_make_is_permutation_invariant(indices, entries):
    """Canonical ordering: entry submission order never matters."""
    entries = _disjoint_entries(indices, entries)
    forward = Header.make(indices, entries)
    backward = Header.make(indices, reversed(entries))
    assert forward == backward
    assert forward.entries == backward.entries


@settings(max_examples=100, deadline=None)
@given(indices=indices_strategy, entries=entries_strategy)
def test_make_deduplicates_and_orders_entries(indices, entries):
    entries = _disjoint_entries(indices, entries)
    header = Header.make(indices, entries + entries)
    assert set(header.entries) == {frozenset(e) for e in entries}
    assert len(header.entries) == len(set(header.entries))
    keys = [entry_sort_key(entry) for entry in header.entries]
    assert keys == sorted(keys)


@settings(max_examples=100, deadline=None)
@given(indices=indices_strategy, entries=entries_strategy)
def test_complete_and_pending_partition_entries(indices, entries):
    entries = _disjoint_entries(indices, entries)
    header = Header.make(indices, entries)
    assert set(header.complete_entries) | set(header.pending_entries) == set(
        header.entries
    )
    assert all(not entry for entry in header.complete_entries)
    assert all(entry for entry in header.pending_entries)
    # Dedup leaves at most one empty entry, so at most one completed query.
    assert len(header.complete_entries) <= 1
    assert header.completed_queries() == (
        (header.indices,) if header.complete_entries else ()
    )


@settings(max_examples=100, deadline=None)
@given(
    indices=indices_strategy,
    partner=indices_strategy,
    rest=entry_strategy,
)
def test_reduced_with_is_set_union_and_difference(indices, partner, rest):
    """Reduction folds the partner in: indices union, entry difference."""
    assume(partner.isdisjoint(indices))
    entry = frozenset(partner | rest) - indices
    header = Header.make(indices, [entry])
    entry = header.entries[0]
    reduced = header.reduced_with(partner, entry)
    assert reduced.indices == indices | partner
    assert reduced.entries == (entry - partner,)
    # The reduction made progress iff the partner contributed something.
    if partner:
        assert len(reduced.indices) > len(indices)


@settings(max_examples=100, deadline=None)
@given(indices=indices_strategy, entries=entries_strategy)
def test_merged_with_unions_entries(indices, entries):
    entries = _disjoint_entries(indices, entries)
    assume(entries)
    split = len(entries) // 2
    left = Header.make(indices, entries[: split + 1])
    right = Header.make(indices, entries[split:])
    merged = left.merged_with(right)
    assert merged.indices == indices
    assert set(merged.entries) == set(left.entries) | set(right.entries)
    # Merge is commutative thanks to canonical ordering.
    assert merged == right.merged_with(left)


@settings(max_examples=100, deadline=None)
@given(indices=indices_strategy, entries=entries_strategy)
def test_forwarded_preserves_single_entry(indices, entries):
    entries = _disjoint_entries(indices, entries)
    header = Header.make(indices, entries)
    for entry in header.entries:
        forwarded = header.forwarded(entry)
        assert forwarded.indices == header.indices
        assert forwarded.entries == (entry,)


@settings(max_examples=100, deadline=None)
@given(queries=st.lists(indices_strategy, min_size=1, max_size=6))
def test_initial_header_entries_are_query_remainders(queries):
    universe = sorted(set().union(*queries))
    for unique_index in universe:
        header = Header.initial(unique_index, queries)
        assert header.indices == frozenset({unique_index})
        expected = {
            frozenset(query) - {unique_index}
            for query in queries
            if unique_index in query
        }
        assert set(header.entries) == expected


@settings(max_examples=100, deadline=None)
@given(indices=indices_strategy)
def test_sorted_tuple_matches_sorted(indices):
    assert sorted_tuple(indices) == tuple(sorted(indices))
    # Cached second call returns the same answer.
    assert sorted_tuple(indices) == tuple(sorted(indices))


class TestHeaderValidation:
    def test_rejects_empty_indices(self):
        with pytest.raises(ValueError, match="at least one index"):
            Header.make([], [[1]])

    def test_rejects_overlapping_entry(self):
        with pytest.raises(ValueError, match="overlaps"):
            Header(indices=frozenset({1}), entries=(frozenset({1, 2}),))

    def test_reduced_with_rejects_foreign_entry(self):
        header = Header.make({1}, [[2, 3]])
        with pytest.raises(ValueError, match="does not belong"):
            header.reduced_with(frozenset({2}), frozenset({9}))

    def test_reduced_with_rejects_uncontained_partner(self):
        header = Header.make({1}, [[2, 3]])
        with pytest.raises(ValueError, match="not contained"):
            header.reduced_with(frozenset({4}), header.entries[0])

    def test_merged_with_rejects_different_indices(self):
        with pytest.raises(ValueError, match="equal indices"):
            Header.make({1}, [[2]]).merged_with(Header.make({2}, [[3]]))
