"""Tests for the interactive (single-query) mode (§IV-C)."""

import numpy as np
import pytest

from repro.core import FafnirConfig, FafnirEngine, InteractiveEngine, get_operator


def make_source(seed=0, elements=128):
    rng = np.random.default_rng(seed)
    store = {}

    def source(index):
        if index not in store:
            store[index] = rng.normal(size=elements)
        return store[index]

    return source


class TestInteractive:
    def test_matches_oracle(self):
        engine = InteractiveEngine()
        source = make_source(seed=1)
        query = [3, 77, 515, 1030]
        result = engine.lookup_one(query, source)
        want = np.sum([source(i) for i in query], axis=0)
        assert np.allclose(result.vector, want)

    def test_matches_batch_engine_result(self):
        source = make_source(seed=2)
        query = [10, 43, 76, 109, 200]
        interactive = InteractiveEngine().lookup_one(query, source)
        batch = FafnirEngine(FafnirConfig(batch_size=1)).run_batch(
            [query], source
        )
        assert np.allclose(interactive.vector, batch.vectors[0])

    def test_lower_latency_than_batch_path(self):
        """Compare-free PEs: the single query travels the tree faster than
        through the full header-processing pipeline."""
        source = make_source(seed=3)
        query = [1, 34, 67, 100, 133, 166, 199, 232]
        interactive = InteractiveEngine().lookup_one(query, source)
        batch = FafnirEngine(FafnirConfig(batch_size=1)).run_batch([query], source)
        assert interactive.latency_pe_cycles < batch.stats.latency_pe_cycles

    def test_mean_operator(self):
        operator = get_operator("mean")
        engine = InteractiveEngine(operator=operator)
        source = make_source(seed=4)
        query = [5, 70, 135]
        result = engine.lookup_one(query, source)
        assert np.allclose(result.vector, np.mean([source(i) for i in query], axis=0))

    def test_operator_accepts_string(self):
        engine = InteractiveEngine(operator="max")
        assert engine.operator.name == "max"

    def test_single_index(self):
        engine = InteractiveEngine()
        source = make_source(seed=5)
        result = engine.lookup_one([42], source)
        assert np.allclose(result.vector, source(42))

    def test_same_rank_indices_fold(self):
        engine = InteractiveEngine()
        source = make_source(seed=6)
        query = [0, 32, 64]  # all homed in rank 0
        result = engine.lookup_one(query, source)
        assert np.allclose(result.vector, np.sum([source(i) for i in query], axis=0))

    def test_validation(self):
        engine = InteractiveEngine()
        source = make_source()
        with pytest.raises(ValueError):
            engine.lookup_one([], source)
        with pytest.raises(ValueError):
            engine.lookup_one(list(range(17)), source)
        with pytest.raises(ValueError):
            engine.lookup_one([1], lambda i: np.zeros(3))

    def test_latency_includes_memory(self):
        engine = InteractiveEngine()
        source = make_source(seed=7)
        result = engine.lookup_one([1, 2, 3], source)
        assert result.latency_pe_cycles > result.memory_latency_pe_cycles >= 0
        assert result.tree_latency_pe_cycles > 0
        assert result.memory.reads == 3

    def test_stage_is_compare_free(self):
        engine = InteractiveEngine()
        latencies = engine.config.latencies
        assert engine.stage_cycles < latencies.compare
        assert engine.stage_cycles == max(latencies.reduce_value, latencies.forward)


class _SplitPlacement:
    """Wraps a placement so every vector arrives as two row-aligned pieces,
    with the *first-listed* piece finishing last (large issue delay)."""

    def __init__(self, inner, late_by_dram_cycles):
        self._inner = inner
        self._late = late_by_dram_cycles
        self.vector_bytes = inner.vector_bytes

    def home_rank(self, vector_id):
        return self._inner.home_rank(vector_id)

    def requests_for(self, vector_id, issue_cycle=0):
        from dataclasses import replace

        [request] = self._inner.requests_for(vector_id, issue_cycle)
        half = request.bytes_ // 2
        late_piece = replace(
            request, bytes_=half, issue_cycle=request.issue_cycle + self._late
        )
        early_piece = replace(
            request, column=request.column + half, bytes_=request.bytes_ - half
        )
        return [late_piece, early_piece]


class TestMultiRequestPlacement:
    """Regression: ``finish[index]`` kept only the *last* completion, so a
    vector split across several ReadRequests could be consumed before its
    slowest piece had landed."""

    def test_latency_covers_slowest_piece(self):
        from repro.clocks import convert_cycles

        delay_dram_cycles = 50_000
        engine = InteractiveEngine()
        engine.placement = _SplitPlacement(engine.placement, delay_dram_cycles)
        source = make_source(seed=8)
        result = engine.lookup_one([7], source)
        floor = convert_cycles(
            delay_dram_cycles, engine.config.dram_clock, engine.config.pe_clock
        )
        assert result.latency_pe_cycles >= floor
        assert np.allclose(result.vector, source(7))
        assert result.memory.reads == 2

    def test_multi_piece_matches_single_piece_vector(self):
        source = make_source(seed=9)
        query = [3, 77, 515, 1030]
        single = InteractiveEngine().lookup_one(query, source)
        split_engine = InteractiveEngine()
        split_engine.placement = _SplitPlacement(split_engine.placement, 1_000)
        split = split_engine.lookup_one(query, source)
        assert np.allclose(single.vector, split.vector)
        assert split.latency_pe_cycles >= single.latency_pe_cycles
