"""Tests for reduction operators."""

import numpy as np
import pytest

from repro.core import MAX, MEAN, MIN, SUM, available_operators, get_operator


class TestLookup:
    def test_all_paper_operators_available(self):
        assert set(available_operators()) >= {"sum", "min", "max", "mean"}

    def test_get_operator_round_trip(self):
        for name in available_operators():
            assert get_operator(name).name == name

    def test_unknown_operator_raises(self):
        with pytest.raises(KeyError, match="unknown reduction operator"):
            get_operator("median")


class TestSemantics:
    def test_sum_combine(self):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, -1.0])
        assert np.array_equal(SUM.combine(a, b), [4.0, 1.0])

    def test_min_max_combine(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, -1.0])
        assert np.array_equal(MIN.combine(a, b), [1.0, -1.0])
        assert np.array_equal(MAX.combine(a, b), [3.0, 5.0])

    def test_mean_uses_sum_in_tree_and_divides_at_host(self):
        a = np.array([2.0, 4.0])
        b = np.array([4.0, 0.0])
        in_tree = MEAN.combine(a, b)
        assert np.array_equal(in_tree, [6.0, 4.0])
        assert np.array_equal(MEAN.finalize(in_tree, 2), [3.0, 2.0])

    def test_mean_finalize_rejects_bad_count(self):
        with pytest.raises(ValueError):
            MEAN.finalize(np.array([1.0]), 0)

    def test_sum_finalize_is_identity(self):
        v = np.array([1.0, 2.0])
        assert SUM.finalize(v, 7) is v


class TestReduceMany:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        vectors = [rng.normal(size=16) for _ in range(5)]
        assert np.allclose(SUM.reduce_many(vectors), np.sum(vectors, axis=0))
        assert np.allclose(MIN.reduce_many(vectors), np.min(vectors, axis=0))
        assert np.allclose(MAX.reduce_many(vectors), np.max(vectors, axis=0))
        assert np.allclose(MEAN.reduce_many(vectors), np.mean(vectors, axis=0))

    def test_single_vector(self):
        v = np.array([1.0, 2.0])
        assert np.array_equal(MEAN.reduce_many([v]), v)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SUM.reduce_many([])

    def test_associativity_order_independence(self):
        """The tree combines in arbitrary order; results must not depend on it."""
        rng = np.random.default_rng(4)
        vectors = [rng.normal(size=8) for _ in range(6)]
        forward = SUM.reduce_many(vectors)
        backward = SUM.reduce_many(list(reversed(vectors)))
        assert np.allclose(forward, backward)
