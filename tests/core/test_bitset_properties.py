"""Property-based tests (hypothesis) for the packed-bitset kernels.

``repro.core.bitset`` re-expresses frozenset subset algebra as packed
``uint64`` array operations; Python's ``set`` is the oracle.  Every
kernel must agree with it on arbitrary families of sets — these are the
primitives whose exactness makes the scalar and vector PE paths
byte-identical.
"""

from hypothesis import given, settings, strategies as st

from repro.core.bitset import (
    IndexUniverse,
    WORD_BITS,
    subset_mask,
    subset_matrix,
)

# Sparse global ids force multi-word rows and exercise dense renumbering.
index_strategy = st.integers(min_value=0, max_value=500)
set_strategy = st.frozensets(index_strategy, max_size=24)
sets_strategy = st.lists(set_strategy, min_size=1, max_size=12)


@settings(max_examples=80, deadline=None)
@given(sets=sets_strategy)
def test_encode_decode_round_trip(sets):
    universe = IndexUniverse(sets)
    for index_set in sets:
        assert universe.decode(universe.encode_one(index_set)) == index_set


@settings(max_examples=80, deadline=None)
@given(sets=sets_strategy)
def test_encode_matrix_rows_equal_encode_one(sets):
    universe = IndexUniverse(sets)
    matrix = universe.encode(sets)
    assert matrix.shape == (len(sets), universe.words)
    for row, index_set in zip(matrix, sets):
        assert (row == universe.encode_one(index_set)).all()


@settings(max_examples=80, deadline=None)
@given(supersets=sets_strategy, candidates=sets_strategy)
def test_subset_matrix_matches_set_containment(supersets, candidates):
    universe = IndexUniverse(supersets + candidates)
    result = subset_matrix(
        universe.encode(supersets), universe.encode(candidates)
    )
    for i, superset in enumerate(supersets):
        for j, candidate in enumerate(candidates):
            assert result[i, j] == (candidate <= superset), (i, j)


@settings(max_examples=80, deadline=None)
@given(superset=set_strategy, candidates=sets_strategy)
def test_subset_mask_matches_set_containment(superset, candidates):
    universe = IndexUniverse([superset] + candidates)
    mask = subset_mask(
        universe.encode_one(superset), universe.encode(candidates)
    )
    for j, candidate in enumerate(candidates):
        assert mask[j] == (candidate <= superset), j


@settings(max_examples=80, deadline=None)
@given(sets=sets_strategy)
def test_universe_numbering_is_dense_and_stable(sets):
    universe = IndexUniverse(sets)
    position = universe.position_map()
    members = set().union(*sets) if sets else set()
    assert set(position) == members
    assert sorted(position.values()) == list(range(len(members)))
    assert universe.size == len(members)
    assert universe.words == max(
        1, -(-len(members) // WORD_BITS)
    )
    # Rebuilding from the same iteration order numbers identically.
    again = IndexUniverse(sets)
    assert again.position_map() == position


@settings(max_examples=60, deadline=None)
@given(sets=sets_strategy)
def test_encode_bool_ext_matches_membership(sets):
    universe = IndexUniverse(sets)
    matrix = universe.encode_bool_ext(sets)
    position = universe.position_map()
    assert matrix.shape == (len(sets), universe.size + 1)
    # The sentinel column is always true.
    assert matrix[:, universe.size].all()
    for row, index_set in zip(matrix, sets):
        member_positions = {position[i] for i in index_set}
        for column in range(universe.size):
            assert row[column] == (column in member_positions)


@settings(max_examples=60, deadline=None)
@given(known=sets_strategy, extra=sets_strategy)
def test_encode_bool_ext_partial_skips_foreign_indices(known, extra):
    universe = IndexUniverse(known)
    position = universe.position_map()
    mixed = [k | e for k, e in zip(known, extra)]
    matrix = universe.encode_bool_ext(mixed, partial=True)
    for row, index_set in zip(matrix, mixed):
        inside = {position[i] for i in index_set if i in position}
        for column in range(universe.size):
            assert row[column] == (column in inside)


@settings(max_examples=60, deadline=None)
@given(sets=sets_strategy)
def test_positions_padded_pairs_with_sentinel_column(sets):
    universe = IndexUniverse(sets)
    bool_ext = universe.encode_bool_ext(sets)
    padded = universe.positions_padded(sets)
    width = max((len(s) for s in sets), default=0) or 1
    assert padded.shape == (len(sets), width)
    for row, index_set in zip(padded, sets):
        real = [p for p in row if p != universe.size]
        assert sorted(real) == sorted(
            universe.position_map()[i] for i in index_set
        )
        # Padding uses the sentinel slot, which every bool_ext row accepts
        # as contained — padded tails can never veto a containment test.
        for slot in row[len(index_set):]:
            assert slot == universe.size
            assert bool_ext[:, slot].all()


@settings(max_examples=40, deadline=None)
@given(supersets=sets_strategy)
def test_subset_matrix_diagonal_and_empty_set(supersets):
    """Reflexivity: every set contains itself; ∅ is contained in all."""
    universe = IndexUniverse(supersets)
    encoded = universe.encode(supersets)
    result = subset_matrix(encoded, encoded)
    for i in range(len(supersets)):
        assert result[i, i]
    empty = universe.encode([frozenset()])
    assert subset_matrix(encoded, empty).all()
