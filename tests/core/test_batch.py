"""Tests for host-side batch preprocessing (paper §IV-C)."""

import pytest

from repro.core import plan_batch, normalize_queries


PAPER_QUERIES = [
    {11, 32, 83, 77},   # query a
    {50, 83, 94},       # query b
    {50, 11, 94, 26},   # query c
    {32, 83, 26},       # query d
]


class TestNormalize:
    def test_collapses_duplicates_within_query(self):
        queries = normalize_queries([[3, 3, 5]])
        assert queries == (frozenset({3, 5}),)

    def test_keeps_duplicate_queries_across_batch(self):
        queries = normalize_queries([[1, 2], [1, 2]])
        assert len(queries) == 2

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="at least one query"):
            normalize_queries([])

    def test_rejects_empty_query(self):
        with pytest.raises(ValueError, match="query 1 is empty"):
            normalize_queries([[1], []])

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError, match="negative"):
            normalize_queries([[1, -2]])

    def test_enforces_max_query_len(self):
        with pytest.raises(ValueError, match="exceeding"):
            normalize_queries([[1, 2, 3]], max_query_len=2)


class TestPlanBatch:
    def test_paper_example_reads_seven_unique_indices(self):
        """§IV-C: 'instead of a total of 14 memory accesses, we access seven
        unique ones: 50, 11, 32, 83, 94, 26, 77'."""
        plan = plan_batch(PAPER_QUERIES)
        assert plan.total_lookups == 14
        assert plan.unique_indices == (11, 26, 32, 50, 77, 83, 94)
        assert len(plan.reads) == 7
        assert plan.accesses_saved == 7
        assert plan.unique_fraction == pytest.approx(0.5)

    def test_paper_example_header_for_index_11(self):
        plan = plan_batch(PAPER_QUERIES)
        header = plan.headers[11]
        assert set(header.entries) == {
            frozenset({32, 83, 77}),
            frozenset({50, 94, 26}),
        }

    def test_no_dedup_reads_every_occurrence(self):
        plan = plan_batch(PAPER_QUERIES, deduplicate=False)
        assert len(plan.reads) == 14
        assert plan.accesses_saved == 0
        # Headers still exist per unique index for the tree.
        assert set(plan.headers) == set(plan.unique_indices)

    def test_disjoint_batch_has_unit_fraction(self):
        plan = plan_batch([[0, 1], [2, 3]])
        assert plan.unique_fraction == 1.0
        assert plan.accesses_saved == 0

    def test_fully_shared_batch(self):
        plan = plan_batch([[4, 9]] * 8)
        assert len(plan.unique_indices) == 2
        assert plan.unique_fraction == pytest.approx(2 / 16)

    def test_header_built_for_every_unique_index(self):
        plan = plan_batch(PAPER_QUERIES)
        assert set(plan.headers) == set(plan.unique_indices)
        for index, header in plan.headers.items():
            assert header.indices == frozenset({index})
