"""Property-based tests (hypothesis) for the FAFNIR core invariants.

DESIGN.md §6 lists the invariants; these tests check them on randomly
generated batches, placements, and operators against a NumPy oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    FafnirConfig,
    FafnirEngine,
    Header,
    Message,
    ProcessingElement,
    SUM,
    get_operator,
    plan_batch,
)
from repro.memory import MemoryConfig

ELEMENTS = 16


def small_engine(operator=SUM):
    config = FafnirConfig(
        batch_size=8,
        max_query_len=8,
        vector_bytes=ELEMENTS * 4,
        total_ranks=8,
        ranks_per_leaf_pe=2,
        num_tables=8,
    )
    return FafnirEngine(
        config=config,
        operator=operator,
        memory_config=MemoryConfig().scaled_to_ranks(8),
        check_values=True,
    )


def deterministic_source(index):
    rng = np.random.default_rng(100_000 + index)
    return rng.normal(size=ELEMENTS)


queries_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=8),
    min_size=1,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(queries=queries_strategy)
def test_engine_matches_numpy_oracle_sum(queries):
    """Invariant 4: results equal a direct NumPy reduction, any batch."""
    engine = small_engine()
    result = engine.run_batch(queries, deterministic_source)
    for raw, produced in zip(queries, result.vectors):
        want = np.sum([deterministic_source(i) for i in set(raw)], axis=0)
        assert np.allclose(produced, want)


@settings(max_examples=30, deadline=None)
@given(
    queries=queries_strategy,
    operator_name=st.sampled_from(["sum", "min", "max", "mean"]),
)
def test_engine_matches_oracle_all_operators(queries, operator_name):
    operator = get_operator(operator_name)
    engine = small_engine(operator)
    result = engine.run_batch(queries, deterministic_source)
    for raw, produced in zip(queries, result.vectors):
        want = operator.reduce_many(
            [deterministic_source(i) for i in sorted(set(raw))]
        )
        assert np.allclose(produced, want)


@settings(max_examples=60, deadline=None)
@given(queries=queries_strategy)
def test_unique_read_invariant(queries):
    """Deduplicated plans read each distinct index exactly once."""
    engine = small_engine()
    result = engine.run_batch(queries, deterministic_source)
    distinct = {i for q in queries for i in q}
    assert result.stats.memory.reads == len(distinct)
    assert result.stats.unique_reads == len(distinct)


@settings(max_examples=60, deadline=None)
@given(queries=queries_strategy)
def test_plan_unique_fraction_bounds(queries):
    plan = plan_batch(queries)
    assert 0.0 < plan.unique_fraction <= 1.0
    assert plan.accesses_saved >= 0
    assert plan.accesses_saved + len(plan.unique_indices) == plan.total_lookups


@settings(max_examples=40, deadline=None)
@given(queries=queries_strategy)
def test_message_value_matches_indices_reduction(queries):
    """Invariant 1: every root message's value is exactly the reduction of
    its indices set."""
    engine = small_engine()
    plan = plan_batch(queries, max_query_len=8)
    finish = engine._fetch_from_memory(plan)
    leaf_inputs = engine._leaf_inputs(plan, finish, deterministic_source)
    root_outputs, _ = engine._run_tree(leaf_inputs)
    for message in root_outputs:
        want = np.sum(
            [deterministic_source(i) for i in sorted(message.indices)], axis=0
        )
        assert np.allclose(message.value, want)
    engine.memory.reset()


@settings(max_examples=40, deadline=None)
@given(queries=queries_strategy)
def test_subtree_completion_invariant(queries):
    """Invariant 2: each subtree's output holds a message covering exactly
    the query indices homed beneath it."""
    engine = small_engine()
    plan = plan_batch(queries, max_query_len=8)
    finish = engine._fetch_from_memory(plan)
    leaf_inputs = engine._leaf_inputs(plan, finish, deterministic_source)

    outputs = {}
    for pe_id in engine.tree.bottom_up_ids():
        node = engine.tree.pe(pe_id)
        pe = ProcessingElement(engine.config, engine.operator)
        if node.is_leaf:
            from repro.core.pe import PEWork

            work = PEWork()
            input_a = pe.fold_stream(leaf_inputs[pe_id][0], work)
            input_b = pe.fold_stream(leaf_inputs[pe_id][1], work)
        else:
            left, right = node.children
            input_a, input_b = outputs[left], outputs[right]
        outputs[pe_id] = pe.process(input_a, input_b).outputs

        covered = set(engine.tree.covered_ranks(pe_id))
        for query in plan.queries:
            expected_indices = frozenset(
                i for i in query if engine.placement.home_rank(i) in covered
            )
            if not expected_indices:
                continue
            assert any(
                message.indices == expected_indices
                for message in outputs[pe_id]
            ), (
                f"subtree {pe_id} missing cover {sorted(expected_indices)} "
                f"for query {sorted(query)}"
            )
    engine.memory.reset()


@settings(max_examples=50, deadline=None)
@given(
    n_entries=st.integers(min_value=1, max_value=4),
    m_entries=st.integers(min_value=0, max_value=4),
)
def test_pe_output_count_bounded(n_entries, m_entries):
    """Invariant 3: merged output count ≤ nm + n + m."""
    config = FafnirConfig(batch_size=32, total_ranks=8, ranks_per_leaf_pe=2)
    pe = ProcessingElement(config, SUM)
    input_a = [
        Message(Header.make({i}, [{100 + i}]), np.zeros(4))
        for i in range(n_entries)
    ]
    input_b = [
        Message(Header.make({50 + j}, [{100 + j}]), np.zeros(4))
        for j in range(m_entries)
    ]
    result = pe.process(input_a, input_b)
    bound = n_entries * m_entries + n_entries + m_entries
    assert len(result.outputs) <= bound


@settings(max_examples=60, deadline=None)
@given(queries=queries_strategy)
def test_latency_lower_bound(queries):
    """Timing sanity: a completed query crossed every tree level, paying at
    least the forward path per level, after its slowest memory read."""
    engine = small_engine()
    result = engine.run_batch(queries, deterministic_source)
    floor = engine.tree.num_levels * engine.config.latencies.forward_path
    assert result.stats.latency_pe_cycles >= floor
