"""Tests for the header algebra (paper §IV-B/C)."""

import numpy as np
import pytest

from repro.core import Header, Message


def fs(*items):
    return frozenset(items)


class TestHeaderConstruction:
    def test_make_canonicalises_and_dedupes_entries(self):
        header = Header.make({50}, [{94, 83}, {83, 94}, {26}])
        assert header.indices == fs(50)
        assert header.entries == (fs(26), fs(83, 94))

    def test_rejects_empty_indices(self):
        with pytest.raises(ValueError):
            Header.make([], [[1]])

    def test_rejects_entry_overlapping_indices(self):
        with pytest.raises(ValueError):
            Header.make({5}, [{5, 6}])

    def test_initial_header_from_paper_example(self):
        """Fig. 6b: for unique index 11 the queries field holds the other
        indices of query a and query c."""
        query_a = {11, 32, 83, 77}
        query_c = {50, 11, 94, 26}
        header = Header.initial(11, [query_a, query_c])
        assert header.indices == fs(11)
        assert set(header.entries) == {fs(32, 83, 77), fs(50, 94, 26)}

    def test_initial_header_rejects_unused_index(self):
        with pytest.raises(ValueError):
            Header.initial(99, [{1, 2}, {3}])

    def test_initial_header_singleton_query_yields_empty_entry(self):
        header = Header.initial(7, [{7}])
        assert header.entries == (fs(),)
        assert header.complete_entries == (fs(),)


class TestHeaderAlgebra:
    def test_reduced_with_moves_indices_from_queries(self):
        """Paper Fig. 6c: reducing [50 | 11,94,26] with index 11 yields
        [50,11 | 94,26]."""
        header = Header.make({50}, [{83, 94}, {11, 94, 26}])
        reduced = header.reduced_with(fs(11), fs(11, 94, 26))
        assert reduced.indices == fs(50, 11)
        assert reduced.entries == (fs(94, 26),)

    def test_reduced_with_rejects_foreign_entry(self):
        header = Header.make({50}, [{83, 94}])
        with pytest.raises(ValueError):
            header.reduced_with(fs(11), fs(11, 94))

    def test_reduced_with_rejects_non_subset_partner(self):
        header = Header.make({50}, [{83, 94}])
        with pytest.raises(ValueError):
            header.reduced_with(fs(11), fs(83, 94))

    def test_reduction_to_completion(self):
        header = Header.make({50, 11}, [{94, 26}])
        done = header.reduced_with(fs(94, 26), fs(94, 26))
        assert done.indices == fs(50, 11, 94, 26)
        assert done.complete_entries == (fs(),)
        assert done.completed_queries() == (fs(50, 11, 94, 26),)

    def test_forwarded_keeps_single_entry(self):
        header = Header.make({50}, [{83, 94}, {11, 94, 26}])
        forwarded = header.forwarded(fs(83, 94))
        assert forwarded.indices == fs(50)
        assert forwarded.entries == (fs(83, 94),)

    def test_merged_with_concatenates_entries(self):
        """Fig. 6d: [32,83 | 11,77] merged with [32,83 | 26] becomes
        [32,83 | 11,77 | 26]."""
        first = Header.make({32, 83}, [{11, 77}])
        second = Header.make({32, 83}, [{26}])
        merged = first.merged_with(second)
        assert merged.indices == fs(32, 83)
        assert set(merged.entries) == {fs(11, 77), fs(26)}

    def test_merged_with_rejects_different_indices(self):
        with pytest.raises(ValueError):
            Header.make({1}, [{2}]).merged_with(Header.make({3}, [{2}]))

    def test_pending_vs_complete_entries(self):
        header = Header.make({5}, [set(), {7}])
        assert header.complete_entries == (fs(),)
        assert header.pending_entries == (fs(7),)

    def test_header_bits_matches_paper_budget(self):
        """q=16 slots of 5-bit ids → 80 bits (the paper's 10 B header)."""
        header = Header.make({1}, [{2}])
        assert header.header_bits(index_bits=5, max_query_len=16) == 80

    def test_repr_is_readable(self):
        header = Header.make({50, 11}, [{94, 26}])
        text = repr(header)
        assert "indices:11,50" in text
        assert "queries:" in text


class TestMessage:
    def test_value_coerced_to_float64(self):
        message = Message(Header.make({1}, [set()]), [1, 2, 3])
        assert message.value.dtype == np.float64

    def test_negative_ready_cycle_rejected(self):
        with pytest.raises(ValueError):
            Message(Header.make({1}, [set()]), [1.0], ready_cycle=-1)

    def test_clone_for_entry_increments_hops(self):
        message = Message(Header.make({1}, [{2}, {3}]), [1.0], ready_cycle=5, hops=2)
        clone = message.clone_for_entry(frozenset({2}), ready_cycle=9)
        assert clone.header.entries == (fs(2),)
        assert clone.hops == 3
        assert clone.ready_cycle == 9
        assert np.shares_memory(clone.value, message.value)
