"""Engine integration tests, including the paper's Fig. 6 walk-through."""

import numpy as np
import pytest

from repro.core import FafnirConfig, FafnirEngine, SUM, get_operator
from repro.memory import MemoryConfig


def make_source(seed=0, elements=128):
    rng = np.random.default_rng(seed)
    store = {}

    def source(index):
        if index not in store:
            store[index] = rng.normal(size=elements)
        return store[index]

    return source


def oracle(source, queries, operator=SUM):
    return [
        operator.reduce_many([source(i) for i in sorted(set(q))]) for q in queries
    ]


# Paper Fig. 6 relabelled: paper index "XY" = row X of table Y; we encode the
# global id as  table + 8*row  so that id mod 8 == table == home rank.
def paper_id(label):
    row, table = divmod(label, 10)
    return table + 8 * row


PAPER_QUERIES_LABELS = [
    [11, 32, 83, 77],   # query a
    [50, 83, 94],       # query b
    [50, 11, 94, 26],   # query c
    [32, 83, 26],       # query d
]
PAPER_QUERIES = [[paper_id(x) for x in q] for q in PAPER_QUERIES_LABELS]


@pytest.fixture
def fig6_engine():
    config = FafnirConfig(
        batch_size=4,
        max_query_len=4,
        total_ranks=8,
        ranks_per_leaf_pe=2,
        num_tables=8,
    )
    memory = MemoryConfig().scaled_to_ranks(8)
    return FafnirEngine(config=config, memory_config=memory, check_values=True)


class TestFig6WalkThrough:
    def test_indices_land_on_their_tables_ranks(self, fig6_engine):
        for label in (50, 11, 32, 83, 94, 26, 77):
            rank = fig6_engine.placement.home_rank(paper_id(label))
            assert rank == label % 10

    def test_all_four_queries_complete_and_match_oracle(self, fig6_engine):
        source = make_source()
        result = fig6_engine.run_batch(PAPER_QUERIES, source)
        expected = oracle(source, PAPER_QUERIES)
        for produced, want in zip(result.vectors, expected):
            assert np.allclose(produced, want)

    def test_only_seven_unique_vectors_read(self, fig6_engine):
        source = make_source()
        result = fig6_engine.run_batch(PAPER_QUERIES, source)
        assert result.stats.unique_reads == 7
        assert result.stats.total_lookups == 14
        assert result.stats.memory.reads == 7
        assert result.stats.accesses_saved == 7

    def test_pe01_emits_three_merged_outputs(self, fig6_engine):
        """Fig. 6c: PE (01) produces three unique outputs after merging."""
        source = make_source()
        result = fig6_engine.run_batch(PAPER_QUERIES, source)
        # Leaf PE 0 covers ranks (0, 1) = paper PE (01).
        assert result.stats.per_pe_work[0].outputs == 3

    def test_pe23_emits_two_merged_outputs(self, fig6_engine):
        """Fig. 6d: PE (2|3)'s five raw outputs merge into two items."""
        source = make_source()
        result = fig6_engine.run_batch(PAPER_QUERIES, source)
        work = result.stats.per_pe_work[1]  # leaf PE 1 covers ranks (2, 3)
        assert work.outputs == 2
        assert work.reduces == 4
        assert work.forwards == 1

    def test_pe45_forward_only(self, fig6_engine):
        """Rank 5 holds no requested vector: PE (4|5) only forwards."""
        source = make_source()
        result = fig6_engine.run_batch(PAPER_QUERIES, source)
        work = result.stats.per_pe_work[2]  # leaf PE 2 covers ranks (4, 5)
        assert work.reduces == 0
        assert work.forwards >= 1

    def test_data_movement_is_outputs_only(self, fig6_engine):
        source = make_source()
        result = fig6_engine.run_batch(PAPER_QUERIES, source)
        assert result.stats.output_bytes == 4 * 512
        assert result.stats.naive_movement_bytes == 14 * 512
        assert result.stats.movement_reduction_factor == pytest.approx(14 / 4)


class TestEngineGeneral:
    def test_default_engine_matches_oracle_random_batch(self):
        engine = FafnirEngine(check_values=True)
        source = make_source(seed=5)
        rng = np.random.default_rng(11)
        queries = [list(rng.choice(4096, size=16, replace=False)) for _ in range(32)]
        result = engine.run_batch(queries, source)
        for produced, want in zip(result.vectors, oracle(source, queries)):
            assert np.allclose(produced, want)

    def test_min_operator_end_to_end(self):
        operator = get_operator("min")
        engine = FafnirEngine(operator=operator, check_values=True)
        source = make_source(seed=6)
        queries = [[1, 33, 65], [2, 33]]
        result = engine.run_batch(queries, source)
        for produced, want in zip(result.vectors, oracle(source, queries, operator)):
            assert np.allclose(produced, want)

    def test_mean_operator_divides_by_query_length(self):
        operator = get_operator("mean")
        engine = FafnirEngine(operator=operator, check_values=True)
        source = make_source(seed=7)
        queries = [[10, 43, 76, 109]]
        result = engine.run_batch(queries, source)
        want = np.mean([source(i) for i in queries[0]], axis=0)
        assert np.allclose(result.vectors[0], want)

    def test_same_rank_collision_query_completes(self):
        """Two indices homed in the same rank still complete (FIFO fold)."""
        engine = FafnirEngine(check_values=True)
        source = make_source(seed=8)
        # Indices 0 and 32 both live in rank 0 of the 32-rank system.
        queries = [[0, 32, 5]]
        result = engine.run_batch(queries, source)
        assert np.allclose(result.vectors[0], oracle(source, queries)[0])

    def test_single_index_query(self):
        engine = FafnirEngine(check_values=True)
        source = make_source(seed=9)
        result = engine.run_batch([[17]], source)
        assert np.allclose(result.vectors[0], source(17))

    def test_duplicate_queries_each_get_output(self):
        engine = FafnirEngine(check_values=True)
        source = make_source(seed=10)
        result = engine.run_batch([[3, 70], [3, 70]], source)
        assert len(result.vectors) == 2
        assert np.allclose(result.vectors[0], result.vectors[1])

    def test_oversized_batch_rejected(self):
        engine = FafnirEngine(FafnirConfig(batch_size=2))
        source = make_source()
        with pytest.raises(ValueError, match="exceeds configured batch size"):
            engine.run_batch([[1], [2], [3]], source)

    def test_wrong_vector_shape_rejected(self):
        engine = FafnirEngine()
        with pytest.raises(ValueError, match="expected"):
            engine.run_batch([[1]], lambda i: np.zeros(4))

    def test_mismatched_memory_geometry_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            FafnirEngine(
                config=FafnirConfig(total_ranks=8),
                memory_config=MemoryConfig.ddr4_2400_quad_channel(),
            )

    def test_dedup_reduces_memory_reads(self):
        engine = FafnirEngine(check_values=True)
        source = make_source(seed=12)
        rng = np.random.default_rng(13)
        queries = [list(rng.choice(64, size=16, replace=False)) for _ in range(32)]
        with_dedup = engine.run_batch(queries, source, deduplicate=True)
        without = engine.run_batch(queries, source, deduplicate=False)
        assert with_dedup.stats.memory.reads < without.stats.memory.reads
        assert without.stats.memory.reads == with_dedup.stats.total_lookups
        # Results identical either way.
        for a, b in zip(with_dedup.vectors, without.vectors):
            assert np.allclose(a, b)

    def test_latency_exceeds_memory_latency(self):
        engine = FafnirEngine()
        source = make_source(seed=14)
        result = engine.run_batch([[1, 2, 3, 4]], source)
        assert result.stats.latency_pe_cycles > 0
        assert (
            result.stats.latency_pe_cycles
            >= result.stats.memory_latency_pe_cycles
        )
        assert result.stats.compute_latency_pe_cycles >= 0

    def test_latency_ns_conversion(self):
        engine = FafnirEngine()
        source = make_source(seed=15)
        result = engine.run_batch([[1, 2]], source)
        ns = result.stats.latency_ns(engine.config)
        assert ns == pytest.approx(result.stats.latency_pe_cycles * 5.0)
