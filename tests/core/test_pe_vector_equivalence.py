"""Property-style proof that the vector PE kernels match the scalar ones.

The scalar kernel is the executable specification; the vector kernel must
reproduce it *byte for byte* — same output values, same canonical headers,
same ready cycles and hop counts, same :class:`PEWork` counters.  These
tests drive both kernels over randomized message populations (forcing the
vector path by dropping the size cutovers to zero) and whole-engine runs,
and compare everything exactly.
"""

import numpy as np
import pytest

import repro.core.pe as pe_module
from repro.core import (
    FafnirConfig,
    FafnirEngine,
    Header,
    Message,
    ProcessingElement,
    SUM,
    get_operator,
)
from repro.core.pe import PEWork
from repro.memory import MemoryConfig


@pytest.fixture(autouse=True)
def force_vector_kernel(monkeypatch):
    """Drop the cutovers so even tiny invocations exercise the NumPy path."""
    monkeypatch.setattr(pe_module, "_VECTOR_SCAN_CUTOVER", 0)
    monkeypatch.setattr(pe_module, "_VECTOR_FOLD_CUTOVER", 0)


def random_messages(rng, count, universe, max_indices=3, max_entries=3,
                    max_entry_len=4, elements=8):
    """A random, header-valid message population."""
    messages = []
    for _ in range(count):
        indices = frozenset(
            int(i)
            for i in rng.choice(universe, size=rng.integers(1, max_indices + 1),
                                replace=False)
        )
        entries = []
        for _ in range(rng.integers(1, max_entries + 1)):
            length = int(rng.integers(0, max_entry_len + 1))
            entry = frozenset(
                int(i)
                for i in rng.choice(universe, size=length, replace=False)
                if int(i) not in indices
            )
            entries.append(entry)
        messages.append(
            Message(
                Header.make(indices, entries),
                rng.normal(size=elements),
                ready_cycle=int(rng.integers(0, 50)),
                hops=int(rng.integers(0, 4)),
            )
        )
    return messages


def message_fingerprint(message):
    return (
        message.header.indices,
        message.header.entries,
        message.value.tobytes(),
        message.ready_cycle,
        message.hops,
    )


def assert_identical(scalar_result, vector_result):
    assert [message_fingerprint(m) for m in scalar_result.outputs] == [
        message_fingerprint(m) for m in vector_result.outputs
    ]
    assert scalar_result.work == vector_result.work


def make_pes(operator=SUM):
    config = FafnirConfig(batch_size=64, total_ranks=8, ranks_per_leaf_pe=2)
    scalar = ProcessingElement(config, operator, kernel="scalar")
    vector = ProcessingElement(config, operator, kernel="vector")
    return scalar, vector


class TestProcessEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_populations(self, seed):
        rng = np.random.default_rng(seed)
        universe = int(rng.integers(6, 40))
        a = random_messages(rng, int(rng.integers(1, 12)), universe)
        b = random_messages(rng, int(rng.integers(0, 12)), universe)
        scalar, vector = make_pes()
        assert_identical(scalar.process(a, b), vector.process(a, b))

    @pytest.mark.parametrize("seed", range(6))
    def test_dense_overlap_many_ties(self, seed):
        """A tiny universe maximises duplicate entries and tie-breaks."""
        rng = np.random.default_rng(1000 + seed)
        a = random_messages(rng, 10, universe=5, max_indices=2,
                            max_entries=2, max_entry_len=3)
        b = random_messages(rng, 10, universe=5, max_indices=2,
                            max_entries=2, max_entry_len=3)
        scalar, vector = make_pes()
        assert_identical(scalar.process(a, b), vector.process(a, b))

    def test_empty_partner_side(self):
        rng = np.random.default_rng(3)
        a = random_messages(rng, 6, universe=12)
        scalar, vector = make_pes()
        assert_identical(scalar.process(a, []), vector.process(a, []))

    def test_complete_entries_forward(self):
        value = np.arange(4.0)
        done = Message(Header.make({1, 2}, [set()]), value)
        other = Message(Header.make({9}, [{4}]), value)
        scalar, vector = make_pes()
        assert_identical(
            scalar.process([done], [other]), vector.process([done], [other])
        )

    @pytest.mark.parametrize("name", ["sum", "min", "max"])
    def test_operators(self, name):
        rng = np.random.default_rng(17)
        a = random_messages(rng, 8, universe=16)
        b = random_messages(rng, 8, universe=16)
        scalar, vector = make_pes(get_operator(name))
        assert_identical(scalar.process(a, b), vector.process(a, b))


class TestFoldEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams(self, seed):
        rng = np.random.default_rng(2000 + seed)
        stream = random_messages(rng, int(rng.integers(2, 10)),
                                 universe=int(rng.integers(4, 16)))
        scalar, vector = make_pes()
        scalar_work, vector_work = PEWork(), PEWork()
        scalar_out = scalar.fold_stream(list(stream), scalar_work)
        vector_out = vector.fold_stream(list(stream), vector_work)
        assert [message_fingerprint(m) for m in scalar_out] == [
            message_fingerprint(m) for m in vector_out
        ]
        assert scalar_work == vector_work

    def test_chained_reduction_within_one_fifo(self):
        """Co-located indices that must fold 0⊕1⊕2 inside one stream."""
        value = np.ones(4)
        stream = [
            Message(Header.make({0}, [{1, 2}]), value * 1),
            Message(Header.make({1}, [{0, 2}]), value * 2),
            Message(Header.make({2}, [{0, 1}]), value * 4),
        ]
        scalar, vector = make_pes()
        scalar_work, vector_work = PEWork(), PEWork()
        scalar_out = scalar.fold_stream(list(stream), scalar_work)
        vector_out = vector.fold_stream(list(stream), vector_work)
        assert [message_fingerprint(m) for m in scalar_out] == [
            message_fingerprint(m) for m in vector_out
        ]
        assert scalar_work == vector_work


class TestEngineEquivalence:
    def run_both(self, queries, seed=0, operator=SUM, deduplicate=True,
                 ranks=8):
        rng = np.random.default_rng(seed)
        store = {}

        def source(index):
            if index not in store:
                store[index] = np.random.default_rng(
                    50_000 + index
                ).normal(size=16)
            return store[index]

        config = FafnirConfig(
            batch_size=max(len(queries), 1),
            max_query_len=max(len(q) for q in queries),
            vector_bytes=16 * 4,
            total_ranks=ranks,
            ranks_per_leaf_pe=2,
            num_tables=ranks,
        )
        memory = MemoryConfig().scaled_to_ranks(ranks)
        del rng
        results = []
        for kernel in ("scalar", "vector"):
            engine = FafnirEngine(
                config=config,
                operator=operator,
                memory_config=memory,
                kernel=kernel,
            )
            results.append(
                engine.run_batch(queries, source, deduplicate=deduplicate)
            )
        return results

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("deduplicate", [True, False])
    def test_random_batches(self, seed, deduplicate):
        rng = np.random.default_rng(3000 + seed)
        queries = [
            rng.choice(64, size=int(rng.integers(1, 9)),
                       replace=False).tolist()
            for _ in range(int(rng.integers(2, 17)))
        ]
        scalar, vector = self.run_both(
            queries, seed=seed, deduplicate=deduplicate
        )
        for a, b in zip(scalar.vectors, vector.vectors):
            assert a.tobytes() == b.tobytes()
        assert (
            scalar.stats.latency_pe_cycles == vector.stats.latency_pe_cycles
        )
        assert scalar.stats.per_pe_work == vector.stats.per_pe_work

    def test_same_rank_collisions(self):
        """Queries whose indices share a home rank exercise the fold path."""
        ranks = 8
        # index % ranks is the home rank under the default placement, so
        # each query's indices are deliberately congruent mod ranks.
        queries = [[3, 3 + ranks, 3 + 2 * ranks], [5, 5 + ranks], [1, 9, 17]]
        scalar, vector = self.run_both(queries, ranks=ranks)
        for a, b in zip(scalar.vectors, vector.vectors):
            assert a.tobytes() == b.tobytes()
        assert scalar.stats.per_pe_work == vector.stats.per_pe_work

    @pytest.mark.parametrize("name", ["min", "mean"])
    def test_other_operators(self, name):
        rng = np.random.default_rng(9)
        queries = [
            rng.choice(48, size=6, replace=False).tolist() for _ in range(8)
        ]
        scalar, vector = self.run_both(queries, operator=get_operator(name))
        for a, b in zip(scalar.vectors, vector.vectors):
            assert a.tobytes() == b.tobytes()
        assert scalar.stats.per_pe_work == vector.stats.per_pe_work
