"""Tests for the streaming multi-batch runner, sharding, and the two fixes
this PR carries: position-based leaf FIFO routing and per-occurrence
completion timing for the dedup ablation."""

import numpy as np
import pytest

from repro.core import (
    FafnirConfig,
    FafnirEngine,
    FafnirTree,
    ShardedRunner,
    fleet_makespan_pe_cycles,
    shard_batches,
)
from repro.core.batch import plan_batch
from repro.core.tree import TreePE
from repro.memory import MemoryConfig

RANKS = 8
ELEMENTS = 16


def make_config(batch_size=8, max_query_len=6):
    return FafnirConfig(
        batch_size=batch_size,
        max_query_len=max_query_len,
        vector_bytes=ELEMENTS * 4,
        total_ranks=RANKS,
        ranks_per_leaf_pe=2,
        num_tables=RANKS,
    )


def make_engine(**kwargs):
    return FafnirEngine(
        config=make_config(),
        memory_config=MemoryConfig().scaled_to_ranks(RANKS),
        **kwargs,
    )


def vector_source(index):
    """Module-level (picklable) deterministic vector store."""
    return np.random.default_rng(80_000 + index).normal(size=ELEMENTS)


def oracle(queries):
    return [
        sum(vector_source(i) for i in sorted(set(query))) for query in queries
    ]


def make_batches(num_batches=3, seed=0):
    rng = np.random.default_rng(seed)
    return [
        [
            rng.choice(48, size=int(rng.integers(2, 7)),
                       replace=False).tolist()
            for _ in range(int(rng.integers(2, 9)))
        ]
        for _ in range(num_batches)
    ]


class TestRunBatches:
    def test_outputs_match_sequential_run_batch(self):
        batches = make_batches(3)
        streamed = make_engine().run_batches(batches, vector_source)
        reference = make_engine()
        expected = [
            vector
            for batch in batches
            for vector in reference.run_batch(batch, vector_source).vectors
        ]
        assert len(streamed.vectors) == len(expected)
        for a, b in zip(streamed.vectors, expected):
            assert a.tobytes() == b.tobytes()

    def test_pipelined_makespan_at_most_serial(self):
        batches = make_batches(4, seed=5)
        run = make_engine().run_batches(batches, vector_source)
        stats = run.pipeline
        assert stats.batches == 4
        assert stats.total_queries == sum(len(b) for b in batches)
        assert (
            stats.pipelined_latency_pe_cycles
            <= stats.serial_latency_pe_cycles
        )
        assert stats.pipeline_speedup >= 1.0
        assert len(stats.batch_completion_cycles) == 4
        assert (
            max(stats.batch_completion_cycles)
            == stats.pipelined_latency_pe_cycles
        )

    def test_serial_mode_sums_batch_latencies(self):
        batches = make_batches(3, seed=7)
        run = make_engine().run_batches(batches, vector_source,
                                        pipeline=False)
        latencies = [r.stats.latency_pe_cycles for r in run.results]
        cursor, expected = 0, []
        for latency in latencies:
            expected.append(cursor + latency)
            cursor += latency
        assert run.pipeline.batch_completion_cycles == expected
        assert run.pipeline.pipelined_latency_pe_cycles == sum(latencies)

    def test_pipeline_flag_is_timing_only(self):
        batches = make_batches(2, seed=9)
        overlapped = make_engine().run_batches(batches, vector_source)
        serial = make_engine().run_batches(batches, vector_source,
                                           pipeline=False)
        for a, b in zip(overlapped.vectors, serial.vectors):
            assert a.tobytes() == b.tobytes()

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            make_engine().run_batches([], vector_source)


class TestShardedRunner:
    def test_round_robin_sharding(self):
        batches = [[f"b{i}"] for i in range(5)]
        buckets = shard_batches(batches, 2)
        assert buckets == [
            [["b0"], ["b2"], ["b4"]],
            [["b1"], ["b3"]],
        ]
        with pytest.raises(ValueError):
            shard_batches(batches, 0)

    def test_shards_match_direct_engines(self):
        shards = shard_batches(make_batches(4, seed=11), 2)
        runner = ShardedRunner(
            config=make_config(),
            memory_config=MemoryConfig().scaled_to_ranks(RANKS),
            max_workers=2,
        )
        sharded = runner.run(shards, vector_source)
        assert len(sharded) == 2
        for shard, result in zip(shards, sharded):
            direct = make_engine().run_batches(shard, vector_source)
            assert len(result.vectors) == len(direct.vectors)
            for a, b in zip(result.vectors, direct.vectors):
                assert a.tobytes() == b.tobytes()
            assert (
                result.pipeline.pipelined_latency_pe_cycles
                == direct.pipeline.pipelined_latency_pe_cycles
            )

    def test_fleet_makespan_is_max_over_shards(self):
        shards = shard_batches(make_batches(3, seed=13), 2)
        runner = ShardedRunner(
            config=make_config(),
            memory_config=MemoryConfig().scaled_to_ranks(RANKS),
            max_workers=1,  # serial fallback path
        )
        results = runner.run(shards, vector_source)
        assert fleet_makespan_pe_cycles(results) == max(
            r.pipeline.pipelined_latency_pe_cycles for r in results
        )


class TestSerialFallback:
    """Process spawning being unavailable must be invisible to callers:
    identical results and (with ``trace=True``) identical event streams."""

    def _runner(self):
        return ShardedRunner(
            config=make_config(),
            memory_config=MemoryConfig().scaled_to_ranks(RANKS),
            max_workers=2,
            trace=True,
        )

    def test_pool_creation_failure_falls_back_in_process(self, monkeypatch):
        shards = shard_batches(make_batches(3, seed=17), 2)
        expected = self._runner().run(shards, vector_source)

        def no_processes(*args, **kwargs):
            raise OSError("process spawning unavailable")

        monkeypatch.setattr(
            "repro.core.sharding.ProcessPoolExecutor", no_processes
        )
        fallback = self._runner().run(shards, vector_source)
        assert len(fallback) == len(expected)
        for a, b in zip(expected, fallback):
            for va, vb in zip(a.vectors, b.vectors):
                assert va.tobytes() == vb.tobytes()
            assert a.events == b.events

    def test_submit_failure_falls_back_in_process(self, monkeypatch):
        """OSError at submission (not pool creation) is still cannot-spawn,
        not a worker death — same serial fallback, no re-dispatch loop."""

        class BrokenSubmitPool:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise OSError("fork failed")

            def shutdown(self, *args, **kwargs):
                pass

        shards = shard_batches(make_batches(2, seed=19), 2)
        expected = self._runner().run(shards, vector_source)
        monkeypatch.setattr(
            "repro.core.sharding.ProcessPoolExecutor", BrokenSubmitPool
        )
        fallback = self._runner().run(shards, vector_source)
        for a, b in zip(expected, fallback):
            for va, vb in zip(a.vectors, b.vectors):
                assert va.tobytes() == vb.tobytes()
            assert a.events == b.events

    def test_traced_events_ship_across_processes(self):
        """A traced multi-process run returns the same per-shard event
        streams an in-process run records."""
        shards = shard_batches(make_batches(2, seed=29), 2)
        pooled = self._runner().run(shards, vector_source)
        serial = ShardedRunner(
            config=make_config(),
            memory_config=MemoryConfig().scaled_to_ranks(RANKS),
            max_workers=1,
            trace=True,
        ).run(shards, vector_source)
        for a, b in zip(pooled, serial):
            assert a.events is not None
            assert a.events == b.events


class TestLeafRouting:
    def test_fifo_side_uses_rank_position(self):
        """Non-contiguous leaf wiring: side comes from the rank's position
        in ``leaf_ranks``, not from arithmetic on the first rank's id."""
        leaf = TreePE(pe_id=0, level=0, children=None, leaf_ranks=(6, 1))
        assert FafnirEngine._fifo_side(leaf, 6) == 0
        assert FafnirEngine._fifo_side(leaf, 1) == 1
        with pytest.raises(ValueError):
            FafnirEngine._fifo_side(leaf, 3)

    def test_fifo_side_splits_wider_leaves_in_half(self):
        leaf = TreePE(
            pe_id=0, level=0, children=None, leaf_ranks=(9, 4, 11, 2)
        )
        assert [FafnirEngine._fifo_side(leaf, r) for r in (9, 4, 11, 2)] == [
            0, 0, 1, 1,
        ]

    def test_permuted_rank_wiring_still_matches_oracle(self):
        """A board whose physical rank order is scrambled must still gather
        correctly — the regression the position-based routing fixes."""
        engine = make_engine(check_values=True)
        permutation = [5, 2, 7, 0, 3, 6, 1, 4]
        engine.tree = FafnirTree(engine.config, rank_order=permutation)
        rng = np.random.default_rng(21)
        queries = [
            rng.choice(40, size=int(rng.integers(2, 7)),
                       replace=False).tolist()
            for _ in range(6)
        ]
        result = engine.run_batch(queries, vector_source)
        for got, want in zip(result.vectors, oracle(queries)):
            assert np.allclose(got, want)


class TestDedupAblationTiming:
    def test_fetch_returns_per_occurrence_completions(self):
        engine = make_engine()
        queries = [[1, 2, 3], [1, 2, 4], [1, 5, 6]]
        plan = plan_batch(queries, deduplicate=False)
        finish = engine._fetch_from_memory(plan)
        # Index 1 is read three times, index 2 twice, the rest once.
        assert len(finish[1]) == 3
        assert len(finish[2]) == 2
        for index in (3, 4, 5, 6):
            assert len(finish[index]) == 1
        # Later occurrences of the same index never finish earlier.
        assert finish[1] == sorted(finish[1])

    def test_ablation_latency_not_below_dedup(self):
        queries = [[1, 2, 3], [1, 2, 4], [1, 5, 6], [2, 3, 7]]
        dedup = make_engine().run_batch(queries, vector_source)
        ablation = make_engine().run_batch(
            queries, vector_source, deduplicate=False
        )
        assert (
            ablation.stats.latency_pe_cycles
            >= dedup.stats.latency_pe_cycles
        )
        assert ablation.stats.memory.bytes_read > dedup.stats.memory.bytes_read

    def test_ablation_vectors_identical_to_dedup(self):
        queries = make_batches(1, seed=23)[0]
        dedup = make_engine().run_batch(queries, vector_source)
        ablation = make_engine().run_batch(
            queries, vector_source, deduplicate=False
        )
        for a, b in zip(dedup.vectors, ablation.vectors):
            assert a.tobytes() == b.tobytes()
