"""Tests for FafnirConfig serialisation."""

import json

import pytest

from repro.core import FafnirConfig, PELatencies


class TestSerialization:
    def test_round_trip_default(self):
        config = FafnirConfig()
        assert FafnirConfig.from_dict(config.to_dict()) == config

    def test_round_trip_custom(self):
        config = FafnirConfig(
            batch_size=8,
            max_query_len=8,
            vector_bytes=256,
            total_ranks=16,
            ranks_per_leaf_pe=1,
            num_tables=16,
            latencies=PELatencies(compare=10, reduce_value=3, reduce_header=12, forward=1),
        )
        assert FafnirConfig.from_dict(config.to_dict()) == config

    def test_json_compatible(self):
        config = FafnirConfig()
        text = json.dumps(config.to_dict())
        assert FafnirConfig.from_dict(json.loads(text)) == config

    def test_partial_dict_uses_defaults(self):
        config = FafnirConfig.from_dict({"batch_size": 8})
        assert config.batch_size == 8
        assert config.total_ranks == 32
        assert config.latencies.compare == 12

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown configuration keys"):
            FafnirConfig.from_dict({"batchsize": 8})

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError):
            FafnirConfig.from_dict({"batch_size": 0})
        with pytest.raises(ValueError):
            FafnirConfig.from_dict({"total_ranks": 24})
