"""Tests for tree topology and node grouping (paper Fig. 4a)."""

import pytest

from repro.core import FafnirConfig, FafnirTree
from repro.memory import MemoryConfig


@pytest.fixture
def reference_tree():
    """The paper's 32-rank, 1PE:2R tree: 16 leaves, 31 PEs, 5 levels."""
    return FafnirTree(FafnirConfig())


class TestTopology:
    def test_reference_tree_has_31_pes(self, reference_tree):
        assert reference_tree.num_pes == 31
        assert reference_tree.num_levels == 5

    def test_leaves_cover_all_ranks_disjointly(self, reference_tree):
        seen = set()
        for leaf in reference_tree.leaves():
            assert leaf.leaf_ranks is not None
            assert not (set(leaf.leaf_ranks) & seen)
            seen.update(leaf.leaf_ranks)
        assert seen == set(range(32))

    def test_root_covers_every_rank(self, reference_tree):
        assert set(reference_tree.covered_ranks(reference_tree.root_id)) == set(
            range(32)
        )

    def test_bottom_up_order_children_before_parents(self, reference_tree):
        order = {pe_id: pos for pos, pe_id in enumerate(reference_tree.bottom_up_ids())}
        for pe_id in reference_tree.bottom_up_ids():
            node = reference_tree.pe(pe_id)
            if node.children:
                left, right = node.children
                assert order[left] < order[pe_id]
                assert order[right] < order[pe_id]

    def test_leaf_for_rank(self, reference_tree):
        assert reference_tree.leaf_for_rank(0).leaf_ranks == (0, 1)
        assert reference_tree.leaf_for_rank(1).leaf_ranks == (0, 1)
        assert reference_tree.leaf_for_rank(31).leaf_ranks == (30, 31)
        with pytest.raises(ValueError):
            reference_tree.leaf_for_rank(32)

    def test_one_pe_per_rank_configuration(self):
        tree = FafnirTree(FafnirConfig(ranks_per_leaf_pe=1))
        assert len(tree.leaves()) == 32
        assert tree.num_pes == 63

    def test_one_pe_per_four_ranks_configuration(self):
        tree = FafnirTree(FafnirConfig(ranks_per_leaf_pe=4))
        assert len(tree.leaves()) == 8
        assert tree.num_pes == 15

    def test_small_tree(self):
        tree = FafnirTree(FafnirConfig(total_ranks=8, ranks_per_leaf_pe=2))
        assert tree.num_pes == 7
        assert tree.num_levels == 3


class TestNodeGrouping:
    def test_reference_grouping_is_4_dimm_nodes_plus_channel_node(
        self, reference_tree
    ):
        """Paper Fig. 4a: four 7-PE DIMM/rank nodes and one 3-PE channel node."""
        geometry = MemoryConfig.ddr4_2400_quad_channel().geometry
        grouping = reference_tree.node_grouping(geometry)
        counts = {}
        for group in grouping.values():
            counts[group] = counts.get(group, 0) + 1
        assert counts["channel_node"] == 3
        dimm_nodes = [g for g in counts if g.startswith("dimm_rank_node")]
        assert len(dimm_nodes) == 4
        assert all(counts[g] == 7 for g in dimm_nodes)

    def test_root_belongs_to_channel_node(self, reference_tree):
        geometry = MemoryConfig.ddr4_2400_quad_channel().geometry
        grouping = reference_tree.node_grouping(geometry)
        assert grouping[reference_tree.root_id] == "channel_node"

    def test_leaves_belong_to_dimm_nodes(self, reference_tree):
        geometry = MemoryConfig.ddr4_2400_quad_channel().geometry
        grouping = reference_tree.node_grouping(geometry)
        for leaf in reference_tree.leaves():
            assert grouping[leaf.pe_id].startswith("dimm_rank_node")


class TestConnections:
    def test_tree_link_count(self, reference_tree):
        assert reference_tree.connection_count() == 30  # 31 PEs − 1


class TestConfigValidation:
    def test_non_power_of_two_leaves_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            FafnirConfig(total_ranks=24, ranks_per_leaf_pe=2)

    def test_indivisible_rank_grouping_rejected(self):
        with pytest.raises(ValueError, match="divide evenly"):
            FafnirConfig(total_ranks=32, ranks_per_leaf_pe=3)

    def test_derived_quantities(self):
        config = FafnirConfig()
        assert config.num_leaf_pes == 16
        assert config.tree_levels == 5
        assert config.num_pes == 31
        assert config.vector_elements == 128
        assert config.index_bits == 5
        assert config.header_bytes == pytest.approx(10.0)
        assert config.entry_bytes == pytest.approx(522.0)

    def test_with_batch_size(self):
        config = FafnirConfig().with_batch_size(8)
        assert config.batch_size == 8
        assert config.compute_units == 8
        assert config.total_ranks == 32

    def test_with_ranks(self):
        config = FafnirConfig().with_ranks(8)
        assert config.total_ranks == 8
        assert config.num_leaf_pes == 4

    def test_with_ranks_falls_back_to_one_per_leaf(self):
        config = FafnirConfig().with_ranks(2)
        assert config.total_ranks == 2
        assert config.ranks_per_leaf_pe in (1, 2)
