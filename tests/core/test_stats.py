"""Tests for tree-utilisation aggregation."""

import numpy as np
import pytest

from repro.core import FafnirEngine, tree_utilization
from repro.workloads import EmbeddingTableSet, QueryGenerator


@pytest.fixture(scope="module")
def lookup():
    tables = EmbeddingTableSet(rows_per_table=10_000, seed=1)
    engine = FafnirEngine()
    batch = QueryGenerator.paper_calibrated(tables, seed=2).batch(16)
    result = engine.run_batch(batch, tables.vector)
    return engine, result


class TestTreeUtilization:
    def test_levels_cover_whole_tree(self, lookup):
        engine, result = lookup
        utilization = tree_utilization(
            engine.tree, result.stats, engine.memory.config.geometry
        )
        assert len(utilization.levels) == engine.tree.num_levels
        assert sum(level.pes for level in utilization.levels) == engine.tree.num_pes

    def test_totals_match_engine_stats(self, lookup):
        engine, result = lookup
        utilization = tree_utilization(
            engine.tree, result.stats, engine.memory.config.geometry
        )
        assert utilization.total.reduces == result.stats.total_work.reduces
        assert utilization.total.forwards == result.stats.total_work.forwards

    def test_per_chip_grouping(self, lookup):
        engine, result = lookup
        utilization = tree_utilization(
            engine.tree, result.stats, engine.memory.config.geometry
        )
        chips = set(utilization.per_chip)
        assert "channel_node" in chips
        assert sum(1 for c in chips if c.startswith("dimm_rank_node")) == 4

    def test_channel_node_performs_cross_channel_reductions(self, lookup):
        """The paper's argument: without the channel node these reductions
        would land on the cores."""
        engine, result = lookup
        utilization = tree_utilization(
            engine.tree, result.stats, engine.memory.config.geometry
        )
        assert utilization.per_chip["channel_node"].reduces > 0
        assert 0.0 < utilization.channel_node_share < 1.0

    def test_busiest_level(self, lookup):
        engine, result = lookup
        utilization = tree_utilization(
            engine.tree, result.stats, engine.memory.config.geometry
        )
        busiest = utilization.busiest_level()
        assert busiest.work.reduces == max(
            level.work.reduces for level in utilization.levels
        )
        assert busiest.reduces_per_pe > 0
