"""Tests for the header wire format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FafnirConfig, Header
from repro.core.wire import HeaderOverflowError, WireFormat


@pytest.fixture
def wire():
    return WireFormat.for_config(FafnirConfig())


class TestWireFormat:
    def test_reference_format_is_5_bit(self, wire):
        assert wire.index_bits == 5
        assert wire.max_index == 31

    def test_round_trip_simple(self, wire):
        header = Header.make({3}, [{7, 11}, {2}])
        assert wire.decode(wire.encode(header)) == header

    def test_round_trip_with_complete_entry(self, wire):
        header = Header.make({3, 7, 11}, [set()])
        assert wire.decode(wire.encode(header)) == header

    def test_paper_example_round_trip(self, wire):
        """Fig. 6: [indices: 50,11 | queries: 94,26] with 5-bit table ids
        (relabelled into range)."""
        header = Header.make({5, 1}, [{9, 2}])
        decoded = wire.decode(wire.encode(header))
        assert decoded.indices == frozenset({5, 1})
        assert decoded.entries == (frozenset({2, 9}),)

    def test_oversized_index_rejected(self, wire):
        header = Header.make({32}, [{1}])
        with pytest.raises(HeaderOverflowError, match="5-bit"):
            wire.encode(header)

    def test_slot_budget_enforced(self):
        tight = WireFormat(index_bits=5, slot_budget=4)
        header = Header.make({1, 2, 3}, [{4, 5}])  # needs 1+3+1+2 = 7 slots
        assert not tight.fits(header)
        with pytest.raises(HeaderOverflowError, match="budget"):
            tight.encode(header)

    def test_reference_budget_fits_full_queries(self, wire):
        """A header carrying one full q=16 query fits the budget."""
        header = Header.make({0}, [set(range(1, 16))])
        assert wire.fits(header)
        assert wire.decode(wire.encode(header)) == header

    def test_decode_rejects_garbage(self, wire):
        with pytest.raises(ValueError):
            wire.decode(b"")
        with pytest.raises(ValueError):
            wire.decode(bytes([9]) + b"\x00")  # promises 9 tokens, has none

    def test_wire_bytes_accounting(self, wire):
        small = Header.make({1}, [{2}])
        large = Header.make({1, 2, 3, 4}, [{5, 6, 7}, {8, 9}])
        assert wire.wire_bytes(large) > wire.wire_bytes(small)


@settings(max_examples=80, deadline=None)
@given(
    indices=st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=4),
    entries=st.lists(
        st.sets(st.integers(min_value=0, max_value=31), max_size=4),
        min_size=1,
        max_size=3,
    ),
)
def test_round_trip_property(indices, entries):
    cleaned = [set(entry) - indices for entry in entries]
    header = Header.make(indices, cleaned)
    wire = WireFormat(index_bits=5, slot_budget=64)
    assert wire.decode(wire.encode(header)) == header
