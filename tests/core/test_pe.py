"""Tests for the PE compute/merge semantics, anchored to the paper's Fig. 6."""

import numpy as np
import pytest

from repro.core import FafnirConfig, Header, Message, ProcessingElement, SUM
from repro.core.pe import PEWork


def fs(*items):
    return frozenset(items)


@pytest.fixture
def config():
    return FafnirConfig(batch_size=8, total_ranks=8, ranks_per_leaf_pe=2)


@pytest.fixture
def pe(config):
    return ProcessingElement(config, SUM, check_values=True)


def msg(indices, entries, value, ready=0):
    return Message(Header.make(indices, entries), np.full(4, float(value)), ready_cycle=ready)


class TestForwardReduce:
    def test_reduce_when_partner_contained_in_entry(self, pe):
        a = msg({50}, [{11, 94, 26}], 1.0)
        b = msg({11}, [{50, 94, 26}], 2.0)
        result = pe.process([a], [b])
        reduced = [m for m in result.outputs if m.indices == fs(50, 11)]
        assert len(reduced) == 1
        assert reduced[0].entries == (fs(94, 26),)
        assert np.allclose(reduced[0].value, 3.0)

    def test_forward_when_no_partner_matches(self, pe):
        a = msg({50}, [{83, 94}], 1.0)
        b = msg({11}, [{32}], 2.0)
        result = pe.process([a], [b])
        indices_sets = {m.indices for m in result.outputs}
        assert indices_sets == {fs(50), fs(11)}
        assert result.work.reduces == 0
        assert result.work.forwards == 2

    def test_empty_input_forwards_everything(self, pe):
        """Fig. 6: 'in PE (4|15), only one of the inputs exists, which
        automatically leads to a forward action'."""
        a = msg({94}, [{50, 11, 26}], 5.0)
        result = pe.process([a], [])
        assert len(result.outputs) == 1
        assert result.outputs[0].indices == fs(94)
        assert result.work.reduces == 0

    def test_complete_entries_always_travel_up(self, pe):
        done = msg({1, 2}, [set()], 3.0)
        other = msg({9}, [{4}], 1.0)
        result = pe.process([done], [other])
        complete = [m for m in result.outputs if m.header.complete_entries]
        assert len(complete) == 1
        assert complete[0].indices == fs(1, 2)

    def test_both_directions_discover_same_reduction_once_after_merge(self, pe):
        a = msg({50}, [{11}], 1.0)
        b = msg({11}, [{50}], 2.0)
        result = pe.process([a], [b])
        # Raw outputs contained the reduction twice; merge dedups it.
        assert result.work.duplicates_removed >= 1
        reduced = [m for m in result.outputs if m.indices == fs(50, 11)]
        assert len(reduced) == 1
        assert reduced[0].header.complete_entries == (fs(),)


class TestPaperFig6PE23:
    """The PE (2|3) walk-through: five raw outputs, two merged items."""

    def outputs(self, pe):
        a = msg({32}, [{11, 83, 77}, {83, 26}], 1.0)   # index 32: queries a, d
        b = msg({83}, [{11, 32, 77}, {50, 94}, {32, 26}], 2.0)  # queries a, b, d
        return pe.process([a], [b])

    def test_five_raw_actions(self, pe):
        result = self.outputs(pe)
        # 4 reduces (two per direction) + 1 forward of the {50,94} entry.
        assert result.work.reduces == 4
        assert result.work.forwards == 1

    def test_two_merged_outputs(self, pe):
        result = self.outputs(pe)
        assert len(result.outputs) == 2
        by_indices = {m.indices: m for m in result.outputs}
        merged = by_indices[fs(32, 83)]
        assert set(merged.entries) == {fs(11, 77), fs(26)}
        assert np.allclose(merged.value, 3.0)
        forwarded = by_indices[fs(83)]
        assert forwarded.entries == (fs(50, 94),)
        assert np.allclose(forwarded.value, 2.0)

    def test_merge_counts(self, pe):
        result = self.outputs(pe)
        assert result.work.merges == 1          # the {32,83} group
        assert result.work.duplicates_removed == 2


class TestTiming:
    def test_reduce_output_ready_after_reduce_path(self, pe, config):
        a = msg({1}, [{2}], 1.0, ready=100)
        b = msg({2}, [{1}], 2.0, ready=40)
        result = pe.process([a], [b])
        reduced = [m for m in result.outputs if m.indices == fs(1, 2)][0]
        assert reduced.ready_cycle == 100 + config.latencies.reduce_path

    def test_forward_output_ready_after_forward_path(self, pe, config):
        a = msg({1}, [{9}], 1.0, ready=10)
        result = pe.process([a], [])
        assert result.outputs[0].ready_cycle == 10 + config.latencies.forward_path

    def test_issue_limit_staggers_excess_outputs(self):
        config = FafnirConfig(batch_size=2, total_ranks=8, ranks_per_leaf_pe=2)
        pe = ProcessingElement(config, SUM)
        # Four independent forwards with equal readiness but only 2 units.
        inputs = [msg({i}, [{100 + i}], 1.0, ready=0) for i in range(4)]
        result = pe.process(inputs, [])
        ready = sorted(m.ready_cycle for m in result.outputs)
        base = config.latencies.forward_path
        assert ready == [base, base, base + 1, base + 1]

    def test_merge_takes_latest_contributor(self, pe, config):
        a = msg({32}, [{83}, {83, 26}], 1.0, ready=0)
        b = msg({83}, [{32}, {32, 26}], 2.0, ready=50)
        result = pe.process([a], [b])
        merged = [m for m in result.outputs if m.indices == fs(32, 83)][0]
        assert merged.ready_cycle >= 50 + config.latencies.reduce_path


class TestMergeUnitInvariant:
    def test_check_values_raises_on_inconsistent_merge(self, config):
        pe = ProcessingElement(config, SUM, check_values=True)
        # Hand-craft two raw-output-equivalent inputs that would merge with
        # different values: same indices cannot legally carry different data,
        # so feed messages that trigger it through the public API.
        a1 = msg({1}, [{2}], 10.0)
        a2 = msg({1}, [{2, 3}], 99.0)  # corrupt: same index, different value
        b = msg({2}, [{1}, {1, 3}], 1.0)
        with pytest.raises(AssertionError, match="merge-unit invariant"):
            pe.process([a1, a2], [b])


class TestFoldStream:
    def test_non_interacting_stream_is_identity(self, pe):
        work = PEWork()
        stream = [msg({1}, [{5}], 1.0, ready=3), msg({2}, [{9}], 2.0, ready=7)]
        folded = pe.fold_stream(stream, work)
        assert {m.indices for m in folded} == {fs(1), fs(2)}
        assert {m.ready_cycle for m in folded} == {3, 7}
        assert work.reduces == 0

    def test_same_fifo_pair_combines(self, pe, config):
        work = PEWork()
        stream = [
            msg({1}, [{2}], 1.0, ready=0),
            msg({2}, [{1}], 2.0, ready=10),
        ]
        folded = pe.fold_stream(stream, work)
        by_indices = {m.indices: m for m in folded}
        assert fs(1, 2) in by_indices
        combined = by_indices[fs(1, 2)]
        assert np.allclose(combined.value, 3.0)
        assert combined.ready_cycle == 10 + config.latencies.reduce_path
        assert work.reduces >= 1

    def test_originals_survive_for_other_queries(self, pe):
        work = PEWork()
        stream = [
            msg({1}, [{2}, {7}], 1.0),   # query {1,2} and query {1,7}
            msg({2}, [{1}], 2.0),
        ]
        folded = pe.fold_stream(stream, work)
        by_indices = {m.indices: m for m in folded}
        assert fs(1, 2) in by_indices           # combined for query {1,2}
        assert fs(1) in by_indices              # original for query {1,7}
        assert fs(7) in by_indices[fs(1)].entries

    def test_triple_chain_closure(self, pe):
        work = PEWork()
        stream = [
            msg({1}, [{2, 3}], 1.0),
            msg({2}, [{1, 3}], 2.0),
            msg({3}, [{1, 2}], 4.0),
        ]
        folded = pe.fold_stream(stream, work)
        by_indices = {m.indices: m for m in folded}
        assert fs(1, 2, 3) in by_indices
        full = by_indices[fs(1, 2, 3)]
        assert np.allclose(full.value, 7.0)
        assert full.header.complete_entries == (fs(),)


class TestOutputBound:
    def test_theoretical_bound(self, pe, config):
        assert pe.theoretical_output_bound(2, 3) == 2 * 3 + 2 + 3
        big = pe.theoretical_output_bound(100, 100)
        assert big == config.batch_size * config.max_query_len
