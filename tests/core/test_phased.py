"""Tests for the phased (store-and-forward) timing variant."""

import numpy as np
import pytest

from repro.core import FafnirConfig, FafnirEngine, PhasedFafnirEngine
from repro.workloads import EmbeddingTableSet, QueryGenerator


@pytest.fixture(scope="module")
def workload():
    tables = EmbeddingTableSet(rows_per_table=50_000, seed=20)
    batch = QueryGenerator.paper_calibrated(tables, seed=21).batch(16)
    return tables, batch


class TestPhasedEngine:
    def test_functional_outputs_identical_to_dataflow(self, workload):
        tables, batch = workload
        config = FafnirConfig(batch_size=16)
        dataflow = FafnirEngine(config).run_batch(batch, tables.vector)
        phased = PhasedFafnirEngine(config).run_batch(batch, tables.vector)
        for a, b in zip(dataflow.vectors, phased.vectors):
            assert np.allclose(a, b)

    def test_phased_latency_upper_bounds_dataflow(self, workload):
        """Dataflow lets messages race ahead; phased waits for whole
        batches — the two bracket the hardware."""
        tables, batch = workload
        config = FafnirConfig(batch_size=16)
        dataflow = FafnirEngine(config).run_batch(batch, tables.vector)
        phased = PhasedFafnirEngine(config).run_batch(batch, tables.vector)
        assert (
            phased.stats.latency_pe_cycles >= dataflow.stats.latency_pe_cycles
        )

    def test_work_counts_identical(self, workload):
        """Timing models differ; the work performed must not."""
        tables, batch = workload
        config = FafnirConfig(batch_size=16)
        dataflow = FafnirEngine(config).run_batch(batch, tables.vector)
        phased = PhasedFafnirEngine(config).run_batch(batch, tables.vector)
        assert (
            dataflow.stats.total_work.reduces == phased.stats.total_work.reduces
        )
        assert dataflow.stats.memory.reads == phased.stats.memory.reads

    def test_phased_matches_oracle(self, workload):
        tables, batch = workload
        engine = PhasedFafnirEngine(FafnirConfig(batch_size=16), check_values=True)
        result = engine.run_batch(batch, tables.vector)
        for query, vector in zip(result.plan.queries, result.vectors):
            want = np.sum([tables.vector(i) for i in query], axis=0)
            assert np.allclose(vector, want)

    def test_phased_latency_still_ordered_vs_memory(self, workload):
        tables, batch = workload
        phased = PhasedFafnirEngine(FafnirConfig(batch_size=16)).run_batch(
            batch, tables.vector
        )
        assert (
            phased.stats.latency_pe_cycles
            > phased.stats.memory_latency_pe_cycles
        )
