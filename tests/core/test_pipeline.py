"""Tests for the batch-pipelined throughput model."""

import numpy as np
import pytest

from repro.core import (
    BatchStageCosts,
    FafnirConfig,
    FafnirEngine,
    PipelinedRun,
    simulate_stream,
)
from repro.workloads import EmbeddingTableSet, QueryGenerator


class TestBatchStageCosts:
    def test_bottleneck(self):
        costs = BatchStageCosts(memory_cycles=100, tree_cycles=40, latency_cycles=130)
        assert costs.bottleneck_cycles == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchStageCosts(memory_cycles=-1, tree_cycles=0, latency_cycles=0)


class TestPipelinedRun:
    def make_run(self, n=4):
        costs = BatchStageCosts(memory_cycles=100, tree_cycles=60, latency_cycles=160)
        return PipelinedRun(per_batch=[costs] * n)

    def test_serial_vs_pipelined(self):
        run = self.make_run(4)
        assert run.serial_cycles == 4 * 160
        assert run.pipelined_cycles == 160 + 3 * 100
        assert run.pipeline_speedup == pytest.approx(640 / 460)

    def test_single_batch_degenerates(self):
        run = self.make_run(1)
        assert run.pipelined_cycles == run.serial_cycles == 160
        assert run.steady_state_cycles_per_batch() == 160.0

    def test_steady_state(self):
        run = self.make_run(5)
        assert run.steady_state_cycles_per_batch() == pytest.approx(100.0)

    def test_queries_per_second(self):
        run = self.make_run(4)
        qps = run.queries_per_second(queries_per_batch=32, pe_clock_mhz=200.0)
        seconds = run.pipelined_cycles / 200e6
        assert qps == pytest.approx(4 * 32 / seconds)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelinedRun(per_batch=[])
        with pytest.raises(ValueError):
            self.make_run(2).queries_per_second(0)


class TestSimulateStream:
    def test_pipelining_beats_serial_on_real_batches(self):
        tables = EmbeddingTableSet(rows_per_table=50_000, seed=7)
        generator = QueryGenerator.paper_calibrated(tables, seed=8)
        engine = FafnirEngine(FafnirConfig(batch_size=16))
        batches = [generator.batch(16) for _ in range(4)]
        run = simulate_stream(engine, batches, tables.vector)
        assert run.batches == 4
        assert run.pipeline_speedup > 1.0
        assert run.pipelined_cycles < run.serial_cycles

    def test_results_depend_on_dedup(self):
        tables = EmbeddingTableSet(rows_per_table=50_000, seed=9)
        generator = QueryGenerator.paper_calibrated(tables, seed=10)
        engine = FafnirEngine(FafnirConfig(batch_size=16))
        batches = [generator.batch(16) for _ in range(3)]
        with_dedup = simulate_stream(engine, batches, tables.vector, deduplicate=True)
        without = simulate_stream(engine, batches, tables.vector, deduplicate=False)
        assert with_dedup.pipelined_cycles <= without.pipelined_cycles
