"""Tests for the public FafnirAccelerator facade."""

import numpy as np
import pytest

from repro.core import FafnirAccelerator, FafnirConfig


def make_source(seed=0, elements=128):
    rng = np.random.default_rng(seed)
    store = {}

    def source(index):
        if index not in store:
            store[index] = rng.normal(size=elements)
        return store[index]

    return source


class TestFacade:
    def test_operator_accepts_string(self):
        accelerator = FafnirAccelerator(operator="max")
        assert accelerator.operator.name == "max"

    def test_lookup_returns_one_vector_per_query(self):
        accelerator = FafnirAccelerator()
        source = make_source()
        result = accelerator.lookup(source, [[1, 2], [3], [4, 5, 6]])
        assert len(result.vectors) == 3
        assert all(v.shape == (128,) for v in result.vectors)

    def test_verify_against_oracle(self):
        accelerator = FafnirAccelerator(check_values=True)
        source = make_source(seed=2)
        rng = np.random.default_rng(3)
        queries = [list(rng.choice(1024, size=8, replace=False)) for _ in range(16)]
        assert accelerator.verify_against_oracle(source, queries)

    def test_software_batches_split_into_hardware_batches(self):
        """Paper §IV-B: larger software batches are served as several small
        hardware batches."""
        config = FafnirConfig(batch_size=4)
        accelerator = FafnirAccelerator(config=config, check_values=True)
        source = make_source(seed=4)
        rng = np.random.default_rng(5)
        queries = [list(rng.choice(256, size=4, replace=False)) for _ in range(10)]
        result = accelerator.lookup(source, queries)
        assert len(result.vectors) == 10
        # Stats accumulate across the three hardware batches (4 + 4 + 2).
        assert result.stats.total_lookups == sum(len(q) for q in queries)
        assert len(result.plan.queries) == 10
        # Every output still matches the oracle.
        for query, vector in zip(queries, result.vectors):
            want = np.sum([source(i) for i in set(query)], axis=0)
            assert np.allclose(vector, want)

    def test_split_batches_accumulate_latency(self):
        config = FafnirConfig(batch_size=2)
        accelerator = FafnirAccelerator(config=config)
        source = make_source(seed=6)
        single = accelerator.lookup(source, [[1, 2], [3, 4]])
        double = accelerator.lookup(source, [[1, 2], [3, 4], [5, 6], [7, 8]])
        assert double.stats.latency_pe_cycles > single.stats.latency_pe_cycles

    def test_engine_property_exposed(self):
        accelerator = FafnirAccelerator()
        assert accelerator.engine.config is accelerator.config
