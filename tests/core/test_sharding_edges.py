"""Regression tests for shard_batches / run / run_reduced edge cases.

The degenerate shapes — more shards than batches, empty streams,
single-query batches, single-shard "clusters" — are exactly the ones a
round-robin splitter or an opt-in reduction mode silently mangles, so
each gets a pinned contract here.
"""

import numpy as np
import pytest

from repro.comm import IndexPartition
from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.core.sharding import ShardedRunner, shard_batches


class source:
    """Picklable deterministic vector source."""

    def __init__(self, elements=8):
        self.elements = elements

    def __call__(self, index):
        rng = np.random.default_rng(40_000 + index)
        return rng.standard_normal(self.elements)


def _config():
    return FafnirConfig(
        total_ranks=8,
        ranks_per_leaf_pe=2,
        batch_size=8,
        max_query_len=8,
        vector_bytes=32,
    )


# --- shard_batches ---------------------------------------------------------
def test_more_shards_than_batches_yields_one_batch_per_shard():
    batches = [[[1]], [[2]], [[3]]]
    buckets = shard_batches(batches, 8)
    # No empty buckets are manufactured: 3 batches over 8 shards is 3
    # single-batch shards, not 3 busy + 5 idle workers.
    assert len(buckets) == 3
    assert buckets == [[[[1]]], [[[2]]], [[[3]]]]


def test_empty_stream_yields_no_shards():
    assert shard_batches([], 4) == []


def test_round_robin_is_position_stable():
    batches = [[[i]] for i in range(7)]
    buckets = shard_batches(batches, 3)
    assert [len(bucket) for bucket in buckets] == [3, 2, 2]
    assert buckets[0] == [[[0]], [[3]], [[6]]]
    assert buckets[1] == [[[1]], [[4]]]
    assert buckets[2] == [[[2]], [[5]]]


@pytest.mark.parametrize("shards", [0, -1])
def test_nonpositive_shard_count_rejected(shards):
    with pytest.raises(ValueError, match="positive"):
        shard_batches([[[1]]], shards)


def test_single_query_batches_survive_the_split():
    batches = [[[5]], [[6]], [[7]], [[8]]]
    buckets = shard_batches(batches, 2)
    recombined = sorted(
        query[0] for bucket in buckets for batch in bucket for query in batch
    )
    assert recombined == [5, 6, 7, 8]


# --- ShardedRunner.run -----------------------------------------------------
def test_run_with_empty_shard_list_returns_empty():
    runner = ShardedRunner(config=_config(), max_workers=1)
    assert runner.run([], source()) == []


def test_run_single_query_single_batch_shards():
    runner = ShardedRunner(config=_config(), max_workers=1)
    shards = shard_batches([[[3]], [[3]]], 4)
    results = runner.run(shards, source())
    assert len(results) == 2
    a, b = (result.vectors[0] for result in results)
    assert a.tobytes() == b.tobytes()  # same query, same replica physics


# --- ShardedRunner.run_reduced ---------------------------------------------
def test_run_reduced_rejects_empty_streams():
    runner = ShardedRunner(
        config=_config(), max_workers=1, reduction="gather", num_shards=2
    )
    with pytest.raises(ValueError, match="at least one batch"):
        runner.run_reduced([], source())


def test_run_reduced_requires_a_schedule():
    runner = ShardedRunner(config=_config(), max_workers=1)
    with pytest.raises(ValueError, match="no reduction schedule"):
        runner.run_reduced([[[1, 2]]], source())


def test_run_reduced_schedule_argument_overrides_runner_default():
    config = _config()
    runner = ShardedRunner(
        config=config, max_workers=1, reduction="gather", num_shards=2
    )
    batches = [[[0, 1, 2, 3], [4, 5]]]
    default = runner.run_reduced(batches, source())
    overridden = runner.run_reduced(
        batches, source(), schedule="recursive_doubling"
    )
    assert default.schedule == "gather"
    assert overridden.schedule == "recursive_doubling"
    assert [v.tobytes() for v in default.vectors] == [
        v.tobytes() for v in overridden.vectors
    ]


def test_run_reduced_single_shard_degenerates_to_single_node():
    config = _config()
    batches = [[[0, 1, 2], [3, 4]], [[5, 6, 7]]]
    runner = ShardedRunner(
        config=config, max_workers=1, reduction="gather", num_shards=1
    )
    reduced = runner.run_reduced(batches, source())
    single = FafnirEngine(config=config, operator="sum").run_batches(
        batches, source()
    )
    assert [v.tobytes() for v in reduced.vectors] == [
        v.tobytes() for v in single.vectors
    ]
    assert reduced.total_messages == 0
    assert reduced.comm_pe_cycles == 0


def test_run_reduced_skips_untouched_pieces():
    config = _config()
    # All indices home to ranks 0..1 → piece 0 of a 4-piece split; the
    # other three shards must never start a worker.
    batches = [[[0, 8, 16], [1, 9]]]
    runner = ShardedRunner(
        config=config, max_workers=1, reduction="gather", num_shards=4
    )
    reduced = runner.run_reduced(batches, source())
    assert reduced.active_pieces == [0]
    assert len(reduced.shard_results) == 1
    assert reduced.total_messages == 0  # nothing to exchange
    single = FafnirEngine(config=config, operator="sum").run_batches(
        batches, source()
    )
    assert [v.tobytes() for v in reduced.vectors] == [
        v.tobytes() for v in single.vectors
    ]


def test_run_reduced_single_query_batches():
    config = _config()
    partition = IndexPartition.by_home_rank(config, 2)
    batches = [[[0]], [[1]], [[2, 7]]]
    runner = ShardedRunner(
        config=config,
        max_workers=1,
        reduction="reduce_scatter",
        partition=partition,
    )
    reduced = runner.run_reduced(batches, source())
    single = FafnirEngine(config=config, operator="sum").run_batches(
        batches, source()
    )
    assert [v.tobytes() for v in reduced.vectors] == [
        v.tobytes() for v in single.vectors
    ]
    assert reduced.statuses == single.statuses
