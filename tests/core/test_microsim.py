"""Tests for the cycle-stepped PE microsimulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FafnirConfig, Header, Message, ProcessingElement, SUM
from repro.core.microsim import PEMicrosim


def fs(*items):
    return frozenset(items)


def msg(indices, entries, value, ready=0):
    return Message(
        Header.make(indices, entries), np.full(4, float(value)), ready_cycle=ready
    )


@pytest.fixture
def config():
    return FafnirConfig(batch_size=8, total_ranks=8, ranks_per_leaf_pe=2)


class TestMicrosimBasics:
    def test_single_reduce_pair(self, config):
        sim = PEMicrosim(config, SUM)
        report = sim.run([msg({1}, [{2}], 1.0)], [msg({2}, [{1}], 2.0)])
        by_indices = {m.indices: m for m in report.outputs}
        assert fs(1, 2) in by_indices
        assert np.allclose(by_indices[fs(1, 2)].value, 3.0)
        assert report.comparisons == 2  # one per direction

    def test_forward_when_no_match(self, config):
        sim = PEMicrosim(config, SUM)
        report = sim.run([msg({1}, [{9}], 1.0)], [msg({2}, [{8}], 2.0)])
        assert {m.indices for m in report.outputs} == {fs(1), fs(2)}

    def test_empty_side_bypasses_units(self, config):
        sim = PEMicrosim(config, SUM)
        report = sim.run([msg({1, 2}, [set()], 3.0)], [])
        assert len(report.outputs) == 1
        assert report.outputs[0].header.complete_entries == (fs(),)

    def test_latency_includes_scan_and_paths(self, config):
        """One A-task scanning 3 partners decides after 3 cycles, then pays
        the reduce path, then one merge-retire cycle."""
        sim = PEMicrosim(config, SUM)
        partners = [msg({10 + i}, [{99}], 1.0) for i in range(2)] + [
            msg({2}, [{1}], 2.0)
        ]
        report = sim.run([msg({1}, [{2}], 1.0)], partners)
        reduced = [m for m in report.outputs if m.indices == fs(1, 2)][0]
        scan = 3
        expected_min = scan + config.latencies.reduce_path + 1
        assert reduced.ready_cycle >= expected_min

    def test_merge_unit_serialises_retirements(self, config):
        sim = PEMicrosim(config, SUM)
        input_a = [msg({i}, [{100 + i}], 1.0) for i in range(6)]
        report = sim.run(input_a, [])
        retire_cycles = sorted(m.ready_cycle for m in report.outputs)
        assert len(set(retire_cycles)) == len(retire_cycles)  # 1/cycle

    def test_utilization_bounded(self, config):
        sim = PEMicrosim(config, SUM)
        input_a = [msg({i}, [{50 + i}], 1.0) for i in range(4)]
        input_b = [msg({50 + i}, [{i}], 2.0) for i in range(4)]
        report = sim.run(input_a, input_b)
        assert 0.0 < report.unit_utilization <= 1.0


class TestCrossValidation:
    """The microsim must agree with the coarse PE model functionally and
    bracket it in timing."""

    entries_strategy = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.lists(st.integers(min_value=6, max_value=11), min_size=0, max_size=3),
        ),
        min_size=1,
        max_size=4,
    )

    @staticmethod
    def build_inputs(spec_a, spec_b):
        # A-side indices live in 0..5 and reference B-side indices (6..11)
        # in their entries; B-side is the mirror image.
        input_a = [
            msg({index}, [set(rest)], index + 1.0) for index, rest in spec_a
        ]
        input_b = [
            msg({index + 6}, [{r - 6 for r in rest}], index + 10.0)
            for index, rest in spec_b
        ]
        return input_a, input_b

    @settings(max_examples=40, deadline=None)
    @given(spec_a=entries_strategy, spec_b=entries_strategy)
    def test_same_output_headers_as_coarse_pe(self, spec_a, spec_b):
        config = FafnirConfig(batch_size=8, total_ranks=8, ranks_per_leaf_pe=2)
        input_a, input_b = self.build_inputs(spec_a, spec_b)
        coarse = ProcessingElement(config, SUM).process(
            [Message(m.header, m.value) for m in input_a],
            [Message(m.header, m.value) for m in input_b],
        )
        micro = PEMicrosim(config, SUM).run(input_a, input_b)

        def signature(messages):
            return {
                (m.indices, frozenset(m.entries)) for m in messages
            }

        assert signature(coarse.outputs) == signature(micro.outputs)

    @settings(max_examples=25, deadline=None)
    @given(spec_a=entries_strategy, spec_b=entries_strategy)
    def test_micro_latency_at_least_coarse(self, spec_a, spec_b):
        """The coarse model's per-message stage latency is a lower bound on
        the microarchitectural timing (scan + merge serialisation add up)."""
        config = FafnirConfig(batch_size=8, total_ranks=8, ranks_per_leaf_pe=2)
        input_a, input_b = self.build_inputs(spec_a, spec_b)
        coarse = ProcessingElement(config, SUM).process(
            [Message(m.header, m.value) for m in input_a],
            [Message(m.header, m.value) for m in input_b],
        )
        micro = PEMicrosim(config, SUM).run(input_a, input_b)
        coarse_latest = max(m.ready_cycle for m in coarse.outputs)
        micro_latest = max(m.ready_cycle for m in micro.outputs)
        assert micro_latest >= coarse_latest - 1


class TestScaling:
    def test_more_units_never_slower(self, config):
        input_a = [msg({i}, [{20 + i}], 1.0) for i in range(8)]
        input_b = [msg({20 + i}, [{i}], 2.0) for i in range(8)]
        few = PEMicrosim(
            FafnirConfig(batch_size=2, total_ranks=8, ranks_per_leaf_pe=2), SUM
        ).run(input_a, input_b)
        many = PEMicrosim(
            FafnirConfig(batch_size=16, max_query_len=16, total_ranks=8,
                         ranks_per_leaf_pe=2),
            SUM,
        ).run(input_a, input_b)
        assert many.finish_cycle <= few.finish_cycle
