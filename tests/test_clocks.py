"""Tests for clock-domain conversion."""

import pytest

from repro.clocks import CPU_CLOCK, Clock, DRAM_CLOCK, PE_CLOCK, convert_cycles


class TestClock:
    def test_period(self):
        assert Clock(200.0).period_ns == pytest.approx(5.0)
        assert Clock(1200.0).period_ns == pytest.approx(1 / 1.2)

    def test_cycles_to_ns(self):
        assert PE_CLOCK.cycles_to_ns(200) == pytest.approx(1000.0)

    def test_ns_to_cycles_rounds_up(self):
        assert PE_CLOCK.ns_to_cycles(5.0) == 1
        assert PE_CLOCK.ns_to_cycles(5.1) == 2
        assert PE_CLOCK.ns_to_cycles(0.0) == 0

    def test_round_trip_is_conservative(self):
        for cycles in (1, 7, 100, 12345):
            ns = DRAM_CLOCK.cycles_to_ns(cycles)
            assert DRAM_CLOCK.ns_to_cycles(ns) == cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            Clock(0)
        with pytest.raises(ValueError):
            PE_CLOCK.cycles_to_ns(-1)
        with pytest.raises(ValueError):
            PE_CLOCK.ns_to_cycles(-1)


class TestConvertCycles:
    def test_dram_to_pe_is_six_to_one(self):
        """1200 MHz DRAM controller cycles → 200 MHz PE cycles."""
        assert convert_cycles(6, DRAM_CLOCK, PE_CLOCK) == 1
        assert convert_cycles(7, DRAM_CLOCK, PE_CLOCK) == 2
        assert convert_cycles(600, DRAM_CLOCK, PE_CLOCK) == 100

    def test_pe_to_dram(self):
        assert convert_cycles(1, PE_CLOCK, DRAM_CLOCK) == 6

    def test_identity(self):
        assert convert_cycles(42, CPU_CLOCK, CPU_CLOCK) == 42
