"""Tests for the MLP latency model."""

import pytest

from repro.analysis import Roofline
from repro.workloads.mlp import MlpConfig, calibrated_fc_batch, mlp_latency_ms


class TestMlpConfig:
    def test_flops_scale_with_batch(self):
        config = MlpConfig()
        assert config.flops(64) == 64 * config.flops(1)

    def test_flops_formula_tiny_stack(self):
        config = MlpConfig(
            bottom_layers=(4,),
            top_layers=(2,),
            dense_features=3,
            interaction_width=5,
        )
        # (3×4) + (5×2) MACs per sample, 2 FLOPs each.
        assert config.flops(1) == 2 * (12 + 10)

    def test_weight_bytes_independent_of_batch(self):
        config = MlpConfig()
        assert config.weight_bytes() == config.weight_bytes()
        assert config.weight_bytes() > 0

    def test_activation_bytes_scale_with_batch(self):
        config = MlpConfig()
        assert config.activation_bytes(8) == 8 * config.activation_bytes(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            MlpConfig(bottom_layers=())
        with pytest.raises(ValueError):
            MlpConfig(top_layers=(0,))
        with pytest.raises(ValueError):
            MlpConfig().flops(0)


class TestLatency:
    def test_latency_grows_with_batch(self):
        config = MlpConfig()
        assert mlp_latency_ms(config, 256) > mlp_latency_ms(config, 16)

    def test_small_batch_is_memory_bound(self):
        """At batch 1 the weights dominate: memory-bound territory."""
        config = MlpConfig()
        roofline = Roofline(peak_gflops=2000.0, peak_bandwidth_gbps=76.8)
        latency = mlp_latency_ms(config, 1, roofline)
        memory_only = config.weight_bytes() / roofline.peak_bandwidth_gbps / 1e6
        assert latency >= memory_only * 0.99

    def test_faster_host_is_faster(self):
        config = MlpConfig()
        slow = Roofline(peak_gflops=100.0, peak_bandwidth_gbps=20.0)
        fast = Roofline(peak_gflops=4000.0, peak_bandwidth_gbps=300.0)
        assert mlp_latency_ms(config, 512, fast) < mlp_latency_ms(config, 512, slow)

    def test_efficiency_validated(self):
        with pytest.raises(ValueError):
            mlp_latency_ms(MlpConfig(), 1, efficiency=0.0)


class TestCalibration:
    def test_paper_fc_figure_reachable(self):
        """Some batch size hits the paper's 0.5 ms on the default host —
        consistent with 'their latency varies significantly with batch
        size' (§VI)."""
        batch = calibrated_fc_batch(target_ms=0.5)
        latency = mlp_latency_ms(MlpConfig(), batch)
        assert latency >= 0.5
        assert mlp_latency_ms(MlpConfig(), max(1, batch // 4)) < 0.5

    def test_target_validated(self):
        with pytest.raises(ValueError):
            calibrated_fc_batch(target_ms=0.0)
