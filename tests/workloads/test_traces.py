"""Tests for query-trace recording and replay."""

import numpy as np
import pytest

from repro.workloads import EmbeddingTableSet
from repro.workloads.traces import QueryTrace


@pytest.fixture
def tables():
    return EmbeddingTableSet(num_tables=32, rows_per_table=1000, seed=3)


class TestQueryTrace:
    def test_synthesize_shape(self, tables):
        trace = QueryTrace.synthesize(tables, num_queries=20, query_len=8, seed=1)
        assert len(trace) == 20
        assert all(len(query) == 8 for query in trace)
        assert trace.total_lookups == 160
        assert trace.metadata["seed"] == 1

    def test_synthesize_deterministic(self, tables):
        a = QueryTrace.synthesize(tables, 10, seed=4)
        b = QueryTrace.synthesize(tables, 10, seed=4)
        assert a.queries == b.queries

    def test_save_load_round_trip(self, tables, tmp_path):
        trace = QueryTrace.synthesize(tables, 15, seed=5)
        path = tmp_path / "trace.txt"
        trace.save(path)
        loaded = QueryTrace.load(path)
        assert loaded.queries == trace.queries
        assert loaded.metadata["seed"] == "5"  # strings on disk

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# note=hello\n\n1,2,3\n\n4,5\n")
        trace = QueryTrace.load(path)
        assert trace.queries == [[1, 2, 3], [4, 5]]
        assert trace.metadata == {"note": "hello"}

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1,x,3\n")
        with pytest.raises(ValueError, match="malformed"):
            QueryTrace.load(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only a comment\n")
        with pytest.raises(ValueError, match="no queries"):
            QueryTrace.load(path)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            QueryTrace(queries=[[]])
        with pytest.raises(ValueError):
            QueryTrace(queries=[[1, -2]])

    def test_batches(self, tables):
        trace = QueryTrace.synthesize(tables, 10, seed=6)
        batches = trace.batches(4)
        assert [len(batch) for batch in batches] == [4, 4, 2]
        with pytest.raises(ValueError):
            trace.batches(0)

    def test_distinct_indices(self):
        trace = QueryTrace(queries=[[1, 2], [2, 3]])
        assert trace.distinct_indices == 3

    def test_replay_through_engine(self, tables, tmp_path):
        """A saved trace replays to identical outputs."""
        from repro.core import FafnirAccelerator

        trace = QueryTrace.synthesize(tables, 8, query_len=4, seed=7)
        path = tmp_path / "replay.txt"
        trace.save(path)
        replayed = QueryTrace.load(path)

        accelerator = FafnirAccelerator()
        first = accelerator.lookup(tables.vector, trace.queries)
        second = accelerator.lookup(tables.vector, replayed.queries)
        for a, b in zip(first.vectors, second.vectors):
            assert np.array_equal(a, b)
