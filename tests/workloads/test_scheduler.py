"""Tests for software batch scheduling."""

import time

import pytest

from repro.workloads import EmbeddingTableSet, QueryGenerator
from repro.workloads import scheduler as scheduler_module
from repro.workloads.scheduler import (
    FifoScheduler,
    PendingQuery,
    SharingAwareScheduler,
    evaluate_schedule,
)


@pytest.fixture
def stream():
    tables = EmbeddingTableSet(rows_per_table=100_000, seed=5)
    generator = QueryGenerator.paper_calibrated(tables, seed=6)
    return generator.batch(64)


class TestFifoScheduler:
    def test_preserves_order(self, stream):
        batches = FifoScheduler(batch_size=16).schedule(stream)
        flattened = [query for batch in batches for query in batch]
        assert flattened == [list(q) for q in stream]

    def test_batch_sizes(self, stream):
        batches = FifoScheduler(batch_size=24).schedule(stream)
        assert [len(batch) for batch in batches] == [24, 24, 16]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            FifoScheduler(batch_size=0)


class TestSharingAwareScheduler:
    def test_schedules_every_query_once(self, stream):
        batches = SharingAwareScheduler(batch_size=16).schedule(stream)
        scheduled = sorted(tuple(sorted(q)) for batch in batches for q in batch)
        original = sorted(tuple(sorted(q)) for q in stream)
        assert scheduled == original

    def test_respects_batch_size(self, stream):
        batches = SharingAwareScheduler(batch_size=8).schedule(stream)
        assert all(len(batch) <= 8 for batch in batches)

    def test_beats_fifo_on_shared_stream(self, stream):
        """Co-scheduling sharers must not reduce dedup quality."""
        fifo = FifoScheduler(batch_size=16).report(stream)
        aware = SharingAwareScheduler(batch_size=16).report(stream)
        assert aware.total_reads <= fifo.total_reads
        assert aware.savings_fraction >= fifo.savings_fraction

    def test_obvious_grouping_found(self):
        """Alternating sharers: FIFO splits them; sharing-aware pairs them."""
        group_a = [[1, 2, 3], [1, 2, 4]]
        group_b = [[100, 200, 300], [100, 200, 400]]
        interleaved = [group_a[0], group_b[0], group_a[1], group_b[1]]
        fifo = FifoScheduler(batch_size=2).report(interleaved)
        aware = SharingAwareScheduler(batch_size=2, window=4).report(interleaved)
        assert aware.total_reads < fifo.total_reads
        assert aware.total_reads == 8  # {1,2,3,4} + {100,200,300,400}

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SharingAwareScheduler(batch_size=16, window=8)

    def test_one_index_set_per_query(self, stream, monkeypatch):
        """Regression: candidate matching must not rebuild ``set(query)``
        for every (slot, candidate) pair — one frozenset per admitted
        query, full stop."""
        calls = []
        real_freeze = scheduler_module._freeze

        def counting_freeze(query):
            calls.append(1)
            return real_freeze(query)

        monkeypatch.setattr(scheduler_module, "_freeze", counting_freeze)
        SharingAwareScheduler(batch_size=8, window=32).schedule(stream)
        assert len(calls) == len(stream)

    def test_large_stream_perf_floor(self):
        """Perf floor: a multi-thousand-query stream with a wide window
        schedules in seconds.  The old quadratic inner loop rebuilt a set
        per (slot, candidate) pair and blows well past this bound as the
        window grows."""
        tables = EmbeddingTableSet(rows_per_table=100_000, seed=9)
        generator = QueryGenerator.paper_calibrated(tables, seed=9)
        queries = generator.batch(2048)
        start = time.perf_counter()
        batches = SharingAwareScheduler(batch_size=32, window=256).schedule(queries)
        elapsed = time.perf_counter() - start
        assert sum(len(batch) for batch in batches) == len(queries)
        assert elapsed < 5.0, f"sharing-aware matching took {elapsed:.1f}s"

    def test_low_overlap_query_bounded_wait(self):
        """Starvation property: under continuous arrivals, a query that
        shares nothing must still be dispatched within ``window``
        batch-formations plus the FIFO drain of the backlog ahead of it.

        Without the aging counter, every formation's overlap picks go to
        the fresh sharers arriving *behind* the loner, so the loner only
        advances one position per formation (the seed pop) and its wait
        grows with the backlog — unbounded by ``window``.
        """
        batch_size, window = 4, 8
        backlog = 60
        scheduler = SharingAwareScheduler(batch_size, window=window)

        def sharer(i):
            return PendingQuery.wrap([1, 2, 3, 1_000 + i])

        pending = [sharer(i) for i in range(backlog)]
        loner = PendingQuery.wrap([99_999])
        pending.append(loner)
        fresh = backlog
        formations = 0
        while loner in pending:
            batch = scheduler.form_batch(pending)
            formations += 1
            if loner in batch:
                break
            # Arrivals keep pace with service: the reorder window never
            # drains, which is exactly the high-QPS serving regime.
            for _ in range(batch_size):
                pending.append(sharer(fresh))
                fresh += 1
            assert formations < 10 * backlog, "loner is starving"
        bound = window + backlog // batch_size + 1
        assert formations <= bound, (
            f"loner dispatched after {formations} formations; "
            f"bound is {bound} (window {window}, backlog {backlog})"
        )

    def test_urgent_queries_drain_fifo_before_overlap_picks(self):
        """Regression: an over-age (urgent) query may not be jumped by a
        fresher, better-overlapping candidate — the pre-fix code always
        took the overlap pick and let the loner age forever."""
        scheduler = SharingAwareScheduler(batch_size=2, window=4)
        seed = PendingQuery.wrap([1, 2, 3])
        seed.age = 5
        starved = PendingQuery.wrap([77_777])
        starved.age = 5
        fresh_sharer = PendingQuery.wrap([1, 2, 3, 4])
        pending = [seed, starved, fresh_sharer]
        batch = scheduler.form_batch(pending)
        assert batch == [seed, starved]
        assert pending == [fresh_sharer]

    def test_form_batch_reusable_increments_age(self):
        pending = [PendingQuery.wrap([i]) for i in range(6)]
        scheduler = SharingAwareScheduler(batch_size=2, window=2)
        batch = scheduler.form_batch(pending)
        assert len(batch) == 2
        assert all(entry.age == 1 for entry in pending)
        with pytest.raises(ValueError):
            scheduler.form_batch([])


class TestEvaluateSchedule:
    def test_counts(self):
        report = evaluate_schedule([[[1, 2], [2, 3]], [[1, 2]]])
        assert report.total_lookups == 6
        assert report.total_reads == 5  # {1,2,3} + {1,2}
        assert report.accesses_saved == 1

    def test_empty_batches_preserve_positions(self):
        """Regression: an empty batch used to be silently dropped, so
        ``ScheduleReport.batches`` misaligned with the input schedule."""
        report = evaluate_schedule([[], [[1]], [], [[2, 3]]])
        assert report.total_lookups == 3
        assert report.batches == [[], [[1]], [], [[2, 3]]]
        assert len(report.batches) == 4

    def test_savings_fraction_zero_for_empty(self):
        assert evaluate_schedule([]).savings_fraction == 0.0
