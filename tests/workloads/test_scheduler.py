"""Tests for software batch scheduling."""

import pytest

from repro.workloads import EmbeddingTableSet, QueryGenerator
from repro.workloads.scheduler import (
    FifoScheduler,
    SharingAwareScheduler,
    evaluate_schedule,
)


@pytest.fixture
def stream():
    tables = EmbeddingTableSet(rows_per_table=100_000, seed=5)
    generator = QueryGenerator.paper_calibrated(tables, seed=6)
    return generator.batch(64)


class TestFifoScheduler:
    def test_preserves_order(self, stream):
        batches = FifoScheduler(batch_size=16).schedule(stream)
        flattened = [query for batch in batches for query in batch]
        assert flattened == [list(q) for q in stream]

    def test_batch_sizes(self, stream):
        batches = FifoScheduler(batch_size=24).schedule(stream)
        assert [len(batch) for batch in batches] == [24, 24, 16]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            FifoScheduler(batch_size=0)


class TestSharingAwareScheduler:
    def test_schedules_every_query_once(self, stream):
        batches = SharingAwareScheduler(batch_size=16).schedule(stream)
        scheduled = sorted(tuple(sorted(q)) for batch in batches for q in batch)
        original = sorted(tuple(sorted(q)) for q in stream)
        assert scheduled == original

    def test_respects_batch_size(self, stream):
        batches = SharingAwareScheduler(batch_size=8).schedule(stream)
        assert all(len(batch) <= 8 for batch in batches)

    def test_beats_fifo_on_shared_stream(self, stream):
        """Co-scheduling sharers must not reduce dedup quality."""
        fifo = FifoScheduler(batch_size=16).report(stream)
        aware = SharingAwareScheduler(batch_size=16).report(stream)
        assert aware.total_reads <= fifo.total_reads
        assert aware.savings_fraction >= fifo.savings_fraction

    def test_obvious_grouping_found(self):
        """Alternating sharers: FIFO splits them; sharing-aware pairs them."""
        group_a = [[1, 2, 3], [1, 2, 4]]
        group_b = [[100, 200, 300], [100, 200, 400]]
        interleaved = [group_a[0], group_b[0], group_a[1], group_b[1]]
        fifo = FifoScheduler(batch_size=2).report(interleaved)
        aware = SharingAwareScheduler(batch_size=2, window=4).report(interleaved)
        assert aware.total_reads < fifo.total_reads
        assert aware.total_reads == 8  # {1,2,3,4} + {100,200,300,400}

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SharingAwareScheduler(batch_size=16, window=8)


class TestEvaluateSchedule:
    def test_counts(self):
        report = evaluate_schedule([[[1, 2], [2, 3]], [[1, 2]]])
        assert report.total_lookups == 6
        assert report.total_reads == 5  # {1,2,3} + {1,2}
        assert report.accesses_saved == 1

    def test_empty_batches_skipped(self):
        report = evaluate_schedule([[], [[1]]])
        assert report.total_lookups == 1
        assert len(report.batches) == 1

    def test_savings_fraction_zero_for_empty(self):
        assert evaluate_schedule([]).savings_fraction == 0.0
