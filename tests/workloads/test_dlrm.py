"""Tests for the end-to-end inference latency model."""

import pytest

from repro.workloads.dlrm import InferenceBreakdown, InferenceModel


class TestInferenceBreakdown:
    def test_total(self):
        breakdown = InferenceBreakdown(embedding_ms=1.0, fc_ms=0.5, other_ms=0.1)
        assert breakdown.total_ms == pytest.approx(1.6)

    def test_speedup_over(self):
        slow = InferenceBreakdown(embedding_ms=3.5, fc_ms=0.5, other_ms=0.0)
        fast = InferenceBreakdown(embedding_ms=0.5, fc_ms=0.5, other_ms=0.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            InferenceBreakdown(embedding_ms=-1.0, fc_ms=0.0, other_ms=0.0)


class TestInferenceModel:
    def test_fc_fixed_at_half_millisecond(self):
        """Fig. 12 keeps FC layers at 0.5 ms regardless of rank count."""
        assert InferenceModel().fc_ms == 0.5

    def test_breakdown_composition(self):
        model = InferenceModel(fc_ms=0.5, other_ms=0.2)
        breakdown = model.breakdown(embedding_ms=1.3)
        assert breakdown.total_ms == pytest.approx(2.0)

    def test_ideal_scales_embedding_linearly(self):
        model = InferenceModel(fc_ms=0.5, other_ms=0.0)
        base = model.ideal_breakdown(baseline_embedding_ms=8.0, rank_factor=1)
        ideal16 = model.ideal_breakdown(baseline_embedding_ms=8.0, rank_factor=16)
        assert ideal16.embedding_ms == pytest.approx(0.5)
        assert base.embedding_ms == pytest.approx(8.0)

    def test_amdahl_limit(self):
        """The fixed FC time bounds end-to-end speedup (visible in Fig. 12)."""
        model = InferenceModel(fc_ms=0.5, other_ms=0.0)
        base = model.breakdown(8.0)
        infinitely_fast = model.breakdown(0.0)
        assert infinitely_fast.speedup_over(base) == pytest.approx(17.0)

    def test_ideal_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            InferenceModel().ideal_breakdown(1.0, 0)
