"""Tests for embedding-table workloads and query generation."""

import numpy as np
import pytest

from repro.core import plan_batch
from repro.workloads.embedding import EmbeddingTableSet, QueryGenerator


@pytest.fixture
def tables():
    return EmbeddingTableSet(num_tables=32, rows_per_table=1000, seed=3)


class TestEmbeddingTableSet:
    def test_global_id_round_trip(self, tables):
        for table, row in [(0, 0), (5, 17), (31, 999)]:
            gid = tables.global_id(table, row)
            assert tables.decode(gid) == (table, row)

    def test_table_bits_select_rank(self, tables):
        """Fig. 4b: with 32 tables on 32 ranks, id mod 32 is the table."""
        gid = tables.global_id(7, 123)
        assert gid % 32 == 7

    def test_out_of_range_rejected(self, tables):
        with pytest.raises(ValueError):
            tables.global_id(32, 0)
        with pytest.raises(ValueError):
            tables.global_id(0, 1000)
        with pytest.raises(ValueError):
            tables.decode(tables.total_vectors)
        with pytest.raises(ValueError):
            tables.vector(-1)

    def test_vectors_deterministic_and_cached(self, tables):
        v1 = tables.vector(42)
        v2 = tables.vector(42)
        assert v1 is v2
        fresh = EmbeddingTableSet(num_tables=32, rows_per_table=1000, seed=3)
        assert np.array_equal(fresh.vector(42), v1)

    def test_different_seeds_differ(self):
        a = EmbeddingTableSet(rows_per_table=10, seed=1).vector(5)
        b = EmbeddingTableSet(rows_per_table=10, seed=2).vector(5)
        assert not np.array_equal(a, b)

    def test_storage_bytes(self, tables):
        assert tables.storage_bytes() == 32 * 1000 * 512

    def test_random_constructor_maps_bytes(self):
        tables = EmbeddingTableSet.random(vector_bytes=256)
        assert tables.vector_elements == 64


class TestQueryGenerator:
    def test_query_has_distinct_tables(self, tables):
        generator = QueryGenerator(tables, query_len=16, seed=0)
        for _ in range(20):
            query = generator.query()
            assert len(query) == 16
            table_ids = {gid % 32 for gid in query}
            assert len(table_ids) == 16  # one vector per table

    def test_batch_shape(self, tables):
        generator = QueryGenerator(tables, query_len=8, seed=0)
        batch = generator.batch(16)
        assert len(batch) == 16
        assert all(len(q) == 8 for q in batch)

    def test_deterministic_by_seed(self, tables):
        a = QueryGenerator(tables, seed=9).batch(4)
        b = QueryGenerator(tables, seed=9).batch(4)
        assert a == b

    def test_uniform_skew_has_few_repeats(self):
        tables = EmbeddingTableSet(num_tables=32, rows_per_table=100_000)
        generator = QueryGenerator(tables, skew=0.0, seed=1)
        plan = plan_batch(generator.batch(32))
        assert plan.unique_fraction > 0.98

    def test_calibrated_savings_grow_with_batch_size(self):
        """Fig. 3 / Fig. 15: sharing grows with batch size."""
        tables = EmbeddingTableSet(num_tables=32, rows_per_table=100_000)
        savings = []
        for batch_size in (8, 16, 32):
            values = [
                1.0
                - plan_batch(
                    QueryGenerator.paper_calibrated(tables, seed=s).batch(batch_size)
                ).unique_fraction
                for s in range(6)
            ]
            savings.append(float(np.mean(values)))
        assert savings[0] < savings[1] < savings[2]
        # Calibration band around the paper's 34/43/58 %.
        assert savings[0] == pytest.approx(0.34, abs=0.08)
        assert savings[1] == pytest.approx(0.43, abs=0.08)
        assert savings[2] == pytest.approx(0.58, abs=0.08)

    def test_invalid_parameters_rejected(self, tables):
        with pytest.raises(ValueError):
            QueryGenerator(tables, query_len=0)
        with pytest.raises(ValueError):
            QueryGenerator(tables, query_len=33)
        with pytest.raises(ValueError):
            QueryGenerator(tables, skew=-1.0)
        with pytest.raises(ValueError):
            QueryGenerator(tables).batch(0)

    def test_batches_helper(self, tables):
        generator = QueryGenerator(tables, seed=0)
        batches = generator.batches(3, 4)
        assert len(batches) == 3
        assert all(len(batch) == 4 for batch in batches)
