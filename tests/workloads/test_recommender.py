"""Tests for the end-to-end recommendation model."""

import numpy as np
import pytest

from repro.baselines import CpuGatherEngine, FafnirGatherEngine, RecNmpGatherEngine
from repro.workloads import EmbeddingTableSet, QueryGenerator
from repro.workloads.recommender import RecommendationModel


@pytest.fixture(scope="module")
def setup():
    tables = EmbeddingTableSet(num_tables=32, rows_per_table=10_000, seed=6)
    model = RecommendationModel(tables, dense_features=16, hidden=32, seed=7)
    generator = QueryGenerator.paper_calibrated(tables, seed=8)
    queries = generator.batch(16)
    dense = np.random.default_rng(9).normal(size=(16, 16))
    return tables, model, queries, dense


class TestFunctional:
    def test_scores_match_numpy_oracle(self, setup):
        _, model, queries, dense = setup
        batch = model.score(FafnirGatherEngine(), queries, dense)
        assert np.allclose(batch.scores, model.reference_scores(queries, dense))

    def test_scores_identical_across_engines(self, setup):
        _, model, queries, dense = setup
        fafnir = model.score(FafnirGatherEngine(), queries, dense)
        cpu = model.score(CpuGatherEngine(), queries, dense)
        recnmp = model.score(RecNmpGatherEngine(), queries, dense)
        assert np.allclose(fafnir.scores, cpu.scores)
        assert np.allclose(fafnir.scores, recnmp.scores)

    def test_scores_are_probabilities(self, setup):
        _, model, queries, dense = setup
        batch = model.score(FafnirGatherEngine(), queries, dense)
        assert np.all(batch.scores > 0.0)
        assert np.all(batch.scores < 1.0)

    def test_deterministic_weights(self, setup):
        tables, _, queries, dense = setup
        a = RecommendationModel(tables, seed=3).reference_scores(queries[:4], dense[:4])
        b = RecommendationModel(tables, seed=3).reference_scores(queries[:4], dense[:4])
        assert np.array_equal(a, b)
        c = RecommendationModel(tables, seed=4).reference_scores(queries[:4], dense[:4])
        assert not np.allclose(a, c)


class TestTimingComposition:
    def test_latency_components_positive(self, setup):
        _, model, queries, dense = setup
        batch = model.score(FafnirGatherEngine(), queries, dense)
        assert batch.embedding_ms > 0
        assert batch.mlp_ms > 0
        assert batch.total_ms == pytest.approx(batch.embedding_ms + batch.mlp_ms)

    def test_fafnir_embedding_cheaper_than_cpu(self, setup):
        _, model, queries, dense = setup
        fafnir = model.score(FafnirGatherEngine(), queries, dense)
        cpu = model.score(CpuGatherEngine(), queries, dense)
        assert fafnir.embedding_ms < cpu.embedding_ms
        assert fafnir.mlp_ms == pytest.approx(cpu.mlp_ms)  # same MLP


class TestRanking:
    def test_top_k_ordering(self, setup):
        _, model, queries, dense = setup
        top, batch = model.rank_candidates(
            FafnirGatherEngine(), queries, dense, top_k=5
        )
        assert len(top) == 5
        scores = batch.scores
        assert list(scores[top]) == sorted(scores, reverse=True)[:5]

    def test_validation(self, setup):
        _, model, queries, dense = setup
        with pytest.raises(ValueError):
            model.score(FafnirGatherEngine(), queries, dense[:4])
        with pytest.raises(ValueError):
            model.rank_candidates(FafnirGatherEngine(), queries, dense, top_k=0)
        with pytest.raises(ValueError):
            RecommendationModel(setup[0], dense_features=0)
