"""Tests for the analysis utilities (locality, movement, unique, report)."""

import numpy as np
import pytest

from repro.analysis import (
    MovementModel,
    Table,
    expected_lonely_vectors,
    expected_ndp_reducible_fraction,
    expected_occupied_devices,
    max_accesses_per_rank,
    measured_colocation_fraction,
    per_rank_access_counts,
    prob_all_same_device,
    unique_fraction_stats,
)
from repro.workloads import EmbeddingTableSet, QueryGenerator


class TestLocality:
    def test_paper_birthday_claim(self):
        """§III-C: ≤25 % chance a query stays on one channel (4 channels)."""
        assert prob_all_same_device(2, 4) == pytest.approx(0.25)
        assert prob_all_same_device(16, 4) < 1e-8

    def test_expected_occupied_devices_bounds(self):
        assert expected_occupied_devices(1, 16) == pytest.approx(1.0)
        assert expected_occupied_devices(1000, 16) == pytest.approx(16.0, rel=0.01)

    def test_lonely_vectors_grow_with_devices(self):
        few = expected_lonely_vectors(16, 4)
        many = expected_lonely_vectors(16, 64)
        assert many > few

    def test_reducible_fraction_decreases_with_devices(self):
        """More devices ⇒ less spatial locality ⇒ less NDP for RecNMP."""
        fractions = [
            expected_ndp_reducible_fraction(16, devices)
            for devices in (2, 4, 8, 16, 32)
        ]
        assert all(a > b for a, b in zip(fractions, fractions[1:]))

    def test_single_index_query_has_nothing_to_reduce(self):
        assert expected_ndp_reducible_fraction(1, 8) == 0.0

    def test_measured_matches_expectation(self):
        rng = np.random.default_rng(0)
        queries = [list(rng.integers(0, 10_000, size=16)) for _ in range(500)]
        measured = measured_colocation_fraction(queries, devices=16)
        expected = expected_ndp_reducible_fraction(16, 16)
        assert measured == pytest.approx(expected, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            prob_all_same_device(0, 4)
        with pytest.raises(ValueError):
            expected_occupied_devices(4, 0)


class TestMovement:
    def test_baseline_vs_ndp(self):
        """§III-A: baseline n·q·v; TensorDIMM/FAFNIR n·v."""
        model = MovementModel(queries=4, query_len=16, vector_elements=128)
        assert model.baseline_elements == 4 * 16 * 128
        assert model.fafnir_elements == 4 * 128
        assert model.movement_reduction("fafnir") == pytest.approx(16.0)
        assert model.movement_reduction("tensordimm") == pytest.approx(16.0)

    def test_recnmp_between_extremes(self):
        model = MovementModel(queries=8, query_len=16, vector_elements=128)
        recnmp = model.recnmp_expected_elements(dimms=16)
        assert model.fafnir_elements < recnmp < model.baseline_elements

    def test_ndp_operation_count(self):
        model = MovementModel(queries=2, query_len=16, vector_elements=128)
        assert model.ndp_operations == 2 * 15 * 128

    def test_unknown_engine(self):
        model = MovementModel(queries=1, query_len=2, vector_elements=4)
        with pytest.raises(KeyError):
            model.movement_reduction("gpu")


class TestUnique:
    def test_fig3_series_decreases_with_batch(self):
        tables = EmbeddingTableSet(rows_per_table=100_000)
        stats = unique_fraction_stats(tables, [8, 16, 32], seeds=range(4))
        fractions = [s.mean_unique_fraction for s in stats]
        assert fractions[0] > fractions[1] > fractions[2]
        assert stats[0].mean_savings_percent + stats[0].mean_unique_percent == pytest.approx(100.0)

    def test_per_rank_counts_cover_all_unique(self):
        queries = [[0, 1, 33], [1, 64]]
        counts = per_rank_access_counts(queries, total_ranks=32)
        assert sum(counts.values()) == 4  # unique: 0, 1, 33, 64 → 0,1,1,0 ranks
        assert counts[0] == 2  # ids 0 and 64
        assert counts[1] == 2  # ids 1 and 33

    def test_fig15_per_leaf_bound(self):
        """Per-rank unique accesses stay below the batch size."""
        tables = EmbeddingTableSet(rows_per_table=100_000)
        for batch_size in (8, 16, 32):
            generator = QueryGenerator.paper_calibrated(tables, seed=1)
            batch = generator.batch(batch_size)
            assert max_accesses_per_rank(batch) <= batch_size


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"])
        table.add_row(["alpha", 1.5])
        table.add_row(["b", 22.25])
        text = table.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.50" in text and "22.25" in text

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            Table(["a", "b"]).add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            Table([])
