"""Tests for the roofline model (§II motivation)."""

import pytest

from repro.analysis import (
    Roofline,
    SERVER_ROOFLINE,
    bandwidth_utilization,
    gather_reduce_intensity,
)


class TestRoofline:
    def test_ridge_point(self):
        roofline = Roofline(peak_gflops=100.0, peak_bandwidth_gbps=50.0)
        assert roofline.ridge_intensity == pytest.approx(2.0)

    def test_attainable_performance(self):
        roofline = Roofline(peak_gflops=100.0, peak_bandwidth_gbps=50.0)
        assert roofline.attainable_gflops(1.0) == pytest.approx(50.0)
        assert roofline.attainable_gflops(10.0) == pytest.approx(100.0)

    def test_memory_bound_classification(self):
        roofline = Roofline(peak_gflops=100.0, peak_bandwidth_gbps=50.0)
        assert roofline.is_memory_bound(0.5)
        assert not roofline.is_memory_bound(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Roofline(peak_gflops=0, peak_bandwidth_gbps=1)
        with pytest.raises(ValueError):
            SERVER_ROOFLINE.attainable_gflops(-1)


class TestGatherReduceIntensity:
    def test_paper_workload_is_deeply_memory_bound(self):
        """§II: embedding lookup sits in the memory-bound region, far below
        the ceiling."""
        intensity = gather_reduce_intensity(query_len=16, vector_bytes=512)
        assert intensity < 0.25  # FLOP/byte
        assert SERVER_ROOFLINE.is_memory_bound(intensity)

    def test_intensity_formula(self):
        # q=2: v adds over 2v·4 bytes = 1/8 FLOP/byte.
        assert gather_reduce_intensity(2, 512) == pytest.approx(1 / 8)

    def test_single_vector_has_zero_intensity(self):
        assert gather_reduce_intensity(1, 512) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gather_reduce_intensity(0, 512)


class TestBandwidthUtilization:
    def test_fraction_of_peak(self):
        # 76.8 GB/s roofline: 76.8 bytes/ns is 100 %.
        assert bandwidth_utilization(768, 10.0, SERVER_ROOFLINE) == pytest.approx(1.0)

    def test_underutilization_detectable(self):
        assert bandwidth_utilization(76, 10.0, SERVER_ROOFLINE) < 0.11

    def test_validation(self):
        with pytest.raises(ValueError):
            bandwidth_utilization(-1, 1.0, SERVER_ROOFLINE)
        with pytest.raises(ValueError):
            bandwidth_utilization(1, 0.0, SERVER_ROOFLINE)
