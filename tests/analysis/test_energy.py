"""Tests for end-to-end energy accounting."""

import pytest

from repro.analysis.energy import (
    EnergyBreakdown,
    NDP_POWER_MW,
    energy_saving_vs,
    run_energy,
)
from repro.baselines import FafnirGatherEngine, RecNmpGatherEngine
from repro.workloads import EmbeddingTableSet, QueryGenerator


class TestEnergyBreakdown:
    def test_composition(self):
        breakdown = EnergyBreakdown(dram_nj=90.0, ndp_nj=10.0)
        assert breakdown.total_nj == pytest.approx(100.0)
        assert breakdown.dram_share == pytest.approx(0.9)

    def test_known_engines(self):
        assert NDP_POWER_MW["fafnir"] == pytest.approx(111.64)
        assert NDP_POWER_MW["recnmp"] == pytest.approx(184.2 * 16)
        with pytest.raises(KeyError):
            run_energy(_stats(10, 10), 100.0, "gpu")

    def test_validation(self):
        with pytest.raises(ValueError):
            run_energy(_stats(1, 1), -1.0, "fafnir")
        with pytest.raises(ValueError):
            energy_saving_vs(
                EnergyBreakdown(1, 1), EnergyBreakdown(0, 0)
            )


def _stats(bursts, activates):
    from repro.memory.trace import AccessStats

    return AccessStats(bursts=bursts, activates=activates)


class TestEndToEnd:
    def test_fafnir_saves_energy_over_recnmp(self):
        """§VI: fewer accesses + lower NDP power ⇒ lower energy."""
        tables = EmbeddingTableSet(rows_per_table=50_000, seed=11)
        batch = QueryGenerator.paper_calibrated(tables, seed=12).batch(32)
        fafnir = FafnirGatherEngine().lookup(batch, tables.vector)
        recnmp = RecNmpGatherEngine().lookup(batch, tables.vector)
        fafnir_energy = run_energy(fafnir.memory_stats, fafnir.total_ns, "fafnir")
        recnmp_energy = run_energy(recnmp.memory_stats, recnmp.total_ns, "recnmp")
        assert fafnir_energy.dram_nj < recnmp_energy.dram_nj  # dedup
        assert fafnir_energy.ndp_nj < recnmp_energy.ndp_nj    # power × time
        saving = energy_saving_vs(fafnir_energy, recnmp_energy)
        assert 0.0 < saving < 1.0

    def test_dram_dominates_for_baseline(self):
        """'The energy consumption of DRAM dominates that of computation.'"""
        tables = EmbeddingTableSet(rows_per_table=50_000, seed=13)
        batch = QueryGenerator.paper_calibrated(tables, seed=14).batch(32)
        result = FafnirGatherEngine().lookup(batch, tables.vector)
        breakdown = run_energy(result.memory_stats, result.total_ns, "fafnir")
        assert breakdown.dram_share > 0.5
