"""Tests for the bootstrap statistics helpers."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    SummaryStats,
    bootstrap_mean,
    speedup_significant,
)


class TestBootstrapMean:
    def test_mean_and_interval_contain_truth(self):
        rng = np.random.default_rng(1)
        values = rng.normal(loc=10.0, scale=1.0, size=40)
        stats = bootstrap_mean(values, seed=2)
        assert stats.low < 10.0 < stats.high
        assert stats.mean == pytest.approx(values.mean())
        assert stats.samples == 40

    def test_interval_narrows_with_more_samples(self):
        rng = np.random.default_rng(3)
        small = bootstrap_mean(rng.normal(size=8), seed=4)
        large = bootstrap_mean(rng.normal(size=200), seed=4)
        assert large.half_width < small.half_width

    def test_single_sample_degenerates(self):
        stats = bootstrap_mean([5.0])
        assert stats.mean == stats.low == stats.high == 5.0

    def test_deterministic_by_seed(self):
        values = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_mean(values, seed=7)
        b = bootstrap_mean(values, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], resamples=10)

    def test_str(self):
        text = str(bootstrap_mean([1.0, 2.0], seed=1))
        assert "CI" in text


class TestSpeedupSignificance:
    def test_clear_speedup_detected(self):
        rng = np.random.default_rng(5)
        baseline = rng.normal(loc=100.0, scale=3.0, size=20)
        improved = rng.normal(loc=20.0, scale=1.0, size=20)
        assert speedup_significant(baseline, improved, seed=6)

    def test_noise_not_called_significant(self):
        rng = np.random.default_rng(7)
        baseline = rng.normal(loc=100.0, scale=10.0, size=10)
        improved = rng.normal(loc=100.0, scale=10.0, size=10)
        assert not speedup_significant(baseline, improved, seed=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup_significant([], [1.0])
        with pytest.raises(ValueError):
            speedup_significant([1.0], [0.0])

    def test_real_engines_speedup_is_significant(self):
        """FAFNIR's advantage over RecNMP survives seed noise."""
        from repro.baselines import FafnirGatherEngine, RecNmpGatherEngine
        from repro.workloads import EmbeddingTableSet, QueryGenerator

        tables = EmbeddingTableSet(rows_per_table=50_000, seed=9)
        recnmp, fafnir = [], []
        for seed in range(5):
            batch = QueryGenerator.paper_calibrated(tables, seed=seed).batch(16)
            recnmp.append(RecNmpGatherEngine().lookup(batch, tables.vector).total_ns)
            fafnir.append(FafnirGatherEngine().lookup(batch, tables.vector).total_ns)
        assert speedup_significant(recnmp, fafnir, seed=10)
