"""Smoke tests: every script in examples/ must run clean under FAFNIR_SMOKE.

Each example honours the FAFNIR_SMOKE environment variable by shrinking its
workload to a few seconds of wall clock, so the whole directory can be
exercised in CI.  The scripts are run as real subprocesses (fresh
interpreter, ``python examples/<name>.py``) so import-time breakage and
``__main__`` plumbing are covered too.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    # Guard against the glob silently matching nothing after a reorganisation.
    assert len(EXAMPLE_SCRIPTS) >= 8


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[path.stem for path in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["FAFNIR_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited with {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout}\n"
        f"--- stderr ---\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
