"""Regression tests: recovery-report rates on degenerate event streams.

The chaos sweep computes detection/recovery rates for every cell,
including zero-query runs (nothing injected) and all-fatal runs (every
detection exhausted its budget); both used to require call-site
special-casing to avoid division by zero.
"""

from repro.faults import recovery_report
from repro.obs.events import FAULT_DETECTED, FAULT_INJECTED, TraceEvent


def _injected(fault, cycle=0):
    return TraceEvent(FAULT_INJECTED, cycle=cycle, rank=0, args={"fault": fault})


def _detected(fault, cycle=0, fatal=False):
    return TraceEvent(
        FAULT_DETECTED, cycle=cycle, rank=0, args={"fault": fault, "fatal": fatal}
    )


class TestRates:
    def test_empty_stream_reports_perfect_rates(self):
        report = recovery_report([])
        assert report.total_injected == 0
        assert report.detection_rate == 1.0
        assert report.recovery_rate == 1.0

    def test_render_handles_zero_event_stream(self):
        text = recovery_report([]).render()
        assert "no faults injected" in text
        assert "rates: detection 1.00, recovery 1.00" in text

    def test_all_fatal_stream(self):
        events = [
            _injected("read_timeout"),
            _detected("read_timeout", fatal=True),
            _injected("read_timeout"),
            _detected("read_timeout", fatal=True),
        ]
        report = recovery_report(events)
        assert report.detection_rate == 1.0
        assert report.recovery_rate == 0.0
        assert report.recovered == 0

    def test_partial_detection_and_recovery(self):
        events = [
            _injected("link_loss"),
            _injected("link_loss"),
            _injected("link_loss"),
            _injected("link_loss"),
            _detected("link_loss"),
            _detected("link_loss", fatal=True),
        ]
        report = recovery_report(events)
        assert report.detection_rate == 0.5
        assert report.recovery_rate == 0.5

    def test_detection_rate_capped_at_one(self):
        # Link retransmission can detect the same drop more than once
        # (watchdog + escalation); the rate must stay a fraction.
        events = [
            _injected("link_loss"),
            _detected("link_loss"),
            _detected("link_loss"),
        ]
        assert recovery_report(events).detection_rate == 1.0

    def test_render_includes_rates_line(self):
        events = [_injected("x"), _detected("x", fatal=True)]
        text = recovery_report(events).render()
        assert "rates: detection 1.00, recovery 0.00" in text
