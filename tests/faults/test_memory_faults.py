"""Memory-side fault injection: degraded ranks, read timeouts, backoff."""

from dataclasses import dataclass

import pytest

from repro.faults import FaultPlan, FaultPolicy, RankTimeoutError
from repro.memory import MemoryConfig, MemorySystem, ReadRequest
from repro.obs import InMemorySink, Tracer
from repro.obs.events import (
    CLOCK_DRAM,
    FAULT_DETECTED,
    FAULT_INJECTED,
    RETRY_ISSUED,
)

RANKS = 8


def make_requests(count=4, rank=0):
    return [
        ReadRequest(rank=rank, bank=i % 4, row=i, column=0, bytes_=64)
        for i in range(count)
    ]


def make_system(**kwargs):
    return MemorySystem(MemoryConfig().scaled_to_ranks(RANKS), **kwargs)


@dataclass
class OneRetryPlan(FaultPlan):
    """Times out every rank-0 read exactly once (attempt 0 only).

    The probability entry keeps ``touches_memory`` true; the override makes
    the decision exact instead of sampled.
    """

    def __post_init__(self):
        self.rank_timeout_probability = {0: 1.0}
        super().__post_init__()

    def read_times_out(self, rank, position, attempt):
        return rank == 0 and attempt == 0


def always_timeout_plan():
    """Probability 1 is itself deterministic: every rank-0 read times out
    on every attempt, so the retry budget always exhausts."""
    return FaultPlan(seed=0, rank_timeout_probability={0: 1.0})


class TestNoPlanByteIdentity:
    def test_completions_identical_without_plan(self):
        requests = make_requests()
        clean, _ = make_system().execute(requests)
        gated, _ = make_system(faults=None).execute(requests)
        assert clean == gated

    def test_non_memory_plan_leaves_completions_untouched(self):
        """A plan with only leaf/shard faults must not perturb the memory
        path (``touches_memory`` gates the per-completion loop)."""
        requests = make_requests()
        clean, _ = make_system().execute(requests)
        plan = FaultPlan(seed=0, vector_corruption_probability=1.0,
                         crash_shards=frozenset({0}))
        faulty, _ = make_system(faults=plan).execute(requests)
        assert clean == faulty


class TestRankDegradation:
    def test_multiplier_stretches_service_time(self):
        requests = make_requests()
        clean, _ = make_system().execute(requests)
        plan = FaultPlan(seed=0, rank_latency_multipliers={0: 3.0})
        slow, _ = make_system(faults=plan).execute(requests)
        for fast, degraded in zip(clean, slow):
            expected = fast.start_cycle + round(
                (fast.finish_cycle - fast.start_cycle) * 3.0
            )
            assert degraded.finish_cycle == expected
            assert degraded.start_cycle == fast.start_cycle

    def test_other_ranks_untouched(self):
        requests = make_requests(rank=1)
        clean, _ = make_system().execute(requests)
        plan = FaultPlan(seed=0, rank_latency_multipliers={0: 3.0})
        faulty, _ = make_system(faults=plan).execute(requests)
        assert clean == faulty

    def test_degradation_emits_fault_injected(self):
        sink = InMemorySink()
        plan = FaultPlan(seed=0, rank_latency_multipliers={0: 2.0})
        make_system(faults=plan, tracer=Tracer([sink])).execute(make_requests(2))
        injected = [e for e in sink.events if e.kind == FAULT_INJECTED]
        assert len(injected) == 2
        assert all(e.clock == CLOCK_DRAM for e in injected)
        assert all(e.args["fault"] == "rank_degraded" for e in injected)


class TestReadTimeouts:
    def test_one_timeout_recovers_with_backoff_accounting(self):
        requests = make_requests(1)
        clean, _ = make_system().execute(requests)
        policy = FaultPolicy(read_timeout_cycles=100, read_retry_backoff_cycles=10)
        sink = InMemorySink()
        system = make_system(
            faults=OneRetryPlan(seed=0), fault_policy=policy, tracer=Tracer([sink])
        )
        recovered, _ = system.execute(requests)
        # One timeout: the watchdog fires 100 cycles past the nominal finish
        # and the retry waits 10 more before re-issuing.
        assert recovered[0].finish_cycle == clean[0].finish_cycle + 110
        assert not system.failed_positions
        retries = [e for e in sink.events if e.kind == RETRY_ISSUED]
        assert len(retries) == 1
        assert retries[0].args["backoff_cycles"] == 10

    def test_backoff_is_exponential(self):
        @dataclass
        class TwoRetryPlan(FaultPlan):
            def __post_init__(self):
                self.rank_timeout_probability = {0: 1.0}
                super().__post_init__()

            def read_times_out(self, rank, position, attempt):
                return rank == 0 and attempt < 2

        requests = make_requests(1)
        clean, _ = make_system().execute(requests)
        policy = FaultPolicy(read_timeout_cycles=100, read_retry_backoff_cycles=10)
        system = make_system(faults=TwoRetryPlan(seed=0), fault_policy=policy)
        recovered, _ = system.execute(requests)
        # (100 + 10) + (100 + 20): two deadlines, backoff doubling per attempt.
        assert recovered[0].finish_cycle == clean[0].finish_cycle + 230

    def test_exhaustion_raises_under_fail_fast(self):
        policy = FaultPolicy(max_read_retries=1)
        system = make_system(faults=always_timeout_plan(), fault_policy=policy)
        with pytest.raises(RankTimeoutError, match="retry budget"):
            system.execute(make_requests(1))

    def test_exhaustion_degrades_into_failed_positions(self):
        policy = FaultPolicy.graceful(max_read_retries=1)
        system = make_system(faults=always_timeout_plan(), fault_policy=policy)
        requests = make_requests(2) + make_requests(2, rank=1)
        completions, _ = system.execute(requests)
        assert system.failed_positions == {0, 1}
        assert len(completions) == 4

    def test_failed_positions_reset_per_execute(self):
        policy = FaultPolicy.graceful(max_read_retries=0)
        system = make_system(faults=always_timeout_plan(), fault_policy=policy)
        system.execute(make_requests(1))
        assert system.failed_positions == {0}
        system.execute(make_requests(1, rank=1))
        assert system.failed_positions == set()

    def test_fatal_detection_is_marked(self):
        sink = InMemorySink()
        policy = FaultPolicy.graceful(max_read_retries=0)
        system = make_system(
            faults=always_timeout_plan(),
            fault_policy=policy,
            tracer=Tracer([sink]),
        )
        system.execute(make_requests(1))
        detections = [e for e in sink.events if e.kind == FAULT_DETECTED]
        assert len(detections) == 1
        assert detections[0].args["fatal"] is True
