"""Property tests: plan/policy copies carry every field, always.

``FaultPlan.with_seed`` and ``FaultPolicy.graceful(**overrides)`` are
copy constructors maintained by hand — the classic drift bug is adding a
field to the dataclass and forgetting the copy site, which silently
produces plans that shed their link faults (or policies that shed their
retry budgets) on re-seed.  These tests enumerate ``dataclasses.fields``
at run time, so any future field automatically joins the contract.
"""

import dataclasses
import pickle

from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan, FaultPolicy

probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
multipliers = st.dictionaries(
    st.integers(min_value=0, max_value=31),
    st.floats(min_value=1.0, max_value=16.0, allow_nan=False),
    max_size=4,
)
link_multipliers = st.dictionaries(
    st.tuples(
        st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)
    ),
    st.floats(min_value=1.0, max_value=16.0, allow_nan=False),
    max_size=4,
)
piece_sets = st.frozensets(st.integers(min_value=0, max_value=7), max_size=4)


plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rank_latency_multipliers=multipliers,
    rank_timeout_probability=st.dictionaries(
        st.integers(min_value=0, max_value=31), probabilities, max_size=4
    ),
    vector_corruption_probability=probabilities,
    corruption_mode=st.sampled_from(("nan", "bitflip")),
    source_failure_probability=probabilities,
    crash_shards=piece_sets,
    hang_shards=piece_sets,
    crash_attempts=st.integers(min_value=1, max_value=4),
    link_loss_probability=probabilities,
    link_bandwidth_multipliers=link_multipliers,
    straggler_multipliers=multipliers,
    dead_shards=piece_sets,
)


@settings(max_examples=100, deadline=None)
@given(plan=plans, new_seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_with_seed_copies_every_field(plan, new_seed):
    rolled = plan.with_seed(new_seed)
    assert rolled.seed == new_seed
    for field in dataclasses.fields(FaultPlan):
        if field.name == "seed":
            continue
        assert getattr(rolled, field.name) == getattr(plan, field.name), (
            f"with_seed dropped field {field.name!r}"
        )


@settings(max_examples=50, deadline=None)
@given(plan=plans)
def test_plan_pickle_round_trip_is_field_exact(plan):
    copy = pickle.loads(pickle.dumps(plan))
    for field in dataclasses.fields(FaultPlan):
        assert getattr(copy, field.name) == getattr(plan, field.name)
    # Re-seeding the copy and the original must agree on every decision
    # surface (the rng is keyed purely on field values).
    assert copy.with_seed(plan.seed + 1) == plan.with_seed(plan.seed + 1)


policy_overrides = st.fixed_dictionaries(
    {},
    optional={
        "max_read_retries": st.integers(min_value=0, max_value=5),
        "read_timeout_cycles": st.integers(min_value=0, max_value=4096),
        "read_retry_backoff_cycles": st.integers(min_value=0, max_value=512),
        "max_source_retries": st.integers(min_value=0, max_value=5),
        "max_corruption_retries": st.integers(min_value=0, max_value=5),
        "max_shard_retries": st.integers(min_value=0, max_value=5),
        "max_link_retransmits": st.integers(min_value=0, max_value=5),
        "link_timeout_cycles": st.integers(min_value=0, max_value=4096),
        "shard_timeout_s": st.one_of(
            st.none(), st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
        ),
    },
)


@settings(max_examples=100, deadline=None)
@given(overrides=policy_overrides)
def test_graceful_overrides_and_pickle_equality(overrides):
    policy = FaultPolicy.graceful(**overrides)
    assert policy.mode == "degrade"
    defaults = FaultPolicy()
    for field in dataclasses.fields(FaultPolicy):
        if field.name == "mode":
            continue
        expected = overrides.get(field.name, getattr(defaults, field.name))
        assert getattr(policy, field.name) == expected, (
            f"graceful() mishandled field {field.name!r}"
        )
    copy = pickle.loads(pickle.dumps(policy))
    assert copy == policy
    assert copy is not policy


def test_graceful_mode_override_wins():
    # An explicit mode= keyword must beat the degrade default.
    assert FaultPolicy.graceful(mode="fail_fast").fail_fast
