"""FaultPlan / FaultPolicy: deterministic decisions, validation, pickling."""

import pickle

import numpy as np
import pytest

from repro.faults import (
    CORRUPT_BITFLIP,
    CORRUPT_NAN,
    FaultPlan,
    FaultPolicy,
    MODE_DEGRADE,
    MODE_FAIL_FAST,
)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=42, rank_timeout_probability={3: 0.5},
                      source_failure_probability=0.5)
        b = FaultPlan(seed=42, rank_timeout_probability={3: 0.5},
                      source_failure_probability=0.5)
        for position in range(64):
            assert a.read_times_out(3, position, 0) == b.read_times_out(3, position, 0)
            assert a.source_raises(position, 0) == b.source_raises(position, 0)

    def test_decisions_are_order_independent(self):
        """The same site gives the same answer no matter when it is asked —
        the property that keeps worker processes in sync with the parent."""
        plan = FaultPlan(seed=7, rank_timeout_probability={1: 0.5})
        forward = [plan.read_times_out(1, p, 0) for p in range(32)]
        backward = [plan.read_times_out(1, p, 0) for p in reversed(range(32))]
        assert forward == backward[::-1]

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=0, source_failure_probability=0.5)
        b = a.with_seed(1)
        decisions_a = [a.source_raises(i, 0) for i in range(128)]
        decisions_b = [b.source_raises(i, 0) for i in range(128)]
        assert decisions_a != decisions_b

    def test_pickle_round_trip_preserves_decisions(self):
        plan = FaultPlan(
            seed=9,
            rank_latency_multipliers={0: 2.0},
            rank_timeout_probability={1: 0.4},
            vector_corruption_probability=0.3,
            source_failure_probability=0.2,
            crash_shards=frozenset({0, 2}),
        )
        copy = pickle.loads(pickle.dumps(plan))
        assert copy == plan
        for i in range(32):
            assert copy.source_raises(i, 0) == plan.source_raises(i, 0)
            assert copy.read_times_out(1, i, 0) == plan.read_times_out(1, i, 0)

    def test_corruption_is_deterministic(self):
        plan = FaultPlan(seed=5, vector_corruption_probability=1.0)
        value = np.arange(16.0)
        first = plan.corrupt_vector(3, 0, value)
        second = plan.corrupt_vector(3, 0, value)
        assert first is not None
        assert np.array_equal(first, second, equal_nan=True)


class TestCorruptionModes:
    def test_nan_mode_poisons_a_span(self):
        plan = FaultPlan(seed=1, vector_corruption_probability=1.0,
                         corruption_mode=CORRUPT_NAN)
        value = np.ones(32)
        corrupted = plan.corrupt_vector(0, 0, value)
        assert corrupted is not None
        assert np.isnan(corrupted).any()
        assert not np.isnan(value).any(), "input must not be mutated"

    def test_bitflip_mode_changes_values_silently(self):
        plan = FaultPlan(seed=1, vector_corruption_probability=1.0,
                         corruption_mode=CORRUPT_BITFLIP)
        value = np.ones(32)
        corrupted = plan.corrupt_vector(0, 0, value)
        assert corrupted is not None
        assert not np.array_equal(corrupted, value)
        assert np.isfinite(corrupted).all(), "mantissa flips stay finite"

    def test_zero_probability_never_corrupts(self):
        plan = FaultPlan(seed=1)
        assert plan.corrupt_vector(0, 0, np.ones(4)) is None
        assert not plan.source_raises(0, 0)
        assert not plan.read_times_out(0, 0, 0)


class TestShardDecisions:
    def test_crash_fires_only_on_early_attempts(self):
        plan = FaultPlan(seed=0, crash_shards=frozenset({1}), crash_attempts=2)
        assert plan.shard_crashes(1, 0)
        assert plan.shard_crashes(1, 1)
        assert not plan.shard_crashes(1, 2)
        assert not plan.shard_crashes(0, 0)

    def test_hang_mirrors_crash_semantics(self):
        plan = FaultPlan(seed=0, hang_shards=frozenset({2}), crash_attempts=1)
        assert plan.shard_hangs(2, 0)
        assert not plan.shard_hangs(2, 1)
        assert not plan.shard_hangs(0, 0)


class TestValidation:
    def test_rejects_unknown_corruption_mode(self):
        with pytest.raises(ValueError, match="corruption mode"):
            FaultPlan(corruption_mode="gamma-ray")

    def test_rejects_out_of_range_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(vector_corruption_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rank_timeout_probability={0: -0.1})

    def test_rejects_speedup_multiplier(self):
        with pytest.raises(ValueError, match="slow reads down"):
            FaultPlan(rank_latency_multipliers={0: 0.5})

    def test_touches_memory_only_for_memory_faults(self):
        assert not FaultPlan(vector_corruption_probability=1.0).touches_memory
        assert FaultPlan(rank_latency_multipliers={0: 2.0}).touches_memory
        assert FaultPlan(rank_timeout_probability={0: 0.1}).touches_memory


class TestPolicy:
    def test_default_is_fail_fast(self):
        policy = FaultPolicy()
        assert policy.mode == MODE_FAIL_FAST
        assert policy.fail_fast

    def test_graceful_constructor(self):
        policy = FaultPolicy.graceful(max_read_retries=5)
        assert policy.mode == MODE_DEGRADE
        assert not policy.fail_fast
        assert policy.max_read_retries == 5

    def test_rejects_unknown_mode_and_negative_budgets(self):
        with pytest.raises(ValueError, match="unknown mode"):
            FaultPolicy(mode="shrug")
        with pytest.raises(ValueError):
            FaultPolicy(max_read_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(shard_timeout_s=0.0)

    def test_policy_is_picklable(self):
        policy = FaultPolicy.graceful(shard_timeout_s=2.5)
        assert pickle.loads(pickle.dumps(policy)) == policy
