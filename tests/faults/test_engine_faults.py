"""Engine-level fault injection: corruption, source faults, degradation."""

import numpy as np
import pytest

from repro.core import FafnirConfig, FafnirEngine
from repro.faults import (
    FaultPlan,
    FaultPolicy,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    SourceFaultError,
    VectorCorruptionError,
)
from repro.memory import MemoryConfig
from repro.obs import InMemorySink, Tracer
from repro.obs.events import FAULT_DETECTED, FAULT_INJECTED, QUERY_DEGRADED

RANKS = 8
ELEMENTS = 16


def make_engine(**kwargs):
    return FafnirEngine(
        config=FafnirConfig(
            batch_size=8,
            max_query_len=6,
            vector_bytes=ELEMENTS * 4,
            total_ranks=RANKS,
            ranks_per_leaf_pe=2,
            num_tables=RANKS,
        ),
        memory_config=MemoryConfig().scaled_to_ranks(RANKS),
        **kwargs,
    )


def vector_source(index):
    return np.random.default_rng(90_000 + index).normal(size=ELEMENTS)


QUERIES = [[1, 2, 3], [4, 5], [1, 6, 7, 8], [9, 10]]


def oracle(query, dropped=frozenset()):
    survivors = [i for i in sorted(set(query)) if i not in dropped]
    return sum(vector_source(i) for i in survivors)


class TestCleanPathEquivalence:
    def test_zero_probability_plan_matches_fault_free_run(self):
        """The faulty code path with nothing firing must reproduce the
        fault-free path bit for bit — same vectors, same timing."""
        clean = make_engine().run_batch(QUERIES, vector_source)
        idle_plan = FaultPlan(seed=0)
        faulty = make_engine(
            faults=idle_plan, fault_policy=FaultPolicy.graceful()
        ).run_batch(QUERIES, vector_source)
        assert faulty.query_statuses == [STATUS_OK] * len(QUERIES)
        assert faulty.dropped_indices == frozenset()
        for a, b in zip(clean.vectors, faulty.vectors):
            assert a.tobytes() == b.tobytes()
        assert (
            faulty.stats.latency_pe_cycles == clean.stats.latency_pe_cycles
        )

    def test_no_plan_statuses_default_to_ok(self):
        result = make_engine().run_batch(QUERIES, vector_source)
        assert result.statuses is None
        assert result.query_statuses == [STATUS_OK] * len(QUERIES)


class TestCorruptionRecovery:
    def test_recovered_corruption_matches_oracle(self):
        plan = FaultPlan(seed=3, vector_corruption_probability=0.3)
        result = make_engine(
            faults=plan, fault_policy=FaultPolicy.graceful()
        ).run_batch(QUERIES, vector_source)
        assert result.query_statuses == [STATUS_OK] * len(QUERIES)
        for query, vector in zip(QUERIES, result.vectors):
            assert np.allclose(vector, oracle(query))

    def test_persistent_corruption_raises_under_fail_fast(self):
        plan = FaultPlan(seed=3, vector_corruption_probability=1.0)
        with pytest.raises(VectorCorruptionError, match="retry budget"):
            make_engine(faults=plan).run_batch(QUERIES, vector_source)

    def test_persistent_source_fault_raises_under_fail_fast(self):
        plan = FaultPlan(seed=3, source_failure_probability=1.0)
        with pytest.raises(SourceFaultError, match="retry budget"):
            make_engine(faults=plan).run_batch(QUERIES, vector_source)

    def test_corruption_events_recorded(self):
        sink = InMemorySink()
        plan = FaultPlan(seed=3, vector_corruption_probability=0.3)
        make_engine(
            faults=plan,
            fault_policy=FaultPolicy.graceful(),
            tracer=Tracer([sink]),
        ).run_batch(QUERIES, vector_source)
        injected = [
            e for e in sink.events
            if e.kind == FAULT_INJECTED and e.args["fault"] == "vector_corruption"
        ]
        detected = [
            e for e in sink.events
            if e.kind == FAULT_DETECTED and e.args["fault"] == "vector_corruption"
        ]
        assert injected and len(injected) == len(detected)


class TestGracefulDegradation:
    def test_lost_rank_degrades_exactly_its_queries(self):
        plan = FaultPlan(seed=0, rank_timeout_probability={0: 1.0})

        result = make_engine(
            faults=plan,
            fault_policy=FaultPolicy.graceful(max_read_retries=0),
        ).run_batch(QUERIES, vector_source)
        dropped = result.dropped_indices
        assert dropped, "rank 0 holds some queried index in this layout"
        for query, vector, status in zip(
            QUERIES, result.vectors, result.query_statuses
        ):
            survivors = set(query) - dropped
            if not survivors:
                assert status == STATUS_FAILED
                assert np.isnan(vector).all()
            elif survivors == set(query):
                assert status == STATUS_OK
                assert np.allclose(vector, oracle(query))
            else:
                assert status == STATUS_DEGRADED
                assert np.allclose(vector, oracle(query, dropped))

    def test_all_sources_failing_marks_every_query_failed(self):
        plan = FaultPlan(seed=1, source_failure_probability=1.0)
        result = make_engine(
            faults=plan, fault_policy=FaultPolicy.graceful()
        ).run_batch(QUERIES, vector_source)
        assert result.query_statuses == [STATUS_FAILED] * len(QUERIES)
        for vector in result.vectors:
            assert np.isnan(vector).all()

    def test_query_degraded_events_emitted(self):
        sink = InMemorySink()
        plan = FaultPlan(seed=1, source_failure_probability=1.0)
        make_engine(
            faults=plan,
            fault_policy=FaultPolicy.graceful(),
            tracer=Tracer([sink]),
        ).run_batch(QUERIES, vector_source)
        degraded = [e for e in sink.events if e.kind == QUERY_DEGRADED]
        assert len(degraded) == len(QUERIES)
        assert all(e.args["status"] == STATUS_FAILED for e in degraded)
        assert sorted(e.args["query"] for e in degraded) == list(
            range(len(QUERIES))
        )

    def test_degradation_works_without_deduplication(self):
        plan = FaultPlan(seed=1, source_failure_probability=0.4)
        result = make_engine(
            faults=plan, fault_policy=FaultPolicy.graceful()
        ).run_batch(QUERIES, vector_source, deduplicate=False)
        for query, vector, status in zip(
            QUERIES, result.vectors, result.query_statuses
        ):
            if status == STATUS_FAILED:
                assert np.isnan(vector).all()
            else:
                assert np.allclose(
                    vector, oracle(query, result.dropped_indices)
                )


class TestMultiBatchStatuses:
    def test_statuses_concatenate_across_batches(self):
        plan = FaultPlan(seed=1, source_failure_probability=1.0)
        engine = make_engine(faults=plan, fault_policy=FaultPolicy.graceful())
        run = engine.run_batches([QUERIES[:2], QUERIES[2:]], vector_source)
        assert run.statuses == [STATUS_FAILED] * len(QUERIES)
        assert len(run.vectors) == len(QUERIES)

    def test_clean_multibatch_statuses_all_ok(self):
        run = make_engine().run_batches([QUERIES[:2], QUERIES[2:]], vector_source)
        assert run.statuses == [STATUS_OK] * len(QUERIES)
