"""Fault-tolerant sharded serving: crash/hang detection and re-dispatch."""

import numpy as np
import pytest

from repro.core import FafnirConfig, ShardedRunner, shard_batches
from repro.faults import FaultPlan, FaultPolicy, ShardFailedError, recovery_report
from repro.memory import MemoryConfig

RANKS = 8
ELEMENTS = 16

BATCHES = [
    [[1, 2, 3], [4, 5]],
    [[6, 7], [8, 9, 10]],
    [[11, 12], [13]],
    [[14, 15], [16, 17]],
]


def make_config():
    return FafnirConfig(
        batch_size=8,
        max_query_len=6,
        vector_bytes=ELEMENTS * 4,
        total_ranks=RANKS,
        ranks_per_leaf_pe=2,
        num_tables=RANKS,
    )


def make_runner(**kwargs):
    return ShardedRunner(
        config=make_config(),
        memory_config=MemoryConfig().scaled_to_ranks(RANKS),
        **kwargs,
    )


def vector_source(index):
    """Module-level (picklable) deterministic vector store."""
    return np.random.default_rng(70_000 + index).normal(size=ELEMENTS)


def all_events(results):
    return [event for result in results for event in (result.events or [])]


def assert_same_vectors(expected, actual):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert len(a.vectors) == len(b.vectors)
        for va, vb in zip(a.vectors, b.vectors):
            assert va.tobytes() == vb.tobytes()


@pytest.fixture(scope="module")
def shards():
    return shard_batches(BATCHES, 4)


@pytest.fixture(scope="module")
def clean(shards):
    return make_runner(trace=True, max_workers=4).run(shards, vector_source)


class TestEmptyStream:
    def test_shard_batches_of_nothing_is_empty(self):
        assert shard_batches([], 4) == []

    def test_run_of_no_shards_is_empty(self):
        assert make_runner().run([], vector_source) == []


class TestCrashRecovery:
    def test_pool_crash_is_redispatched_with_identical_results(
        self, shards, clean
    ):
        plan = FaultPlan(seed=0, crash_shards=frozenset({0}), crash_attempts=1)
        runner = make_runner(
            trace=True,
            max_workers=4,
            faults=plan,
            fault_policy=FaultPolicy.graceful(shard_timeout_s=60.0),
        )
        results = runner.run(shards, vector_source)
        assert_same_vectors(clean, results)
        report = recovery_report(all_events(results))
        assert report.injected.get("worker_crash") == 1
        assert report.redispatches >= 1
        assert report.recovered == report.total_detected

    def test_serial_crash_recovery_records_same_lifecycle(self, shards, clean):
        plan = FaultPlan(seed=0, crash_shards=frozenset({0}), crash_attempts=1)
        runner = make_runner(
            trace=True,
            max_workers=1,
            faults=plan,
            fault_policy=FaultPolicy.graceful(),
        )
        results = runner.run(shards, vector_source)
        assert_same_vectors(clean, results)
        report = recovery_report(all_events(results))
        assert report.injected.get("worker_crash") == 1
        assert report.detected.get("worker_crash") == 1
        assert report.redispatches == 1

    def test_persistent_crash_exhausts_budget_under_fail_fast(self, shards):
        plan = FaultPlan(seed=0, crash_shards=frozenset({0}), crash_attempts=10)
        runner = make_runner(
            max_workers=4,
            faults=plan,
            fault_policy=FaultPolicy(max_shard_retries=1),
        )
        with pytest.raises(ShardFailedError, match="re-dispatch budget"):
            runner.run(shards, vector_source)

    def test_persistent_serial_crash_raises_too(self, shards):
        plan = FaultPlan(seed=0, crash_shards=frozenset({0}), crash_attempts=10)
        runner = make_runner(
            max_workers=1,
            faults=plan,
            fault_policy=FaultPolicy(max_shard_retries=1),
        )
        with pytest.raises(ShardFailedError, match="re-dispatch budget"):
            runner.run(shards, vector_source)


class TestHangRecovery:
    def test_watchdog_catches_hung_worker(self, shards, clean):
        plan = FaultPlan(
            seed=0,
            hang_shards=frozenset({1}),
            crash_attempts=1,
            hang_seconds=3.0,
        )
        runner = make_runner(
            trace=True,
            max_workers=4,
            faults=plan,
            fault_policy=FaultPolicy.graceful(shard_timeout_s=0.5),
        )
        results = runner.run(shards, vector_source)
        assert_same_vectors(clean, results)
        report = recovery_report(all_events(results))
        assert report.detected.get("worker_hang", 0) >= 1
        assert report.redispatches >= 1

    def test_hangs_are_skipped_in_process(self, shards, clean):
        """The serial path has no watchdog and no second process — hangs
        must not fire there (the run would just sleep pointlessly)."""
        plan = FaultPlan(
            seed=0,
            hang_shards=frozenset({1}),
            crash_attempts=1,
            hang_seconds=30.0,
        )
        runner = make_runner(trace=True, max_workers=1, faults=plan,
                             fault_policy=FaultPolicy.graceful())
        results = runner.run(shards, vector_source)  # returns promptly
        assert_same_vectors(clean, results)


class TestFaultPlanShipsToWorkers:
    def test_leaf_faults_fire_inside_worker_processes(self, shards, clean):
        """A corruption plan must produce fault events from inside the
        worker replicas — the plan travels with the engine config."""
        plan = FaultPlan(seed=3, vector_corruption_probability=0.3)
        runner = make_runner(
            trace=True,
            max_workers=4,
            faults=plan,
            fault_policy=FaultPolicy.graceful(shard_timeout_s=60.0),
        )
        results = runner.run(shards, vector_source)
        assert_same_vectors(clean, results)
        report = recovery_report(all_events(results))
        assert report.injected.get("vector_corruption", 0) >= 1
        assert report.recovered == report.total_detected
