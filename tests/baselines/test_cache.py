"""Tests for the RecNMP rank-cache model."""

import pytest

from repro.baselines import RankCacheArray, VectorCache


class TestVectorCache:
    def test_capacity_in_vectors(self):
        cache = VectorCache(size_bytes=128 * 1024, vector_bytes=512, ways=8)
        assert cache.capacity_vectors == 256

    def test_miss_then_hit(self):
        cache = VectorCache()
        assert not cache.access(7)
        assert cache.access(7)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_within_set(self):
        cache = VectorCache(size_bytes=2 * 512, vector_bytes=512, ways=2)
        assert cache.num_sets == 1
        cache.access(1)
        cache.access(2)
        cache.access(1)      # 1 becomes MRU
        cache.access(3)      # evicts 2 (LRU)
        assert cache.access(1)
        assert not cache.access(2)

    def test_distinct_sets_do_not_conflict(self):
        cache = VectorCache(size_bytes=4 * 512, vector_bytes=512, ways=2)
        assert cache.num_sets == 2
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        assert cache.access(0)
        assert cache.access(1)

    def test_reset(self):
        cache = VectorCache()
        cache.access(5)
        cache.reset()
        assert not cache.access(5)
        assert cache.stats.misses == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            VectorCache(size_bytes=0)
        with pytest.raises(ValueError):
            VectorCache(size_bytes=512, vector_bytes=512, ways=8)
        cache = VectorCache()
        with pytest.raises(ValueError):
            cache.access(-1)


class TestRankCacheArray:
    def test_per_rank_isolation(self):
        array = RankCacheArray(num_ranks=2)
        array.access(0, 5)
        assert not array.access(1, 5)  # different rank: cold
        assert array.access(0, 5)

    def test_aggregate_stats(self):
        array = RankCacheArray(num_ranks=2)
        array.access(0, 1)
        array.access(0, 1)
        array.access(1, 2)
        stats = array.stats
        assert stats.hits == 1
        assert stats.misses == 2

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            RankCacheArray(num_ranks=0)
