"""Tests for the RecNMP rank-cache model."""

from typing import Dict, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import RankCacheArray, VectorCache
from repro.tiering import CacheStats, HotIndexCache


class TestVectorCache:
    def test_capacity_in_vectors(self):
        cache = VectorCache(size_bytes=128 * 1024, vector_bytes=512, ways=8)
        assert cache.capacity_vectors == 256

    def test_miss_then_hit(self):
        cache = VectorCache()
        assert not cache.access(7)
        assert cache.access(7)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_within_set(self):
        cache = VectorCache(size_bytes=2 * 512, vector_bytes=512, ways=2)
        assert cache.num_sets == 1
        cache.access(1)
        cache.access(2)
        cache.access(1)      # 1 becomes MRU
        cache.access(3)      # evicts 2 (LRU)
        assert cache.access(1)
        assert not cache.access(2)

    def test_distinct_sets_do_not_conflict(self):
        cache = VectorCache(size_bytes=4 * 512, vector_bytes=512, ways=2)
        assert cache.num_sets == 2
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        assert cache.access(0)
        assert cache.access(1)

    def test_reset(self):
        cache = VectorCache()
        cache.access(5)
        cache.reset()
        assert not cache.access(5)
        assert cache.stats.misses == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            VectorCache(size_bytes=0)
        with pytest.raises(ValueError):
            VectorCache(size_bytes=512, vector_bytes=512, ways=8)
        cache = VectorCache()
        with pytest.raises(ValueError):
            cache.access(-1)


class TestRankCacheArray:
    def test_per_rank_isolation(self):
        array = RankCacheArray(num_ranks=2)
        array.access(0, 5)
        assert not array.access(1, 5)  # different rank: cold
        assert array.access(0, 5)

    def test_aggregate_stats(self):
        array = RankCacheArray(num_ranks=2)
        array.access(0, 1)
        array.access(0, 1)
        array.access(1, 2)
        stats = array.stats
        assert stats.hits == 1
        assert stats.misses == 2

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            RankCacheArray(num_ranks=0)


class _LegacyVectorCache:
    """The pre-delegation RecNMP baseline cache, verbatim.

    ``VectorCache`` now delegates to the shared tiering model
    (:class:`repro.tiering.HotIndexCache`); this frozen copy of the
    original implementation is the reference that pins the delegation —
    if the shared model's hit/miss stream ever drifts from what the
    baseline historically produced, the equivalence tests below fail.
    """

    def __init__(self, size_bytes=128 * 1024, vector_bytes=512, ways=8):
        capacity = size_bytes // vector_bytes
        self.num_sets = max(1, capacity // ways)
        self.ways = ways
        self._sets: Dict[int, List[int]] = {}

    def access(self, vector_id: int) -> bool:
        index = vector_id % self.num_sets
        entries = self._sets.setdefault(index, [])
        if vector_id in entries:
            entries.remove(vector_id)
            entries.append(vector_id)
            return True
        entries.append(vector_id)
        if len(entries) > self.ways:
            entries.pop(0)
        return False


class TestDelegationEquivalence:
    """Old-vs-new hit/miss stream pins for the shared tiering model."""

    @settings(max_examples=120, deadline=None)
    @given(
        sequence=st.lists(
            st.integers(min_value=0, max_value=512), min_size=0, max_size=300
        ),
        geometry=st.sampled_from(
            [
                (128 * 1024, 512, 8),  # the RecNMP reference point
                (2 * 512, 512, 2),
                (4 * 512, 512, 2),
                (16 * 64, 64, 4),
                (512, 512, 1),
            ]
        ),
    )
    def test_vector_cache_matches_legacy_stream(self, sequence, geometry):
        size_bytes, vector_bytes, ways = geometry
        current = VectorCache(size_bytes, vector_bytes, ways)
        legacy = _LegacyVectorCache(size_bytes, vector_bytes, ways)
        stream = [current.access(v) for v in sequence]
        assert stream == [legacy.access(v) for v in sequence]
        assert current.stats.hits == sum(stream)
        assert current.stats.misses == len(stream) - sum(stream)

    def test_vector_cache_is_the_shared_model(self):
        cache = VectorCache()
        assert isinstance(cache._cache, HotIndexCache)
        assert isinstance(cache.stats, CacheStats)

    def test_hit_rate_float_edge(self):
        """The old ``hits / accesses if accesses else 0.0`` returned an
        int-flavored 0 path; the shared stats are a plain float, clamped,
        and exactly 0.0 untouched."""
        cache = VectorCache()
        assert cache.stats.hit_rate == 0.0
        assert isinstance(cache.stats.hit_rate, float)
        cache.access(1)
        cache.access(1)
        assert 0.0 <= cache.stats.hit_rate <= 1.0
