"""Tests for the gather engines: functional parity and qualitative shape."""

import numpy as np
import pytest

from repro.baselines import (
    CpuGatherEngine,
    FafnirGatherEngine,
    HostLink,
    RecNmpGatherEngine,
    TensorDimmGatherEngine,
)
from repro.core import get_operator
from repro.workloads.embedding import EmbeddingTableSet, QueryGenerator


@pytest.fixture(scope="module")
def tables():
    return EmbeddingTableSet(num_tables=32, rows_per_table=100_000, seed=0)


@pytest.fixture(scope="module")
def batch(tables):
    return QueryGenerator.paper_calibrated(tables, seed=4).batch(16)


@pytest.fixture(scope="module")
def results(tables, batch):
    engines = {
        "cpu": CpuGatherEngine(),
        "tensordimm": TensorDimmGatherEngine(),
        "recnmp": RecNmpGatherEngine(),
        "fafnir": FafnirGatherEngine(),
    }
    return {
        name: engine.lookup(batch, tables.vector)
        for name, engine in engines.items()
    }


class TestFunctionalParity:
    def test_all_engines_agree(self, results):
        reference = results["fafnir"].vectors
        for name, result in results.items():
            for a, b in zip(reference, result.vectors):
                assert np.allclose(a, b), name

    def test_all_engines_pass_oracle(self, tables, batch):
        for engine in (
            CpuGatherEngine(),
            TensorDimmGatherEngine(),
            RecNmpGatherEngine(with_cache=True),
            FafnirGatherEngine(),
        ):
            assert engine.oracle_check(batch, tables.vector), engine.name

    def test_mean_operator_supported_everywhere(self, tables, batch):
        operator = get_operator("mean")
        for engine_cls in (CpuGatherEngine, TensorDimmGatherEngine, RecNmpGatherEngine):
            engine = engine_cls(operator=operator)
            assert engine.oracle_check(batch[:4], tables.vector), engine_cls


class TestDataMovement:
    def test_cpu_ships_every_vector(self, results, batch):
        total_lookups = sum(len(set(q)) for q in batch)
        assert results["cpu"].bytes_to_core == total_lookups * 512

    def test_ndp_designs_ship_only_outputs(self, results, batch):
        assert results["tensordimm"].bytes_to_core == len(batch) * 512
        assert results["fafnir"].bytes_to_core == len(batch) * 512

    def test_recnmp_between_the_extremes(self, results):
        """§III-C: RecNMP's movement depends on spatial locality."""
        assert (
            results["fafnir"].bytes_to_core
            < results["recnmp"].bytes_to_core
            <= results["cpu"].bytes_to_core
        )

    def test_fafnir_reads_fewest_vectors(self, results):
        assert results["fafnir"].dram_reads < results["cpu"].dram_reads
        assert results["fafnir"].dram_reads < results["recnmp"].dram_reads


class TestQualitativeShape:
    def test_tensordimm_memory_slowest(self, results):
        """§III-B: column-major striping breaks row-buffer locality."""
        tensordimm = results["tensordimm"].timing.memory_ns
        assert tensordimm > 2 * results["recnmp"].timing.memory_ns
        assert tensordimm > 2 * results["fafnir"].timing.memory_ns

    def test_recnmp_and_fafnir_memory_comparable(self, results):
        """Fig. 11: both use rank-parallel row-major reads.  (FAFNIR issues
        fewer reads thanks to dedup, so it may be somewhat faster.)"""
        ratio = results["recnmp"].timing.memory_ns / results["fafnir"].timing.memory_ns
        assert 0.8 <= ratio <= 3.0

    def test_fafnir_fastest_overall(self, results):
        fastest = results["fafnir"].total_ns
        for name in ("cpu", "tensordimm", "recnmp"):
            assert results[name].total_ns > fastest, name

    def test_fafnir_does_all_reduction_at_ndp(self, results):
        assert results["fafnir"].core_reduced_vectors == 0
        assert results["recnmp"].core_reduced_vectors > 0

    def test_tensordimm_row_hit_rate_is_poor(self, results):
        assert results["tensordimm"].memory_stats.row_hit_rate < 0.5


class TestRecNmpCache:
    def test_cache_absorbs_redundant_reads(self, tables):
        batch = QueryGenerator.paper_calibrated(tables, seed=7).batch(32)
        without = RecNmpGatherEngine().lookup(batch, tables.vector)
        with_cache = RecNmpGatherEngine(with_cache=True).lookup(batch, tables.vector)
        assert with_cache.cache_hits > 0
        assert with_cache.dram_reads < without.dram_reads
        assert (
            with_cache.dram_reads + with_cache.cache_hits == without.dram_reads
        )

    def test_hit_rate_clamped_to_paper_bound(self, tables):
        # Pathological batch: the same query 32 times.
        query = QueryGenerator.paper_calibrated(tables, seed=8).query()
        batch = [query] * 32
        engine = RecNmpGatherEngine(with_cache=True, max_cache_hit_rate=0.5)
        result = engine.lookup(batch, tables.vector)
        hit_rate = result.cache_hits / (result.cache_hits + result.dram_reads)
        assert hit_rate <= 0.51


class TestHostLink:
    def test_transfer_time_scales_with_bytes(self):
        link = HostLink()
        assert link.transfer_ns(0) == 0.0
        small = link.transfer_ns(1024)
        large = link.transfer_ns(1024 * 1024)
        assert large > small > 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HostLink().transfer_ns(-1)
