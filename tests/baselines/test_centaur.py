"""Tests for the Centaur baseline (§III-D)."""

import pytest

from repro.baselines import (
    CentaurGatherEngine,
    CpuGatherEngine,
    FafnirGatherEngine,
)
from repro.workloads import EmbeddingTableSet, QueryGenerator


@pytest.fixture(scope="module")
def workload():
    tables = EmbeddingTableSet(rows_per_table=100_000, seed=4)
    batch = QueryGenerator.paper_calibrated(tables, seed=5).batch(16)
    return tables, batch


class TestCentaur:
    def test_functionally_correct(self, workload):
        tables, batch = workload
        assert CentaurGatherEngine().oracle_check(batch, tables.vector)

    def test_moves_as_much_data_as_the_baseline(self, workload):
        """§III-D: 'unlike TensorDIMM, Centaur does not reduce data
        movement but instead transfers data more quickly'."""
        tables, batch = workload
        centaur = CentaurGatherEngine().lookup(batch, tables.vector)
        cpu = CpuGatherEngine().lookup(batch, tables.vector)
        assert centaur.bytes_to_core == cpu.bytes_to_core

    def test_but_transfers_it_faster(self, workload):
        tables, batch = workload
        centaur = CentaurGatherEngine().lookup(batch, tables.vector)
        cpu = CpuGatherEngine().lookup(batch, tables.vector)
        assert centaur.timing.transfer_ns < cpu.timing.transfer_ns

    def test_fafnir_still_wins(self, workload):
        """Moving q× fewer bytes beats moving the same bytes faster."""
        tables, batch = workload
        centaur = CentaurGatherEngine().lookup(batch, tables.vector)
        fafnir = FafnirGatherEngine().lookup(batch, tables.vector)
        assert fafnir.total_ns < centaur.total_ns
        assert fafnir.bytes_to_core < centaur.bytes_to_core

    def test_link_multiplier_validated(self):
        with pytest.raises(ValueError):
            CentaurGatherEngine(link_multiplier=0)

    def test_faster_link_helps(self, workload):
        tables, batch = workload
        slow = CentaurGatherEngine(link_multiplier=1.0).lookup(batch, tables.vector)
        fast = CentaurGatherEngine(link_multiplier=8.0).lookup(batch, tables.vector)
        assert fast.timing.transfer_ns < slow.timing.transfer_ns
