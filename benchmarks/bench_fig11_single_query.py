"""Fig. 11 — single-query latency breakdown: memory vs compute.

Paper claims for one query of 16 × 512 B vectors over 32 ranks:

* TensorDIMM's compute (pipelined chain) is ≈2.5× FAFNIR's parallel tree;
* TensorDIMM's memory is ≈4.45× RecNMP/FAFNIR (up to 16× with no row hits);
* RecNMP and FAFNIR have comparable memory latency;
* RecNMP forwards part of the reduction to the CPU, FAFNIR none.
"""

from _common import (
    assert_trace_matches_stats,
    calibrated_batch,
    reference_tables,
    run_once,
    traced_run_batch,
    write_report,
)
from repro.core import FafnirConfig
from repro.experiments import get_experiment


def test_fig11_single_query_breakdown(benchmark):
    result = run_once(benchmark, get_experiment("fig11").run)
    write_report("fig11_single_query", result.table)

    memory_ratio = result.data["memory_ratio"]
    compute_ratio = result.data["compute_ratio"]
    results = result.data["results"]

    # Memory: the column-major penalty (4.45× in the paper, ≤16× worst case).
    assert 3.0 <= memory_ratio <= 16.0
    # Compute: pipelined chain vs parallel tree (2.5× in the paper).
    assert 1.8 <= compute_ratio <= 4.0
    # RecNMP and FAFNIR memory comparable.
    recnmp_vs_fafnir = (
        results["recnmp"].timing.memory_ns / results["fafnir"].timing.memory_ns
    )
    assert 0.7 <= recnmp_vs_fafnir <= 1.5
    # RecNMP pays a core component; FAFNIR does not.
    assert results["recnmp"].timing.core_compute_ns > 0
    assert results["fafnir"].timing.core_compute_ns == 0


def test_fig11_trace_matches_stats():
    """The figure's single-query configuration, traced: event stream and
    ``LookupStats`` aggregation must describe the same run."""
    tables = reference_tables()
    batch = calibrated_batch(tables, 1)
    engine, result, events = traced_run_batch(
        FafnirConfig(batch_size=1), batch, tables.vector
    )
    assert events
    assert_trace_matches_stats(engine, result, events)
