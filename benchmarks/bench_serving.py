"""Online serving sweep: latency, SLO attainment, and dedup vs offered load.

FAFNIR's batch dedup only pays off if the host can *form* shared batches,
and an online server can only wait for sharers while the latency SLO
allows.  This bench drives the continuous-batching front-end with Poisson
arrivals at several offered-QPS levels and records the trade the paper's
host-side story implies:

* at low load the batcher spends SLO budget waiting for sharers, so p50
  sits near the SLO but attainment stays perfect and dedup is real;
* near capacity batches fill on their own — latency drops while dedup
  savings rise with the arrival density;
* far past capacity queueing delay shows up as missed SLOs.

Headline numbers per level (p50/p99 latency, SLO attainment, dedup
savings) are appended to ``BENCH_serving.json`` so the trajectory travels
with the repo (same rev/date convention as the other perf benches).

``FAFNIR_SMOKE=1`` shrinks the request counts so the bench finishes in
seconds on CI smoke runs.
"""

import os
import time

from _common import append_trajectory, run_once, write_report
from repro.analysis import Table
from repro.serving import ContinuousBatcher, OpenLoopGenerator, RampStage, ServingSimulator
from repro.workloads import EmbeddingTableSet, QueryGenerator

SMOKE = bool(int(os.environ.get("FAFNIR_SMOKE", "0")))

QPS_LEVELS = [0.5e6, 2e6, 6e6, 12e6]
REQUESTS = 150 if SMOKE else 600
SLO_US = 25.0
BATCH_SIZE = 16
WINDOW = 64
MARGIN_US = 3.0
QUERY_LEN = 16
SEED = 0


def _run_level(tables, qps):
    queries = QueryGenerator.paper_calibrated(
        tables, seed=SEED + 1, query_len=QUERY_LEN
    )
    load = OpenLoopGenerator(
        queries,
        [RampStage(qps=qps, duration_us=REQUESTS / qps * 1e6)],
        slo_us=SLO_US,
        seed=SEED + 2,
    )
    simulator = ServingSimulator(
        batcher=ContinuousBatcher(
            batch_size=BATCH_SIZE, window=WINDOW, dispatch_margin_us=MARGIN_US
        )
    )
    start = time.perf_counter()
    report = simulator.run(load, tables.vector)
    wall_s = time.perf_counter() - start
    return report, wall_s


def test_serving_sweep(benchmark):
    tables = EmbeddingTableSet.random(seed=SEED)

    def experiment():
        return [(qps, *_run_level(tables, qps)) for qps in QPS_LEVELS]

    results = run_once(benchmark, experiment)

    table = Table(
        [
            "offered_qps",
            "requests",
            "mean_batch",
            "p50_us",
            "p99_us",
            "slo_attain",
            "dedup_savings",
            "wall_s",
        ]
    )
    levels = []
    for qps, report, wall_s in results:
        summary = report.summary()
        table.add_row(
            [
                f"{qps / 1e6:.2f}M",
                int(summary["requests"]),
                f"{summary['mean_batch_size']:.1f}",
                f"{summary['p50_us']:.2f}",
                f"{summary['p99_us']:.2f}",
                f"{summary['slo_attainment']:.3f}",
                f"{summary['dedup_savings_fraction']:.3f}",
                f"{wall_s:.3f}",
            ]
        )
        levels.append(
            {
                "qps": qps,
                "requests": int(summary["requests"]),
                "mean_batch": round(summary["mean_batch_size"], 2),
                "p50_us": round(summary["p50_us"], 3),
                "p99_us": round(summary["p99_us"], 3),
                "slo_attainment": round(summary["slo_attainment"], 4),
                "dedup_savings": round(summary["dedup_savings_fraction"], 4),
                "wall_s": round(wall_s, 4),
            }
        )

    record = {
        "smoke": SMOKE,
        "slo_us": SLO_US,
        "batch_size": BATCH_SIZE,
        "window": WINDOW,
        "margin_us": MARGIN_US,
        "levels": levels,
    }
    write_report("serving", table, record=record)
    append_trajectory("serving", record)

    # Qualitative shape: attainment must be perfect well under capacity and
    # no better at the highest offered load; dedup savings must be real at
    # every level and grow (weakly) with the arrival density, because denser
    # arrivals give the window more sharers to group.
    by_qps = {level["qps"]: level for level in levels}
    assert by_qps[0.5e6]["slo_attainment"] == 1.0
    assert by_qps[12e6]["slo_attainment"] <= by_qps[2e6]["slo_attainment"]
    for level in levels:
        assert level["dedup_savings"] > 0.0
    assert by_qps[6e6]["dedup_savings"] >= by_qps[0.5e6]["dedup_savings"]
    # Denser arrivals fill batches: mean batch size is non-decreasing.
    assert by_qps[12e6]["mean_batch"] >= by_qps[0.5e6]["mean_batch"]
