"""Ablation — rank-cache sweeps (§III-E) and the hot-index tier trajectory.

The paper argues caching is the wrong tool: 128 KB per rank reaches at most
~50 % hit rate yet costs 38 % extra area, while FAFNIR removes the same
redundancy at the host for free.  The first sweep quantifies the
diminishing returns of growing the RecNMP baseline's cache.

The second sweep measures the two mechanisms *composed*: the hot-index
tier (:mod:`repro.tiering`) runs on top of FAFNIR's host-side dedup and
removes the cross-batch popularity redundancy dedup cannot see.  Cached
cells are verified byte-identical to the dedup-only baseline, and the
headline numbers — DRAM-read drop and hit rate per (Zipf α, cache size)
cell — are appended to the repo-root ``BENCH_cache.json`` trajectory.
At the RecNMP reference point (128 KB/rank, α = 1.05) the tier must cut
modeled DRAM accesses by at least 30 %.

``FAFNIR_SMOKE=1`` shrinks the tier sweep to the headline cell only.
"""

import os

import pytest

from _common import (
    append_trajectory,
    calibrated_batch,
    reference_tables,
    run_once,
    write_report,
)
from repro.analysis import Table
from repro.baselines import FafnirGatherEngine, RecNmpGatherEngine
from repro.core import FafnirConfig

SMOKE = bool(int(os.environ.get("FAFNIR_SMOKE", "0")))

CACHE_SIZES_KB = (0, 32, 128, 512)


def test_ablation_recnmp_cache_sweep(benchmark):
    tables = reference_tables()
    batch = calibrated_batch(tables, batch_size=32)

    def run():
        rows = {}
        for size_kb in CACHE_SIZES_KB:
            if size_kb == 0:
                engine = RecNmpGatherEngine()
            else:
                engine = RecNmpGatherEngine(
                    with_cache=True, cache_bytes=size_kb * 1024
                )
            result = engine.lookup(batch, tables.vector)
            rows[size_kb] = {
                "dram_reads": result.dram_reads,
                "cache_hits": result.cache_hits,
                "total_ns": result.total_ns,
            }
        fafnir = FafnirGatherEngine(config=FafnirConfig(batch_size=32)).lookup(
            batch, tables.vector
        )
        return rows, fafnir

    rows, fafnir = run_once(benchmark, run)

    table = Table(["cache_KB", "dram_reads", "hits", "total_us"])
    for size_kb in CACHE_SIZES_KB:
        row = rows[size_kb]
        table.add_row(
            [
                size_kb,
                row["dram_reads"],
                row["cache_hits"],
                f"{row['total_ns'] / 1000:.2f}",
            ]
        )
    table.add_row(
        ["fafnir(dedup)", fafnir.dram_reads, 0, f"{fafnir.total_ns / 1000:.2f}"]
    )
    write_report("ablation_cache", table)

    # Caches absorb reads, with diminishing returns.
    assert rows[32]["dram_reads"] <= rows[0]["dram_reads"]
    assert rows[128]["dram_reads"] <= rows[32]["dram_reads"]
    saved_small = rows[0]["dram_reads"] - rows[32]["dram_reads"]
    saved_big = rows[128]["dram_reads"] - rows[512]["dram_reads"]
    assert saved_big <= max(saved_small, 1)
    # FAFNIR's host-side dedup reads no more than the best cached RecNMP —
    # without any cache hardware.
    assert fafnir.dram_reads <= min(r["dram_reads"] for r in rows.values())
    # And is still faster end-to-end than every cache size.
    assert fafnir.total_ns < min(r["total_ns"] for r in rows.values())


TIER_ALPHAS = (1.05,) if SMOKE else (0.8, 1.05, 1.65)
TIER_SIZES_KB = (128,) if SMOKE else (32, 128, 512)
TIER_BATCHES = 16  # enough warm batches for steady-state hit rates
TIER_BATCH_SIZE = 32
TIER_QUERY_LEN = 16
TIER_HOT_ROWS = 4096
TIER_SEED = 0


def test_hot_index_tier_trajectory(benchmark):
    """Dedup + hot-index tier composition, recorded in BENCH_cache.json."""
    from repro.core.engine import FafnirEngine
    from repro.tiering import HotTierConfig
    from repro.workloads import EmbeddingTableSet, QueryGenerator

    config = FafnirConfig()
    tables = EmbeddingTableSet.random(seed=TIER_SEED)

    def run_stream(alpha, tier):
        generator = QueryGenerator(
            tables,
            query_len=TIER_QUERY_LEN,
            skew=alpha,
            hot_rows=TIER_HOT_ROWS,
            seed=TIER_SEED,
        )
        stream = [
            generator.batch(TIER_BATCH_SIZE) for _ in range(TIER_BATCHES)
        ]
        engine = FafnirEngine(config=config, cache=tier)
        result = engine.run_batches(stream, tables.vector, deduplicate=True)
        return {
            "bytes": tuple(v.tobytes() for v in result.vectors),
            "reads": result.memory_stats.reads,
            "stats": engine.memory.cache_stats,
        }

    def experiment():
        cells = []
        for alpha in TIER_ALPHAS:
            baseline = run_stream(alpha, None)
            for size_kb in TIER_SIZES_KB:
                tier = HotTierConfig(
                    size_bytes=size_kb * 1024, line_bytes=config.vector_bytes
                )
                cached = run_stream(alpha, tier)
                cells.append((alpha, size_kb, baseline, cached))
        return cells

    cells = run_once(benchmark, experiment)

    table = Table(
        ["alpha", "cache_KB", "hit_rate", "base_reads", "reads", "drop"]
    )
    records = []
    for alpha, size_kb, baseline, cached in cells:
        assert cached["bytes"] == baseline["bytes"], (
            f"tier changed results at alpha={alpha}, {size_kb} KB"
        )
        drop = 1.0 - cached["reads"] / baseline["reads"]
        hit_rate = cached["stats"].hit_rate
        table.add_row(
            [
                f"{alpha:.2f}",
                size_kb,
                f"{hit_rate:.3f}",
                baseline["reads"],
                cached["reads"],
                f"{drop:.1%}",
            ]
        )
        records.append(
            {
                "alpha": alpha,
                "cache_kb": size_kb,
                "hit_rate": round(hit_rate, 4),
                "base_reads": baseline["reads"],
                "reads": cached["reads"],
                "dram_drop": round(drop, 4),
            }
        )

    record = {
        "smoke": SMOKE,
        "batches": TIER_BATCHES,
        "batch_size": TIER_BATCH_SIZE,
        "query_len": TIER_QUERY_LEN,
        "hot_rows": TIER_HOT_ROWS,
        "line_bytes": config.vector_bytes,
        "cells": records,
    }
    write_report("ablation_cache_tier", table, record=record)
    append_trajectory("cache", record)

    by_cell = {(r["alpha"], r["cache_kb"]): r for r in records}
    reference = by_cell[(1.05, 128)]
    # The headline claim: at RecNMP's reference 128 KB/rank point, the
    # tier removes ≥ 30 % of the DRAM accesses dedup alone still issues.
    assert reference["dram_drop"] >= 0.30, reference
    # Caches never add reads, anywhere in the grid.
    for cell in records:
        assert cell["reads"] <= cell["base_reads"]
    if not SMOKE:
        # More skew concentrates the working set: hit rate rises with α
        # at the reference size.
        assert (
            by_cell[(1.65, 128)]["hit_rate"]
            >= by_cell[(1.05, 128)]["hit_rate"]
            >= by_cell[(0.8, 128)]["hit_rate"]
        )
        # Bigger caches never hit less on the same stream.
        for alpha in TIER_ALPHAS:
            assert (
                by_cell[(alpha, 512)]["hit_rate"]
                >= by_cell[(alpha, 32)]["hit_rate"]
            )
