"""Ablation — RecNMP rank-cache size sweep (§III-E).

The paper argues caching is the wrong tool: 128 KB per rank reaches at most
~50 % hit rate yet costs 38 % extra area, while FAFNIR removes the same
redundancy at the host for free.  This sweep quantifies the diminishing
returns of growing the cache.
"""

import pytest

from _common import calibrated_batch, reference_tables, run_once, write_report
from repro.analysis import Table
from repro.baselines import FafnirGatherEngine, RecNmpGatherEngine
from repro.core import FafnirConfig

CACHE_SIZES_KB = (0, 32, 128, 512)


def test_ablation_recnmp_cache_sweep(benchmark):
    tables = reference_tables()
    batch = calibrated_batch(tables, batch_size=32)

    def run():
        rows = {}
        for size_kb in CACHE_SIZES_KB:
            if size_kb == 0:
                engine = RecNmpGatherEngine()
            else:
                engine = RecNmpGatherEngine(
                    with_cache=True, cache_bytes=size_kb * 1024
                )
            result = engine.lookup(batch, tables.vector)
            rows[size_kb] = {
                "dram_reads": result.dram_reads,
                "cache_hits": result.cache_hits,
                "total_ns": result.total_ns,
            }
        fafnir = FafnirGatherEngine(config=FafnirConfig(batch_size=32)).lookup(
            batch, tables.vector
        )
        return rows, fafnir

    rows, fafnir = run_once(benchmark, run)

    table = Table(["cache_KB", "dram_reads", "hits", "total_us"])
    for size_kb in CACHE_SIZES_KB:
        row = rows[size_kb]
        table.add_row(
            [
                size_kb,
                row["dram_reads"],
                row["cache_hits"],
                f"{row['total_ns'] / 1000:.2f}",
            ]
        )
    table.add_row(
        ["fafnir(dedup)", fafnir.dram_reads, 0, f"{fafnir.total_ns / 1000:.2f}"]
    )
    write_report("ablation_cache", table)

    # Caches absorb reads, with diminishing returns.
    assert rows[32]["dram_reads"] <= rows[0]["dram_reads"]
    assert rows[128]["dram_reads"] <= rows[32]["dram_reads"]
    saved_small = rows[0]["dram_reads"] - rows[32]["dram_reads"]
    saved_big = rows[128]["dram_reads"] - rows[512]["dram_reads"]
    assert saved_big <= max(saved_small, 1)
    # FAFNIR's host-side dedup reads no more than the best cached RecNMP —
    # without any cache hardware.
    assert fafnir.dram_reads <= min(r["dram_reads"] for r in rows.values())
    # And is still faster end-to-end than every cache size.
    assert fafnir.total_ns < min(r["total_ns"] for r in rows.values())
