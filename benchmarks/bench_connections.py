"""§III-D / §IV-A — connection counts: all-to-all c·m vs FAFNIR (2m−2)+c."""

from _common import run_once, write_report
from repro.analysis import Table
from repro.hw import ConnectionComparison


def test_connection_scaling(benchmark):
    def run():
        return [
            ConnectionComparison(memory_devices=m, compute_devices=c)
            for m, c in [(8, 4), (16, 4), (32, 4), (64, 8), (128, 16)]
        ]

    comparisons = run_once(benchmark, run)

    table = Table(["m (memory)", "c (compute)", "all_to_all", "fafnir", "reduction"])
    for comparison in comparisons:
        table.add_row(
            [
                comparison.memory_devices,
                comparison.compute_devices,
                comparison.all_to_all,
                comparison.fafnir,
                f"{comparison.reduction_factor:.2f}×",
            ]
        )
    write_report("connections", table)

    # The tree always needs fewer links, and the advantage grows with scale.
    factors = [c.reduction_factor for c in comparisons]
    assert all(f > 1.0 for f in factors)
    assert factors[2] > factors[0]
    assert factors[-1] > factors[2]
    # Reference system numbers (§IV-A with m=32, c=4).
    reference = comparisons[2]
    assert reference.all_to_all == 128
    assert reference.fafnir == 66
