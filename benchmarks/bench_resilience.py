"""End-to-end resilience: chaos-cell inflation vs the clean baseline.

The reference chaos cell couples the faults a production gather-reduce
fleet actually sees: 1% cross-shard message loss, one straggler shard at
4× slowdown, and an arrival burst at 2× serving capacity.  This bench
measures what the resilience stack buys back:

* **reduction side** — the chaos cell under the graceful policy must
  keep every reduced vector byte-identical to the clean run (loss and
  stragglers are timing faults); hedged re-dispatch must pull the
  makespan back toward clean (first-result-wins);
* **serving side** — at 2× capacity without protection, queueing delay
  grows with the backlog and attainment collapses; with deadline-aware
  shedding the *admitted* stream must stay above the recorded floor.

Headline numbers (makespan inflation unhedged vs hedged, burst p99 and
attainment with and without shedding, the admitted-stream floor) are
appended to ``BENCH_resilience.json`` so the trajectory travels with the
repo.  ``FAFNIR_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os
import time

from _common import append_trajectory, run_once, write_report
from repro.analysis import Table
from repro.comm import LinkModel
from repro.core import FafnirConfig
from repro.core.sharding import ShardedRunner
from repro.faults import FaultPlan, FaultPolicy
from repro.resilience import HedgePolicy, OverloadPolicy
from repro.serving import (
    ContinuousBatcher,
    OpenLoopGenerator,
    RampStage,
    ServingSimulator,
)
from repro.workloads import EmbeddingTableSet, QueryGenerator

SMOKE = bool(int(os.environ.get("FAFNIR_SMOKE", "0")))

SEED = 0
SHARDS = 4
BATCHES = 2 if SMOKE else 4
BATCH_SIZE = 16 if SMOKE else 32
QUERY_LEN = 16
LINK_LOSS = 0.01
STRAGGLER_FACTOR = 4.0
BURST_FACTOR = 2.0
SLO_US = 25.0
N_REQUESTS = 80 if SMOKE else 200
#: Recorded floor on the admitted stream's SLO attainment under the
#: reference burst — the number CI holds future revisions to.
ATTAINMENT_FLOOR = 0.75


def _reduction_cell(tables, stream):
    link = LinkModel(latency_ns=300.0, bandwidth_gb_s=20.0)

    def runner(**kwargs):
        return ShardedRunner(
            config=FafnirConfig(),
            max_workers=1,
            reduction="gather",
            num_shards=SHARDS,
            link=link,
            **kwargs,
        )

    clean = runner().run_reduced(stream, tables.vector)
    straggler_piece = clean.active_pieces[len(clean.active_pieces) // 2]
    plan = FaultPlan(
        seed=SEED,
        link_loss_probability=LINK_LOSS,
        straggler_multipliers={straggler_piece: STRAGGLER_FACTOR},
    )
    unhedged = runner(
        faults=plan, fault_policy=FaultPolicy.graceful()
    ).run_reduced(stream, tables.vector)
    hedged = runner(
        faults=plan,
        fault_policy=FaultPolicy.graceful(),
        hedge=HedgePolicy(),
    ).run_reduced(stream, tables.vector)
    return clean, unhedged, hedged


def _serving_cell(tables):
    def serve(qps, count, protect):
        load = OpenLoopGenerator(
            QueryGenerator.paper_calibrated(
                tables, seed=SEED + 1, query_len=QUERY_LEN
            ),
            [RampStage(qps=qps, duration_us=count / qps * 1e6)],
            slo_us=SLO_US,
            seed=SEED + 2,
        )
        simulator = ServingSimulator(
            batcher=ContinuousBatcher(batch_size=16, window=64),
            overload=OverloadPolicy() if protect else None,
        )
        return simulator.run(load, tables.vector)

    probe = serve(1e9, N_REQUESTS, protect=False)
    capacity_qps = probe.observed_qps
    burst_n = max(N_REQUESTS, int(capacity_qps * SLO_US * 3 / 1e6))
    burst = serve(BURST_FACTOR * capacity_qps, burst_n, protect=False)
    shed = serve(BURST_FACTOR * capacity_qps, burst_n, protect=True)
    return capacity_qps, burst, shed


def test_resilience_chaos_cell(benchmark):
    tables = EmbeddingTableSet.random(seed=SEED)
    generator = QueryGenerator.paper_calibrated(
        tables, seed=SEED, query_len=QUERY_LEN
    )
    stream = [generator.batch(BATCH_SIZE) for _ in range(BATCHES)]

    def experiment():
        start = time.perf_counter()
        reduction = _reduction_cell(tables, stream)
        serving = _serving_cell(tables)
        return reduction, serving, time.perf_counter() - start

    (clean, unhedged, hedged), (capacity_qps, burst, shed), wall_s = run_once(
        benchmark, experiment
    )

    clean_bytes = [vector.tobytes() for vector in clean.vectors]
    unhedged_identical = [
        vector.tobytes() for vector in unhedged.vectors
    ] == clean_bytes
    hedged_identical = [
        vector.tobytes() for vector in hedged.vectors
    ] == clean_bytes
    unhedged_inflation = unhedged.makespan_pe_cycles / clean.makespan_pe_cycles
    hedged_inflation = hedged.makespan_pe_cycles / clean.makespan_pe_cycles

    admitted = [record for record in shed.records if record.status != "shed"]
    admitted_ok = sum(1 for record in admitted if record.slo_met) / max(
        len(admitted), 1
    )

    table = Table(["quantity", "clean", "chaos", "protected"])
    table.add_row(
        [
            "reduction makespan (cycles)",
            clean.makespan_pe_cycles,
            unhedged.makespan_pe_cycles,
            hedged.makespan_pe_cycles,
        ]
    )
    table.add_row(
        [
            "serving p99 (µs)",
            "-",
            f"{burst.latency_percentile_us(99):.2f}",
            f"{shed.latency_percentile_us(99):.2f}",
        ]
    )
    table.add_row(
        [
            "SLO attainment",
            "-",
            f"{burst.slo_attainment:.3f}",
            f"{shed.slo_attainment:.3f} ({admitted_ok:.3f} admitted)",
        ]
    )

    record = {
        "smoke": SMOKE,
        "link_loss": LINK_LOSS,
        "straggler_factor": STRAGGLER_FACTOR,
        "burst_factor": BURST_FACTOR,
        "slo_us": SLO_US,
        "attainment_floor": ATTAINMENT_FLOOR,
        "clean_makespan_cycles": clean.makespan_pe_cycles,
        "unhedged_makespan_cycles": unhedged.makespan_pe_cycles,
        "hedged_makespan_cycles": hedged.makespan_pe_cycles,
        "unhedged_inflation": round(unhedged_inflation, 4),
        "hedged_inflation": round(hedged_inflation, 4),
        "hedge_wins": hedged.hedges.wins,
        "hedge_saved_cycles": hedged.hedges.saved_cycles,
        "capacity_qps": round(capacity_qps, 1),
        "burst_p99_us": round(burst.latency_percentile_us(99), 3),
        "shed_p99_us": round(shed.latency_percentile_us(99), 3),
        "burst_attainment": round(burst.slo_attainment, 4),
        "shed_attainment": round(shed.slo_attainment, 4),
        "admitted_attainment": round(admitted_ok, 4),
        "shed_fraction": round(shed.shed_fraction, 4),
        "wall_s": round(wall_s, 4),
    }
    write_report("resilience", table, record=record)
    append_trajectory("resilience", record)

    # Timing faults must never change reduced bytes, hedging must pay,
    # and the admitted stream must hold the recorded floor while the
    # unprotected burst falls below it.
    assert unhedged_identical and hedged_identical
    assert unhedged_inflation > 1.0
    assert hedged_inflation <= unhedged_inflation
    assert hedged.hedges.wins >= 1
    assert shed.shed_fraction > 0.0
    assert admitted_ok >= ATTAINMENT_FLOOR
    assert burst.slo_attainment < ATTAINMENT_FLOOR
    assert shed.latency_percentile_us(99) <= burst.latency_percentile_us(99)
