"""Table VI and Fig. 16 — 7 nm ASIC area/power and FPGA power breakdown.

Paper anchors: PE 0.077 mm²; DIMM/rank node 0.282 mm²; channel node
0.121 mm²; system ≈1.25 mm² and 111.64 mW (23.82 mW per 4-DIMM node,
5.9 mW per DIMM) vs RecNMP's 184.2 mW per DIMM and 8.64 mm² per 16 DIMMs.
FPGA dynamic power: 0.23 W (DIMM/rank node) and 0.18 W (channel node).
"""

import pytest

from _common import run_once, write_report
from repro.analysis import Table
from repro.hw import (
    AsicPower,
    fpga_node_power_w,
    fpga_power_breakdown_w,
    pe_area_mm2,
    recnmp_comparison_mw,
    recnmp_system_area_mm2,
    reference_system_area,
)


def test_table6_asic_area_and_power(benchmark):
    def run():
        return reference_system_area(), AsicPower()

    area, power = run_once(benchmark, run)

    table = Table(["quantity", "model", "paper"])
    table.add_row(["PE area (mm²)", f"{pe_area_mm2():.3f}", 0.077])
    table.add_row(["DIMM/rank node (mm²)", f"{area.dimm_rank_node_mm2:.3f}", 0.282])
    table.add_row(["channel node (mm²)", f"{area.channel_node_mm2:.3f}", 0.121])
    table.add_row(["system area (mm²)", f"{area.total_mm2:.3f}", "1.2-1.25"])
    table.add_row(["system power (mW)", f"{power.total_mw:.2f}", 111.64])
    table.add_row(["per-DIMM power (mW)", f"{power.per_dimm_mw:.2f}", 5.9])
    table.add_row(
        ["RecNMP power/DIMM (mW)", f"{recnmp_comparison_mw(1):.1f}", 184.2]
    )
    table.add_row(
        ["RecNMP area 16 DIMMs (mm²)", f"{recnmp_system_area_mm2(16):.2f}", 8.64]
    )
    write_report("table6_asic", table)

    assert area.total_mm2 == pytest.approx(1.249, rel=0.02)
    assert power.total_mw == pytest.approx(111.64, rel=0.01)
    assert power.per_dimm_mw == pytest.approx(5.9, abs=0.1)
    # FAFNIR's overhead is negligible next to the DRAM itself.
    assert power.fraction_of_dram_power < 0.001
    # And far below the prior art per DIMM.
    assert recnmp_comparison_mw(1) > 20 * power.per_dimm_mw


def test_fig16_fpga_power_breakdown(benchmark):
    def run():
        return {
            node: fpga_power_breakdown_w(node)
            for node in ("dimm_rank", "channel")
        }

    breakdowns = run_once(benchmark, run)

    table = Table(["node", "total_W"] + list(breakdowns["dimm_rank"].keys()))
    for node, parts in breakdowns.items():
        table.add_row(
            [node, f"{sum(parts.values()):.2f}"]
            + [f"{value:.3f}" for value in parts.values()]
        )
    write_report("fig16_fpga_power", table)

    assert sum(breakdowns["dimm_rank"].values()) == pytest.approx(0.23)
    assert sum(breakdowns["channel"].values()) == pytest.approx(0.18)
    assert fpga_node_power_w("dimm_rank") > fpga_node_power_w("channel")
    # Fig. 16b: no single component dominates (uniform distribution, no
    # hot spot) — the largest share stays below half the total.
    for parts in breakdowns.values():
        assert max(parts.values()) < 0.5 * sum(parts.values())
