"""Ablation — memory-controller knobs: scheduling policy and refresh.

Neither knob is in the paper, but both gate how much of the reported
behaviour comes from the DRAM substrate vs the accelerator: FR-FCFS recovers
row hits the in-order scheduler loses, and refresh blackouts tax long
streaming runs.
"""

import dataclasses

import pytest

from _common import calibrated_batch, reference_tables, run_once, write_report
from repro.analysis import Table
from repro.core import FafnirConfig, FafnirEngine
from repro.memory import MemoryConfig, MemorySystem, ReadRequest


def test_ablation_memory_controller(benchmark):
    tables = reference_tables()
    batch = calibrated_batch(tables, batch_size=32)

    def run():
        rows = {}
        # Scheduling: a row-interleaved torture stream on one bank.
        stream = [
            ReadRequest(rank=0, bank=0, row=i % 4, column=(i // 4) * 64, bytes_=64)
            for i in range(64)
        ]
        for policy in ("fcfs", "frfcfs"):
            system = MemorySystem(MemoryConfig.small_test_system(), policy=policy)
            _, stats = system.execute(list(stream))
            rows[f"policy={policy}"] = {
                "finish_dram_cycles": stats.finish_cycle,
                "row_hit_rate": stats.row_hit_rate,
            }
        # Refresh: the same FAFNIR batch with and without blackouts.
        base = MemoryConfig().scaled_to_ranks(32)
        with_refresh = MemoryConfig(
            geometry=base.geometry,
            timing=dataclasses.replace(base.timing, refresh_enabled=True),
            energy=base.energy,
        )
        for label, memory_config in (("refresh=off", base), ("refresh=on", with_refresh)):
            engine = FafnirEngine(
                FafnirConfig(batch_size=32), memory_config=memory_config
            )
            result = engine.run_batch(batch, tables.vector)
            rows[label] = {
                "finish_dram_cycles": result.stats.memory.finish_cycle,
                "row_hit_rate": result.stats.memory.row_hit_rate,
            }
        return rows

    rows = run_once(benchmark, run)

    table = Table(["configuration", "dram_finish_cycles", "row_hit_rate_%"])
    for label, row in rows.items():
        table.add_row(
            [
                label,
                row["finish_dram_cycles"],
                f"{100 * row['row_hit_rate']:.1f}",
            ]
        )
    write_report("ablation_memory", table)

    # FR-FCFS strictly improves the interleaved stream.
    assert (
        rows["policy=frfcfs"]["finish_dram_cycles"]
        < rows["policy=fcfs"]["finish_dram_cycles"]
    )
    assert (
        rows["policy=frfcfs"]["row_hit_rate"] > rows["policy=fcfs"]["row_hit_rate"]
    )
    # Refresh never speeds anything up; for this sub-tREFI batch its cost
    # is bounded (a rank blackout or two at most).
    assert (
        rows["refresh=on"]["finish_dram_cycles"]
        >= rows["refresh=off"]["finish_dram_cycles"]
    )
    assert (
        rows["refresh=on"]["finish_dram_cycles"]
        <= rows["refresh=off"]["finish_dram_cycles"] + 2 * 420
    )
