"""Fig. 15 / §VI — memory accesses after eliminating redundant reads.

Paper claims: FAFNIR saves 34 % / 43 % / 58 % of memory accesses for batch
sizes 8 / 16 / 32 without any cache, and the number of accesses per leaf PE
input stays below the batch size.
"""

from _common import run_once, write_report
from repro.experiments import get_experiment

PAPER_SAVINGS = {8: 0.34, 16: 0.43, 32: 0.58}


def test_fig15_memory_access_elimination(benchmark):
    result = run_once(benchmark, get_experiment("fig15").run)
    write_report("fig15_memory_accesses", result.table)

    rows = result.data["rows"]
    for batch_size, paper_saving in PAPER_SAVINGS.items():
        # Savings within the calibration band of the paper's figures.
        assert abs(rows[batch_size]["saving"] - paper_saving) < 0.10
        # Fig. 15's per-leaf bound: never more accesses than the batch size.
        assert rows[batch_size]["per_leaf_max"] <= batch_size
    # Savings grow with batch size.
    savings = [rows[b]["saving"] for b in sorted(rows)]
    assert savings == sorted(savings)
