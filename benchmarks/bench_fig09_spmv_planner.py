"""Fig. 9 — SpMV iterations, rounds per iteration, and merges vs matrix
width (up to 20 M columns) for vector sizes 1024 and 2048.

Paper claim: "even for matrices with more than 5 million columns, no more
than two merge stages are required" (at the 2048 configuration).
"""

from _common import run_once, write_report
from repro.experiments import get_experiment


def test_fig09_planner_sweep(benchmark):
    result = run_once(benchmark, get_experiment("fig09").run)
    write_report("fig09_spmv_planner", result.table)

    plans = result.data["plans"]
    # The paper's headline claim at vector size 2048.
    for plan in plans[2048]:
        if plan.n_cols >= 5_000_000:
            assert plan.merge_iterations <= 2
    # Halving the vector size needs at least as many chunks.
    for plan_1024, plan_2048 in zip(plans[1024], plans[2048]):
        assert plan_1024.chunks >= plan_2048.chunks
    # Monotone growth in width.
    merges = [plan.total_merges for plan in plans[2048]]
    assert merges == sorted(merges)
