"""Gather-bandwidth roofline for the sparse-gather hot path.

FAFNIR's premise is that sparse gathering is bandwidth-bound: the paper's
reduction tree exists to keep gathered vectors from crossing the host
interface more than once.  This microbench measures, on the machine the
simulator runs on, the three rates that bound the simulation itself:

* **copy ceiling** — contiguous ``memcpy`` bandwidth, the absolute roof;
* **gather bandwidth** — ``np.take`` of random vector-sized rows from a
  table, i.e. the raw sparse-gather primitive the leaf ranks model;
* **engine effective rate** — unique gathered bytes per second achieved
  by the SoA engine end-to-end on the hot-path workload, which shows how
  far the *simulator* (tree bookkeeping, not data movement) sits beneath
  the machine's gather roof.

The qualitative shape asserted is the roofline ordering: copy ≥ gather ≥
engine-effective.  Absolute numbers are recorded in
``BENCH_roofline.json`` so the trajectory travels with the repo.

``FAFNIR_SMOKE=1`` shrinks the table, the gather count, and the engine
batch so the bench finishes in seconds on CI smoke runs.
"""

import os
import time

import numpy as np

from _common import append_trajectory, run_once, write_report
from repro.analysis import Table
from repro.core import FafnirConfig, FafnirEngine
from repro.memory import MemoryConfig

SMOKE = bool(int(os.environ.get("FAFNIR_SMOKE", "0")))

VECTOR_ELEMENTS = 128  # 512 B float32 vectors, the paper's reference shape
TABLE_ROWS = 20_000 if SMOKE else 200_000
GATHER_ROWS = 100_000 if SMOKE else 2_000_000
COPY_BYTES = (32 if SMOKE else 256) << 20
REPEATS = 2 if SMOKE else 3

ENGINE_QUERIES = 32 if SMOKE else 128
ENGINE_RANKS = 16 if SMOKE else 64
ENGINE_QUERY_LEN = 16 if SMOKE else 64
ENGINE_UNIVERSE = 1024 if SMOKE else 8192


def _best_seconds(fn, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _copy_ceiling():
    src = np.ones(COPY_BYTES // 8, dtype=np.float64)
    dst = np.empty_like(src)
    seconds = _best_seconds(lambda: np.copyto(dst, src))
    # One read + one write stream.
    return 2 * COPY_BYTES / seconds


def _gather_bandwidth():
    rng = np.random.default_rng(11)
    table = rng.standard_normal((TABLE_ROWS, VECTOR_ELEMENTS)).astype(
        np.float32
    )
    indices = rng.integers(0, TABLE_ROWS, GATHER_ROWS)
    out = np.empty((GATHER_ROWS, VECTOR_ELEMENTS), dtype=np.float32)
    seconds = _best_seconds(lambda: np.take(table, indices, axis=0, out=out))
    # Gathered reads + contiguous writes of the same volume.
    return 2 * GATHER_ROWS * VECTOR_ELEMENTS * 4 / seconds


def _engine_effective_rate():
    config = FafnirConfig(
        batch_size=ENGINE_QUERIES,
        max_query_len=ENGINE_QUERY_LEN,
        vector_bytes=VECTOR_ELEMENTS * 4,
        total_ranks=ENGINE_RANKS,
        ranks_per_leaf_pe=2,
        num_tables=ENGINE_RANKS,
    )
    memory = MemoryConfig().scaled_to_ranks(ENGINE_RANKS)
    rng = np.random.default_rng(7)
    queries = [
        rng.choice(ENGINE_UNIVERSE, size=ENGINE_QUERY_LEN, replace=False).tolist()
        for _ in range(ENGINE_QUERIES)
    ]
    vectors = {}
    for query in queries:
        for index in query:
            if index not in vectors:
                vectors[index] = rng.normal(size=VECTOR_ELEMENTS)
    engine = FafnirEngine(config=config, memory_config=memory, engine="soa")
    start = time.perf_counter()
    result = engine.run_batch(queries, vectors.__getitem__)
    seconds = time.perf_counter() - start
    gathered_bytes = len(vectors) * config.vector_bytes
    assert len(result.vectors) == ENGINE_QUERIES
    return gathered_bytes / seconds, gathered_bytes, seconds


def test_roofline_gather(benchmark):
    def experiment():
        copy_bw = _copy_ceiling()
        gather_bw = _gather_bandwidth()
        engine_bw, gathered_bytes, engine_s = _engine_effective_rate()
        return copy_bw, gather_bw, engine_bw, gathered_bytes, engine_s

    copy_bw, gather_bw, engine_bw, gathered_bytes, engine_s = run_once(
        benchmark, experiment
    )

    gib = float(1 << 30)
    table = Table(["tier", "GiB_per_s", "vs_copy_ceiling"])
    table.add_row(["copy ceiling", f"{copy_bw / gib:.2f}", "1.00×"])
    table.add_row(
        ["random gather", f"{gather_bw / gib:.2f}", f"{gather_bw / copy_bw:.2f}×"]
    )
    table.add_row(
        [
            "engine effective",
            f"{engine_bw / gib:.4f}",
            f"{engine_bw / copy_bw:.4f}×",
        ]
    )
    record = {
        "smoke": SMOKE,
        "copy_gib_s": round(copy_bw / gib, 3),
        "gather_gib_s": round(gather_bw / gib, 3),
        "engine_gib_s": round(engine_bw / gib, 5),
        "engine_wall_s": round(engine_s, 4),
        "engine_gathered_bytes": gathered_bytes,
        "config": {
            "vector_elements": VECTOR_ELEMENTS,
            "table_rows": TABLE_ROWS,
            "gather_rows": GATHER_ROWS,
            "engine_queries": ENGINE_QUERIES,
            "engine_ranks": ENGINE_RANKS,
        },
    }
    write_report("roofline_gather", table, record=record)
    append_trajectory("roofline", record)

    # Roofline ordering: each tier sits under the one above it.  The
    # functional simulator does orders of magnitude more bookkeeping per
    # byte than a memcpy, so the gaps are wide by construction — only
    # the ordering is load-bearing.
    assert copy_bw > gather_bw > engine_bw
