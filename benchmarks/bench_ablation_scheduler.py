"""Ablation — software batch scheduling policies (beyond the paper).

FAFNIR's dedup works within a hardware batch, so how the host groups a
query stream into batches changes the savings.  The paper uses arrival
order; this ablation compares it against a sharing-aware greedy grouping
over a bounded reorder window.
"""

import pytest

from _common import reference_tables, run_once, write_report
from repro.analysis import Table
from repro.workloads import FifoScheduler, QueryGenerator, SharingAwareScheduler

STREAM_LEN = 256
BATCH_SIZE = 32


def test_ablation_batch_scheduling(benchmark):
    tables = reference_tables()
    stream = QueryGenerator.paper_calibrated(tables, seed=31).batch(STREAM_LEN)

    def run():
        fifo = FifoScheduler(BATCH_SIZE).report(stream)
        aware_small = SharingAwareScheduler(BATCH_SIZE, window=64).report(stream)
        aware_large = SharingAwareScheduler(BATCH_SIZE, window=256).report(stream)
        return {
            "fifo (paper)": fifo,
            "sharing-aware w=64": aware_small,
            "sharing-aware w=256": aware_large,
        }

    reports = run_once(benchmark, run)

    table = Table(["policy", "dram_reads", "saved_%"])
    for policy, report in reports.items():
        table.add_row(
            [
                policy,
                report.total_reads,
                f"{100 * report.savings_fraction:.1f}",
            ]
        )
    write_report("ablation_scheduler", table)

    fifo = reports["fifo (paper)"]
    small = reports["sharing-aware w=64"]
    large = reports["sharing-aware w=256"]
    # Sharing-aware grouping never issues more reads than FIFO.
    assert small.total_reads <= fifo.total_reads
    assert large.total_reads <= fifo.total_reads
    # A larger reorder window can only help.
    assert large.total_reads <= small.total_reads
    # All policies schedule every query exactly once.
    for report in reports.values():
        assert sum(len(b) for b in report.batches) == STREAM_LEN
