"""Hot-path regression bench: vectorized PE kernels and the SoA sweep.

The PE compute units used to be pure-Python ``O(entries × partners)`` scan
loops; the NumPy kernels in ``repro.core.pe`` / ``repro.core.bitset``
replace them with sparse intersection-counting array operations, and the
level-synchronous SoA sweep (``repro.core.soa``) replaces the per-PE
object walk entirely.  This bench runs one 256-query, 64-rank batch
through each path, proves the outputs and all statistics are
byte-identical, and asserts the tracked speedup floors — so the speedups
are tracked like any other reproduced figure and a regression (someone
re-introducing a Python inner loop) fails CI.

The scalar pass is long (~1 min); the faster paths are timed repeatedly
and the best run is used, with competing configurations *interleaved* so
drifting host load biases every contestant equally rather than penalising
whichever ran last.  Headline numbers append to the repo-root
``BENCH_hotpath.json`` / ``BENCH_tracing.json`` trajectories.
"""

import os
import time

import numpy as np

from _common import append_trajectory, run_once, write_report
from repro.analysis import Table
from repro.core import FafnirConfig, FafnirEngine
from repro.memory import MemoryConfig
from repro.obs import ColumnarSink, InMemorySink, Tracer

QUERIES = 256
RANKS = 64
QUERY_LEN = 64
UNIVERSE = 8192
ELEMENTS = 128
# ≥5× is the tracked bar on a quiet host; shared CI runners may override
# the floor (FAFNIR_HOTPATH_MIN_SPEEDUP) — any re-introduced Python inner
# loop lands near 1× and still fails.
REQUIRED_SPEEDUP = float(os.environ.get("FAFNIR_HOTPATH_MIN_SPEEDUP", "5.0"))
# The SoA sweep's floor over the object vector path.  Measured ~1.3× on
# the reference container (the sweep's wins are concentrated in the tree
# walk; memory planning and host-side work are shared) — the floor sits
# below that so noise cannot fail it while a real regression (SoA falling
# back to per-object work) still does.
SOA_REQUIRED_SPEEDUP = float(os.environ.get("FAFNIR_SOA_MIN_SPEEDUP", "1.1"))
# Acceptance bound for in-memory tracing through the packed columnar sink.
TRACING_MAX_OVERHEAD = float(os.environ.get("FAFNIR_TRACING_MAX_OVERHEAD", "1.15"))
VECTOR_REPEATS = 2
SOA_REPEATS = 3


def _workload():
    config = FafnirConfig(
        batch_size=QUERIES,
        max_query_len=QUERY_LEN,
        vector_bytes=ELEMENTS * 4,
        total_ranks=RANKS,
        ranks_per_leaf_pe=2,
        num_tables=RANKS,
    )
    memory = MemoryConfig().scaled_to_ranks(RANKS)
    rng = np.random.default_rng(7)
    queries = [
        rng.choice(UNIVERSE, size=QUERY_LEN, replace=False).tolist()
        for _ in range(QUERIES)
    ]
    # Pre-filled so vector generation is not timed inside either kernel run.
    vectors = {}
    for query in queries:
        for index in query:
            if index not in vectors:
                vectors[index] = np.random.default_rng(10_000 + index).normal(
                    size=ELEMENTS
                )
    return config, memory, queries, vectors


def _run(kernel, config, memory, queries, vectors, tracer=None, engine="object"):
    instance = FafnirEngine(
        config=config,
        memory_config=memory,
        kernel=kernel,
        tracer=tracer,
        engine=engine,
    )
    start = time.perf_counter()
    result = instance.run_batch(queries, vectors.__getitem__)
    return time.perf_counter() - start, result


def test_engine_hotpath_speedup(benchmark):
    config, memory, queries, vectors = _workload()

    scalar_s, scalar = _run("scalar", config, memory, queries, vectors)

    def vector_run():
        return _run("vector", config, memory, queries, vectors)

    vector_s, vector = run_once(benchmark, vector_run)
    for _ in range(VECTOR_REPEATS - 1):
        repeat_s, _unused = vector_run()
        vector_s = min(vector_s, repeat_s)
    speedup = scalar_s / vector_s

    table = Table(["kernel", "wall_s", "speedup"])
    table.add_row(["scalar", f"{scalar_s:.3f}", "1.00×"])
    table.add_row(["vector", f"{vector_s:.3f}", f"{speedup:.2f}×"])
    write_report(
        "engine_hotpath",
        table,
        record={
            "config": _config_record(config),
            "scalar_wall_s": round(scalar_s, 4),
            "vector_wall_s": round(vector_s, 4),
            "speedup": round(speedup, 3),
        },
    )

    # Identical physics: same vectors (bit for bit), same timing, same work.
    assert len(scalar.vectors) == len(vector.vectors) == QUERIES
    for a, b in zip(scalar.vectors, vector.vectors):
        assert a.tobytes() == b.tobytes()
    assert scalar.stats.latency_pe_cycles == vector.stats.latency_pe_cycles
    assert scalar.stats.per_pe_work == vector.stats.per_pe_work

    assert speedup >= REQUIRED_SPEEDUP, (
        f"vector kernel only {speedup:.2f}× faster than scalar "
        f"({scalar_s:.3f}s vs {vector_s:.3f}s); required {REQUIRED_SPEEDUP}×"
    )


def _config_record(config):
    return {
        "batch_size": QUERIES,
        "query_len": QUERY_LEN,
        "ranks": RANKS,
        "universe": UNIVERSE,
        "vector_elements": ELEMENTS,
    }


def test_soa_engine_speedup(benchmark):
    """The level-synchronous SoA sweep vs the object-walk vector path.

    Both engines run the same batch; outputs, statuses, and every per-PE
    work counter must match bit for bit (the differential harness pins
    the trace streams too).  Timing interleaves object/SoA pairs and
    compares min against min, so the reference container's drifting load
    cannot bias one side.  The measured speedup lands in
    ``BENCH_hotpath.json``; the floor only guards against the sweep
    regressing to object-path speed.
    """
    config, memory, queries, vectors = _workload()

    object_s = soa_s = None
    object_res = soa_res = None

    def paired_run():
        nonlocal object_s, soa_s, object_res, soa_res
        for _ in range(SOA_REPEATS):
            seconds, object_res = _run("vector", config, memory, queries, vectors)
            object_s = seconds if object_s is None else min(object_s, seconds)
            seconds, soa_res = _run(
                "vector", config, memory, queries, vectors, engine="soa"
            )
            soa_s = seconds if soa_s is None else min(soa_s, seconds)

    run_once(benchmark, paired_run)
    speedup = object_s / soa_s

    table = Table(["engine", "wall_s", "speedup"])
    table.add_row(["object (vector)", f"{object_s:.3f}", "1.00×"])
    table.add_row(["soa", f"{soa_s:.3f}", f"{speedup:.2f}×"])
    record = {
        "config": _config_record(config),
        "object_wall_s": round(object_s, 4),
        "soa_wall_s": round(soa_s, 4),
        "speedup": round(speedup, 3),
    }
    write_report("engine_soa_speedup", table, record=record)
    append_trajectory("hotpath", record)

    assert len(object_res.vectors) == len(soa_res.vectors) == QUERIES
    for a, b in zip(object_res.vectors, soa_res.vectors):
        assert a.tobytes() == b.tobytes()
    assert object_res.stats.latency_pe_cycles == soa_res.stats.latency_pe_cycles
    assert object_res.stats.per_pe_work == soa_res.stats.per_pe_work
    assert object_res.query_statuses == soa_res.query_statuses

    assert speedup >= SOA_REQUIRED_SPEEDUP, (
        f"SoA sweep only {speedup:.2f}× over the object vector path "
        f"({object_s:.3f}s vs {soa_s:.3f}s); required {SOA_REQUIRED_SPEEDUP}×"
    )


def test_tracing_disabled_no_overhead(benchmark):
    """The speedup floors above are measured with tracing disabled — this
    guard checks that state really is free, and bounds the cost of
    recording through the packed columnar sink.

    Every emit site is behind an ``if tracer.enabled`` test, so an engine
    with a *disabled* tracer must (a) record nothing and (b) run at the
    same speed as the default ``NULL_TRACER`` engine.  The reference
    host's load drifts within a process, so absolute wall clocks are not
    comparable across positions in the run sequence — the earlier
    sequential layout timed the baseline first, which made the disabled
    path look ~2% slower than null when the code paths are instruction-
    identical.  Each contestant run is therefore *bracketed* by null
    runs and scored as a ratio against the mean of its neighbours; the
    best ratio across rounds carries the assertion.  The object
    in-memory sink is reported for information only; the columnar sink
    carries the tracked overhead bound.
    """
    config, memory, queries, vectors = _workload()
    repeats = 2

    def disabled_tracer():
        tracer = Tracer([])
        assert not tracer.enabled
        return tracer

    contestants = [
        ("disabled", disabled_tracer),
        ("columnar", lambda: Tracer([ColumnarSink()])),
        ("in-memory", lambda: Tracer([InMemorySink()])),
    ]
    ratios = {name: [] for name, _ in contestants}
    walls = {name: [] for name, _ in contestants}
    null_walls = []
    results = {}
    last_tracer = {}

    def timed(tracer=None):
        return _run(
            "vector", config, memory, queries, vectors, tracer, engine="soa"
        )

    def bracketed_rounds():
        # Untimed warm-up: the first batch a process runs pays page
        # faults and allocator growth that later runs don't — without
        # this, whoever runs first looks fastest by a wide margin.
        timed()
        for _ in range(repeats):
            null_s, results["null"] = timed()
            null_walls.append(null_s)
            for name, factory in contestants:
                tracer = factory()
                seconds, results[name] = timed(tracer)
                last_tracer[name] = tracer
                walls[name].append(seconds)
                after_s, _unused = timed()
                null_walls.append(after_s)
                ratios[name].append(seconds / ((null_s + after_s) / 2))
                null_s = after_s

    run_once(benchmark, bracketed_rounds)
    baseline_s = min(null_walls)
    overhead = {name: min(values) for name, values in ratios.items()}

    table = Table(["tracer", "wall_s", "vs_neighbouring_null"])
    table.add_row(["null (default)", f"{baseline_s:.3f}", "1.00×"])
    for name, label in [
        ("disabled", "disabled"),
        ("columnar", "columnar sink"),
        ("in-memory", "in-memory sink"),
    ]:
        table.add_row(
            [label, f"{min(walls[name]):.3f}", f"{overhead[name]:.2f}×"]
        )
    record = {
        "config": _config_record(config),
        "null_wall_s": round(baseline_s, 4),
        "disabled_wall_s": round(min(walls["disabled"]), 4),
        "columnar_wall_s": round(min(walls["columnar"]), 4),
        "inmemory_wall_s": round(min(walls["in-memory"]), 4),
        "columnar_overhead": round(overhead["columnar"], 3),
        "disabled_overhead": round(overhead["disabled"], 3),
        "inmemory_overhead": round(overhead["in-memory"], 3),
    }
    write_report("engine_tracing_overhead", table, record=record)
    append_trajectory("tracing", record)

    # Identical physics regardless of tracer state.
    for name in ("disabled", "columnar", "in-memory"):
        for a, b in zip(results["null"].vectors, results[name].vectors):
            assert a.tobytes() == b.tobytes()
        assert (
            results["null"].stats.latency_pe_cycles
            == results[name].stats.latency_pe_cycles
        )
    columnar_sink = last_tracer["columnar"].sinks[0]
    object_sink = last_tracer["in-memory"].sinks[0]
    assert len(columnar_sink) and object_sink.events, "tracers recorded nothing"
    assert columnar_sink.to_events() == object_sink.events

    # Disabled tracing costs nothing measurable: neighbour-normalized
    # ratios, so only genuine per-event work can separate the two.
    assert overhead["disabled"] <= 1.05, (
        f"disabled tracer ran {overhead['disabled']:.2f}× its neighbouring "
        "null runs — the no-op path is no longer free"
    )
    assert overhead["columnar"] <= TRACING_MAX_OVERHEAD, (
        f"columnar-sink tracing cost {overhead['columnar']:.2f}× vs "
        f"neighbouring null runs; bound {TRACING_MAX_OVERHEAD}×"
    )
