"""Hot-path regression bench: vectorized PE kernels vs the scalar path.

The PE compute units used to be pure-Python ``O(entries × partners)`` scan
loops; the NumPy kernels in ``repro.core.pe`` / ``repro.core.bitset``
replace them with sparse intersection-counting array operations.  This
bench runs one 256-query, 64-rank batch through both kernels, proves the
outputs and all statistics are byte-identical, and asserts the vector path
is at least 5× faster — so the speedup is tracked like any other
reproduced figure and a regression (someone re-introducing a Python inner
loop) fails CI.

The scalar pass is long (~1 min); the vector pass is timed twice and the
faster run is used, so a scheduler hiccup on a loaded host cannot fail the
assertion by inflating a single measurement.
"""

import os
import time

import numpy as np

from _common import run_once, write_report
from repro.analysis import Table
from repro.core import FafnirConfig, FafnirEngine
from repro.memory import MemoryConfig
from repro.obs import InMemorySink, Tracer

QUERIES = 256
RANKS = 64
QUERY_LEN = 64
UNIVERSE = 8192
ELEMENTS = 128
# ≥5× is the tracked bar on a quiet host; shared CI runners may override
# the floor (FAFNIR_HOTPATH_MIN_SPEEDUP) — any re-introduced Python inner
# loop lands near 1× and still fails.
REQUIRED_SPEEDUP = float(os.environ.get("FAFNIR_HOTPATH_MIN_SPEEDUP", "5.0"))
VECTOR_REPEATS = 2


def _workload():
    config = FafnirConfig(
        batch_size=QUERIES,
        max_query_len=QUERY_LEN,
        vector_bytes=ELEMENTS * 4,
        total_ranks=RANKS,
        ranks_per_leaf_pe=2,
        num_tables=RANKS,
    )
    memory = MemoryConfig().scaled_to_ranks(RANKS)
    rng = np.random.default_rng(7)
    queries = [
        rng.choice(UNIVERSE, size=QUERY_LEN, replace=False).tolist()
        for _ in range(QUERIES)
    ]
    # Pre-filled so vector generation is not timed inside either kernel run.
    vectors = {}
    for query in queries:
        for index in query:
            if index not in vectors:
                vectors[index] = np.random.default_rng(10_000 + index).normal(
                    size=ELEMENTS
                )
    return config, memory, queries, vectors


def _run(kernel, config, memory, queries, vectors, tracer=None):
    engine = FafnirEngine(
        config=config, memory_config=memory, kernel=kernel, tracer=tracer
    )
    start = time.perf_counter()
    result = engine.run_batch(queries, vectors.__getitem__)
    return time.perf_counter() - start, result


def test_engine_hotpath_speedup(benchmark):
    config, memory, queries, vectors = _workload()

    scalar_s, scalar = _run("scalar", config, memory, queries, vectors)

    def vector_run():
        return _run("vector", config, memory, queries, vectors)

    vector_s, vector = run_once(benchmark, vector_run)
    for _ in range(VECTOR_REPEATS - 1):
        repeat_s, _unused = vector_run()
        vector_s = min(vector_s, repeat_s)
    speedup = scalar_s / vector_s

    table = Table(["kernel", "wall_s", "speedup"])
    table.add_row(["scalar", f"{scalar_s:.3f}", "1.00×"])
    table.add_row(["vector", f"{vector_s:.3f}", f"{speedup:.2f}×"])
    write_report("engine_hotpath", table.render())

    # Identical physics: same vectors (bit for bit), same timing, same work.
    assert len(scalar.vectors) == len(vector.vectors) == QUERIES
    for a, b in zip(scalar.vectors, vector.vectors):
        assert a.tobytes() == b.tobytes()
    assert scalar.stats.latency_pe_cycles == vector.stats.latency_pe_cycles
    assert scalar.stats.per_pe_work == vector.stats.per_pe_work

    assert speedup >= REQUIRED_SPEEDUP, (
        f"vector kernel only {speedup:.2f}× faster than scalar "
        f"({scalar_s:.3f}s vs {vector_s:.3f}s); required {REQUIRED_SPEEDUP}×"
    )


def test_tracing_disabled_no_overhead(benchmark):
    """The speedup floor above is measured with tracing disabled — this
    guard checks that state really is free.

    Every emit site is behind an ``if tracer.enabled`` test, so an engine
    with a *disabled* tracer must (a) record nothing and (b) run at the
    same speed as the default ``NULL_TRACER`` engine, min-of-N against
    min-of-N so a scheduler hiccup cannot fail the comparison.  The
    enabled-tracer pass is reported for information only: the events a
    run emits are allowed to cost something.
    """
    config, memory, queries, vectors = _workload()
    repeats = 3

    def best_of(tracer_factory):
        best = None
        result = None
        for _ in range(repeats):
            seconds, result = _run(
                "vector", config, memory, queries, vectors, tracer_factory()
            )
            best = seconds if best is None else min(best, seconds)
        return best, result

    baseline_s, baseline = run_once(
        benchmark, lambda: best_of(lambda: None)
    )

    def disabled_tracer():
        tracer = Tracer([])
        assert not tracer.enabled
        return tracer

    disabled_s, disabled = best_of(disabled_tracer)

    sink = InMemorySink()
    traced_s, traced = _run(
        "vector", config, memory, queries, vectors, Tracer([sink])
    )

    table = Table(["tracer", "wall_s", "vs_baseline"])
    table.add_row(["null (default)", f"{baseline_s:.3f}", "1.00×"])
    table.add_row(
        ["disabled", f"{disabled_s:.3f}", f"{disabled_s / baseline_s:.2f}×"]
    )
    table.add_row(
        ["in-memory sink", f"{traced_s:.3f}", f"{traced_s / baseline_s:.2f}×"]
    )
    write_report("engine_tracing_overhead", table.render())

    # Identical physics regardless of tracer state.
    for a, b in zip(baseline.vectors, disabled.vectors):
        assert a.tobytes() == b.tobytes()
    for a, b in zip(baseline.vectors, traced.vectors):
        assert a.tobytes() == b.tobytes()
    assert baseline.stats.latency_pe_cycles == traced.stats.latency_pe_cycles
    # Disabled tracing costs nothing measurable (generous bound: timing
    # noise on shared runners, not a perf target).
    assert sink.events, "enabled tracer recorded no events"
    assert disabled_s <= 1.25 * baseline_s, (
        f"disabled tracer run took {disabled_s:.3f}s vs {baseline_s:.3f}s "
        "baseline — the no-op path is no longer free"
    )
