"""Table IV — compute-unit latencies and the PE critical path @200 MHz.

Paper: compare 12 cycles, reduce(value) 4, reduce(header) 16, forward 2;
reduce and forward are parallel paths, so the critical path is governed by
compare + reduce.  This bench verifies the configured model and measures the
simulator's actual per-PE stage behaviour against it.
"""

import numpy as np

from _common import run_once, write_report
from repro.analysis import Table
from repro.core import (
    FafnirConfig,
    Header,
    Message,
    ProcessingElement,
    SUM,
)


def test_table4_compute_unit_latencies(benchmark):
    config = FafnirConfig()
    latencies = config.latencies

    def run():
        pe = ProcessingElement(config, SUM)
        reduce_in_a = Message(Header.make({1}, [{2}]), np.zeros(128), ready_cycle=0)
        reduce_in_b = Message(Header.make({2}, [{1}]), np.zeros(128), ready_cycle=0)
        reduced = pe.process([reduce_in_a], [reduce_in_b]).outputs
        reduce_latency = max(m.ready_cycle for m in reduced)
        forward_in = Message(Header.make({3}, [{9}]), np.zeros(128), ready_cycle=0)
        forwarded = pe.process([forward_in], []).outputs
        forward_latency = forwarded[0].ready_cycle
        return reduce_latency, forward_latency

    reduce_latency, forward_latency = run_once(benchmark, run)

    table = Table(["operation", "cycles", "paper_cycles"])
    table.add_row(["compare", latencies.compare, 12])
    table.add_row(["reduce (value)", latencies.reduce_value, 4])
    table.add_row(["reduce (header)", latencies.reduce_header, 16])
    table.add_row(["forward", latencies.forward, 2])
    table.add_row(["reduce path (measured)", reduce_latency, "compare+16"])
    table.add_row(["forward path (measured)", forward_latency, "compare+2"])
    write_report("table4_latency", table)

    assert latencies.compare == 12
    assert latencies.reduce_value == 4
    assert latencies.reduce_header == 16
    assert latencies.forward == 2
    # Critical path: reduce is the slower parallel branch after compare.
    assert latencies.critical_path == latencies.reduce_path == 28
    assert reduce_latency == latencies.reduce_path
    assert forward_latency == latencies.forward_path
    # At 200 MHz one PE stage is 140 ns.
    assert config.pe_clock.cycles_to_ns(latencies.critical_path) == 140.0
