"""Ablation — sensitivity of FAFNIR's dedup benefit to popularity skew.

FAFNIR's redundant-access elimination (Fig. 13 striped bars, Fig. 15) only
pays off when queries share indices.  This sweep varies the Zipf exponent of
the synthetic trace from uniform (no sharing) to heavily skewed and
measures both the access savings and the resulting speedup of dedup.
"""

import numpy as np
import pytest

from _common import reference_tables, run_once, write_report
from repro.analysis import Table
from repro.baselines import FafnirGatherEngine
from repro.core import FafnirConfig
from repro.workloads import QueryGenerator

SKEWS = (0.0, 0.8, 1.65, 2.5)


def test_ablation_zipf_skew(benchmark):
    tables = reference_tables()

    def run():
        rows = {}
        for skew in SKEWS:
            generator = QueryGenerator(
                tables, skew=skew, hot_rows=48, seed=9
            )
            batch = generator.batch(32)
            config = FafnirConfig(batch_size=32)
            with_dedup = FafnirGatherEngine(config=config).lookup(
                batch, tables.vector
            )
            without = FafnirGatherEngine(
                config=config, deduplicate=False
            ).lookup(batch, tables.vector)
            total_lookups = sum(len(set(q)) for q in batch)
            rows[skew] = {
                "saving": 1.0 - with_dedup.dram_reads / total_lookups,
                "dedup_speedup": without.total_ns / with_dedup.total_ns,
            }
        return rows

    rows = run_once(benchmark, run)

    table = Table(["zipf_skew", "accesses_saved_%", "dedup_speedup"])
    for skew in SKEWS:
        table.add_row(
            [
                skew,
                f"{100 * rows[skew]['saving']:.1f}",
                f"{rows[skew]['dedup_speedup']:.2f}×",
            ]
        )
    write_report("ablation_skew", table)

    savings = [rows[skew]["saving"] for skew in SKEWS]
    # Savings grow monotonically with skew; uniform traffic saves ~nothing.
    assert savings == sorted(savings)
    assert savings[0] < 0.05
    assert savings[-1] > 0.5
    # Dedup never hurts.
    assert all(rows[skew]["dedup_speedup"] >= 0.95 for skew in SKEWS)
