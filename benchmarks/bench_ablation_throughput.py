"""Ablation — batch pipelining: latency metric vs throughput metric.

The paper's Fig. 13 speedups are throughput-flavoured: under load FAFNIR
overlaps batch k+1's DRAM reads with batch k's tree traversal.  This bench
quantifies how much the pipelined (steady-state) cost per batch undercuts
the end-to-end latency our other benches report — the effect behind the
magnitude gap documented in EXPERIMENTS.md.
"""

import pytest

from _common import reference_tables, run_once, write_report
from repro.analysis import Table
from repro.core import FafnirConfig, FafnirEngine, simulate_stream
from repro.workloads import QueryGenerator

BATCH_SIZES = (8, 16, 32)
STREAM_BATCHES = 6


def test_ablation_throughput_pipelining(benchmark):
    tables = reference_tables()

    def run():
        rows = {}
        for batch_size in BATCH_SIZES:
            generator = QueryGenerator.paper_calibrated(tables, seed=21)
            engine = FafnirEngine(FafnirConfig(batch_size=batch_size))
            batches = [generator.batch(batch_size) for _ in range(STREAM_BATCHES)]
            pipeline = simulate_stream(engine, batches, tables.vector)
            rows[batch_size] = {
                "serial": pipeline.serial_cycles,
                "pipelined": pipeline.pipelined_cycles,
                "speedup": pipeline.pipeline_speedup,
                "steady": pipeline.steady_state_cycles_per_batch(),
                "qps": pipeline.queries_per_second(batch_size),
            }
        return rows

    rows = run_once(benchmark, run)

    table = Table(
        ["batch", "serial_cycles", "pipelined_cycles", "pipeline_speedup", "Mqueries/s"]
    )
    for batch_size in BATCH_SIZES:
        row = rows[batch_size]
        table.add_row(
            [
                batch_size,
                row["serial"],
                row["pipelined"],
                f"{row['speedup']:.2f}×",
                f"{row['qps'] / 1e6:.2f}",
            ]
        )
    write_report("ablation_throughput", table)

    # Pipelining always helps, and throughput (queries/s) grows with batch
    # size — the paper's scalability claim in throughput terms.
    for batch_size in BATCH_SIZES:
        assert rows[batch_size]["speedup"] > 1.1
    qps = [rows[b]["qps"] for b in BATCH_SIZES]
    assert qps == sorted(qps)
    # Steady-state cost per batch is below the full latency.
    for batch_size in BATCH_SIZES:
        assert rows[batch_size]["steady"] < rows[batch_size]["serial"] / STREAM_BATCHES
