"""Shared helpers for the benchmark harness.

Every bench reproduces one table or figure of the paper: it runs the
experiment once inside pytest-benchmark, prints the reproduced rows, writes
them to ``benchmarks/out/<name>.txt`` (consumed by EXPERIMENTS.md) plus a
machine-readable ``benchmarks/out/<name>.json`` record, and asserts the
paper's qualitative shape.

Perf-tracking benches additionally append their headline numbers to a
repo-root ``BENCH_<name>.json`` trajectory via :func:`append_trajectory`,
so the measured history travels with the code (see benchmarks/README.md,
"Bench JSON convention").
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import subprocess
from typing import Optional, Union

from repro.analysis import Table
from repro.workloads import EmbeddingTableSet, QueryGenerator

OUT_DIR = pathlib.Path(__file__).parent / "out"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def bench_meta() -> dict:
    """Provenance stamped on every JSON record.

    CI runners pin ``FAFNIR_BENCH_REV`` / ``FAFNIR_BENCH_DATE`` in the
    environment; local runs fall back to ``git rev-parse`` and today.
    """
    rev = os.environ.get("FAFNIR_BENCH_REV")
    if not rev:
        try:
            rev = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
        except OSError:
            rev = ""
    date = os.environ.get("FAFNIR_BENCH_DATE") or datetime.date.today().isoformat()
    return {"rev": rev or "unknown", "date": date}


def write_report(
    name: str,
    table: Union[Table, str],
    record: Optional[dict] = None,
) -> None:
    """Persist a bench's reproduced table for EXPERIMENTS.md assembly.

    Given a :class:`~repro.analysis.Table` (preferred) the rendered text
    goes to ``out/<name>.txt`` and the header-keyed rows, provenance
    (git rev + date), and any extra ``record`` fields go to
    ``out/<name>.json``.  A plain string still writes both files, just
    without the ``rows`` key.
    """
    OUT_DIR.mkdir(exist_ok=True)
    if isinstance(table, Table):
        text = table.render()
        payload = {"bench": name, **bench_meta(), "rows": table.records()}
    else:
        text = table
        payload = {"bench": name, **bench_meta()}
    if record:
        payload.update(record)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    (OUT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\n{text}")


def append_trajectory(name: str, record: dict) -> dict:
    """Append one measurement to the repo-root ``BENCH_<name>.json`` file.

    The trajectory is a JSON list ordered oldest-first, one entry per
    git revision (re-running at the same rev replaces that entry rather
    than duplicating it), each entry carrying the provenance fields of
    :func:`bench_meta` plus the bench's headline numbers.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    entries = json.loads(path.read_text()) if path.exists() else []
    payload = {"bench": name, **bench_meta(), **record}
    entries = [e for e in entries if e.get("rev") != payload["rev"]]
    entries.append(payload)
    path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    return payload


def reference_tables(seed: int = 0) -> EmbeddingTableSet:
    """The evaluation's table set: 32 tables × 100 K rows × 512 B vectors."""
    return EmbeddingTableSet(
        num_tables=32, rows_per_table=100_000, vector_elements=128, seed=seed
    )


def calibrated_batch(tables: EmbeddingTableSet, batch_size: int, seed: int = 2):
    """One paper-calibrated batch (Zipfian sharing, q = 16)."""
    return QueryGenerator.paper_calibrated(tables, seed=seed).batch(batch_size)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def traced_run_batch(config, batch, source, deduplicate=True, kernel="vector"):
    """Run one batch with an in-memory tracer; returns (engine, result, events)."""
    from repro.core import FafnirEngine
    from repro.obs import InMemorySink, Tracer

    sink = InMemorySink()
    engine = FafnirEngine(config=config, kernel=kernel, tracer=Tracer([sink]))
    result = engine.run_batch(batch, source, deduplicate=deduplicate)
    return engine, result, sink.events


def assert_trace_matches_stats(engine, result, events):
    """Event stream and ``LookupStats`` must agree — they are independent
    observers of the same run (per-level reduce counts, DRAM completions,
    query completions), so any drift means one of them is lying."""
    from repro.core.stats import tree_utilization
    from repro.obs import MEM_READ_COMPLETE, QUERY_COMPLETE, per_level_counts

    utilization = tree_utilization(
        engine.tree, result.stats, engine.memory.config.geometry
    )
    event_levels = per_level_counts(events)
    for level in utilization.levels:
        assert event_levels.get(level.level, 0) == level.work.reduces, level.level
    mem_completions = sum(1 for e in events if e.kind == MEM_READ_COMPLETE)
    assert mem_completions == result.stats.memory.reads
    completed = sum(1 for e in events if e.kind == QUERY_COMPLETE)
    assert completed == len(result.plan.queries)
