"""Shared helpers for the benchmark harness.

Every bench reproduces one table or figure of the paper: it runs the
experiment once inside pytest-benchmark, prints the reproduced rows, writes
them to ``benchmarks/out/<name>.txt`` (consumed by EXPERIMENTS.md), and
asserts the paper's qualitative shape.
"""

from __future__ import annotations

import pathlib

from repro.workloads import EmbeddingTableSet, QueryGenerator

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_report(name: str, text: str) -> None:
    """Persist a bench's reproduced table for EXPERIMENTS.md assembly."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


def reference_tables(seed: int = 0) -> EmbeddingTableSet:
    """The evaluation's table set: 32 tables × 100 K rows × 512 B vectors."""
    return EmbeddingTableSet(
        num_tables=32, rows_per_table=100_000, vector_elements=128, seed=seed
    )


def calibrated_batch(tables: EmbeddingTableSet, batch_size: int, seed: int = 2):
    """One paper-calibrated batch (Zipfian sharing, q = 16)."""
    return QueryGenerator.paper_calibrated(tables, seed=seed).batch(batch_size)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def traced_run_batch(config, batch, source, deduplicate=True, kernel="vector"):
    """Run one batch with an in-memory tracer; returns (engine, result, events)."""
    from repro.core import FafnirEngine
    from repro.obs import InMemorySink, Tracer

    sink = InMemorySink()
    engine = FafnirEngine(config=config, kernel=kernel, tracer=Tracer([sink]))
    result = engine.run_batch(batch, source, deduplicate=deduplicate)
    return engine, result, sink.events


def assert_trace_matches_stats(engine, result, events):
    """Event stream and ``LookupStats`` must agree — they are independent
    observers of the same run (per-level reduce counts, DRAM completions,
    query completions), so any drift means one of them is lying."""
    from repro.core.stats import tree_utilization
    from repro.obs import MEM_READ_COMPLETE, QUERY_COMPLETE, per_level_counts

    utilization = tree_utilization(
        engine.tree, result.stats, engine.memory.config.geometry
    )
    event_levels = per_level_counts(events)
    for level in utilization.levels:
        assert event_levels.get(level.level, 0) == level.work.reduces, level.level
    mem_completions = sum(1 for e in events if e.kind == MEM_READ_COMPLETE)
    assert mem_completions == result.stats.memory.reads
    completed = sum(1 for e in events if e.kind == QUERY_COMPLETE)
    assert completed == len(result.plan.queries)
