"""Fig. 14 — FAFNIR vs the Two-Step algorithm on SpMV workloads.

Paper claims: FAFNIR runs SpMV-based sparse problems 1.1–4.6× faster than
Two-Step with no hardware modification; small matrices (few merge
iterations) benefit most, while large merge-dominated inputs approach
parity.  FAFNIR wins step 1 (in-stream multiply, no decompression or
intermediate write-out); Two-Step wins the merge iterations.
"""

from _common import run_once, write_report
from repro.experiments import get_experiment


def test_fig14_spmv_speedup(benchmark):
    result = run_once(benchmark, get_experiment("fig14").run)
    write_report("fig14_spmv_speedup", result.table)

    rows = result.data["rows"]
    speedups = [row["speedup"] for row in rows]
    # Paper band: 1.1× (worst) to 4.6× (best); allow modest slack.
    assert min(speedups) > 1.0
    assert max(speedups) < 6.0
    assert max(speedups) > 2.5
    # FAFNIR always wins step 1; Two-Step always wins the merge per byte.
    for row in rows:
        assert row["fafnir_step1"] < row["twostep_step1"], row["name"]
        if row["merge_iterations"] > 0:
            assert row["fafnir_merge"] > row["twostep_merge"], row["name"]
    # No-merge workloads sit at the top of the speedup range.
    no_merge = [r["speedup"] for r in rows if r["merge_iterations"] == 0]
    merged = [r["speedup"] for r in rows if r["merge_iterations"] > 0]
    assert min(no_merge) > max(merged) * 0.9
