"""Table V — FPGA resource utilization on the XCVU9P.

Paper: the full system (four DIMM/rank nodes + one channel node) uses up to
5 % LUTs, 0.15 % LUTRAMs, 1 % FFs and 13 % BRAM.
"""

from _common import run_once, write_report
from repro.analysis import Table
from repro.core import FafnirConfig
from repro.hw import pe_utilization, system_utilization

PAPER_BOUNDS = {"lut": 5.0, "lutram": 0.15, "ff": 1.0, "bram": 13.0}


def test_table5_fpga_utilization(benchmark):
    def run():
        return {
            "system": system_utilization(FafnirConfig()).utilization_percent,
            "pe": pe_utilization(1).utilization_percent,
            "dimm_rank_node": pe_utilization(7).utilization_percent,
            "channel_node": pe_utilization(3).utilization_percent,
        }

    utilization = run_once(benchmark, run)

    table = Table(["unit", "lut_%", "lutram_%", "ff_%", "bram_%"])
    for unit, numbers in utilization.items():
        table.add_row(
            [
                unit,
                f"{numbers['lut']:.2f}",
                f"{numbers['lutram']:.3f}",
                f"{numbers['ff']:.2f}",
                f"{numbers['bram']:.2f}",
            ]
        )
    write_report("table5_fpga", table)

    system = utilization["system"]
    for resource, bound in PAPER_BOUNDS.items():
        assert system[resource] <= bound * 1.05, resource
    # The whole tree comfortably fits one XCVU9P.
    assert system_utilization().fits()
