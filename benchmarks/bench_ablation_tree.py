"""Ablation — PE-to-rank ratio (1PE:1R vs 1PE:2R vs 1PE:4R).

The paper fixes 1PE:2R but notes other scales are implementable (§IV-B).
This ablation measures the latency/area trade: fewer leaves mean fewer PEs
(less area) but deeper per-leaf FIFO folding and less leaf-level
parallelism.
"""

import pytest

from _common import calibrated_batch, reference_tables, run_once, write_report
from repro.analysis import Table
from repro.core import FafnirConfig, FafnirEngine
from repro.hw import PE_AREA_MM2


def test_ablation_pe_rank_ratio(benchmark):
    tables = reference_tables()
    batch = calibrated_batch(tables, batch_size=16)

    def run():
        rows = {}
        for ranks_per_leaf in (1, 2, 4):
            config = FafnirConfig(
                batch_size=16, ranks_per_leaf_pe=ranks_per_leaf
            )
            engine = FafnirEngine(config)
            result = engine.run_batch(batch, tables.vector)
            rows[ranks_per_leaf] = {
                "latency_cycles": result.stats.latency_pe_cycles,
                "num_pes": config.num_pes,
                "levels": config.tree_levels,
            }
        return rows

    rows = run_once(benchmark, run)

    table = Table(["PE:rank", "PEs", "levels", "latency_cycles", "area_mm2"])
    for ratio, row in rows.items():
        table.add_row(
            [
                f"1PE:{ratio}R",
                row["num_pes"],
                row["levels"],
                row["latency_cycles"],
                f"{row['num_pes'] * PE_AREA_MM2:.2f}",
            ]
        )
    write_report("ablation_tree", table)

    # More ranks per leaf → fewer PEs (less area), shallower tree.
    assert rows[1]["num_pes"] > rows[2]["num_pes"] > rows[4]["num_pes"]
    assert rows[1]["levels"] > rows[4]["levels"]
    # All configurations complete the batch (latency finite and ordered
    # within a sane envelope — deeper folding should not explode latency).
    for row in rows.values():
        assert 0 < row["latency_cycles"] < 100_000
