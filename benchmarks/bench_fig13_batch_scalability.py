"""Fig. 13 — speedup over RecNMP as batch size grows (8/16/32).

Paper claims:

* FAFNIR's speedup over RecNMP grows with batch size (3.1/6.7/12.3× without
  redundant-access elimination on either side);
* eliminating redundant accesses adds extra speedup (striped bars) even
  against RecNMP with ideal 128 KB rank caches (combined 9.9/15.4/21.3×);
* RecNMP itself is faster than TensorDIMM.

Our latency-based harness reproduces the ordering and the growth trend;
absolute factors are compressed relative to the paper's
throughput-flavoured measurement (see EXPERIMENTS.md).
"""

from _common import (
    assert_trace_matches_stats,
    calibrated_batch,
    reference_tables,
    run_once,
    traced_run_batch,
    write_report,
)
from repro.core import FafnirConfig
from repro.experiments import get_experiment


def test_fig13_batch_scalability(benchmark):
    result = run_once(benchmark, get_experiment("fig13").run)
    write_report("fig13_batch_scalability", result.table)

    raw = result.data["raw"]
    batch_sizes = result.data["batch_sizes"]
    no_dedup = [raw[b]["recnmp"] / raw[b]["fafnir_no_dedup"] for b in batch_sizes]
    full = [raw[b]["recnmp_cache"] / raw[b]["fafnir"] for b in batch_sizes]

    # FAFNIR beats RecNMP at every batch size.
    assert all(s > 1.5 for s in no_dedup)
    # The non-dedup ablation pays for each redundant read's own completion,
    # so it can never be faster than full FAFNIR.
    for batch_size in batch_sizes:
        assert raw[batch_size]["fafnir_no_dedup"] >= raw[batch_size]["fafnir"]
    # Speedup grows with batch size (the scalability claim).
    assert no_dedup == sorted(no_dedup)
    assert full == sorted(full)
    # Redundant-access elimination adds extra speedup at every batch size.
    for batch_size, s_no_dedup, s_full in zip(batch_sizes, no_dedup, full):
        assert s_full > s_no_dedup, batch_size
    # RecNMP beats TensorDIMM everywhere.
    for batch_size in batch_sizes:
        assert raw[batch_size]["tensordimm"] > raw[batch_size]["recnmp"]


def test_fig13_trace_matches_stats():
    """The figure's batched configuration, traced with and without
    deduplication: the cross-check must hold on the ablation too (each
    redundant read emits its own DRAM completion and leaf inject)."""
    tables = reference_tables()
    batch = calibrated_batch(tables, 8)
    for deduplicate in (True, False):
        engine, result, events = traced_run_batch(
            FafnirConfig(batch_size=8), batch, tables.vector,
            deduplicate=deduplicate,
        )
        assert events
        assert_trace_matches_stats(engine, result, events)
