"""Make benchmarks importable as a flat directory (shared _common helpers)."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
