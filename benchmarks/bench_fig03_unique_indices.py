"""Fig. 3 — percentage of unique indices in batches of queries.

Paper claim: batches share indices, and the unique fraction falls as batch
size grows — the opportunity FAFNIR's batch mechanism exploits.
"""

from _common import run_once, write_report
from repro.experiments import get_experiment


def test_fig03_unique_indices(benchmark):
    result = run_once(benchmark, get_experiment("fig03").run)
    write_report("fig03_unique_indices", result.table)

    stats = result.data["stats"]
    fractions = [entry.mean_unique_fraction for entry in stats]
    # Monotonically more sharing with larger batches.
    assert all(a > b for a, b in zip(fractions, fractions[1:]))
    # Calibration anchors (paper Fig. 15 savings 34/43/58 % at B=8/16/32).
    by_batch = {entry.batch_size: entry.mean_savings for entry in stats}
    assert abs(by_batch[8] - 0.34) < 0.10
    assert abs(by_batch[16] - 0.43) < 0.10
    assert abs(by_batch[32] - 0.58) < 0.10
