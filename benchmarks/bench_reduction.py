"""Cross-shard reduction sweep: schedule cost vs shard count, verified.

FAFNIR's on-package tree stops at the node boundary; at multi-node scale
the per-shard partials ride a second-level reduction schedule over an
inter-node link (src/repro/comm/).  This bench sweeps the three schedules
over shard counts on the paper's 32-rank configuration and records the
collective-cost crossover the topology predicts:

* gather-to-root serializes S−1 messages into the root's ingress, so its
  comm cycles grow linearly with the shard count;
* recursive-doubling runs log2(S) pair-parallel rounds, so it overtakes
  gather as S grows — by 8 shards the butterfly must win on modeled
  cycles (the acceptance criterion this bench enforces);
* reduce-scatter + allgather pays 2·log2(S) half-sized steps — more steps
  but smaller messages, the bandwidth-bound regime's schedule.

Every cell is verified byte-identical to the single-node engine before
its cost is recorded — a schedule that got faster by reducing differently
would be measuring a different computation.

Headline numbers are appended to ``BENCH_reduction.json`` so the
trajectory travels with the repo.  ``FAFNIR_SMOKE=1`` shrinks the batch
stream for CI smoke runs.
"""

import os
import time

from _common import append_trajectory, run_once, write_report
from repro.analysis import Table
from repro.comm import SCHEDULES, LinkModel
from repro.core import FafnirConfig, FafnirEngine
from repro.core.sharding import ShardedRunner
from repro.workloads import EmbeddingTableSet, QueryGenerator

SMOKE = bool(int(os.environ.get("FAFNIR_SMOKE", "0")))

SHARD_COUNTS = [2, 4, 8, 16]
BATCHES = 2 if SMOKE else 4
BATCH_SIZE = 16 if SMOKE else 32
QUERY_LEN = 16
SEED = 0
LINK = LinkModel()  # PCIe-class defaults: 500 ns + 25 GB/s


def _run_cell(config, stream, source, expected, shards, schedule):
    runner = ShardedRunner(
        config=config,
        operator="sum",
        max_workers=1,
        reduction=schedule,
        num_shards=shards,
        link=LINK,
    )
    start = time.perf_counter()
    reduced = runner.run_reduced(stream, source)
    wall_s = time.perf_counter() - start
    identical = [vector.tobytes() for vector in reduced.vectors] == expected
    return reduced, identical, wall_s


def test_reduction_sweep(benchmark):
    config = FafnirConfig(batch_size=BATCH_SIZE)
    tables = EmbeddingTableSet.random(seed=SEED)
    generator = QueryGenerator.paper_calibrated(
        tables, seed=SEED, query_len=QUERY_LEN
    )
    stream = [generator.batch(BATCH_SIZE) for _ in range(BATCHES)]

    def experiment():
        single = FafnirEngine(config=config, operator="sum")
        baseline = single.run_batches(stream, tables.vector)
        expected = [vector.tobytes() for vector in baseline.vectors]
        cells = []
        for shards in SHARD_COUNTS:
            for name in sorted(SCHEDULES):
                cells.append(
                    (
                        shards,
                        name,
                        *_run_cell(
                            config, stream, tables.vector, expected, shards, name
                        ),
                    )
                )
        return cells

    cells = run_once(benchmark, experiment)

    table = Table(
        [
            "shards",
            "schedule",
            "steps",
            "messages",
            "comm_bytes",
            "comm_cycles",
            "makespan_cycles",
            "identical",
            "wall_s",
        ]
    )
    levels = []
    for shards, name, reduced, identical, wall_s in cells:
        table.add_row(
            [
                shards,
                name,
                reduced.total_steps,
                reduced.total_messages,
                reduced.total_comm_bytes,
                reduced.comm_pe_cycles,
                reduced.makespan_pe_cycles,
                "yes" if identical else "NO",
                f"{wall_s:.3f}",
            ]
        )
        levels.append(
            {
                "shards": shards,
                "schedule": name,
                "steps": reduced.total_steps,
                "messages": reduced.total_messages,
                "comm_bytes": reduced.total_comm_bytes,
                "comm_cycles": reduced.comm_pe_cycles,
                "makespan_cycles": reduced.makespan_pe_cycles,
                "identical": identical,
                "wall_s": round(wall_s, 4),
            }
        )

    record = {
        "smoke": SMOKE,
        "batches": BATCHES,
        "batch_size": BATCH_SIZE,
        "query_len": QUERY_LEN,
        "link": LINK.to_dict(),
        "levels": levels,
    }
    write_report("reduction", table, record=record)
    append_trajectory("reduction", record)

    # Correctness first: every schedule at every shard count reproduces
    # the single-node bytes.
    for level in levels:
        assert level["identical"], (level["shards"], level["schedule"])

    by_cell = {(l["shards"], l["schedule"]): l for l in levels}
    # Gather's serialized root ingress scales linearly; the butterfly's
    # log-depth schedule must beat it on modeled comm cycles at ≥8 shards.
    for shards in (8, 16):
        assert (
            by_cell[(shards, "recursive_doubling")]["comm_cycles"]
            < by_cell[(shards, "gather")]["comm_cycles"]
        ), shards
    # Step counts follow the textbook bounds: gather is one step per batch,
    # the butterfly log2(S) per batch, reduce-scatter+allgather twice that.
    for shards in SHARD_COUNTS:
        log2 = shards.bit_length() - 1
        assert by_cell[(shards, "gather")]["steps"] == BATCHES
        assert by_cell[(shards, "recursive_doubling")]["steps"] == BATCHES * log2
        assert by_cell[(shards, "reduce_scatter")]["steps"] == BATCHES * 2 * log2
