"""Fig. 12 — end-to-end inference speedup vs number of ranks (2 → 32).

Both engines are normalised to the same 1-rank baseline system (the paper's
"speedup over the baseline (1-rank)"); FC layers stay fixed at 0.5 ms.  The
sweep scales channels with ranks (``MemoryConfig.rank_sweep``) so aggregate
bandwidth grows with rank count — the regime in which the paper observes
near-linear embedding scaling.

Paper claims: both RecNMP and FAFNIR work close to the ideal linear line
for fewer ranks, but FAFNIR keeps following it as ranks grow to 32 while
RecNMP falls away — spatial locality collapses with more ranks, pushing
RecNMP's reductions (and raw vectors) to the cores, while FAFNIR's channel
node keeps the entire reduction at NDP.
"""

from _common import (
    assert_trace_matches_stats,
    calibrated_batch,
    reference_tables,
    run_once,
    traced_run_batch,
    write_report,
)
from repro.core import FafnirConfig
from repro.experiments import get_experiment


def test_fig12_end_to_end_speedup(benchmark):
    result = run_once(benchmark, get_experiment("fig12").run)
    write_report("fig12_end_to_end", result.table)

    ranks = result.data["ranks"]
    fafnir = result.data["fafnir"]
    fafnir_serial = result.data["fafnir_serial"]
    recnmp = result.data["recnmp"]
    ideals = result.data["ideal"]

    # FAFNIR beats RecNMP at every rank count, decisively at 32.
    assert all(f > r for f, r in zip(fafnir, recnmp))
    # Host/tree pipelining across the 32 hardware batches never hurts, and
    # the multi-batch stream must benefit somewhere in the sweep.
    assert all(p >= s - 1e-9 for p, s in zip(fafnir, fafnir_serial))
    assert any(p > s for p, s in zip(fafnir, fafnir_serial))
    assert fafnir[-1] > 1.2 * recnmp[-1]
    # The gap widens as ranks grow (the paper's key Fig. 12 observation).
    gaps = [f / r for f, r in zip(fafnir, recnmp)]
    assert gaps[-1] == max(gaps)
    # FAFNIR tracks the ideal line (within 25 %, or above it thanks to
    # dedup + zero core work, which the linear extrapolation ignores).
    assert fafnir[-1] > 0.75 * ideals[-1]
    # RecNMP falls away from ideal at 32 ranks by more than FAFNIR does.
    assert (ideals[-1] - recnmp[-1]) > (ideals[-1] - fafnir[-1])
    # RecNMP degrades at scale: its 32-rank point is no better than 8-rank.
    assert recnmp[ranks.index(32)] <= recnmp[ranks.index(8)] * 1.05
    # FAFNIR's speedup is monotone in ranks.
    assert all(b >= a - 0.02 for a, b in zip(fafnir, fafnir[1:]))


def test_fig12_trace_matches_stats():
    """A point of the rank sweep, traced: event stream and ``LookupStats``
    must agree on reduce counts per level and DRAM completions."""
    tables = reference_tables()
    batch = calibrated_batch(tables, 16)
    for ranks in (8, 32):
        engine, result, events = traced_run_batch(
            FafnirConfig(batch_size=16).with_ranks(ranks), batch, tables.vector
        )
        assert events
        assert_trace_matches_stats(engine, result, events)
