"""Fig. 2 / §III-A — data movement: who ships how many elements to the cores.

Paper claim: the baseline ships n·q·v elements; TensorDIMM and FAFNIR ship
only n·v (a q× reduction); RecNMP lands in between, at the mercy of spatial
locality.
"""

from _common import run_once, write_report
from repro.experiments import get_experiment


def test_fig02_data_movement(benchmark):
    result = run_once(benchmark, get_experiment("fig02").run)
    write_report("fig02_data_movement", result.table)

    bytes_to_core = result.data["bytes"]
    batch = result.data["batch"]
    # NDP full-reduction designs ship exactly n·v.
    assert bytes_to_core["fafnir"] == 16 * 512
    assert bytes_to_core["tensordimm"] == 16 * 512
    # Baseline ships every gathered vector.
    assert bytes_to_core["baseline"] == sum(len(set(q)) for q in batch) * 512
    # RecNMP strictly between the extremes.
    assert (
        bytes_to_core["fafnir"]
        < bytes_to_core["recnmp"]
        <= bytes_to_core["baseline"]
    )
