"""Table I — PE and node buffer sizes for batch sizes 8/16/32."""

from _common import run_once, write_report
from repro.analysis import Table
from repro.core import FafnirConfig
from repro.hw import table1


PAPER_TABLE1 = {
    8: (4.6, 32.4),
    16: (9.3, 64.8),
    32: (18.5, 129.5),
}


def test_table1_buffer_sizes(benchmark):
    rows = run_once(benchmark, lambda: table1(FafnirConfig()))

    table = Table(
        ["batch", "PE_KB", "paper_PE_KB", "node_KB", "paper_node_KB"]
    )
    for batch_size in (8, 16, 32):
        paper_pe, paper_node = PAPER_TABLE1[batch_size]
        table.add_row(
            [
                batch_size,
                f"{rows[batch_size]['pe_kb']:.1f}",
                paper_pe,
                f"{rows[batch_size]['dimm_rank_node_kb']:.1f}",
                paper_node,
            ]
        )
    write_report("table1_buffers", table)

    for batch_size, (paper_pe, paper_node) in PAPER_TABLE1.items():
        assert abs(rows[batch_size]["pe_kb"] - paper_pe) / paper_pe < 0.02
        assert (
            abs(rows[batch_size]["dimm_rank_node_kb"] - paper_node) / paper_node
            < 0.02
        )
