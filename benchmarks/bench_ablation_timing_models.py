"""Ablation — timing-model bracket: dataflow vs phased vs interactive.

The hardware's true latency lies between the optimistic dataflow engine
(messages race ahead the moment their operands arrive, §IV-A's conflict-free
routes) and the conservative phased engine (each PE waits for its whole
input batch).  Interactive mode (compare-free PEs, §IV-C) gives the
single-query floor.  All three produce identical functional results.
"""

import numpy as np
import pytest

from _common import calibrated_batch, reference_tables, run_once, write_report
from repro.analysis import Table
from repro.core import (
    FafnirConfig,
    FafnirEngine,
    InteractiveEngine,
    PhasedFafnirEngine,
)


def test_ablation_timing_models(benchmark):
    tables = reference_tables()
    batch = calibrated_batch(tables, batch_size=16)

    def run():
        config = FafnirConfig(batch_size=16)
        dataflow = FafnirEngine(config).run_batch(batch, tables.vector)
        phased = PhasedFafnirEngine(config).run_batch(batch, tables.vector)
        interactive = InteractiveEngine(config)
        single_cycles = [
            interactive.lookup_one(query, tables.vector).latency_pe_cycles
            for query in batch
        ]
        return dataflow, phased, single_cycles

    dataflow, phased, single_cycles = run_once(benchmark, run)

    table = Table(["model", "batch_latency_cycles", "per_query_cycles"])
    table.add_row(
        [
            "dataflow (optimistic)",
            dataflow.stats.latency_pe_cycles,
            f"{dataflow.stats.latency_pe_cycles / 16:.1f}",
        ]
    )
    table.add_row(
        [
            "phased (conservative)",
            phased.stats.latency_pe_cycles,
            f"{phased.stats.latency_pe_cycles / 16:.1f}",
        ]
    )
    table.add_row(
        [
            "interactive ×16 (serial)",
            sum(single_cycles),
            f"{np.mean(single_cycles):.1f}",
        ]
    )
    write_report("ablation_timing_models", table)

    # Same functional outputs.
    for a, b in zip(dataflow.vectors, phased.vectors):
        assert np.allclose(a, b)
    # The bracket: dataflow ≤ phased; a single interactive query beats both
    # per-query latencies but loses on serial throughput.
    assert dataflow.stats.latency_pe_cycles <= phased.stats.latency_pe_cycles
    assert min(single_cycles) < dataflow.stats.latency_pe_cycles
    assert sum(single_cycles) > dataflow.stats.latency_pe_cycles
