"""MatrixMarket (.mtx) I/O.

The paper's SpMV evaluation uses SuiteSparse matrices, which are distributed
in MatrixMarket coordinate format.  This reader/writer supports the subset
real SpMV work needs — ``matrix coordinate real|integer|pattern
general|symmetric`` — so users can drop in actual SuiteSparse files where we
substitute synthetic generators.
"""

from __future__ import annotations

import pathlib
from typing import List, Tuple, Union

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.lil import LilMatrix

PathLike = Union[str, pathlib.Path]

_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRIES = {"general", "symmetric"}


def read_matrix_market(path: PathLike) -> LilMatrix:
    """Read a MatrixMarket coordinate file into LIL form."""
    path = pathlib.Path(path)
    with open(path) as handle:
        header = handle.readline().strip()
        parts = header.split()
        if (
            len(parts) < 5
            or parts[0] != "%%MatrixMarket"
            or parts[1].lower() != "matrix"
            or parts[2].lower() != "coordinate"
        ):
            raise ValueError(f"{path}: not a MatrixMarket coordinate file")
        field = parts[3].lower()
        symmetry = parts[4].lower()
        if field not in _SUPPORTED_FIELDS:
            raise ValueError(f"{path}: unsupported field type {field!r}")
        if symmetry not in _SUPPORTED_SYMMETRIES:
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")

        size_line = None
        for raw in handle:
            line = raw.strip()
            if line and not line.startswith("%"):
                size_line = line
                break
        if size_line is None:
            raise ValueError(f"{path}: missing size line")
        try:
            n_rows, n_cols, nnz = (int(tok) for tok in size_line.split())
        except ValueError:
            raise ValueError(f"{path}: malformed size line {size_line!r}") from None

        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            tokens = line.split()
            row = int(tokens[0]) - 1  # MatrixMarket is 1-based
            col = int(tokens[1]) - 1
            value = 1.0 if field == "pattern" else float(tokens[2])
            rows.append(row)
            cols.append(col)
            values.append(value)
            if symmetry == "symmetric" and row != col:
                rows.append(col)
                cols.append(row)
                values.append(value)

    stated = nnz
    stored = len(values) if symmetry == "general" else None
    if symmetry == "general" and stored != stated:
        raise ValueError(
            f"{path}: header promises {stated} entries, file has {stored}"
        )
    return LilMatrix.from_coo(
        CooMatrix(
            shape=(n_rows, n_cols),
            rows=np.array(rows, dtype=np.int64),
            cols=np.array(cols, dtype=np.int64),
            values=np.array(values),
        )
    )


def write_matrix_market(matrix, path: PathLike, comment: str = "") -> None:
    """Write a matrix (LIL/COO/CSR — anything with ``to_coo`` or being COO)
    as ``matrix coordinate real general``."""
    path = pathlib.Path(path)
    coo = matrix if isinstance(matrix, CooMatrix) else matrix.to_coo()
    coo = coo.coalesce()
    lines = ["%%MatrixMarket matrix coordinate real general"]
    if comment:
        for comment_line in comment.splitlines():
            lines.append(f"% {comment_line}")
    lines.append(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}")
    for row, col, value in zip(coo.rows, coo.cols, coo.values):
        lines.append(f"{row + 1} {col + 1} {float(value)!r}")
    path.write_text("\n".join(lines) + "\n")
