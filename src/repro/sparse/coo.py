"""Coordinate-format sparse matrices (interchange format)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class CooMatrix:
    """A sparse matrix as parallel (row, col, value) arrays.

    Duplicate coordinates are allowed on construction and summed by
    :meth:`coalesce` (and implicitly by format conversions).
    """

    shape: Tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if not (len(self.rows) == len(self.cols) == len(self.values)):
            raise ValueError("rows, cols, values must have equal length")
        n_rows, n_cols = self.shape
        if n_rows <= 0 or n_cols <= 0:
            raise ValueError("shape must be positive")
        if len(self.rows) and (
            self.rows.min() < 0
            or self.rows.max() >= n_rows
            or self.cols.min() < 0
            or self.cols.max() >= n_cols
        ):
            raise ValueError("coordinate out of bounds")

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def density(self) -> float:
        return self.nnz / (self.shape[0] * self.shape[1])

    def coalesce(self) -> "CooMatrix":
        """Sum duplicate coordinates; sort by (row, col)."""
        if self.nnz == 0:
            return self
        keys = self.rows * self.shape[1] + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = self.values[order]
        unique_keys, starts = np.unique(keys, return_index=True)
        summed = np.add.reduceat(values, starts)
        return CooMatrix(
            shape=self.shape,
            rows=unique_keys // self.shape[1],
            cols=unique_keys % self.shape[1],
            values=summed,
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CooMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("expected a 2-D array")
        rows, cols = np.nonzero(dense)
        return CooMatrix(
            shape=dense.shape, rows=rows, cols=cols, values=dense[rows, cols]
        )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Oracle y = A·x."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"operand has shape {x.shape}, expected ({self.shape[1]},)"
            )
        y = np.zeros(self.shape[0])
        np.add.at(y, self.rows, self.values * x[self.cols])
        return y
