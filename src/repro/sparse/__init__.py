"""Sparse-matrix substrate: formats and synthetic generators."""

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.generators import (
    diagonally_dominant,
    laplacian_2d,
    random_sparse,
    rmat,
    road_mesh,
)
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.lil import LilMatrix

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "LilMatrix",
    "diagonally_dominant",
    "laplacian_2d",
    "random_sparse",
    "rmat",
    "road_mesh",
    "read_matrix_market",
    "write_matrix_market",
]
