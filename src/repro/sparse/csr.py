"""Compressed sparse row (CSR) format.

CSR is the interchange format most numerical code speaks; FAFNIR's streaming
side prefers LIL (paper §IV-D), so this module mainly provides lossless
conversions plus a fast oracle matvec for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sparse.coo import CooMatrix


@dataclass
class CsrMatrix:
    """Row-pointer compressed sparse matrix."""

    shape: Tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        n_rows, n_cols = self.shape
        if n_rows <= 0 or n_cols <= 0:
            raise ValueError("shape must be positive")
        if len(self.indptr) != n_rows + 1:
            raise ValueError("indptr must have n_rows + 1 entries")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.values):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.values):
            raise ValueError("indices and values must have equal length")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= n_cols
        ):
            raise ValueError("column index out of bounds")

    @property
    def nnz(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    @staticmethod
    def from_coo(coo: CooMatrix) -> "CsrMatrix":
        coo = coo.coalesce()
        n_rows, _ = coo.shape
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, coo.rows + 1, 1)
        indptr = np.cumsum(indptr)
        return CsrMatrix(coo.shape, indptr, coo.cols, coo.values)

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CsrMatrix":
        return CsrMatrix.from_coo(CooMatrix.from_dense(dense))

    def to_coo(self) -> CooMatrix:
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        return CooMatrix(self.shape, rows, self.indices.copy(), self.values.copy())

    def to_lil(self):
        from repro.sparse.lil import LilMatrix

        return LilMatrix.from_coo(self.to_coo())

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    # ------------------------------------------------------------------
    def row(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of one row."""
        if not 0 <= index < self.shape[0]:
            raise ValueError(f"row {index} out of range")
        lo, hi = self.indptr[index], self.indptr[index + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"operand has shape {x.shape}, expected ({self.shape[1]},)"
            )
        y = np.zeros(self.shape[0])
        for row in range(self.shape[0]):
            lo, hi = self.indptr[row], self.indptr[row + 1]
            if hi > lo:
                y[row] = np.dot(self.values[lo:hi], x[self.indices[lo:hi]])
        return y
