"""Synthetic sparse-matrix generators.

The paper evaluates SpMV on scientific matrices (matrix-inversion kernels)
and graphs; those exact inputs are SuiteSparse/production data we do not
have, so these generators produce structurally equivalent stand-ins:

* ``laplacian_2d`` — 5-point stencil systems, the canonical scientific
  workload (banded, ~5 nnz/row, diagonally dominant);
* ``rmat`` — Kronecker power-law graphs (web/social-like degree skew);
* ``road_mesh`` — near-planar constant-degree graphs (the road networks the
  paper labels e.g. "RO");
* ``random_sparse`` / ``diagonally_dominant`` — controlled-density inputs
  for unit tests and iterative solvers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.lil import LilMatrix


def random_sparse(
    n_rows: int, n_cols: int, density: float, seed: int = 0
) -> LilMatrix:
    """Uniform random sparse matrix with approximately the given density."""
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    nnz = max(1, int(round(n_rows * n_cols * density)))
    nnz = min(nnz, n_rows * n_cols)
    flat = rng.choice(n_rows * n_cols, size=nnz, replace=False)
    values = rng.normal(size=nnz)
    values[values == 0] = 1.0
    return LilMatrix.from_coo(
        CooMatrix(
            shape=(n_rows, n_cols),
            rows=flat // n_cols,
            cols=flat % n_cols,
            values=values,
        )
    )


def laplacian_2d(nx: int, ny: Optional[int] = None) -> LilMatrix:
    """5-point-stencil Laplacian on an nx × ny grid (SPD, ~5 nnz/row)."""
    if ny is None:
        ny = nx
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny
    rows, cols, values = [], [], []

    def node(i, j):
        return i * ny + j

    for i in range(nx):
        for j in range(ny):
            center = node(i, j)
            rows.append(center)
            cols.append(center)
            values.append(4.0)
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < nx and 0 <= nj < ny:
                    rows.append(center)
                    cols.append(node(ni, nj))
                    values.append(-1.0)
    return LilMatrix.from_coo(
        CooMatrix(shape=(n, n), rows=np.array(rows), cols=np.array(cols),
                  values=np.array(values))
    )


def rmat(
    scale: int,
    edge_factor: int = 8,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> LilMatrix:
    """R-MAT power-law graph adjacency matrix with 2**scale vertices."""
    if scale <= 0 or scale > 24:
        raise ValueError("scale must be in 1..24")
    if edge_factor <= 0:
        raise ValueError("edge_factor must be positive")
    probabilities = np.array([a, b, c, 1.0 - a - b - c])
    if probabilities.min() < 0:
        raise ValueError("partition probabilities must be non-negative")
    n = 1 << scale
    n_edges = n * edge_factor
    rng = np.random.default_rng(seed)
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale):
        quadrant = rng.choice(4, size=n_edges, p=probabilities)
        rows |= ((quadrant >> 1) & 1) << bit
        cols |= (quadrant & 1) << bit
    values = np.ones(n_edges)
    return LilMatrix.from_coo(
        CooMatrix(shape=(n, n), rows=rows, cols=cols, values=values)
    )


def road_mesh(side: int, seed: int = 0, extra_edge_fraction: float = 0.05) -> LilMatrix:
    """Road-network-like graph: a grid mesh plus a few long shortcuts.

    Degree is nearly constant (~4) and the structure near-planar — the
    regime where the paper's large "RO" inputs live.
    """
    if side <= 1:
        raise ValueError("side must be > 1")
    n = side * side
    rng = np.random.default_rng(seed)
    rows, cols = [], []

    def node(i, j):
        return i * side + j

    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                rows += [node(i, j), node(i + 1, j)]
                cols += [node(i + 1, j), node(i, j)]
            if j + 1 < side:
                rows += [node(i, j), node(i, j + 1)]
                cols += [node(i, j + 1), node(i, j)]
    extras = int(n * extra_edge_fraction)
    if extras:
        sources = rng.integers(0, n, size=extras)
        targets = rng.integers(0, n, size=extras)
        keep = sources != targets
        rows += list(sources[keep]) + list(targets[keep])
        cols += list(targets[keep]) + list(sources[keep])
    values = np.ones(len(rows))
    return LilMatrix.from_coo(
        CooMatrix(
            shape=(n, n),
            rows=np.array(rows),
            cols=np.array(cols),
            values=values,
        )
    )


def diagonally_dominant(n: int, density: float = 0.01, seed: int = 0) -> LilMatrix:
    """Strictly diagonally dominant matrix (Jacobi/solver convergence)."""
    if n <= 0:
        raise ValueError("n must be positive")
    base = random_sparse(n, n, density, seed=seed).to_dense()
    np.fill_diagonal(base, 0.0)
    row_sums = np.abs(base).sum(axis=1)
    np.fill_diagonal(base, row_sums + 1.0)
    return LilMatrix.from_dense(base)
