"""List-of-lists (LIL) compressed sparse format (paper §IV-D).

LIL compresses the matrix along one dimension only: each row stores its
non-zero values contiguously together with the column index of each value.
Because the other dimension stays uncompressed, a large matrix splits
cleanly into **column chunks** — the property FAFNIR exploits to stream
matrices wider than the tree one chunk per round (paper Fig. 8), exactly as
the Two-Step accelerator splits its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.sparse.coo import CooMatrix


@dataclass
class LilMatrix:
    """Row-compressed sparse matrix: per-row (column-indices, values) lists."""

    shape: Tuple[int, int]
    row_indices: List[np.ndarray]
    row_values: List[np.ndarray]

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows <= 0 or n_cols <= 0:
            raise ValueError("shape must be positive")
        if len(self.row_indices) != n_rows or len(self.row_values) != n_rows:
            raise ValueError("need one index/value list per row")
        for row, (indices, values) in enumerate(
            zip(self.row_indices, self.row_values)
        ):
            if len(indices) != len(values):
                raise ValueError(f"row {row}: index/value length mismatch")
            if len(indices) and (indices.min() < 0 or indices.max() >= n_cols):
                raise ValueError(f"row {row}: column index out of bounds")

    # ------------------------------------------------------------------
    @staticmethod
    def from_coo(coo: CooMatrix) -> "LilMatrix":
        coo = coo.coalesce()
        n_rows, _ = coo.shape
        row_indices: List[np.ndarray] = []
        row_values: List[np.ndarray] = []
        boundaries = np.searchsorted(coo.rows, np.arange(n_rows + 1))
        for row in range(n_rows):
            lo, hi = boundaries[row], boundaries[row + 1]
            row_indices.append(coo.cols[lo:hi].copy())
            row_values.append(coo.values[lo:hi].copy())
        return LilMatrix(coo.shape, row_indices, row_values)

    @staticmethod
    def from_dense(dense: np.ndarray) -> "LilMatrix":
        return LilMatrix.from_coo(CooMatrix.from_dense(dense))

    def to_coo(self) -> CooMatrix:
        rows = np.concatenate(
            [
                np.full(len(indices), row, dtype=np.int64)
                for row, indices in enumerate(self.row_indices)
            ]
        ) if self.nnz else np.empty(0, dtype=np.int64)
        cols = (
            np.concatenate(self.row_indices)
            if self.nnz
            else np.empty(0, dtype=np.int64)
        )
        values = (
            np.concatenate(self.row_values) if self.nnz else np.empty(0)
        )
        return CooMatrix(self.shape, rows, cols, values)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        for row, (indices, values) in enumerate(
            zip(self.row_indices, self.row_values)
        ):
            dense[row, indices] = values
        return dense

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return sum(len(values) for values in self.row_values)

    @property
    def density(self) -> float:
        return self.nnz / (self.shape[0] * self.shape[1])

    def row_nnz(self, row: int) -> int:
        return len(self.row_values[row])

    def iter_nonzeros(self) -> Iterator[Tuple[int, int, float]]:
        """Stream (row, col, value) triples in row-major order — the order
        a rank streams its LIL shard from DRAM."""
        for row, (indices, values) in enumerate(
            zip(self.row_indices, self.row_values)
        ):
            for col, value in zip(indices, values):
                yield row, int(col), float(value)

    def stream_bytes(self, value_bytes: int = 4, index_bytes: int = 4) -> int:
        """Wire footprint of the compressed stream (values + column ids)."""
        return self.nnz * (value_bytes + index_bytes)

    # ------------------------------------------------------------------
    def split_columns(self, width: int) -> List["LilMatrix"]:
        """Split along the uncompressed dimension into column chunks.

        Chunk ``k`` holds columns ``[k·width, (k+1)·width)`` with column
        indices rebased to the chunk — the unit FAFNIR streams per round.
        """
        if width <= 0:
            raise ValueError("width must be positive")
        n_rows, n_cols = self.shape
        chunks: List[LilMatrix] = []
        for start in range(0, n_cols, width):
            stop = min(start + width, n_cols)
            chunk_indices: List[np.ndarray] = []
            chunk_values: List[np.ndarray] = []
            for indices, values in zip(self.row_indices, self.row_values):
                mask = (indices >= start) & (indices < stop)
                chunk_indices.append(indices[mask] - start)
                chunk_values.append(values[mask])
            chunks.append(
                LilMatrix((n_rows, stop - start), chunk_indices, chunk_values)
            )
        return chunks

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Oracle y = A·x directly on the LIL structure."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"operand has shape {x.shape}, expected ({self.shape[1]},)"
            )
        y = np.zeros(self.shape[0])
        for row, (indices, values) in enumerate(
            zip(self.row_indices, self.row_values)
        ):
            if len(indices):
                y[row] = np.dot(values, x[indices])
        return y
