"""Inter-node link model for cross-shard reduction (Tascade-style scale-out).

One FAFNIR node reduces locally through its on-package tree; combining
partial sums *across* nodes rides an ordinary interconnect (PCIe/NVLink/
NIC class), which is orders of magnitude slower per byte than the
intra-package wiring.  :class:`LinkModel` captures that boundary with the
two numbers every collective cost model needs — a fixed per-message
latency and a per-byte transfer rate — expressed in the PE clock domain so
communication cycles compose directly with the engine's pipelined
makespans.

The defaults model a PCIe-4.0-x16-class link (~500 ns small-message
latency, 25 GB/s effective): fast enough that a log-depth schedule wins,
slow enough that shipping redundant bytes shows up in the benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.clocks import Clock, PE_CLOCK


@dataclass(frozen=True)
class LinkModel:
    """Latency/bandwidth parameters of one inter-node link.

    Attributes:
        latency_ns: fixed cost of any message (serialization, NIC/switch
            traversal, protocol overhead).
        bandwidth_gb_s: sustained payload rate in gigabytes per second.
        duplex: whether a node can send and receive concurrently (true for
            the modelled switched fabrics; half-duplex serializes the two
            directions of an exchange step).
        pe_clock: clock used to express transfer times in PE cycles.
    """

    latency_ns: float = 500.0
    bandwidth_gb_s: float = 25.0
    duplex: bool = True
    pe_clock: Clock = PE_CLOCK

    def __post_init__(self) -> None:
        if self.latency_ns < 0:
            raise ValueError("latency_ns must be non-negative")
        if self.bandwidth_gb_s <= 0:
            raise ValueError("bandwidth_gb_s must be positive")

    def transfer_ns(self, payload_bytes: int) -> float:
        """Wire time of one message carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return self.latency_ns + payload_bytes / self.bandwidth_gb_s

    def transfer_pe_cycles(self, payload_bytes: int) -> int:
        """Message time rounded up to whole PE cycles (composable with
        engine makespans, which are integral PE cycles)."""
        return self.pe_clock.ns_to_cycles(self.transfer_ns(payload_bytes))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "latency_ns": self.latency_ns,
            "bandwidth_gb_s": self.bandwidth_gb_s,
            "duplex": self.duplex,
            "pe_clock_mhz": self.pe_clock.freq_mhz,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "LinkModel":
        known = {"latency_ns", "bandwidth_gb_s", "duplex", "pe_clock_mhz"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown link keys: {sorted(unknown)}")
        return LinkModel(
            latency_ns=data.get("latency_ns", 500.0),
            bandwidth_gb_s=data.get("bandwidth_gb_s", 25.0),
            duplex=data.get("duplex", True),
            pe_clock=Clock(data.get("pe_clock_mhz", PE_CLOCK.freq_mhz)),
        )
