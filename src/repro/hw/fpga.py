"""FPGA resource-utilization model for the XCVU9P (paper Table V).

The paper implements FAFNIR on a Xilinx XCVU9P, using up to 5 % LUTs,
0.15 % LUTRAMs, 1 % FFs and 13 % BRAM for the full system (four DIMM/rank
nodes + one channel node, 31 PEs) — "utilizing up to 3 % of the resources"
overall.  Per-PE resource counts below are back-calculated from those
utilization figures and scale to any tree shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import FafnirConfig

# XCVU9P device totals.
XCVU9P = {
    "lut": 1_182_240,
    "lutram": 591_840,
    "ff": 2_364_480,
    "bram": 2_160,
}

# Per-PE resource usage, calibrated so 31 PEs land on Table V's utilization.
PE_RESOURCES = {
    "lut": 1_900,
    "lutram": 28,
    "ff": 760,
    "bram": 9,
}


@dataclass(frozen=True)
class FpgaUtilization:
    """Absolute and fractional resource usage for one configuration."""

    used: Dict[str, int]

    def fraction(self, resource: str) -> float:
        return self.used[resource] / XCVU9P[resource]

    @property
    def utilization_percent(self) -> Dict[str, float]:
        return {
            resource: 100.0 * self.fraction(resource) for resource in XCVU9P
        }

    def fits(self) -> bool:
        return all(self.used[r] <= XCVU9P[r] for r in XCVU9P)


def pe_utilization(num_pes: int) -> FpgaUtilization:
    if num_pes < 1:
        raise ValueError("num_pes must be positive")
    return FpgaUtilization(
        used={resource: count * num_pes for resource, count in PE_RESOURCES.items()}
    )


def system_utilization(config: FafnirConfig = None) -> FpgaUtilization:
    """Utilization of the full tree (31 PEs in the reference system)."""
    config = config or FafnirConfig()
    return pe_utilization(config.num_pes)


def table5() -> Dict[str, float]:
    """Reproduce Table V: utilization % of the reference system."""
    return system_utilization().utilization_percent
