"""Power models: 7 nm ASIC (Table VI), FPGA dynamic power (Fig. 16a), and
DRAM energy savings from redundant-access elimination (§VI).

Published ASIC anchors:

* a DIMM/rank node adds 23.82 mW per four DIMMs (5.9 mW per DIMM);
* the whole four-channel system adds 111.64 mW, so the channel node
  accounts for 111.64 − 4 × 23.82 = 16.36 mW;
* comparison point: one RecNMP processing unit adds 184.2 mW per DIMM
  (40 nm @ 250 MHz);
* each DDR4 DIMM itself burns ≈13 W — the added NDP power is noise.

FPGA anchors (XCVU9P @ 200 MHz): 0.23 W per DIMM/rank node and 0.18 W for
the channel node, with the near-uniform spatial distribution Fig. 16b shows
(no hot spot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hw.buffers import PES_PER_CHANNEL_NODE, PES_PER_DIMM_RANK_NODE
from repro.memory.config import DramEnergy

DIMM_RANK_NODE_MW = 23.82
CHANNEL_NODE_MW = 16.36
SYSTEM_MW = 111.64
PE_MW = DIMM_RANK_NODE_MW / PES_PER_DIMM_RANK_NODE
RECNMP_PER_DIMM_MW = 184.2
DDR4_DIMM_W = 13.0

FPGA_DIMM_RANK_NODE_W = 0.23
FPGA_CHANNEL_NODE_W = 0.18
# Approximate dynamic-power split of a node on the XCVU9P (Fig. 16a shape):
FPGA_POWER_BREAKDOWN = {
    "signals": 0.30,
    "logic": 0.25,
    "bram": 0.25,
    "clocks": 0.15,
    "dsp": 0.05,
}


@dataclass(frozen=True)
class AsicPower:
    """System ASIC power for a node composition."""

    dimm_rank_nodes: int = 4
    channel_nodes: int = 1

    @property
    def total_mw(self) -> float:
        return (
            self.dimm_rank_nodes * DIMM_RANK_NODE_MW
            + self.channel_nodes * CHANNEL_NODE_MW
        )

    @property
    def per_dimm_mw(self) -> float:
        """5.9 mW per DIMM in the reference 16-DIMM system."""
        return DIMM_RANK_NODE_MW / 4

    @property
    def fraction_of_dram_power(self) -> float:
        """FAFNIR's power relative to the DIMMs it serves (16 × 13 W)."""
        dimms = self.dimm_rank_nodes * 4
        return self.total_mw / (dimms * DDR4_DIMM_W * 1000)


def fpga_node_power_w(node: str) -> float:
    if node == "dimm_rank":
        return FPGA_DIMM_RANK_NODE_W
    if node == "channel":
        return FPGA_CHANNEL_NODE_W
    raise ValueError(f"unknown node type {node!r}")


def fpga_power_breakdown_w(node: str) -> Dict[str, float]:
    total = fpga_node_power_w(node)
    return {part: total * share for part, share in FPGA_POWER_BREAKDOWN.items()}


def recnmp_comparison_mw(dimms: int = 16) -> float:
    """RecNMP adds 184.2 mW per DIMM — 26× FAFNIR's 5.9 mW/DIMM."""
    if dimms < 1:
        raise ValueError("dimms must be positive")
    return RECNMP_PER_DIMM_MW * dimms


def memory_energy_saving(
    total_lookups: int,
    unique_reads: int,
    bursts_per_vector: int = 8,
    energy: DramEnergy = None,
) -> float:
    """Fractional DRAM dynamic-energy saving from access elimination.

    FAFNIR reads each unique index once; the fraction of accesses saved maps
    directly to activation + burst energy saved (§VI: 34 %/43 %/58 % for
    B = 8/16/32).
    """
    if total_lookups <= 0:
        raise ValueError("total_lookups must be positive")
    if not 0 <= unique_reads <= total_lookups:
        raise ValueError("unique_reads out of range")
    energy = energy or DramEnergy()
    per_access = energy.access_energy_pj(bursts=bursts_per_vector, activates=1)
    baseline = total_lookups * per_access
    ours = unique_reads * per_access
    return 1.0 - ours / baseline
