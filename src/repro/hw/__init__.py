"""Hardware bookkeeping: buffers, connections, ASIC area/power, FPGA usage."""

from repro.hw.area import (
    AreaBreakdown,
    CHANNEL_NODE_AREA_MM2,
    DIMM_RANK_NODE_AREA_MM2,
    PE_AREA_MM2,
    pe_area_mm2,
    recnmp_system_area_mm2,
    reference_system_area,
    system_area,
)
from repro.hw.buffers import (
    BufferSizing,
    PES_PER_CHANNEL_NODE,
    PES_PER_DIMM_RANK_NODE,
    size_buffers,
    table1,
)
from repro.hw.connections import (
    ConnectionComparison,
    all_to_all_connections,
    crossover_memory_devices,
    fafnir_connections,
)
from repro.hw.link import LinkModel
from repro.hw.fpga import (
    FpgaUtilization,
    PE_RESOURCES,
    XCVU9P,
    pe_utilization,
    system_utilization,
    table5,
)
from repro.hw.power import (
    AsicPower,
    CHANNEL_NODE_MW,
    DIMM_RANK_NODE_MW,
    PE_MW,
    SYSTEM_MW,
    fpga_node_power_w,
    fpga_power_breakdown_w,
    memory_energy_saving,
    recnmp_comparison_mw,
)

__all__ = [
    "AreaBreakdown",
    "AsicPower",
    "BufferSizing",
    "CHANNEL_NODE_AREA_MM2",
    "CHANNEL_NODE_MW",
    "ConnectionComparison",
    "DIMM_RANK_NODE_AREA_MM2",
    "DIMM_RANK_NODE_MW",
    "FpgaUtilization",
    "LinkModel",
    "PES_PER_CHANNEL_NODE",
    "PES_PER_DIMM_RANK_NODE",
    "PE_AREA_MM2",
    "PE_MW",
    "PE_RESOURCES",
    "SYSTEM_MW",
    "XCVU9P",
    "all_to_all_connections",
    "crossover_memory_devices",
    "fafnir_connections",
    "fpga_node_power_w",
    "fpga_power_breakdown_w",
    "memory_energy_saving",
    "pe_area_mm2",
    "pe_utilization",
    "recnmp_comparison_mw",
    "recnmp_system_area_mm2",
    "reference_system_area",
    "size_buffers",
    "system_area",
    "system_utilization",
    "table1",
    "table5",
]
