"""PE and node buffer sizing (paper Table I and Fig. 5).

Each PE buffer entry holds a 512 B vector value plus a 10 B header (16 query
slots × 5 bits) plus per-entry hardware metadata (valid bits, FIFO pointers,
ECC).  The metadata constant is calibrated so the sizes reproduce Table I
within ~1 %:

    B = 8  → PE 4.6 KB,  DIMM/rank node 32.4 KB
    B = 16 → PE 9.3 KB,  DIMM/rank node 64.8 KB
    B = 32 → PE 18.5 KB, DIMM/rank node 129.5 KB
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FafnirConfig

PES_PER_DIMM_RANK_NODE = 7
PES_PER_CHANNEL_NODE = 3
ENTRY_METADATA_BYTES = 70.0


@dataclass(frozen=True)
class BufferSizing:
    """Derived buffer capacities for one configuration."""

    batch_size: int
    entry_bytes: float
    pe_buffer_bytes: float

    @property
    def pe_buffer_kb(self) -> float:
        return self.pe_buffer_bytes / 1024

    @property
    def dimm_rank_node_kb(self) -> float:
        return PES_PER_DIMM_RANK_NODE * self.pe_buffer_kb

    @property
    def channel_node_kb(self) -> float:
        return PES_PER_CHANNEL_NODE * self.pe_buffer_kb


def size_buffers(config: FafnirConfig) -> BufferSizing:
    """Buffer sizing for one FAFNIR configuration (Table I methodology).

    A PE buffers ``B`` entries across its input FIFOs (n = m = B sized for
    the batch), each entry one vector + header + metadata.
    """
    entry_bytes = (
        config.vector_bytes + config.header_bytes + ENTRY_METADATA_BYTES
    )
    return BufferSizing(
        batch_size=config.batch_size,
        entry_bytes=entry_bytes,
        pe_buffer_bytes=config.batch_size * entry_bytes,
    )


def table1(config: FafnirConfig = None) -> dict:
    """The full Table I: PE/node buffer KB for B ∈ {8, 16, 32}."""
    base = config or FafnirConfig()
    rows = {}
    for batch_size in (8, 16, 32):
        sizing = size_buffers(base.with_batch_size(batch_size))
        rows[batch_size] = {
            "pe_kb": sizing.pe_buffer_kb,
            "dimm_rank_node_kb": sizing.dimm_rank_node_kb,
            "channel_node_kb": sizing.channel_node_kb,
        }
    return rows
