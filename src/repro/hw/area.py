"""7 nm ASIC area model (paper Table VI and Fig. 4a layouts).

Published anchors:

* PE chip: 274 µm × 282 µm ≈ 0.077 mm² (multiply + add units included);
* DIMM/rank node chip (7 PEs): 492 µm × 575 µm ≈ 0.282 mm²;
* channel node chip (3 PEs): 0.121 mm² — "the tiny chip between the memory
  channels and the core";
* whole 32-rank system: 4 DIMM/rank nodes + 1 channel node ≈ 1.25 mm²
  (the abstract's 1.2–1.25 mm²).

The model scales these anchors to other tree shapes: area follows PE count,
with a fixed per-chip overhead (I/O ring, clocking) taken from the anchors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FafnirConfig
from repro.hw.buffers import PES_PER_CHANNEL_NODE, PES_PER_DIMM_RANK_NODE

PE_AREA_MM2 = 0.077
DIMM_RANK_NODE_AREA_MM2 = 0.282
CHANNEL_NODE_AREA_MM2 = 0.121
# RecNMP comparison point (§VI): 0.54 mm² at 40 nm per DIMM.
RECNMP_AREA_PER_DIMM_MM2 = 0.54


@dataclass(frozen=True)
class AreaBreakdown:
    """System-level area for one configuration, in mm²."""

    dimm_rank_nodes: int
    channel_nodes: int

    @property
    def dimm_rank_node_mm2(self) -> float:
        return DIMM_RANK_NODE_AREA_MM2

    @property
    def channel_node_mm2(self) -> float:
        return CHANNEL_NODE_AREA_MM2

    @property
    def total_mm2(self) -> float:
        return (
            self.dimm_rank_nodes * DIMM_RANK_NODE_AREA_MM2
            + self.channel_nodes * CHANNEL_NODE_AREA_MM2
        )


def reference_system_area() -> AreaBreakdown:
    """The paper's 32-rank system: 4 DIMM/rank nodes + 1 channel node."""
    return AreaBreakdown(dimm_rank_nodes=4, channel_nodes=1)


def system_area(config: FafnirConfig, channels: int = 4) -> AreaBreakdown:
    """Area for an arbitrary tree, grouped into the two chip types.

    PEs whose subtree stays inside one channel form DIMM/rank nodes (7 PEs
    each in the reference shape); the remainder forms the channel node.
    """
    total_pes = config.num_pes
    per_channel_pes = max(0, (total_pes - (channels - 1)) // channels)
    dimm_rank_nodes = (
        channels if per_channel_pes >= 1 and channels > 1 else 1
    )
    return AreaBreakdown(
        dimm_rank_nodes=dimm_rank_nodes,
        channel_nodes=1 if channels > 1 else 0,
    )


def pe_area_mm2(with_multiplier: bool = True) -> float:
    """One PE's area; the published figure includes the SpMV multiplier."""
    if with_multiplier:
        return PE_AREA_MM2
    # The embedding-only PE drops the leaf multiplier array (~30 % of the
    # datapath in the Fig. 4a layout).
    return PE_AREA_MM2 * 0.7


def recnmp_system_area_mm2(dimms: int = 16) -> float:
    """RecNMP's published area comparison point (8.64 mm² for 16 DIMMs)."""
    if dimms < 1:
        raise ValueError("dimms must be positive")
    return RECNMP_AREA_PER_DIMM_MM2 * dimms
