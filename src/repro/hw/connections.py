"""Connection-count model (paper §III-D and §IV-A).

Embedding systems combine model parallelism (tables across memory devices)
with data parallelism (network replicas on compute devices), classically
requiring **all-to-all** links between ``m`` memory devices and ``c``
computing devices: ``c·m`` connections.  FAFNIR's tree replaces them with
``2m − 2`` internal tree links plus ``c`` root-to-core links.
"""

from __future__ import annotations

from dataclasses import dataclass


def all_to_all_connections(memory_devices: int, compute_devices: int) -> int:
    """Baseline/TensorDIMM/RecNMP topology: every memory ↔ every core."""
    if memory_devices < 1 or compute_devices < 1:
        raise ValueError("device counts must be positive")
    return memory_devices * compute_devices


def fafnir_connections(memory_devices: int, compute_devices: int) -> int:
    """FAFNIR topology: (2m − 2) tree links + c root links (§IV-A)."""
    if memory_devices < 1 or compute_devices < 1:
        raise ValueError("device counts must be positive")
    return (2 * memory_devices - 2) + compute_devices


@dataclass(frozen=True)
class ConnectionComparison:
    memory_devices: int
    compute_devices: int

    @property
    def all_to_all(self) -> int:
        return all_to_all_connections(self.memory_devices, self.compute_devices)

    @property
    def fafnir(self) -> int:
        return fafnir_connections(self.memory_devices, self.compute_devices)

    @property
    def reduction_factor(self) -> float:
        return self.all_to_all / self.fafnir


def crossover_memory_devices(compute_devices: int) -> int:
    """Smallest m where the tree uses strictly fewer links than all-to-all.

    Solves c·m > 2m − 2 + c, i.e. m(c − 2) > c − 2 ⇒ m > 1 for c > 2: the
    tree wins for any real system; this helper makes the scaling claim
    testable for arbitrary c.
    """
    if compute_devices < 1:
        raise ValueError("compute_devices must be positive")
    m = 1
    while all_to_all_connections(m, compute_devices) <= fafnir_connections(
        m, compute_devices
    ):
        m += 1
        if m > 1_000_000:
            raise RuntimeError("no crossover found (degenerate c)")
    return m
