"""Load generators for the online serving front-end.

Two canonical driving disciplines from the serving literature:

* **Open loop** (:class:`OpenLoopGenerator`) — requests arrive on a Poisson
  process at a configured rate, independent of how fast the system drains
  them.  This models an internet-facing service where millions of users do
  not wait for each other; queueing delay explodes visibly past saturation.
  A :class:`RampStage` list makes the rate piecewise-constant so one run can
  sweep QPS from idle to overload.
* **Closed loop** (:class:`ClosedLoopGenerator`) — a fixed population of
  users, each with at most one request in flight: issue, wait for the
  completion, think, reissue.  Offered load self-limits at saturation, which
  is the right model for internal batch clients.

Query *contents* come from the existing Zipf-skewed
:class:`~repro.workloads.embedding.QueryGenerator`, so the sharing structure
the batcher exploits is the paper-calibrated one.  All timestamps are in
**modeled microseconds** — the clock the hardware timing model advances, not
host wall-clock — and every generator is fully deterministic under its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.embedding import QueryGenerator


@dataclass(frozen=True)
class Request:
    """One query travelling through the serving layer."""

    request_id: int
    indices: Tuple[int, ...]
    arrival_us: float
    deadline_us: float
    user: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.indices:
            raise ValueError("request must carry at least one index")
        if self.deadline_us < self.arrival_us:
            raise ValueError("deadline precedes arrival")


@dataclass(frozen=True)
class RampStage:
    """One piecewise-constant segment of the offered-load schedule."""

    qps: float
    duration_us: float

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")


class OpenLoopGenerator:
    """Poisson arrivals at a (ramped) QPS, Zipf-skewed query contents."""

    def __init__(
        self,
        queries: QueryGenerator,
        stages: Sequence[RampStage],
        slo_us: float,
        seed: int = 0,
    ) -> None:
        if not stages:
            raise ValueError("need at least one ramp stage")
        if slo_us <= 0:
            raise ValueError("slo_us must be positive")
        self.queries = queries
        self.stages = list(stages)
        self.slo_us = slo_us
        self._rng = np.random.default_rng(seed)

    def initial(self) -> List[Request]:
        """The full arrival stream — open loop ignores completions."""
        requests: List[Request] = []
        now = 0.0
        request_id = 0
        for stage in self.stages:
            stage_end = now + stage.duration_us
            mean_gap_us = 1e6 / stage.qps
            while True:
                now += float(self._rng.exponential(mean_gap_us))
                if now >= stage_end:
                    now = stage_end
                    break
                requests.append(
                    Request(
                        request_id=request_id,
                        indices=tuple(self.queries.query()),
                        arrival_us=now,
                        deadline_us=now + self.slo_us,
                    )
                )
                request_id += 1
        return requests

    def on_complete(self, request: Request, complete_us: float) -> Optional[Request]:
        return None


class ClosedLoopGenerator:
    """``users`` concurrent users with think time between requests.

    Each user issues ``requests_per_user`` requests; the next one is
    generated when the previous completes plus an exponentially distributed
    think time.  Initial issues are staggered by one think time so the
    system does not see a synchronized thundering herd at t = 0.
    """

    def __init__(
        self,
        queries: QueryGenerator,
        users: int,
        think_time_us: float,
        slo_us: float,
        requests_per_user: int = 8,
        seed: int = 0,
    ) -> None:
        if users <= 0:
            raise ValueError("users must be positive")
        if think_time_us < 0:
            raise ValueError("think_time_us must be non-negative")
        if requests_per_user <= 0:
            raise ValueError("requests_per_user must be positive")
        if slo_us <= 0:
            raise ValueError("slo_us must be positive")
        self.queries = queries
        self.users = users
        self.think_time_us = think_time_us
        self.slo_us = slo_us
        self.requests_per_user = requests_per_user
        self._rng = np.random.default_rng(seed)
        self._issued: Dict[int, int] = {}
        self._next_id = 0

    def _think(self) -> float:
        if self.think_time_us == 0:
            return 0.0
        return float(self._rng.exponential(self.think_time_us))

    def _make(self, user: int, arrival_us: float) -> Request:
        request = Request(
            request_id=self._next_id,
            indices=tuple(self.queries.query()),
            arrival_us=arrival_us,
            deadline_us=arrival_us + self.slo_us,
            user=user,
        )
        self._next_id += 1
        self._issued[user] = self._issued.get(user, 0) + 1
        return request

    def initial(self) -> List[Request]:
        return [self._make(user, self._think()) for user in range(self.users)]

    def on_complete(self, request: Request, complete_us: float) -> Optional[Request]:
        user = request.user
        assert user is not None
        if self._issued.get(user, 0) >= self.requests_per_user:
            return None
        return self._make(user, complete_us + self._think())
