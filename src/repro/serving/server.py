"""Event-driven online serving simulator.

Couples a load generator (:mod:`repro.serving.loadgen`), the continuous
batcher (:mod:`repro.serving.batcher`), and the hardware timing model into
one discrete-event loop over **modeled time**:

* arrivals are admitted to the batcher as the clock passes them;
* whenever the accelerator is free the batcher may dispatch — a full
  sharing-aware batch, or a partial one when the oldest request's SLO
  budget is nearly spent;
* a dispatched batch occupies the accelerator for the engine's modeled
  batch latency; singleton batches can fall back to the compare-free
  :class:`~repro.core.interactive.InteractiveEngine` path, which is the
  low-load latency win (paper §IV-C);
* per-request enqueue/dispatch/complete timestamps are threaded through
  :mod:`repro.obs.metrics`, so p50/p99 latency, SLO attainment, and dedup
  savings come out of the same instrument set as every other subsystem.

Formed batches run through the *same* :meth:`FafnirEngine.run_batch` as the
offline path — identical formed batches produce byte-identical vectors (the
differential test asserts exactly that).

**Overload control** (opt-in, ``overload=`` / ``breaker=``): an
:class:`~repro.resilience.admission.AdmissionController` sheds arriving
requests whose completion forecast overruns their deadline (they get an
immediate :data:`~repro.faults.policy.STATUS_SHED` record that counts as
an SLO miss — shedding can never game attainment), and a per-rank
:class:`~repro.resilience.breaker.CircuitBreaker` watches each batched
dispatch's mean DRAM latency per rank; a rank that degrades past the
threshold is routed to a boosted hot-index tier until its cooldown probe
comes back healthy.  With neither installed — or installed but never
triggering — the serving path is byte-identical to a build without them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine, VectorSource
from repro.core.interactive import InteractiveEngine
from repro.faults.plan import FaultPlan
from repro.faults.policy import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    FaultPolicy,
)
from repro.obs.events import BREAKER_OPENED, REQUEST_SHED, TraceEvent
from repro.obs.metrics import MetricsRegistry
from repro.resilience.admission import SHED, AdmissionController, OverloadPolicy
from repro.resilience.breaker import BreakerConfig, CircuitBreaker

from repro.serving.batcher import ContinuousBatcher
from repro.serving.loadgen import Request
from repro.tiering.cache import HotTierConfig
from repro.tiering.placement import AccessProfile


class LoadSource(Protocol):
    """What the simulator needs from a load generator."""

    def initial(self) -> List[Request]: ...

    def on_complete(self, request: Request, complete_us: float) -> Optional[Request]: ...


@dataclass(frozen=True)
class RequestRecord:
    """One served (or shed) request's full timeline.

    ``status`` is one of :data:`~repro.faults.policy.REQUEST_STATUSES`:
    ``ok``/``degraded``/``failed`` from the engine's per-query verdicts,
    or ``shed`` when admission control refused the request (then
    dispatch/complete are the arrival instant and ``batch_index`` is -1).
    """

    request: Request
    dispatch_us: float
    complete_us: float
    batch_index: int
    batch_size: int
    interactive: bool
    status: str = STATUS_OK

    @property
    def queue_us(self) -> float:
        return self.dispatch_us - self.request.arrival_us

    @property
    def latency_us(self) -> float:
        return self.complete_us - self.request.arrival_us

    @property
    def slo_met(self) -> bool:
        """Shed requests always count as misses — shedding keeps the
        *admitted* stream healthy but must never inflate attainment."""
        if self.status == STATUS_SHED:
            return False
        return self.complete_us <= self.request.deadline_us


@dataclass
class ServingReport:
    """Everything one serving run produced."""

    records: List[RequestRecord]
    batches: List[List[List[int]]]
    members: List[List[int]]
    vectors: Dict[int, np.ndarray]
    metrics: MetricsRegistry
    total_lookups: int = 0
    unique_reads: int = 0
    makespan_us: float = 0.0
    interactive_dispatches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shed_requests: int = 0
    degraded_requests: int = 0
    failed_requests: int = 0
    breaker_opens: int = 0
    events: List[TraceEvent] = field(default_factory=list)

    def _latencies(self) -> List[float]:
        # Shed requests were never served; including their zero "latency"
        # would flatter the percentiles exactly when shedding is heaviest.
        return sorted(
            record.latency_us
            for record in self.records
            if record.status != STATUS_SHED
        )

    def latency_percentile_us(self, p: float) -> float:
        ordered = self._latencies()
        if not ordered:
            return 0.0
        rank = max(1, -(-int(p * len(ordered)) // 100))
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def slo_attainment(self) -> float:
        if not self.records:
            return 1.0
        met = sum(1 for record in self.records if record.slo_met)
        return met / len(self.records)

    @property
    def dedup_savings_fraction(self) -> float:
        if not self.total_lookups:
            return 0.0
        return (self.total_lookups - self.unique_reads) / self.total_lookups

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return sum(len(batch) for batch in self.batches) / len(self.batches)

    @property
    def observed_qps(self) -> float:
        if not self.records or self.makespan_us <= 0:
            return 0.0
        return len(self.records) * 1e6 / self.makespan_us

    @property
    def cache_hit_rate(self) -> float:
        accesses = self.cache_hits + self.cache_misses
        if accesses <= 0:
            return 0.0
        return min(1.0, self.cache_hits / accesses)

    @property
    def shed_fraction(self) -> float:
        if not self.records:
            return 0.0
        return self.shed_requests / len(self.records)

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def summary(self) -> Dict[str, float]:
        return {
            "requests": float(len(self.records)),
            "batches": float(len(self.batches)),
            "mean_batch_size": self.mean_batch_size,
            "interactive_dispatches": float(self.interactive_dispatches),
            "p50_us": self.latency_percentile_us(50),
            "p99_us": self.latency_percentile_us(99),
            "slo_attainment": self.slo_attainment,
            "dedup_savings_fraction": self.dedup_savings_fraction,
            "observed_qps": self.observed_qps,
            "makespan_us": self.makespan_us,
            "cache_hit_rate": self.cache_hit_rate,
            "shed_fraction": self.shed_fraction,
            "degraded_requests": float(self.degraded_requests),
            "failed_requests": float(self.failed_requests),
            "breaker_opens": float(self.breaker_opens),
        }


@dataclass
class ServingSimulator:
    """Drives one serving run over modeled time.

    Args:
        batcher: admission + continuous batching policy.
        config: accelerator configuration; ``config.batch_size`` must admit
            the batcher's batches.
        interactive_fallback: serve singleton batches on the compare-free
            interactive path instead of the batch pipeline.
        registry: metrics sink; a fresh one is created when omitted.
        cache: opt-in hot-index tier for the batch engine
            (:class:`~repro.tiering.cache.HotTierConfig`).  The tier
            stays warm across formed batches, so skewed load keeps
            hitting it; functional results are unchanged — only the
            modeled batch service time and DRAM traffic drop, which is
            where the SLO-attainment uplift comes from.  Interactive
            singleton dispatches bypass the memory system and the tier.
        faults: opt-in chaos script for the batch engine (rank
            degradation and friends); when installed, the interactive
            fallback is disabled so every request sees the faulted memory
            system, and ``fault_policy`` picks fail-fast vs degrade.
        overload: opt-in admission control
            (:class:`~repro.resilience.admission.OverloadPolicy`).
        breaker: opt-in per-rank circuit breaker
            (:class:`~repro.resilience.breaker.BreakerConfig`).
    """

    batcher: ContinuousBatcher
    config: Optional[FafnirConfig] = None
    engine: str = "object"
    kernel: str = "vector"
    interactive_fallback: bool = True
    registry: Optional[MetricsRegistry] = None
    cache: Optional[HotTierConfig] = None
    faults: Optional[FaultPlan] = None
    fault_policy: Optional[FaultPolicy] = None
    overload: Optional[OverloadPolicy] = None
    breaker: Optional[BreakerConfig] = None
    _engine: FafnirEngine = field(init=False, repr=False)
    _interactive: Optional[InteractiveEngine] = field(init=False, repr=False)
    _admission: Optional[AdmissionController] = field(init=False, repr=False)
    _breaker: Optional[CircuitBreaker] = field(init=False, repr=False)
    _engine_open_ranks: frozenset = field(init=False, repr=False)
    _profile: Optional[AccessProfile] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.config = self.config or FafnirConfig()
        if self.batcher.batch_size > self.config.batch_size:
            raise ValueError(
                f"batcher forms batches of {self.batcher.batch_size} but the "
                f"engine accepts at most {self.config.batch_size}"
            )
        self.registry = self.registry if self.registry is not None else MetricsRegistry()
        self._engine_open_ranks = frozenset()
        self._engine = self._build_engine(self._engine_open_ranks)
        self._interactive = (
            InteractiveEngine(config=self.config)
            if self.interactive_fallback and self.faults is None
            else None
        )
        self._admission = (
            AdmissionController(
                self.overload,
                self.batcher.batch_size,
                self.batcher.dispatch_margin_us,
            )
            if self.overload is not None
            else None
        )
        self._breaker = (
            CircuitBreaker(self.breaker) if self.breaker is not None else None
        )
        self._profile = AccessProfile() if self.breaker is not None else None

    def _build_engine(self, open_ranks: frozenset) -> FafnirEngine:
        """The batch engine, with open ranks routed to a boosted tier."""
        return FafnirEngine(
            config=self.config,
            kernel=self.kernel,
            engine=self.engine,
            cache=self._tier_for(open_ranks),
            faults=self.faults,
            fault_policy=self.fault_policy,
        )

    def _tier_for(self, open_ranks: frozenset) -> Optional[HotTierConfig]:
        """The hot-tier description serving the given open-rank set.

        With the breaker closed this is exactly the configured ``cache``
        (``None`` stays ``None`` — byte-identity with the pre-breaker
        build).  An open rank gets at least ``cache_boost_kb`` of tier
        with the rank's observed-hottest rows pinned as residents, so the
        rebuilt (cold) tier absorbs the hot set immediately instead of
        waiting out a warmup the batcher's dedup would mostly deny it.
        """
        if not open_ranks:
            return self.cache
        assert self.breaker is not None and self.config is not None
        base = self.cache
        boost = self.breaker.cache_boost_kb * 1024
        line = (
            base.line_bytes
            if base is not None
            else max(self.config.vector_bytes, 1)
        )
        per_rank = tuple(
            max(base.rank_size_bytes(rank) if base is not None else 0, boost)
            if rank in open_ranks
            else (base.rank_size_bytes(rank) if base is not None else 0)
            for rank in range(self.config.total_ranks)
        )
        pinned = self._pinned_for(open_ranks, per_rank, line)
        if base is not None:
            return HotTierConfig(
                size_bytes=base.size_bytes,
                line_bytes=base.line_bytes,
                ways=base.ways,
                policy=base.policy,
                hit_latency_cycles=base.hit_latency_cycles,
                per_rank_size_bytes=per_rank,
                pinned=pinned,
            )
        return HotTierConfig(
            size_bytes=0,
            line_bytes=line,
            per_rank_size_bytes=per_rank,
        ) if pinned is None else HotTierConfig(
            size_bytes=0,
            line_bytes=line,
            per_rank_size_bytes=per_rank,
            pinned=pinned,
        )

    def _pinned_for(
        self,
        open_ranks: frozenset,
        per_rank: Tuple[int, ...],
        line_bytes: int,
    ) -> Optional[Tuple[Tuple[int, ...], ...]]:
        """Pinned residents per rank: observed-hottest rows for open ranks.

        The serving loop keeps an :class:`AccessProfile` of every
        dispatched query; when a rank opens, its share of the profile's
        hottest ids (home rank via the engine's placement) fills the
        boosted tier up to capacity.  Non-open ranks keep whatever the
        base tier pinned.
        """
        assert self.config is not None
        base = self.cache
        home_rank = self._engine.placement.home_rank
        by_heat: List[int] = (
            self._profile.hottest_ids(len(self._profile.counts))
            if self._profile is not None
            else []
        )
        pinned: List[Tuple[int, ...]] = []
        any_pins = False
        for rank in range(self.config.total_ranks):
            base_pins = base.rank_pinned(rank) if base is not None else ()
            if rank not in open_ranks:
                pinned.append(base_pins)
                any_pins = any_pins or bool(base_pins)
                continue
            budget = max(per_rank[rank] // max(line_bytes, 1), 0)
            chosen = list(base_pins)
            taken = set(chosen)
            for index in by_heat:
                if len(chosen) >= budget:
                    break
                if index in taken or home_rank(index) != rank:
                    continue
                chosen.append(index)
                taken.add(index)
            pinned.append(tuple(chosen))
            any_pins = any_pins or bool(chosen)
        if not any_pins:
            return None
        return tuple(pinned)

    def _sync_breaker_engine(self) -> None:
        """Rebuild the batch engine when the breaker's open set changed."""
        assert self._breaker is not None
        open_ranks = self._breaker.open_ranks()
        if open_ranks != self._engine_open_ranks:
            self._engine_open_ranks = open_ranks
            self._engine = self._build_engine(open_ranks)

    # ------------------------------------------------------------------
    def _service_batch(self, queries: Sequence[List[int]], source: VectorSource):
        """Run one formed batch on the modeled hardware.

        Returns (vectors, service_us, total_lookups, unique_reads,
        used_interactive, statuses).
        """
        assert self.config is not None
        if len(queries) == 1 and self._interactive is not None:
            result = self._interactive.lookup_one(queries[0], source)
            service_us = (
                self.config.pe_clock.cycles_to_ns(result.latency_pe_cycles) / 1e3
            )
            lookups = len(queries[0])
            return (
                [result.vector],
                service_us,
                lookups,
                len(set(queries[0])),
                True,
                [STATUS_OK],
            )
        result = self._engine.run_batch(queries, source)
        service_us = (
            self.config.pe_clock.cycles_to_ns(result.stats.latency_pe_cycles) / 1e3
        )
        return (
            result.vectors,
            service_us,
            result.stats.total_lookups,
            result.stats.unique_reads,
            False,
            result.query_statuses,
        )

    def _rank_latency_samples(self) -> Dict[int, float]:
        """Mean DRAM read latency per rank over the last batched dispatch.

        The engine resets its memory system per batch, so the access
        trace holds exactly the previous batch's completions.
        """
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for completion in self._engine.memory.trace.completions:
            rank = completion.request.rank
            sums[rank] = sums.get(rank, 0.0) + (
                completion.finish_cycle - completion.start_cycle
            )
            counts[rank] = counts.get(rank, 0) + 1
        return {rank: sums[rank] / counts[rank] for rank in sums}

    def run(self, load: LoadSource, source: VectorSource) -> ServingReport:
        """Serve one load generator's stream to completion."""
        registry = self.registry
        assert registry is not None
        queue_hist = registry.histogram("serving.queue_us")
        latency_hist = registry.histogram("serving.latency_us")
        service_hist = registry.histogram("serving.service_us")
        batch_hist = registry.histogram("serving.batch_size")
        depth_gauge = registry.gauge("serving.queue_depth")

        cache_engine = self._engine
        cache_before = cache_engine.memory.cache_stats
        cache_hits_acc = 0
        cache_misses_acc = 0
        heap: List[tuple] = []
        for request in load.initial():
            heapq.heappush(heap, (request.arrival_us, request.request_id, request))

        report = ServingReport(
            records=[], batches=[], members=[], vectors={}, metrics=registry
        )
        batcher = self.batcher
        now = 0.0
        free_at = 0.0

        while heap or len(batcher):
            # Admit everything that has arrived by `now`.
            while heap and heap[0][0] <= now:
                _, _, request = heapq.heappop(heap)
                registry.counter("serving.requests").inc()
                if self._admission is not None:
                    verdict = self._admission.decide(
                        request, now, len(batcher), free_at
                    )
                    if verdict == SHED:
                        record = RequestRecord(
                            request=request,
                            dispatch_us=request.arrival_us,
                            complete_us=request.arrival_us,
                            batch_index=-1,
                            batch_size=0,
                            interactive=False,
                            status=STATUS_SHED,
                        )
                        report.records.append(record)
                        report.shed_requests += 1
                        registry.counter("serving.requests.shed").inc()
                        registry.counter("serving.slo_violations").inc()
                        report.events.append(
                            TraceEvent(
                                REQUEST_SHED,
                                cycle=max(0, int(request.arrival_us)),
                                args={
                                    "request": request.request_id,
                                    "queue_depth": len(batcher),
                                    "estimated_us": self._admission.forecast_complete_us(
                                        now, len(batcher), free_at
                                    ),
                                },
                            )
                        )
                        # Closed-loop users issue their next request even
                        # after a shed answer (they got *an* answer).
                        follow_up = load.on_complete(request, request.arrival_us)
                        if follow_up is not None:
                            heapq.heappush(
                                heap,
                                (
                                    follow_up.arrival_us,
                                    follow_up.request_id,
                                    follow_up,
                                ),
                            )
                        continue
                batcher.enqueue(request)
                depth_gauge.set(len(batcher))
            if now < free_at:
                # Accelerator busy: advance to it becoming free, or to the
                # next arrival, whichever is first.
                now = min([free_at] + ([heap[0][0]] if heap else []))
                continue

            draining = not heap
            batch = batcher.pop_batch(now, draining=draining) if len(batcher) else None
            if batch is None:
                targets = []
                if heap:
                    targets.append(heap[0][0])
                forced = batcher.next_forced_dispatch_us()
                if forced is not None:
                    targets.append(max(forced, now))
                if not targets:
                    break
                next_now = min(targets)
                now = next_now if next_now > now else now + 1e-9
                continue

            queries = [list(request.indices) for request in batch]
            vectors, service_us, lookups, unique, used_interactive, statuses = (
                self._service_batch(queries, source)
            )
            complete_us = now + service_us
            free_at = complete_us
            if self._admission is not None and not used_interactive:
                self._admission.observe(service_us)
            if self._breaker is not None and not used_interactive:
                if self._profile is not None:
                    self._profile.observe(queries)
                for rank in self._breaker.poll(complete_us):
                    registry.counter("breaker.half_opens").inc()
                for rank in self._breaker.observe(
                    self._rank_latency_samples(), complete_us
                ):
                    report.breaker_opens += 1
                    registry.counter("serving.breaker.opens").inc()
                    report.events.append(
                        TraceEvent(
                            BREAKER_OPENED,
                            cycle=max(0, int(complete_us)),
                            rank=rank,
                            args={
                                "rank": rank,
                                "ratio": self._breaker.ratios()[rank],
                            },
                        )
                    )
                old_engine = self._engine
                self._sync_breaker_engine()
                if self._engine is not old_engine:
                    after = old_engine.memory.cache_stats
                    cache_hits_acc += after.hits - cache_before.hits
                    cache_misses_acc += after.misses - cache_before.misses
                    cache_engine = self._engine
                    cache_before = cache_engine.memory.cache_stats
            batch_index = len(report.batches)
            report.batches.append(queries)
            report.members.append([request.request_id for request in batch])
            report.total_lookups += lookups
            report.unique_reads += unique
            if used_interactive:
                report.interactive_dispatches += 1
                registry.counter("serving.dispatch.interactive").inc()
            else:
                registry.counter("serving.dispatch.batched").inc()
            registry.counter("serving.batches").inc()
            registry.counter("serving.lookups.total").inc(lookups)
            registry.counter("serving.reads.unique").inc(unique)
            batch_hist.record(len(batch))
            service_hist.record(service_us)
            depth_gauge.set(len(batcher))

            for request, vector, status in zip(batch, vectors, statuses):
                record = RequestRecord(
                    request=request,
                    dispatch_us=now,
                    complete_us=complete_us,
                    batch_index=batch_index,
                    batch_size=len(batch),
                    interactive=used_interactive,
                    status=status,
                )
                if status == STATUS_DEGRADED:
                    report.degraded_requests += 1
                    registry.counter("serving.requests.degraded").inc()
                elif status == STATUS_FAILED:
                    report.failed_requests += 1
                    registry.counter("serving.requests.failed").inc()
                report.records.append(record)
                report.vectors[request.request_id] = vector
                queue_hist.record(record.queue_us)
                latency_hist.record(record.latency_us)
                if not record.slo_met:
                    registry.counter("serving.slo_violations").inc()
                follow_up = load.on_complete(request, complete_us)
                if follow_up is not None:
                    heapq.heappush(
                        heap,
                        (follow_up.arrival_us, follow_up.request_id, follow_up),
                    )
            report.makespan_us = max(report.makespan_us, complete_us)

        # This run's share of the (possibly already-warm) tier's stats,
        # accumulated across any breaker-driven engine rebuilds.
        cache_after = cache_engine.memory.cache_stats
        report.cache_hits = cache_hits_acc + cache_after.hits - cache_before.hits
        report.cache_misses = (
            cache_misses_acc + cache_after.misses - cache_before.misses
        )
        if report.cache_hits or report.cache_misses:
            registry.counter("serving.cache.hits").inc(report.cache_hits)
            registry.counter("serving.cache.misses").inc(report.cache_misses)
        report.records.sort(key=lambda record: record.request.request_id)
        return report
