"""Event-driven online serving simulator.

Couples a load generator (:mod:`repro.serving.loadgen`), the continuous
batcher (:mod:`repro.serving.batcher`), and the hardware timing model into
one discrete-event loop over **modeled time**:

* arrivals are admitted to the batcher as the clock passes them;
* whenever the accelerator is free the batcher may dispatch — a full
  sharing-aware batch, or a partial one when the oldest request's SLO
  budget is nearly spent;
* a dispatched batch occupies the accelerator for the engine's modeled
  batch latency; singleton batches can fall back to the compare-free
  :class:`~repro.core.interactive.InteractiveEngine` path, which is the
  low-load latency win (paper §IV-C);
* per-request enqueue/dispatch/complete timestamps are threaded through
  :mod:`repro.obs.metrics`, so p50/p99 latency, SLO attainment, and dedup
  savings come out of the same instrument set as every other subsystem.

Formed batches run through the *same* :meth:`FafnirEngine.run_batch` as the
offline path — identical formed batches produce byte-identical vectors (the
differential test asserts exactly that).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine, VectorSource
from repro.core.interactive import InteractiveEngine
from repro.obs.metrics import MetricsRegistry

from repro.serving.batcher import ContinuousBatcher
from repro.serving.loadgen import Request
from repro.tiering.cache import HotTierConfig


class LoadSource(Protocol):
    """What the simulator needs from a load generator."""

    def initial(self) -> List[Request]: ...

    def on_complete(self, request: Request, complete_us: float) -> Optional[Request]: ...


@dataclass(frozen=True)
class RequestRecord:
    """One served request's full timeline."""

    request: Request
    dispatch_us: float
    complete_us: float
    batch_index: int
    batch_size: int
    interactive: bool

    @property
    def queue_us(self) -> float:
        return self.dispatch_us - self.request.arrival_us

    @property
    def latency_us(self) -> float:
        return self.complete_us - self.request.arrival_us

    @property
    def slo_met(self) -> bool:
        return self.complete_us <= self.request.deadline_us


@dataclass
class ServingReport:
    """Everything one serving run produced."""

    records: List[RequestRecord]
    batches: List[List[List[int]]]
    members: List[List[int]]
    vectors: Dict[int, np.ndarray]
    metrics: MetricsRegistry
    total_lookups: int = 0
    unique_reads: int = 0
    makespan_us: float = 0.0
    interactive_dispatches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def _latencies(self) -> List[float]:
        return sorted(record.latency_us for record in self.records)

    def latency_percentile_us(self, p: float) -> float:
        ordered = self._latencies()
        if not ordered:
            return 0.0
        rank = max(1, -(-int(p * len(ordered)) // 100))
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def slo_attainment(self) -> float:
        if not self.records:
            return 1.0
        met = sum(1 for record in self.records if record.slo_met)
        return met / len(self.records)

    @property
    def dedup_savings_fraction(self) -> float:
        if not self.total_lookups:
            return 0.0
        return (self.total_lookups - self.unique_reads) / self.total_lookups

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return sum(len(batch) for batch in self.batches) / len(self.batches)

    @property
    def observed_qps(self) -> float:
        if not self.records or self.makespan_us <= 0:
            return 0.0
        return len(self.records) * 1e6 / self.makespan_us

    @property
    def cache_hit_rate(self) -> float:
        accesses = self.cache_hits + self.cache_misses
        if accesses <= 0:
            return 0.0
        return min(1.0, self.cache_hits / accesses)

    def summary(self) -> Dict[str, float]:
        return {
            "requests": float(len(self.records)),
            "batches": float(len(self.batches)),
            "mean_batch_size": self.mean_batch_size,
            "interactive_dispatches": float(self.interactive_dispatches),
            "p50_us": self.latency_percentile_us(50),
            "p99_us": self.latency_percentile_us(99),
            "slo_attainment": self.slo_attainment,
            "dedup_savings_fraction": self.dedup_savings_fraction,
            "observed_qps": self.observed_qps,
            "makespan_us": self.makespan_us,
            "cache_hit_rate": self.cache_hit_rate,
        }


@dataclass
class ServingSimulator:
    """Drives one serving run over modeled time.

    Args:
        batcher: admission + continuous batching policy.
        config: accelerator configuration; ``config.batch_size`` must admit
            the batcher's batches.
        interactive_fallback: serve singleton batches on the compare-free
            interactive path instead of the batch pipeline.
        registry: metrics sink; a fresh one is created when omitted.
        cache: opt-in hot-index tier for the batch engine
            (:class:`~repro.tiering.cache.HotTierConfig`).  The tier
            stays warm across formed batches, so skewed load keeps
            hitting it; functional results are unchanged — only the
            modeled batch service time and DRAM traffic drop, which is
            where the SLO-attainment uplift comes from.  Interactive
            singleton dispatches bypass the memory system and the tier.
    """

    batcher: ContinuousBatcher
    config: Optional[FafnirConfig] = None
    engine: str = "object"
    kernel: str = "vector"
    interactive_fallback: bool = True
    registry: Optional[MetricsRegistry] = None
    cache: Optional[HotTierConfig] = None
    _engine: FafnirEngine = field(init=False, repr=False)
    _interactive: Optional[InteractiveEngine] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.config = self.config or FafnirConfig()
        if self.batcher.batch_size > self.config.batch_size:
            raise ValueError(
                f"batcher forms batches of {self.batcher.batch_size} but the "
                f"engine accepts at most {self.config.batch_size}"
            )
        self.registry = self.registry if self.registry is not None else MetricsRegistry()
        self._engine = FafnirEngine(
            config=self.config,
            kernel=self.kernel,
            engine=self.engine,
            cache=self.cache,
        )
        self._interactive = (
            InteractiveEngine(config=self.config) if self.interactive_fallback else None
        )

    # ------------------------------------------------------------------
    def _service_batch(self, queries: Sequence[List[int]], source: VectorSource):
        """Run one formed batch on the modeled hardware.

        Returns (vectors, service_us, total_lookups, unique_reads,
        used_interactive).
        """
        assert self.config is not None
        if len(queries) == 1 and self._interactive is not None:
            result = self._interactive.lookup_one(queries[0], source)
            service_us = (
                self.config.pe_clock.cycles_to_ns(result.latency_pe_cycles) / 1e3
            )
            lookups = len(queries[0])
            return [result.vector], service_us, lookups, len(set(queries[0])), True
        result = self._engine.run_batch(queries, source)
        service_us = (
            self.config.pe_clock.cycles_to_ns(result.stats.latency_pe_cycles) / 1e3
        )
        return (
            result.vectors,
            service_us,
            result.stats.total_lookups,
            result.stats.unique_reads,
            False,
        )

    def run(self, load: LoadSource, source: VectorSource) -> ServingReport:
        """Serve one load generator's stream to completion."""
        registry = self.registry
        assert registry is not None
        queue_hist = registry.histogram("serving.queue_us")
        latency_hist = registry.histogram("serving.latency_us")
        service_hist = registry.histogram("serving.service_us")
        batch_hist = registry.histogram("serving.batch_size")
        depth_gauge = registry.gauge("serving.queue_depth")

        cache_before = self._engine.memory.cache_stats
        heap: List[tuple] = []
        for request in load.initial():
            heapq.heappush(heap, (request.arrival_us, request.request_id, request))

        report = ServingReport(
            records=[], batches=[], members=[], vectors={}, metrics=registry
        )
        batcher = self.batcher
        now = 0.0
        free_at = 0.0

        while heap or len(batcher):
            # Admit everything that has arrived by `now`.
            while heap and heap[0][0] <= now:
                _, _, request = heapq.heappop(heap)
                batcher.enqueue(request)
                registry.counter("serving.requests").inc()
                depth_gauge.set(len(batcher))
            if now < free_at:
                # Accelerator busy: advance to it becoming free, or to the
                # next arrival, whichever is first.
                now = min([free_at] + ([heap[0][0]] if heap else []))
                continue

            draining = not heap
            batch = batcher.pop_batch(now, draining=draining) if len(batcher) else None
            if batch is None:
                targets = []
                if heap:
                    targets.append(heap[0][0])
                forced = batcher.next_forced_dispatch_us()
                if forced is not None:
                    targets.append(max(forced, now))
                if not targets:
                    break
                next_now = min(targets)
                now = next_now if next_now > now else now + 1e-9
                continue

            queries = [list(request.indices) for request in batch]
            vectors, service_us, lookups, unique, used_interactive = (
                self._service_batch(queries, source)
            )
            complete_us = now + service_us
            free_at = complete_us
            batch_index = len(report.batches)
            report.batches.append(queries)
            report.members.append([request.request_id for request in batch])
            report.total_lookups += lookups
            report.unique_reads += unique
            if used_interactive:
                report.interactive_dispatches += 1
                registry.counter("serving.dispatch.interactive").inc()
            else:
                registry.counter("serving.dispatch.batched").inc()
            registry.counter("serving.batches").inc()
            registry.counter("serving.lookups.total").inc(lookups)
            registry.counter("serving.reads.unique").inc(unique)
            batch_hist.record(len(batch))
            service_hist.record(service_us)
            depth_gauge.set(len(batcher))

            for request, vector in zip(batch, vectors):
                record = RequestRecord(
                    request=request,
                    dispatch_us=now,
                    complete_us=complete_us,
                    batch_index=batch_index,
                    batch_size=len(batch),
                    interactive=used_interactive,
                )
                report.records.append(record)
                report.vectors[request.request_id] = vector
                queue_hist.record(record.queue_us)
                latency_hist.record(record.latency_us)
                if not record.slo_met:
                    registry.counter("serving.slo_violations").inc()
                follow_up = load.on_complete(request, complete_us)
                if follow_up is not None:
                    heapq.heappush(
                        heap,
                        (follow_up.arrival_us, follow_up.request_id, follow_up),
                    )
            report.makespan_us = max(report.makespan_us, complete_us)

        # This run's share of the (possibly already-warm) tier's stats.
        cache_after = self._engine.memory.cache_stats
        report.cache_hits = cache_after.hits - cache_before.hits
        report.cache_misses = cache_after.misses - cache_before.misses
        if report.cache_hits or report.cache_misses:
            registry.counter("serving.cache.hits").inc(report.cache_hits)
            registry.counter("serving.cache.misses").inc(report.cache_misses)
        report.records.sort(key=lambda record: record.request.request_id)
        return report
