"""Online request serving: load generation, continuous batching, SLOs.

The offline engine consumes pre-formed batches; this package serves an
*arrival stream* — the production shape of a FAFNIR deployment (top ROADMAP
item, MicroRec-style inference serving).  See ``docs/architecture.md``
("Online serving") for the admission → batching → dispatch pipeline and
``repro.cli serve`` for the command-line front-end.
"""

from repro.serving.batcher import ContinuousBatcher
from repro.serving.loadgen import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
    RampStage,
    Request,
)
from repro.serving.server import (
    LoadSource,
    RequestRecord,
    ServingReport,
    ServingSimulator,
)

__all__ = [
    "ClosedLoopGenerator",
    "ContinuousBatcher",
    "LoadSource",
    "OpenLoopGenerator",
    "RampStage",
    "Request",
    "RequestRecord",
    "ServingReport",
    "ServingSimulator",
]
