"""Admission + continuous batch formation under a latency SLO.

The offline :class:`~repro.workloads.scheduler.SharingAwareScheduler` needs
the whole stream up front; serving gets an *arrival* stream and has to trade
dedup savings against queueing delay continuously (the RecNMP framing: every
microsecond a query waits for sharers is a microsecond of its SLO budget
spent).  :class:`ContinuousBatcher` holds pending requests and, whenever the
accelerator is free, decides between:

* **dispatch full** — a full hardware batch is available; form it
  sharing-aware (seeded with the oldest request, overlap-matched within the
  reorder window, aging bound enforced);
* **dispatch partial** — the oldest pending request's deadline minus the
  estimated service time is upon us: stop waiting for sharers and ship what
  we have;
* **wait** — neither holds; hold the queue open so future sharers can join.

Batch formation itself is the *fixed* sharing-aware step
(:meth:`~repro.workloads.scheduler.SharingAwareScheduler.form_batch`): one
precomputed index set per admitted request, and the aging counter guarantees
a request is never passed over more than ``window`` formations.
"""

from __future__ import annotations

from typing import List, Optional

from repro.workloads.scheduler import PendingQuery, SharingAwareScheduler

from repro.serving.loadgen import Request


class ContinuousBatcher:
    """Continuously forms hardware batches from an arrival stream."""

    def __init__(
        self,
        batch_size: int,
        window: int = 64,
        dispatch_margin_us: float = 3.0,
    ) -> None:
        """Args:
        batch_size: hardware batch capacity (must match the engine config).
        window: sharing-aware reorder window *and* aging bound, in batch
            formations (see ``SharingAwareScheduler``).
        dispatch_margin_us: estimated service time of a batch — a partial
            batch is dispatched when the oldest pending request has only
            this much SLO budget left.
        """
        if dispatch_margin_us < 0:
            raise ValueError("dispatch_margin_us must be non-negative")
        self._scheduler = SharingAwareScheduler(batch_size, window=max(window, batch_size))
        self.dispatch_margin_us = dispatch_margin_us
        self._pending: List[PendingQuery] = []

    @property
    def batch_size(self) -> int:
        return self._scheduler.batch_size

    @property
    def window(self) -> int:
        return self._scheduler.window

    def __len__(self) -> int:
        return len(self._pending)

    def enqueue(self, request: Request) -> None:
        """Admit one request (requests must arrive in timestamp order)."""
        if self._pending and request.arrival_us < self._pending[-1].payload.arrival_us:  # type: ignore[union-attr]
            raise ValueError("requests must be enqueued in arrival order")
        self._pending.append(
            PendingQuery.wrap(request.indices, payload=request)
        )

    def oldest(self) -> Optional[Request]:
        if not self._pending:
            return None
        request = self._pending[0].payload
        assert isinstance(request, Request)
        return request

    def next_forced_dispatch_us(self) -> Optional[float]:
        """The time at which waiting any longer would break the oldest
        pending request's SLO (given the service-time margin)."""
        oldest = self.oldest()
        if oldest is None:
            return None
        return oldest.deadline_us - self.dispatch_margin_us

    def pop_batch(self, now_us: float, draining: bool = False) -> Optional[List[Request]]:
        """Form and remove one batch if dispatch conditions hold.

        Args:
            now_us: current modeled time.
            draining: no further arrivals will ever come — stop waiting
                for sharers and flush whatever is pending.
        """
        if not self._pending:
            return None
        full = len(self._pending) >= self.batch_size
        forced = self.next_forced_dispatch_us()
        assert forced is not None
        if not (full or draining or now_us >= forced):
            return None
        entries = self._scheduler.form_batch(self._pending)
        batch: List[Request] = []
        for entry in entries:
            request = entry.payload
            assert isinstance(request, Request)
            batch.append(request)
        return batch
