"""Runnable reproductions of every paper figure and table.

Importing this package registers all experiments; use
:func:`list_experiments` / :func:`get_experiment` or the CLI's
``experiments`` subcommand to run them.
"""

from repro.experiments.base import (
    Experiment,
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
)

# Importing these modules populates the registry.
from repro.experiments import embedding as _embedding  # noqa: F401
from repro.experiments import hardware as _hardware  # noqa: F401
from repro.experiments import spmv_experiments as _spmv  # noqa: F401

__all__ = [
    "Experiment",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "register",
]
