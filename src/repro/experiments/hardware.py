"""Hardware bookkeeping experiments (Tables I, IV, V, VI; Fig. 16; §IV-A)."""

from __future__ import annotations

from repro.analysis import Table
from repro.core import FafnirConfig
from repro.experiments.base import ExperimentResult, register
from repro.hw import (
    AsicPower,
    ConnectionComparison,
    fpga_power_breakdown_w,
    pe_area_mm2,
    pe_utilization,
    recnmp_comparison_mw,
    recnmp_system_area_mm2,
    reference_system_area,
    system_utilization,
    table1,
)


@register("table1", "PE and node buffer sizes")
def table1_buffers() -> ExperimentResult:
    paper = {8: (4.6, 32.4), 16: (9.3, 64.8), 32: (18.5, 129.5)}
    rows = table1(FafnirConfig())
    table = Table(["batch", "PE_KB", "paper_PE_KB", "node_KB", "paper_node_KB"])
    for batch_size in (8, 16, 32):
        paper_pe, paper_node = paper[batch_size]
        table.add_row(
            [
                batch_size,
                f"{rows[batch_size]['pe_kb']:.1f}",
                paper_pe,
                f"{rows[batch_size]['dimm_rank_node_kb']:.1f}",
                paper_node,
            ]
        )
    return ExperimentResult("table1", "buffer sizing", table, data={"rows": rows})


@register("table4", "compute-unit latencies and critical path")
def table4_latencies() -> ExperimentResult:
    latencies = FafnirConfig().latencies
    table = Table(["operation", "cycles", "paper_cycles"])
    table.add_row(["compare", latencies.compare, 12])
    table.add_row(["reduce (value)", latencies.reduce_value, 4])
    table.add_row(["reduce (header)", latencies.reduce_header, 16])
    table.add_row(["forward", latencies.forward, 2])
    table.add_row(["reduce path", latencies.reduce_path, 28])
    table.add_row(["forward path", latencies.forward_path, 14])
    return ExperimentResult(
        "table4", "PE latencies", table, data={"latencies": latencies}
    )


@register("table5", "FPGA resource utilization (XCVU9P)")
def table5_fpga() -> ExperimentResult:
    utilization = {
        "system": system_utilization(FafnirConfig()).utilization_percent,
        "pe": pe_utilization(1).utilization_percent,
        "dimm_rank_node": pe_utilization(7).utilization_percent,
        "channel_node": pe_utilization(3).utilization_percent,
    }
    table = Table(["unit", "lut_%", "lutram_%", "ff_%", "bram_%"])
    for unit, numbers in utilization.items():
        table.add_row(
            [
                unit,
                f"{numbers['lut']:.2f}",
                f"{numbers['lutram']:.3f}",
                f"{numbers['ff']:.2f}",
                f"{numbers['bram']:.2f}",
            ]
        )
    return ExperimentResult(
        "table5", "FPGA utilization", table, data={"utilization": utilization}
    )


@register("table6", "7 nm ASIC area and power")
def table6_asic() -> ExperimentResult:
    area = reference_system_area()
    power = AsicPower()
    table = Table(["quantity", "model", "paper"])
    table.add_row(["PE area (mm²)", f"{pe_area_mm2():.3f}", 0.077])
    table.add_row(["DIMM/rank node (mm²)", f"{area.dimm_rank_node_mm2:.3f}", 0.282])
    table.add_row(["channel node (mm²)", f"{area.channel_node_mm2:.3f}", 0.121])
    table.add_row(["system area (mm²)", f"{area.total_mm2:.3f}", "1.2-1.25"])
    table.add_row(["system power (mW)", f"{power.total_mw:.2f}", 111.64])
    table.add_row(["per-DIMM power (mW)", f"{power.per_dimm_mw:.2f}", 5.9])
    table.add_row(["RecNMP power/DIMM (mW)", f"{recnmp_comparison_mw(1):.1f}", 184.2])
    table.add_row(
        ["RecNMP area 16 DIMMs (mm²)", f"{recnmp_system_area_mm2(16):.2f}", 8.64]
    )
    return ExperimentResult(
        "table6", "ASIC area/power", table, data={"area": area, "power": power}
    )


@register("fig16", "FPGA dynamic power breakdown")
def fig16_power() -> ExperimentResult:
    breakdowns = {
        node: fpga_power_breakdown_w(node) for node in ("dimm_rank", "channel")
    }
    table = Table(["node", "total_W"] + list(breakdowns["dimm_rank"].keys()))
    for node, parts in breakdowns.items():
        table.add_row(
            [node, f"{sum(parts.values()):.2f}"]
            + [f"{value:.3f}" for value in parts.values()]
        )
    return ExperimentResult(
        "fig16", "FPGA power breakdown", table, data={"breakdowns": breakdowns}
    )


@register("connections", "connection counts: all-to-all vs tree (§IV-A)")
def connections() -> ExperimentResult:
    comparisons = [
        ConnectionComparison(memory_devices=m, compute_devices=c)
        for m, c in [(8, 4), (16, 4), (32, 4), (64, 8), (128, 16)]
    ]
    table = Table(["m (memory)", "c (compute)", "all_to_all", "fafnir", "reduction"])
    for comparison in comparisons:
        table.add_row(
            [
                comparison.memory_devices,
                comparison.compute_devices,
                comparison.all_to_all,
                comparison.fafnir,
                f"{comparison.reduction_factor:.2f}×",
            ]
        )
    return ExperimentResult(
        "connections", "connection scaling", table, data={"comparisons": comparisons}
    )
