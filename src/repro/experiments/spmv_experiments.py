"""SpMV experiments (Figs. 9 and 14)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis import Table
from repro.baselines.twostep import TwoStepSpmvEngine
from repro.experiments.base import ExperimentResult, register
from repro.spmv import FafnirSpmvEngine, sweep
from repro.workloads import fig14_suite

FIG09_COLUMNS = [
    2_048,
    16_384,
    131_072,
    1_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
]


@register("fig09", "SpMV iterations/rounds/merges vs matrix width")
def fig09_planner() -> ExperimentResult:
    plans = {
        vector_size: sweep(FIG09_COLUMNS, vector_size=vector_size)
        for vector_size in (1024, 2048)
    }
    table = Table(["columns", "vec", "chunks", "iterations", "rounds", "merges"])
    for vector_size in (1024, 2048):
        for plan in plans[vector_size]:
            table.add_row(
                [
                    plan.n_cols,
                    vector_size,
                    plan.chunks,
                    plan.iterations,
                    "/".join(str(r) for r in plan.rounds_per_iteration),
                    plan.total_merges,
                ]
            )
    return ExperimentResult("fig09", "SpMV planner sweep", table, data={"plans": plans})


@register("fig14", "FAFNIR vs Two-Step on SpMV workloads")
def fig14_spmv() -> ExperimentResult:
    fafnir = FafnirSpmvEngine()
    twostep = TwoStepSpmvEngine()
    rng = np.random.default_rng(14)
    rows: List[Dict[str, object]] = []
    for workload in fig14_suite():
        matrix = workload.matrix()
        x = rng.normal(size=matrix.shape[1])
        fafnir_result = fafnir.multiply(matrix, x)
        twostep_result = twostep.multiply(matrix, x)
        if not np.allclose(fafnir_result.y, twostep_result.y):
            raise AssertionError(f"engines disagree on {workload.name}")
        rows.append(
            {
                "name": workload.name,
                "group": workload.group,
                "nnz": matrix.nnz,
                "merge_iterations": fafnir_result.plan.merge_iterations,
                "fafnir_step1": fafnir_result.stats.step1_ns,
                "fafnir_merge": fafnir_result.stats.merge_ns,
                "twostep_step1": twostep_result.stats.step1_ns,
                "twostep_merge": twostep_result.stats.merge_ns,
                "speedup": twostep_result.stats.total_ns / fafnir_result.stats.total_ns,
            }
        )
    table = Table(["workload", "group", "nnz", "merge_iters", "speedup_vs_twostep"])
    for row in rows:
        table.add_row(
            [
                row["name"],
                row["group"],
                row["nnz"],
                row["merge_iterations"],
                f"{row['speedup']:.2f}×",
            ]
        )
    return ExperimentResult("fig14", "SpMV speedup over Two-Step", table, data={"rows": rows})
