"""Embedding-lookup experiments (Figs. 2, 3, 11, 12, 13, 15)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis import (
    MovementModel,
    Table,
    max_accesses_per_rank,
    unique_fraction_stats,
)
from repro.baselines import (
    CpuGatherEngine,
    FafnirGatherEngine,
    RecNmpGatherEngine,
    TensorDimmGatherEngine,
)
from repro.core import FafnirConfig, FafnirEngine
from repro.experiments.base import ExperimentResult, register
from repro.memory import MemoryConfig
from repro.workloads import EmbeddingTableSet, InferenceModel, QueryGenerator


def _tables(seed: int = 0) -> EmbeddingTableSet:
    return EmbeddingTableSet(
        num_tables=32, rows_per_table=100_000, vector_elements=128, seed=seed
    )


@register("fig02", "data movement to the cores (§III-A)")
def fig02_data_movement() -> ExperimentResult:
    tables = _tables()
    batch = QueryGenerator.paper_calibrated(tables, seed=2).batch(16)
    engines = {
        "baseline": CpuGatherEngine(),
        "tensordimm": TensorDimmGatherEngine(),
        "recnmp": RecNmpGatherEngine(),
        "fafnir": FafnirGatherEngine(),
    }
    results = {
        name: engine.lookup(batch, tables.vector) for name, engine in engines.items()
    }
    model = MovementModel(queries=16, query_len=16, vector_elements=128)
    table = Table(["engine", "bytes_to_core", "vs_baseline", "model_prediction"])
    baseline = results["baseline"].bytes_to_core
    data: Dict[str, int] = {}
    for name, result in results.items():
        predicted = {
            "baseline": model.baseline_elements,
            "tensordimm": model.tensordimm_elements,
            "recnmp": model.recnmp_expected_elements(16),
            "fafnir": model.fafnir_elements,
        }[name] * 4
        data[name] = result.bytes_to_core
        table.add_row(
            [
                name,
                result.bytes_to_core,
                f"{baseline / result.bytes_to_core:.2f}×",
                int(predicted),
            ]
        )
    return ExperimentResult("fig02", "data movement", table, data={"bytes": data, "batch": batch})


@register("fig03", "unique indices in batches of queries")
def fig03_unique_indices() -> ExperimentResult:
    stats = unique_fraction_stats(
        _tables(), batch_sizes=[4, 8, 16, 32, 64], seeds=range(6)
    )
    table = Table(["batch_size", "unique_%", "shared_%"])
    for entry in stats:
        table.add_row(
            [
                entry.batch_size,
                f"{entry.mean_unique_percent:.1f}",
                f"{entry.mean_savings_percent:.1f}",
            ]
        )
    return ExperimentResult(
        "fig03",
        "unique-index fraction vs batch size",
        table,
        data={"stats": stats},
    )


@register("fig11", "single-query latency breakdown")
def fig11_single_query() -> ExperimentResult:
    tables = _tables()
    query = [QueryGenerator.paper_calibrated(tables, seed=5).query()]
    results = {
        "tensordimm": TensorDimmGatherEngine().lookup(query, tables.vector),
        "recnmp": RecNmpGatherEngine().lookup(query, tables.vector),
        "fafnir": FafnirGatherEngine(config=FafnirConfig(batch_size=1)).lookup(
            query, tables.vector
        ),
    }
    table = Table(["engine", "memory_ns", "compute_ns", "core_ns", "total_ns"])
    for name, result in results.items():
        timing = result.timing
        table.add_row(
            [
                name,
                f"{timing.memory_ns:.0f}",
                f"{timing.ndp_compute_ns:.0f}",
                f"{timing.core_compute_ns:.0f}",
                f"{timing.total_ns:.0f}",
            ]
        )
    memory_ratio = (
        results["tensordimm"].timing.memory_ns / results["recnmp"].timing.memory_ns
    )
    compute_ratio = (
        results["tensordimm"].timing.ndp_compute_ns
        / results["fafnir"].timing.ndp_compute_ns
    )
    table.add_row(["tdimm/recnmp memory", f"{memory_ratio:.2f}×", "paper 4.45×", "", ""])
    table.add_row(["tdimm/fafnir compute", f"{compute_ratio:.2f}×", "paper 2.5×", "", ""])
    return ExperimentResult(
        "fig11",
        "single-query latency",
        table,
        data={
            "results": results,
            "memory_ratio": memory_ratio,
            "compute_ratio": compute_ratio,
        },
    )


@register("fig12", "end-to-end inference speedup vs ranks")
def fig12_end_to_end(queries: int = 1024) -> ExperimentResult:
    tables = _tables()
    batch = QueryGenerator.paper_calibrated(tables, seed=3).batch(queries)
    model = InferenceModel(fc_ms=0.5, other_ms=0.1)
    rank_sweep = (2, 4, 8, 16, 32)

    baseline_ms = (
        RecNmpGatherEngine(memory_config=MemoryConfig.rank_sweep(1))
        .lookup(batch, tables.vector)
        .total_ns
        / 1e6
    )
    base_total = model.breakdown(baseline_ms).total_ms

    table = Table(
        [
            "ranks",
            "recnmp_speedup",
            "fafnir_serial_speedup",
            "fafnir_speedup",
            "ideal_speedup",
        ]
    )
    series: Dict[str, List[float]] = {
        "recnmp": [],
        "fafnir_serial": [],
        "fafnir": [],
        "ideal": [],
    }
    for ranks in rank_sweep:
        memory_config = MemoryConfig.rank_sweep(ranks)
        recnmp_ms = (
            RecNmpGatherEngine(memory_config=memory_config)
            .lookup(batch, tables.vector)
            .total_ns
            / 1e6
        )
        # The 1024-query request spans many hardware batches: the pipelined
        # adapter overlaps chunk k's memory phase with chunk k−1's tree
        # traversal (paper §IV); the serial variant is the batch-at-a-time
        # host it replaces.
        fafnir_serial_ms = (
            FafnirGatherEngine(
                config=FafnirConfig().with_ranks(ranks),
                memory_config=memory_config,
                pipeline=False,
            )
            .lookup(batch, tables.vector)
            .total_ns
            / 1e6
        )
        fafnir_ms = (
            FafnirGatherEngine(
                config=FafnirConfig().with_ranks(ranks),
                memory_config=memory_config,
                pipeline=True,
            )
            .lookup(batch, tables.vector)
            .total_ns
            / 1e6
        )
        series["recnmp"].append(base_total / model.breakdown(recnmp_ms).total_ms)
        series["fafnir_serial"].append(
            base_total / model.breakdown(fafnir_serial_ms).total_ms
        )
        series["fafnir"].append(base_total / model.breakdown(fafnir_ms).total_ms)
        series["ideal"].append(
            base_total / model.ideal_breakdown(baseline_ms, ranks).total_ms
        )
        table.add_row(
            [
                ranks,
                f"{series['recnmp'][-1]:.2f}",
                f"{series['fafnir_serial'][-1]:.2f}",
                f"{series['fafnir'][-1]:.2f}",
                f"{series['ideal'][-1]:.2f}",
            ]
        )
    return ExperimentResult(
        "fig12",
        "end-to-end speedup vs ranks",
        table,
        data={"ranks": list(rank_sweep), **series},
    )


@register("fig13", "speedup over RecNMP vs batch size")
def fig13_batch_scalability() -> ExperimentResult:
    tables = _tables()
    batch_sizes = (8, 16, 32)
    paper_no_dedup = {8: 3.1, 16: 6.7, 32: 12.3}
    paper_full = {8: 9.9, 16: 15.4, 32: 21.3}

    table = Table(
        ["batch", "recnmp/tdimm", "no_dedup_speedup", "paper", "full_speedup", "paper_full"]
    )
    raw: Dict[int, Dict[str, float]] = {}
    for batch_size in batch_sizes:
        batch = QueryGenerator.paper_calibrated(tables, seed=2).batch(batch_size)
        config = FafnirConfig(batch_size=batch_size)
        row = {
            "tensordimm": TensorDimmGatherEngine().lookup(batch, tables.vector).total_ns,
            "recnmp": RecNmpGatherEngine().lookup(batch, tables.vector).total_ns,
            "recnmp_cache": RecNmpGatherEngine(with_cache=True)
            .lookup(batch, tables.vector)
            .total_ns,
            "fafnir_no_dedup": FafnirGatherEngine(config=config, deduplicate=False)
            .lookup(batch, tables.vector)
            .total_ns,
            "fafnir": FafnirGatherEngine(config=config)
            .lookup(batch, tables.vector)
            .total_ns,
        }
        raw[batch_size] = row
        table.add_row(
            [
                batch_size,
                f"{row['tensordimm'] / row['recnmp']:.1f}×",
                f"{row['recnmp'] / row['fafnir_no_dedup']:.2f}×",
                f"{paper_no_dedup[batch_size]}×",
                f"{row['recnmp_cache'] / row['fafnir']:.2f}×",
                f"{paper_full[batch_size]}×",
            ]
        )
    return ExperimentResult(
        "fig13",
        "batch-size scalability",
        table,
        data={"raw": raw, "batch_sizes": list(batch_sizes)},
        notes=(
            "Latency-metric harness; the paper's throughput-flavoured factors "
            "are larger (see EXPERIMENTS.md)."
        ),
    )


@register("fig15", "memory accesses after redundant-access elimination")
def fig15_memory_accesses() -> ExperimentResult:
    tables = _tables()
    batch_sizes = (8, 16, 32)
    paper = {8: 34, 16: 43, 32: 58}
    table = Table(["batch", "accesses_saved_%", "paper_%", "max_per_leaf"])
    data: Dict[int, Dict[str, float]] = {}
    for batch_size in batch_sizes:
        savings, per_leaf = [], []
        for seed in range(6):
            batch = QueryGenerator.paper_calibrated(tables, seed=seed).batch(batch_size)
            engine = FafnirEngine(FafnirConfig(batch_size=batch_size))
            stats = engine.run_batch(batch, tables.vector).stats
            savings.append(stats.accesses_saved / stats.total_lookups)
            per_leaf.append(max_accesses_per_rank(batch))
        data[batch_size] = {
            "saving": float(np.mean(savings)),
            "per_leaf_max": max(per_leaf),
        }
        table.add_row(
            [
                batch_size,
                f"{100 * data[batch_size]['saving']:.1f}",
                paper[batch_size],
                data[batch_size]["per_leaf_max"],
            ]
        )
    return ExperimentResult(
        "fig15", "redundant-access elimination", table, data={"rows": data}
    )
