"""Experiment framework: each paper figure/table as a runnable object.

A :class:`Experiment` couples an id ("fig13"), a description, and a runner
returning an :class:`ExperimentResult` — a rendered table plus the raw data
series the asserting benches and the CLI both consume.  The registry lets
``python -m repro.cli experiments --run fig13`` regenerate any single
artifact without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.report import Table


@dataclass
class ExperimentResult:
    """One experiment's reproduced artifact."""

    experiment_id: str
    title: str
    table: Table
    data: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} ==", self.table.render()]
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    experiment_id: str
    title: str
    runner: Callable[[], ExperimentResult]

    def run(self) -> ExperimentResult:
        result = self.runner()
        if result.experiment_id != self.experiment_id:
            raise RuntimeError(
                f"runner for {self.experiment_id} returned result tagged "
                f"{result.experiment_id}"
            )
        return result


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment_id: str, title: str):
    """Decorator registering a runner under an experiment id."""

    def wrap(runner: Callable[[], ExperimentResult]) -> Callable[[], ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ValueError(f"experiment {experiment_id!r} already registered")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id, title=title, runner=runner
        )
        return runner

    return wrap


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None


def list_experiments() -> List[Experiment]:
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]
