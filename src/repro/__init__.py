"""FAFNIR reproduction: near-memory intelligent reduction for sparse gathering.

A pure-Python, cycle-approximate reproduction of *FAFNIR: Accelerating
Sparse Gathering by Using Efficient Near-Memory Intelligent Reduction*
(Asgari et al., HPCA 2021): the reduction-tree accelerator, a DDR4-like
memory substrate, the TensorDIMM / RecNMP / Two-Step baselines, SpMV and its
applications, and the hardware bookkeeping models behind the paper's tables.

Quickstart::

    from repro import FafnirAccelerator
    from repro.workloads import EmbeddingTableSet, QueryGenerator

    tables = EmbeddingTableSet.random(seed=7)
    fafnir = FafnirAccelerator(operator="sum")
    batch = QueryGenerator.paper_calibrated(tables).batch(32)
    result = fafnir.lookup(tables.vector, batch)
"""

from repro.core import (
    FafnirAccelerator,
    FafnirConfig,
    FafnirEngine,
    LookupResult,
    LookupStats,
)
from repro.core.operators import available_operators, get_operator

__version__ = "1.0.0"

__all__ = [
    "FafnirAccelerator",
    "FafnirConfig",
    "FafnirEngine",
    "LookupResult",
    "LookupStats",
    "available_operators",
    "get_operator",
    "__version__",
]
