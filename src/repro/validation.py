"""Anchor validation against the paper's published numbers (paper Fig. 10).

The paper's flow validates reproduced baseline numbers against the numbers
their papers report; this module does the same for this reproduction's
*bookkeeping anchors* — the quantities that should match the paper
numerically (buffer sizes, area, power, connection counts, pipeline
latencies), as opposed to the simulator-dependent performance figures whose
shape EXPERIMENTS.md tracks.

Run programmatically (``validate_anchors()``) or via
``python -m repro.cli validate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.core.config import FafnirConfig
from repro.hw import (
    AsicPower,
    all_to_all_connections,
    fafnir_connections,
    pe_area_mm2,
    recnmp_comparison_mw,
    recnmp_system_area_mm2,
    reference_system_area,
    size_buffers,
    table5,
)


@dataclass(frozen=True)
class AnchorResult:
    """One anchor comparison: the model's value vs the paper's.

    ``mode`` is "approx" (within relative ``tolerance`` of the paper value)
    or "at_most" (must not exceed the paper's stated bound).
    """

    name: str
    measured: float
    expected: float
    tolerance: float  # relative
    mode: str = "approx"

    @property
    def ok(self) -> bool:
        if self.mode == "at_most":
            return self.measured <= self.expected * (1 + self.tolerance)
        if self.expected == 0:
            return self.measured == 0
        return abs(self.measured - self.expected) / abs(self.expected) <= self.tolerance

    @property
    def deviation_percent(self) -> float:
        if self.expected == 0:
            return 0.0
        return 100.0 * (self.measured - self.expected) / self.expected

    def __str__(self) -> str:
        status = "ok " if self.ok else "FAIL"
        return (
            f"[{status}] {self.name}: {self.measured:.4g} vs paper "
            f"{self.expected:.4g} ({self.deviation_percent:+.1f}%)"
        )


def validate_anchors(config: FafnirConfig = None) -> List[AnchorResult]:
    """Check every numeric anchor this reproduction is calibrated against."""
    config = config or FafnirConfig()
    checks: List[AnchorResult] = []

    def add(name: str, measured: float, expected: float, tolerance: float = 0.02):
        checks.append(AnchorResult(name, float(measured), float(expected), tolerance))

    # Table I — buffers.
    for batch_size, (pe_kb, node_kb) in {
        8: (4.6, 32.4),
        16: (9.3, 64.8),
        32: (18.5, 129.5),
    }.items():
        sizing = size_buffers(config.with_batch_size(batch_size))
        add(f"Table I PE buffer KB (B={batch_size})", sizing.pe_buffer_kb, pe_kb)
        add(
            f"Table I DIMM/rank node KB (B={batch_size})",
            sizing.dimm_rank_node_kb,
            node_kb,
        )

    # Table IV — latencies (exact).
    add("Table IV compare cycles", config.latencies.compare, 12, 0.0)
    add("Table IV reduce(value) cycles", config.latencies.reduce_value, 4, 0.0)
    add("Table IV reduce(header) cycles", config.latencies.reduce_header, 16, 0.0)
    add("Table IV forward cycles", config.latencies.forward, 2, 0.0)

    # Table VI — area and power.
    add("PE area mm²", pe_area_mm2(), 0.077, 0.01)
    area = reference_system_area()
    add("DIMM/rank node area mm²", area.dimm_rank_node_mm2, 0.282, 0.01)
    add("channel node area mm²", area.channel_node_mm2, 0.121, 0.01)
    add("system area mm²", area.total_mm2, 1.25, 0.02)
    power = AsicPower()
    add("system power mW", power.total_mw, 111.64, 0.001)
    add("per-DIMM power mW", power.per_dimm_mw, 5.9, 0.02)
    add("RecNMP power per DIMM mW", recnmp_comparison_mw(1), 184.2, 0.001)
    add("RecNMP area 16 DIMMs mm²", recnmp_system_area_mm2(16), 8.64, 0.001)

    # Table V — FPGA utilization bounds (measured must be ≤ paper bound).
    utilization = table5()
    for resource, bound in {"lut": 5.0, "lutram": 0.15, "ff": 1.0, "bram": 13.0}.items():
        checks.append(
            AnchorResult(
                name=f"Table V {resource} utilization % ≤ bound",
                measured=float(utilization[resource]),
                expected=bound,
                tolerance=0.0,
                mode="at_most",
            )
        )

    # §IV-A — connection formulas (exact).
    add("connections all-to-all (m=32,c=4)", all_to_all_connections(32, 4), 128, 0.0)
    add("connections fafnir (m=32,c=4)", fafnir_connections(32, 4), 66, 0.0)

    # Structure.
    add("PE count (32 ranks, 1PE:2R)", config.num_pes, 31, 0.0)
    add("tree levels", config.tree_levels, 5, 0.0)
    add("header bytes (q=16, 5-bit ids)", config.header_bytes, 10.0, 0.0)
    return checks


def all_anchors_hold(config: FafnirConfig = None) -> bool:
    return all(check.ok for check in validate_anchors(config))
