"""Packed-bitset kernels behind the vectorized PE compute units.

The scalar PE decides reduce-vs-forward with an ``O(entries × partners)``
Python loop of frozenset subset tests.  These helpers re-express the same
decision as a handful of NumPy array operations:

1. :class:`IndexUniverse` densely renumbers the global vector indices that
   one PE invocation can see, so every index set becomes a row of packed
   ``uint64`` words (64 universe positions per word).
2. :func:`subset_matrix` / :func:`subset_mask` answer "is candidate set *j*
   contained in superset *i*?" for whole matrices of sets at once using
   bitwise AND-NOT — a candidate is contained iff it has no bit outside the
   superset.

The kernels are exact: they compute precisely the subset relation the
scalar loops compute, so the vector and scalar PE paths are byte-identical
(tested in ``tests/core/test_pe_vector_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence

import numpy as np

WORD_BITS = 64

# Cap the temporary broadcast buffer used by subset_matrix (bytes).  The
# buffer is chunked over superset rows so huge PE invocations stay within a
# predictable memory footprint instead of materialising n × m × words words.
_CHUNK_BUDGET_BYTES = 16 * 1024 * 1024


class IndexUniverse:
    """Dense numbering of the indices appearing in one PE invocation.

    The universe is built once per kernel call from every set that can take
    part in a containment test; encoding an index outside the universe is a
    programming error (raises ``KeyError``).
    """

    def __init__(self, sets: Iterable[FrozenSet[int]]) -> None:
        position: Dict[int, int] = {}
        for index_set in sets:
            for index in index_set:
                if index not in position:
                    position[index] = len(position)
        self._position = position
        self.size = len(position)
        self.words = max(1, (self.size + WORD_BITS - 1) // WORD_BITS)

    def position_map(self) -> Dict[int, int]:
        """The dense index → position mapping (shared, do not mutate)."""
        return self._position

    def encode_one(self, index_set: FrozenSet[int]) -> np.ndarray:
        """One set → a ``(words,)`` uint64 bit row."""
        row = np.zeros(self.words, dtype=np.uint64)
        if index_set:
            position = self._position
            positions = np.fromiter(
                (position[i] for i in index_set),
                dtype=np.int64,
                count=len(index_set),
            )
            np.bitwise_or.at(
                row,
                positions >> 6,
                np.uint64(1) << (positions & 63).astype(np.uint64),
            )
        return row

    def encode(self, sets: Sequence[FrozenSet[int]]) -> np.ndarray:
        """Many sets → a ``(len(sets), words)`` uint64 bit matrix."""
        words = np.zeros((len(sets), self.words), dtype=np.uint64)
        position = self._position
        rows: List[int] = []
        cols: List[int] = []
        for row, index_set in enumerate(sets):
            hits = [position[i] for i in index_set]
            cols.extend(hits)
            rows.extend([row] * len(hits))
        if rows:
            positions = np.asarray(cols, dtype=np.int64)
            np.bitwise_or.at(
                words,
                (np.asarray(rows, dtype=np.int64), positions >> 6),
                np.uint64(1) << (positions & 63).astype(np.uint64),
            )
        return words

    def encode_bool_ext(
        self, sets: Sequence[FrozenSet[int]], partial: bool = False
    ) -> np.ndarray:
        """Many sets → a ``(len(sets), size + 1)`` boolean membership matrix.

        The extra trailing column is a sentinel that is always ``True``; it
        pairs with the padding slot of :meth:`positions_padded` so padded
        position lists test as contained.

        With ``partial=True`` indices outside the universe are silently
        skipped instead of raising — used when the universe is deliberately
        restricted to the candidate side of a containment test (an index a
        candidate can never mention cannot affect the outcome).
        """
        position = self._position
        rows: List[int] = []
        cols: List[int] = []
        for row, index_set in enumerate(sets):
            if partial:
                hits = [position[i] for i in index_set if i in position]
            else:
                hits = [position[i] for i in index_set]
            cols.extend(hits)
            rows.extend([row] * len(hits))
        matrix = np.zeros((len(sets), self.size + 1), dtype=bool)
        if rows:
            matrix[rows, cols] = True
        matrix[:, self.size] = True
        return matrix

    def positions_padded(self, sets: Sequence[FrozenSet[int]]) -> np.ndarray:
        """Many sets → ``(len(sets), max_len)`` position matrix.

        Rows shorter than the widest set are padded with the sentinel
        position ``self.size`` (always-true column of
        :meth:`encode_bool_ext`).
        """
        position = self._position
        width = max((len(s) for s in sets), default=0) or 1
        matrix = np.full((len(sets), width), self.size, dtype=np.int64)
        for row, index_set in enumerate(sets):
            for slot, index in enumerate(index_set):
                matrix[row, slot] = position[index]
        return matrix

    def decode(self, row: np.ndarray) -> FrozenSet[int]:
        """Inverse of :meth:`encode_one` (used by tests)."""
        members: List[int] = []
        by_position = {pos: idx for idx, pos in self._position.items()}
        for word_index, word in enumerate(row):
            bits = int(word)
            while bits:
                low = bits & -bits
                members.append(by_position[word_index * WORD_BITS + low.bit_length() - 1])
                bits ^= low
        return frozenset(members)


def subset_mask(superset_row: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """``(m,)`` bool vector: ``candidates[j] ⊆ superset_row``."""
    if candidates.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    outside = np.bitwise_and(candidates, ~superset_row[None, :])
    return ~outside.any(axis=1)


def subset_matrix(supersets: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """``(n, m)`` bool matrix: ``result[i, j] == candidates[j] ⊆ supersets[i]``.

    Chunked over superset rows so the broadcast temporary stays under
    ``_CHUNK_BUDGET_BYTES`` regardless of PE input sizes.
    """
    n, words = supersets.shape
    m = candidates.shape[0]
    result = np.empty((n, m), dtype=bool)
    if n == 0 or m == 0:
        return result
    row_bytes = max(1, m * words * 8)
    chunk = max(1, _CHUNK_BUDGET_BYTES // row_bytes)
    inverted = ~supersets
    for start in range(0, n, chunk):
        stop = min(n, start + chunk)
        outside = np.bitwise_and(
            candidates[None, :, :], inverted[start:stop, None, :]
        )
        result[start:stop] = ~outside.any(axis=2)
    return result
