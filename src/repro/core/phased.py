"""Store-and-forward (phased) timing variant of the FAFNIR engine.

The default :class:`~repro.core.engine.FafnirEngine` timing is *dataflow*:
each message advances the moment its own operands are ready, which is the
optimistic end of how the hardware can behave ("FAFNIR flows data
corresponding to distinct queries through the tree in such a way that they
do not conflict", §IV-A).  The conservative end is *phased* operation: a PE
collects its entire input batch, processes it, then emits — what a simple
batch-synchronous implementation would do.

This engine computes identical functional outputs with phased timing:

* a PE starts when the **last** of its input messages is ready;
* its busy time is the compare workload spread over its compute units plus
  one reduce-path pipeline drain;
* outputs then emit one per cycle.

Real hardware lands between the two engines; reporting both brackets the
truth (see ``tests/core/test_phased.py`` and the timing-model docs).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.engine import FafnirEngine
from repro.core.header import Message
from repro.core.pe import PEWork, ProcessingElement


class PhasedFafnirEngine(FafnirEngine):
    """FAFNIR with batch-synchronous per-PE timing (upper-bound latency)."""

    def _run_tree(
        self, leaf_inputs: Dict[int, List[List[Message]]]
    ) -> tuple:
        outputs: Dict[int, List[Message]] = {}
        per_pe_work: Dict[int, PEWork] = {}
        units = self.config.compute_units
        latencies = self.config.latencies

        for pe_id in self.tree.bottom_up_ids():
            node = self.tree.pe(pe_id)
            pe = ProcessingElement(
                self.config,
                self.operator,
                name=f"PE{pe_id}",
                check_values=self._check_values,
                kernel=self._kernel,
            )
            if node.is_leaf:
                fold_work = PEWork()
                raw_a, raw_b = leaf_inputs[pe_id]
                input_a = pe.fold_stream(raw_a, fold_work)
                input_b = pe.fold_stream(raw_b, fold_work)
            else:
                fold_work = PEWork()
                left, right = node.children  # type: ignore[misc]
                input_a = outputs.get(left, [])
                input_b = outputs.get(right, [])

            result = pe.process(input_a, input_b)
            work = result.work.merged_with(fold_work)

            # Phased timing: wait for the whole input batch, grind through
            # the compare workload, drain the reduce pipeline, emit 1/cycle.
            arrivals = [m.ready_cycle for m in input_a] + [
                m.ready_cycle for m in input_b
            ]
            start = max(arrivals) if arrivals else 0
            busy = math.ceil(max(1, work.compares) / units) + latencies.reduce_path
            ordered = sorted(
                result.outputs, key=lambda m: (m.ready_cycle, sorted(m.indices))
            )
            for position, message in enumerate(ordered):
                message.ready_cycle = start + busy + position

            outputs[pe_id] = ordered
            per_pe_work[pe_id] = work
        return outputs[self.tree.root_id], per_pe_work
