"""Tree-utilisation reporting: where the work lands inside the FAFNIR tree.

Aggregates per-PE :class:`~repro.core.pe.PEWork` records by tree level and
by physical chip (DIMM/rank nodes vs channel node, Fig. 4a) — the view the
paper uses to argue the channel node is the key to full NDP reduction and
that load depends only on the vector→rank mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.engine import LookupStats
from repro.core.pe import PEWork
from repro.core.tree import FafnirTree
from repro.memory.config import MemoryGeometry


@dataclass
class LevelUtilization:
    """Work aggregated over one tree level."""

    level: int
    pes: int
    work: PEWork

    @property
    def reduces_per_pe(self) -> float:
        return self.work.reduces / self.pes if self.pes else 0.0


@dataclass
class TreeUtilization:
    """Per-level and per-chip aggregation of one lookup's tree work."""

    levels: List[LevelUtilization]
    per_chip: Dict[str, PEWork]

    @property
    def total(self) -> PEWork:
        total = PEWork()
        for level in self.levels:
            total = total.merged_with(level.work)
        return total

    @property
    def channel_node_share(self) -> float:
        """Fraction of all reductions performed by the channel node —
        the reductions RecNMP would have forwarded to the cores."""
        channel = self.per_chip.get("channel_node", PEWork()).reduces
        total = self.total.reduces
        return channel / total if total else 0.0

    def busiest_level(self) -> LevelUtilization:
        return max(self.levels, key=lambda entry: entry.work.reduces)


def tree_utilization(
    tree: FafnirTree, stats: LookupStats, geometry: MemoryGeometry
) -> TreeUtilization:
    """Aggregate a lookup's per-PE work by level and by physical chip."""
    levels: List[LevelUtilization] = []
    for level in range(tree.num_levels):
        ids = tree.level_ids(level)
        work = PEWork()
        for pe_id in ids:
            work = work.merged_with(stats.per_pe_work.get(pe_id, PEWork()))
        levels.append(LevelUtilization(level=level, pes=len(ids), work=work))

    grouping = tree.node_grouping(geometry)
    per_chip: Dict[str, PEWork] = {}
    for pe_id, chip in grouping.items():
        work = stats.per_pe_work.get(pe_id, PEWork())
        per_chip[chip] = per_chip.get(chip, PEWork()).merged_with(work)
    return TreeUtilization(levels=levels, per_chip=per_chip)
