"""Level-synchronous structure-of-arrays tree sweep (``engine="soa"``).

The object engine walks the tree one :class:`~repro.core.pe.ProcessingElement`
at a time, carrying per-message Python objects (``Message``/``Header``/
``_RawOutput``) through every level.  This module re-implements the sweep
*between* ``FafnirEngine._leaf_inputs`` and ``FafnirEngine._collect_results``
with no per-message objects in the steady state:

* **Set pool** — every ``frozenset`` a header can name (indices sets and
  query-remainder entries) is interned once into a :class:`_SetPool` and
  thereafter handled as a small integer id.  Each id owns one row of a
  packed ``uint64`` occupancy-bitset matrix over the batch's index
  universe; unions (reduce provenance) and differences (entry remainders)
  are memoized bitwise ops, so no frozenset algebra or hashing happens per
  message.
* **Columnar streams** — a PE input/output is a :class:`_Stream`: parallel
  NumPy arrays for header ids, ready cycles, and hop counts, a CSR layout
  (``flat_entries``/``entry_counts``) for the per-message entry lists, and
  one contiguous 2-D value matrix.  The per-PE FIFO state the object path
  keeps as lists of objects lives here as array slices and cursors.
* **Level barrier** — :func:`run_tree_soa` sweeps the tree level by level;
  within a level each PE's compute-unit scan is a handful of array ops
  (packed-bitset subset tests, one batched ``operator.combine``) and the
  merge unit/issue limit are vectorized group reductions.

The index universe is numbered **leaf-major** (walking the level-0 PEs in
tree order, each FIFO side's home indices get consecutive bit positions),
so any subtree's folded index sets occupy one contiguous word window of
the bitset rows.  A scan restricts its subset tests to the partner
stream's window — near the leaves that is a couple of words per test
regardless of batch size.

Byte-identity with the object path is a hard contract, enforced by the
differential harness: identical result vectors, identical
:class:`~repro.core.pe.PEWork` counters, and ``==``-equal trace-event
streams (same kinds, cycles, and emission order).  The sweep therefore
reproduces the object kernels' exact decision rules: maximal-partner
matching with earliest-partner tie-break, merge-unit grouping in
first-appearance order with the forwarded-intact header fast path, entry
dedup in member order, and the issue limit's ``(ready_cycle, sorted
indices)`` stall assignment followed by the canonical sorted-indices
handoff order (which keeps functional results independent of memory
timing).  Leaf FIFO folding stays a sequential loop — the greedy closure
in arrival order and its event ordering are part of the contract — but
runs in the pool domain (:func:`_fold_leaf_stream`): buffered index sets
carry memoised big-int masks so each containment test is one native
``&``, and the folded rows intern directly into columnar streams.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import FafnirConfig
from repro.core.header import Header, Message, entry_sort_key
from repro.core.operators import ReductionOperator
from repro.core.pe import PEWork
from repro.core.tree import FafnirTree
from repro.obs.events import KIND_CODES, PE_FORWARD, PE_MERGE, PE_REDUCE
from repro.obs.tracer import Tracer

#: Bound on the per-chunk temporary of the packed subset test.
_SUBSET_CHUNK_BYTES = 8 << 20

#: Above this many (entries × partners × words) word-ops the dense packed
#: subset test switches to sparse intersection counting.  Header sets are a
#: few dozen indices inside windows of thousands of bits (<1% density), so
#: the sparse path's Σ_u |entries∋u|·|partners∋u| scatter work is orders of
#: magnitude below the dense product at the upper tree levels, while the
#: dense kernel stays faster on the small, narrow-window leaf scans.
_DENSE_SUBSET_OPS = 1 << 21

_KIND_REDUCE = KIND_CODES[PE_REDUCE]
_KIND_FORWARD = KIND_CODES[PE_FORWARD]
_KIND_MERGE = KIND_CODES[PE_MERGE]

_I64_MAX = np.iinfo(np.int64).max
_I64_MIN = np.iinfo(np.int64).min


class _SetPool:
    """Interned index sets as packed occupancy bitsets.

    Ids are dense and stable for the lifetime of one sweep.  ``bits[i]``
    is the uint64-packed membership row of set ``i`` over the batch
    universe (bit positions assigned by the caller's ``index_order``);
    ``sizes[i]`` its cardinality.  Union/difference results are interned
    through the byte representation of their bit rows, so equal sets
    always share one id — set equality degenerates to integer equality
    everywhere downstream.
    """

    def __init__(self, index_order: Sequence[int]) -> None:
        self._position = {index: pos for pos, index in enumerate(index_order)}
        self._index_order = list(index_order)
        self._index_values = np.asarray(self._index_order, dtype=np.int64)
        # Sort keys are fixed-width big-endian byte strings: lexicographic
        # bytes order equals lexicographic order of the ascending value
        # tuples (prefixes sort first either way).  The bias makes the
        # encoded values non-negative so unsigned bytes preserve order.
        self._key_bias = (
            int(self._index_values.min()) if len(self._index_values) else 0
        )
        self.words = max(1, (len(index_order) + 63) >> 6)
        capacity = 1024
        self.bits = np.zeros((capacity, self.words), dtype=np.uint64)
        self.sizes = np.zeros(capacity, dtype=np.int64)
        self._count = 0
        self._by_key: Dict[bytes, int] = {}
        self._by_frozen: Dict[FrozenSet[int], int] = {}
        self._frozen: List[Optional[FrozenSet[int]]] = []
        self._entry_keys: Dict[int, Tuple[int, bytes]] = {}
        self._indices_keys: Dict[int, bytes] = {}
        self._union_memo: Dict[int, int] = {}
        self._diff_memo: Dict[int, int] = {}
        self._mask_memo: Dict[FrozenSet[int], int] = {}

    def _ensure_capacity(self, needed: int) -> None:
        capacity = len(self.sizes)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown_bits = np.zeros((capacity, self.words), np.uint64)
        grown_bits[: self._count] = self.bits[: self._count]
        self.bits = grown_bits
        grown_sizes = np.zeros(capacity, np.int64)
        grown_sizes[: self._count] = self.sizes[: self._count]
        self.sizes = grown_sizes

    def _append(
        self, bits: np.ndarray, size: int, frozen: Optional[FrozenSet[int]]
    ) -> int:
        self._ensure_capacity(self._count + 1)
        row = self._count
        self.bits[row] = bits
        self.sizes[row] = size
        self._frozen.append(frozen)
        self._count += 1
        return row

    def intern_frozen(self, members: FrozenSet[int]) -> int:
        sid = self._by_frozen.get(members)
        if sid is not None:
            return sid
        bits = np.zeros(self.words, dtype=np.uint64)
        if members:
            positions = np.fromiter(
                (self._position[i] for i in members), np.int64, len(members)
            )
            np.bitwise_or.at(
                bits,
                positions >> 6,
                np.left_shift(
                    np.uint64(1), (positions & 63).astype(np.uint64)
                ),
            )
        key = bits.tobytes()
        sid = self._by_key.get(key)
        if sid is None:
            sid = self._append(bits, len(members), members)
            self._by_key[key] = sid
        elif self._frozen[sid] is None:
            self._frozen[sid] = members
        self._by_frozen[members] = sid
        return sid

    def mask_of(self, members: FrozenSet[int]) -> int:
        """Arbitrary-width Python-int mask of a set over the pool universe.

        Bit ``position[i]`` is set for each member ``i`` — the same layout
        as a packed ``bits`` row, so containment tests degenerate to one
        ``&`` on native big-ints.  Memoised per frozenset: leaf headers
        repeat the same index sets across FIFOs.
        """
        memo = self._mask_memo
        mask = memo.get(members)
        if mask is None:
            position = self._position
            mask = 0
            for index in members:
                mask |= 1 << position[index]
            memo[members] = mask
        return mask

    def intern_mask(self, mask: int, size: int, frozen: FrozenSet[int]) -> int:
        """Intern a Python-int mask under the same key as packed rows.

        ``int.to_bytes(..., "little")`` produces byte-for-byte the same
        key as ``bits.tobytes()`` for the row encoding that mask (bit *p*
        lives in byte ``p >> 3`` either way on the little-endian layouts
        this module already assumes).
        """
        key = mask.to_bytes(self.words * 8, "little")
        sid = self._by_key.get(key)
        if sid is None:
            sid = self._append(
                np.frombuffer(key, dtype=np.uint64), size, frozen
            )
            self._by_key[key] = sid
        elif self._frozen[sid] is None:
            self._frozen[sid] = frozen
        self._by_frozen.setdefault(frozen, sid)
        return sid

    def _intern_bits(self, bits: np.ndarray) -> int:
        key = bits.tobytes()
        sid = self._by_key.get(key)
        if sid is None:
            size = int(np.bitwise_count(bits).sum())
            sid = self._append(bits.copy(), size, None)
            self._by_key[key] = sid
        return sid

    def intern_bit_rows(self, rows: np.ndarray) -> np.ndarray:
        """Intern a matrix of bit rows in one pass; returns their ids.

        The only per-row Python work is ``tobytes`` + one dict probe —
        sizes come from a batched popcount and storage rows are written
        into pre-grown arrays.
        """
        k = len(rows)
        self._ensure_capacity(self._count + k)
        ids = np.empty(k, dtype=np.int64)
        row_sizes = np.bitwise_count(rows).sum(axis=1).tolist()
        by_key = self._by_key
        bits = self.bits
        sizes = self.sizes
        frozen = self._frozen
        count = self._count
        for i in range(k):
            key = rows[i].tobytes()
            sid = by_key.get(key)
            if sid is None:
                sid = count
                bits[count] = rows[i]
                sizes[count] = row_sizes[i]
                frozen.append(None)
                by_key[key] = sid
                count += 1
            ids[i] = sid
        self._count = count
        return ids

    def intern_many(self, sets: Sequence[FrozenSet[int]]) -> List[int]:
        """Intern a batch of frozensets with one vectorized bit encode."""
        by_frozen = self._by_frozen
        todo = list(dict.fromkeys(s for s in sets if s not in by_frozen))
        if todo:
            lengths = np.fromiter((len(s) for s in todo), np.int64, len(todo))
            total = int(lengths.sum())
            position = self._position
            positions = np.fromiter(
                (position[i] for s in todo for i in s), np.int64, total
            )
            rows = np.zeros((len(todo), self.words), dtype=np.uint64)
            np.bitwise_or.at(
                rows,
                (np.repeat(np.arange(len(todo)), lengths), positions >> 6),
                np.left_shift(
                    np.uint64(1), (positions & 63).astype(np.uint64)
                ),
            )
            frozen = self._frozen
            for members, sid in zip(todo, self.intern_bit_rows(rows).tolist()):
                by_frozen[members] = sid
                if frozen[sid] is None:
                    frozen[sid] = members
        return [by_frozen[s] for s in sets]

    def ensure_keys(self, ids) -> None:
        """Batch-decode sort keys for ids missing from the key caches.

        One vectorized unpack + lexsort replaces per-id frozenset decodes;
        afterwards :meth:`indices_key` / :meth:`entry_key` are dict hits.
        """
        indices_keys = self._indices_keys
        missing = [sid for sid in set(ids) if sid not in indices_keys]
        if not missing:
            return
        rows = self.bits[np.asarray(missing, dtype=np.int64)]
        row, col = _decode_bit_positions(rows, sort=False)
        values = self._index_values[col]
        order = np.lexsort((values, row))
        buffer = (values[order] - self._key_bias).astype(">u8").tobytes()
        entry_keys = self._entry_keys
        cursor = 0
        for sid in missing:
            size = int(self.sizes[sid])
            key = buffer[cursor : cursor + 8 * size]
            cursor += 8 * size
            indices_keys[sid] = key
            entry_keys[sid] = (size, key)

    def union(self, a: int, b: int) -> int:
        memo_key = (a << 32) | b
        sid = self._union_memo.get(memo_key)
        if sid is None:
            sid = self._intern_bits(self.bits[a] | self.bits[b])
            self._union_memo[memo_key] = sid
        return sid

    def difference(self, a: int, b: int) -> int:
        """Id of set ``a`` minus set ``b``."""
        memo_key = (a << 32) | b
        sid = self._diff_memo.get(memo_key)
        if sid is None:
            sid = self._intern_bits(self.bits[a] & ~self.bits[b])
            self._diff_memo[memo_key] = sid
        return sid

    def frozen(self, sid: int) -> FrozenSet[int]:
        members = self._frozen[sid]
        if members is None:
            # Little-endian bit unpack: bit j of word w sits at position
            # 64·w + j, matching the encode above (x86/arm64 layouts).
            flags = np.unpackbits(
                self.bits[sid].view(np.uint8), bitorder="little"
            )
            members = frozenset(
                self._index_order[p] for p in np.flatnonzero(flags)
            )
            self._frozen[sid] = members
            self._by_frozen.setdefault(members, sid)
        return members

    def _encode_key(self, members: FrozenSet[int]) -> bytes:
        values = np.sort(np.fromiter(members, np.int64, len(members)))
        return (values - self._key_bias).astype(">u8").tobytes()

    def entry_key(self, sid: int) -> Tuple[int, bytes]:
        """Canonical entry ordering — sorts like ``entry_sort_key``."""
        key = self._entry_keys.get(sid)
        if key is None:
            key = (int(self.sizes[sid]), self._encode_key(self.frozen(sid)))
            self._entry_keys[sid] = key
        return key

    def indices_key(self, sid: int) -> bytes:
        """Issue-limit tie-break — sorts like ``sorted_tuple``."""
        key = self._indices_keys.get(sid)
        if key is None:
            key = self._encode_key(self.frozen(sid))
            self._indices_keys[sid] = key
        return key


class _Stream:
    """One PE input/output as structure-of-arrays columns.

    ``entry_tuples[i]`` is message *i*'s header entries as pool ids in
    canonical header order; ``flat_entries``/``entry_counts`` are the same
    data in CSR form for the row-expanded scan.  ``values`` is the
    contiguous (messages × elements) value matrix.  ``word_lo:word_hi``
    is the bitset word window covering every index homed beneath this
    stream's subtree — the only columns a partner-subset test against
    this stream ever needs to read.
    """

    __slots__ = (
        "indices_id",
        "ready",
        "hops",
        "values",
        "entry_tuples",
        "entry_counts",
        "flat_entries",
        "word_lo",
        "word_hi",
    )

    def __init__(
        self,
        indices_id: np.ndarray,
        ready: np.ndarray,
        hops: np.ndarray,
        values: np.ndarray,
        entry_tuples: List[Tuple[int, ...]],
        word_lo: int,
        word_hi: int,
    ) -> None:
        self.indices_id = indices_id
        self.ready = ready
        self.hops = hops
        self.values = values
        self.entry_tuples = entry_tuples
        self.entry_counts = np.fromiter(
            (len(t) for t in entry_tuples), np.int64, len(entry_tuples)
        )
        total = int(self.entry_counts.sum())
        self.flat_entries = np.fromiter(
            (e for t in entry_tuples for e in t), np.int64, total
        )
        self.word_lo = word_lo
        self.word_hi = word_hi

    def __len__(self) -> int:
        return len(self.entry_tuples)


def _fold_leaf_stream(
    pool: _SetPool,
    stream: Sequence[Message],
    config: FafnirConfig,
    operator: ReductionOperator,
    tracer: Tracer,
    pe_id: int,
    level: int,
    work: PEWork,
    word_lo: int,
    word_hi: int,
    elements: int,
) -> _Stream:
    """Greedy FIFO fold in the pool domain, byte-identical to the object PE.

    Replays :meth:`ProcessingElement._fold_stream_scalar` — same greedy
    closure (arrival order, earliest maximal buffered match per live
    entry), same ``PEWork`` counters, same ``pe_reduce``/``pe_merge``
    events — but buffered index sets carry memoised Python-int masks, so
    the containment scan is one native ``&`` per buffered row instead of
    a frozenset subset test, and the coalesced rows intern directly into
    a columnar :class:`_Stream` without building ``Message`` objects.
    """
    reduce_path = config.latencies.reduce_path
    enabled = tracer.enabled
    emit = tracer.emit_packed
    mask_of = pool.mask_of
    combine = operator.combine

    # Buffer columns, one slot per inserted row (the object fold's list
    # of buffered Messages, shredded).
    ind_frozen: List[FrozenSet[int]] = []
    ind_mask: List[int] = []
    ind_size: List[int] = []
    row_entries: List[Tuple[Tuple[FrozenSet[int], int], ...]] = []
    entry_sets: List[FrozenSet[FrozenSet[int]]] = []
    ready_col: List[int] = []
    hops_col: List[int] = []
    value_col: List[np.ndarray] = []
    rows_by_indices: Dict[FrozenSet[int], List[int]] = {}

    def insert(
        indices: FrozenSet[int],
        indices_mask: int,
        entries: Tuple[Tuple[FrozenSet[int], int], ...],
        ready_cycle: int,
        hops: int,
        value: np.ndarray,
    ) -> None:
        produced = []
        count = len(ind_mask)
        live = [pair for pair in entries if pair[0]]
        if live:
            work.compares += count * len(live)
            if count:
                for entry, entry_mask in live:
                    best = -1
                    best_size = 0
                    outside = ~entry_mask
                    for row in range(count):
                        if (
                            ind_size[row] > best_size
                            and ind_mask[row] & outside == 0
                        ):
                            best = row
                            best_size = ind_size[row]
                    if best < 0:
                        continue
                    work.reduces += 1
                    other_ready = ready_col[best]
                    ready = (
                        ready_cycle if ready_cycle >= other_ready else other_ready
                    ) + reduce_path
                    if enabled:
                        emit(
                            PE_REDUCE,
                            ready,
                            pe=pe_id,
                            level=level,
                            args=(reduce_path,),
                        )
                    best_hops = hops_col[best]
                    produced.append(
                        (
                            indices | ind_frozen[best],
                            indices_mask | ind_mask[best],
                            (
                                (
                                    entry - ind_frozen[best],
                                    entry_mask & ~ind_mask[best],
                                ),
                            ),
                            ready,
                            hops if hops >= best_hops else best_hops,
                            combine(value, value_col[best]),
                        )
                    )
        row = count
        ind_frozen.append(indices)
        ind_mask.append(indices_mask)
        ind_size.append(len(indices))
        row_entries.append(entries)
        entry_sets.append(frozenset(pair[0] for pair in entries))
        ready_col.append(ready_cycle)
        hops_col.append(hops)
        value_col.append(value)
        rows_by_indices.setdefault(indices, []).append(row)
        for c_ind, c_mask, c_entries, c_ready, c_hops, c_value in produced:
            entry = c_entries[0][0]
            if any(
                entry in entry_sets[r]
                for r in rows_by_indices.get(c_ind, ())
            ):
                work.duplicates_removed += 1
            else:
                insert(c_ind, c_mask, c_entries, c_ready, c_hops, c_value)

    # FIFO arrival order, mirroring the object kernels' fold: functional
    # pairing must not depend on DRAM scheduling or the hot-index tier.
    for message in stream:
        header = message.header
        insert(
            header.indices,
            mask_of(header.indices),
            tuple((e, mask_of(e)) for e in header.entries),
            message.ready_cycle,
            message.hops,
            message.value,
        )

    # Coalesce same-indices rows (no PE latency charged), interning the
    # survivors straight into columnar form.
    groups: Dict[FrozenSet[int], List[int]] = {}
    for row, indices in enumerate(ind_frozen):
        groups.setdefault(indices, []).append(row)
    intern_mask = pool.intern_mask
    out_ids: List[int] = []
    out_ready: List[int] = []
    out_hops: List[int] = []
    out_values: List[np.ndarray] = []
    entry_tuples: List[Tuple[int, ...]] = []
    for indices, members in groups.items():
        first = members[0]
        if len(members) == 1:
            entries = row_entries[first]
            ready = ready_col[first]
            hops = hops_col[first]
        else:
            ready = max(ready_col[r] for r in members)
            hops = max(hops_col[r] for r in members)
            unique: Dict[FrozenSet[int], int] = {}
            for r in members:
                for entry, mask in row_entries[r]:
                    unique.setdefault(entry, mask)
            entries = tuple(
                (entry, unique[entry])
                for entry in sorted(unique, key=entry_sort_key)
            )
            work.merges += 1
            if enabled:
                emit(
                    PE_MERGE,
                    ready,
                    pe=pe_id,
                    level=level,
                    args=(len(members),),
                )
        out_ids.append(intern_mask(ind_mask[first], ind_size[first], indices))
        entry_tuples.append(
            tuple(
                intern_mask(mask, len(entry), entry)
                for entry, mask in entries
            )
        )
        out_ready.append(ready)
        out_hops.append(hops)
        out_values.append(value_col[first])
    if out_values:
        values = np.stack(out_values)
    else:
        values = np.zeros((0, elements), dtype=np.float64)
    return _Stream(
        np.asarray(out_ids, dtype=np.int64),
        np.asarray(out_ready, dtype=np.int64),
        np.asarray(out_hops, dtype=np.int64),
        values,
        entry_tuples,
        word_lo,
        word_hi,
    )


class _RawBlock:
    """One side-scan's raw compute-unit outputs, row-major in scan order.

    Reduce-row values are represented by *provenance* — ``cmsg[i]`` /
    ``cpartner[i]`` name the own-side message and partner whose combine
    produces reduce row ``i``'s value — and materialized only for the
    rows the merge unit actually reads.
    """

    __slots__ = (
        "ind",
        "ent",
        "ready",
        "hops",
        "src",
        "blk",
        "row",
        "kinds",
        "durs",
        "cmsg",
        "cpartner",
        "reduces",
        "forwards",
        "compares",
    )


def _decode_bit_positions(
    rows: np.ndarray, sort: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """``(row, col)`` of every set bit, row-major, cols ascending per row.

    With ``sort=False`` the pairs come back in peel order instead —
    callers that re-sort by their own criteria anyway can skip the
    row-major lexsort.

    Two-stage decode: locate the (few) nonzero words first, then peel
    set bits off those words lowest-first, compacting exhausted words
    each pass — total work tracks the popcount, never the 64× blowup of
    a full-width unpack, and the pass count is the densest word's
    popcount (small for the sparse header sets).
    """
    nz_row, nz_word = np.nonzero(rows)
    if not len(nz_row):
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    one = np.uint64(1)
    remaining = rows[nz_row, nz_word]
    live_row = nz_row.astype(np.int64)
    live_base = nz_word.astype(np.int64) * 64
    out_rows = []
    out_cols = []
    while len(remaining):
        lowest = remaining & (~remaining + one)
        bit = np.bitwise_count(lowest - one).astype(np.int64)
        out_rows.append(live_row)
        out_cols.append(live_base + bit)
        remaining &= remaining - one
        alive = remaining != 0
        if not alive.all():
            remaining = remaining[alive]
            live_row = live_row[alive]
            live_base = live_base[alive]
    row = np.concatenate(out_rows)
    col = np.concatenate(out_cols)
    if not sort:
        return row, col
    order = np.lexsort((col, row))
    return row[order], col[order]


def _best_partner(
    entry_bits: np.ndarray,
    partner_bits: np.ndarray,
    partner_sizes: np.ndarray,
) -> np.ndarray:
    """Per entry, the best contained partner's local index (-1 if none).

    "Best" is the scalar kernel's choice: the partner with the most
    indices among those whose bits ⊆ the entry's bits, earliest partner
    winning ties.  Both bit matrices are pre-sliced to the partner
    stream's word window.

    Small problems take the dense packed-AND kernel (chunked over
    entries to bound the (entries × partners × words) temporary).  Large
    ones never materialize the (entries × partners) plane at all: a
    contained partner must co-occur with the entry on *every* one of its
    bits, in particular its rarest (the universe bit the fewest entries
    hold), so pairing each partner only with the entries holding its
    rarest bit yields a complete candidate set of size
    Σ_p |entries ∋ rarest_bit(p)| — for the <1%-dense header sets at the
    upper tree levels a tiny fraction of the full plane, and in practice
    barely above the true match count.  Candidates are then verified
    with one packed AND per pair and the argmax runs only over matches.
    """
    n_entries = len(entry_bits)
    n_partners = len(partner_bits)
    words = max(1, entry_bits.shape[1])
    if n_entries * n_partners * words <= _DENSE_SUBSET_OPS:
        best = np.full(n_entries, -1, dtype=np.int64)
        not_entry = ~entry_bits
        chunk = max(1, _SUBSET_CHUNK_BYTES // (n_partners * words * 8))
        for start in range(0, n_entries, chunk):
            stop = min(start + chunk, n_entries)
            contained = ~np.bitwise_and(
                partner_bits[None, :, :], not_entry[start:stop, None, :]
            ).any(axis=2)
            # Sizes are ≥ 1 for any partner with bits, so the product is
            # positive exactly for contained partners and argmax keeps
            # the first maximum.
            score = contained * partner_sizes[None, :]
            choice = score.argmax(axis=1)
            matched = score[np.arange(stop - start), choice] > 0
            best[start:stop] = np.where(matched, choice, -1)
        return best

    best = np.full(n_entries, -1, dtype=np.int64)
    e_row, e_col = _decode_bit_positions(entry_bits, sort=False)
    p_row, p_col = _decode_bit_positions(partner_bits)
    if not len(e_row) or not len(p_row):
        return best
    n_bits = words * 64
    e_cnt = np.bincount(e_col, minlength=n_bits)
    e_order = np.argsort(e_col, kind="stable")
    e_by_col = e_row[e_order]
    e_bounds = np.searchsorted(e_col[e_order], np.arange(n_bits + 1))

    # Per partner, the first bit with the fewest holding entries.
    # ``p_row`` is row-major from the decode, so partner segments are
    # contiguous and segment minima come from one reduceat.
    freq = e_cnt[p_col]
    seg_breaks = np.concatenate(([True], p_row[1:] != p_row[:-1]))
    seg_starts = np.flatnonzero(seg_breaks)
    seg_of = np.cumsum(seg_breaks) - 1
    is_min = freq == np.minimum.reduceat(freq, seg_starts)[seg_of]
    min_pos = np.flatnonzero(is_min)
    min_seg = seg_of[min_pos]
    first = np.flatnonzero(
        np.concatenate(([True], min_seg[1:] != min_seg[:-1]))
    )
    chosen_bit = p_col[min_pos[first]]
    chosen_partner = p_row[min_pos[first]]

    # Candidate pairs: each partner × the entries holding its rarest bit.
    cand_per_p = e_cnt[chosen_bit]
    starts = np.concatenate(([0], np.cumsum(cand_per_p)))
    local = np.arange(starts[-1], dtype=np.int64) - np.repeat(
        starts[:-1], cand_per_p
    )
    cand_e = e_by_col[np.repeat(e_bounds[chosen_bit], cand_per_p) + local]
    cand_p = np.repeat(chosen_partner, cand_per_p)
    ok = ~np.bitwise_and(
        partner_bits[cand_p], ~entry_bits[cand_e]
    ).any(axis=1)
    if not ok.any():
        return best
    e_of = cand_e[ok]
    p_of = cand_p[ok]
    sizes = partner_sizes[p_of]
    order = np.lexsort((p_of, -sizes, e_of))
    e_sorted = e_of[order]
    firsts = np.flatnonzero(
        np.concatenate(([True], e_sorted[1:] != e_sorted[:-1]))
    )
    best[e_sorted[firsts]] = p_of[order][firsts]
    return best


def _map_pairs(
    pool: _SetPool, operation: str, left_ids: np.ndarray, right_ids: np.ndarray
) -> np.ndarray:
    """Memoized pool union/difference over id pairs, one batch encode.

    Each distinct unseen pair is computed exactly once: the bitwise op
    runs on a stacked matrix of all new pairs and the results are
    interned through :meth:`_SetPool.intern_bit_rows`.
    """
    keys = (left_ids.astype(np.int64) << 32) | right_ids
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    memo = pool._union_memo if operation == "union" else pool._diff_memo
    mapped = np.empty(len(unique_keys), dtype=np.int64)
    unique_l = unique_keys.tolist()
    missing = []
    for i, key in enumerate(unique_l):
        sid = memo.get(key)
        if sid is None:
            missing.append(i)
        else:
            mapped[i] = sid
    if missing:
        missing_arr = np.asarray(missing, dtype=np.int64)
        a = (unique_keys[missing_arr] >> 32).astype(np.int64)
        b = (unique_keys[missing_arr] & 0xFFFFFFFF).astype(np.int64)
        if operation == "union":
            rows = pool.bits[a] | pool.bits[b]
        else:
            rows = pool.bits[a] & ~pool.bits[b]
        ids = pool.intern_bit_rows(rows)
        mapped[missing_arr] = ids
        for i, sid in zip(missing, ids.tolist()):
            memo[unique_l[i]] = sid
    return mapped[inverse]


def _scan_side(
    pool: _SetPool,
    own: _Stream,
    partners: _Stream,
    config: FafnirConfig,
    src_offset: int,
    own_block: int,
    comb_block: int,
) -> _RawBlock:
    """Columnar equivalent of the object kernels' one-direction scan.

    Emits one raw row per (message, entry) pair in scalar scan order:
    reduce rows pick the maximal contained partner (earliest on ties),
    everything else forwards.  Matches, counters, ready cycles, and the
    batched combine all reproduce ``ProcessingElement._scan_side``.
    """
    latencies = config.latencies
    counts = own.entry_counts
    rows = len(own.flat_entries)
    raw = _RawBlock()
    if rows == 0:
        empty = np.zeros(0, dtype=np.int64)
        raw.ind = raw.ent = raw.ready = raw.hops = raw.src = raw.row = empty
        raw.blk = np.zeros(0, dtype=np.int8)
        raw.kinds = np.zeros(0, dtype=np.int16)
        raw.durs = empty
        raw.cmsg = raw.cpartner = empty
        raw.reduces = raw.forwards = raw.compares = 0
        return raw

    row_msg = np.repeat(np.arange(len(own), dtype=np.int64), counts)
    row_ent = own.flat_entries
    entry_sizes = pool.sizes[row_ent]
    nonempty = entry_sizes > 0
    num_partners = len(partners)
    raw.compares = num_partners * int(nonempty.sum())

    best = np.full(rows, -1, dtype=np.int64)
    if num_partners and nonempty.any() and partners.word_hi > partners.word_lo:
        # Identical entries choose identical partners — match each
        # distinct entry id once (the object vector kernel's slot dedup).
        unique_entries, inverse = np.unique(
            row_ent[nonempty], return_inverse=True
        )
        max_entry = int(pool.sizes[unique_entries].max())
        # A partner wider than the widest entry can never be contained.
        partner_sizes = pool.sizes[partners.indices_id]
        eligible = np.flatnonzero(partner_sizes <= max_entry)
        if eligible.size:
            window = slice(partners.word_lo, partners.word_hi)
            choice = _best_partner(
                pool.bits[unique_entries, window],
                pool.bits[partners.indices_id[eligible], window],
                partner_sizes[eligible],
            )
            slot_best = np.where(choice >= 0, eligible[choice], -1)
            best[nonempty] = slot_best[inverse]

    reduce_rows = np.flatnonzero(best >= 0)
    forward_rows = np.flatnonzero(best < 0)
    raw.reduces = len(reduce_rows)
    raw.forwards = len(forward_rows)

    ind = np.empty(rows, dtype=np.int64)
    ent = np.empty(rows, dtype=np.int64)
    ready = np.empty(rows, dtype=np.int64)
    hops = np.empty(rows, dtype=np.int64)
    src = np.full(rows, -1, dtype=np.int64)
    blk = np.empty(rows, dtype=np.int8)
    row = np.empty(rows, dtype=np.int64)

    if raw.reduces:
        msg = row_msg[reduce_rows]
        partner = best[reduce_rows]
        ind[reduce_rows] = _map_pairs(
            pool, "union", own.indices_id[msg], partners.indices_id[partner]
        )
        ent[reduce_rows] = _map_pairs(
            pool,
            "difference",
            row_ent[reduce_rows],
            partners.indices_id[partner],
        )
        ready[reduce_rows] = (
            np.maximum(own.ready[msg], partners.ready[partner])
            + latencies.reduce_path
        )
        hops[reduce_rows] = np.maximum(own.hops[msg], partners.hops[partner]) + 1
        # Values are NOT combined here: the merge unit reads only one
        # member's value per output group, so combines materialize lazily
        # from (cmsg, cpartner) once the surviving rows are known.
        raw.cmsg = msg
        raw.cpartner = partner
        blk[reduce_rows] = comb_block
        row[reduce_rows] = np.arange(raw.reduces, dtype=np.int64)
    else:
        raw.cmsg = raw.cpartner = np.zeros(0, dtype=np.int64)

    if raw.forwards:
        msg = row_msg[forward_rows]
        ind[forward_rows] = own.indices_id[msg]
        ent[forward_rows] = row_ent[forward_rows]
        ready[forward_rows] = own.ready[msg] + latencies.forward_path
        hops[forward_rows] = own.hops[msg] + 1
        src[forward_rows] = msg + src_offset
        blk[forward_rows] = own_block
        row[forward_rows] = msg

    raw.ind, raw.ent, raw.ready, raw.hops = ind, ent, ready, hops
    raw.src, raw.blk, raw.row = src, blk, row
    raw.kinds = np.where(best >= 0, _KIND_REDUCE, _KIND_FORWARD).astype(
        np.int16
    )
    raw.durs = np.where(
        best >= 0, latencies.reduce_path, latencies.forward_path
    ).astype(np.int64)
    return raw


def _process_pe(
    pool: _SetPool,
    input_a: _Stream,
    input_b: _Stream,
    config: FafnirConfig,
    operator: ReductionOperator,
    tracer: Tracer,
    check_values: bool,
    pe_id: int,
    level: int,
    pe_name: str,
) -> Tuple[_Stream, PEWork]:
    """One PE invocation over columnar streams: scan both sides, merge,
    apply the issue limit.  Trace emission order matches the object path
    exactly: side-A rows, side-B rows, then merge events in group order.
    """
    work = PEWork(peak_input_occupancy=max(len(input_a), len(input_b)))
    raw_a = _scan_side(pool, input_a, input_b, config, 0, 0, 2)
    raw_b = _scan_side(pool, input_b, input_a, config, len(input_a), 1, 3)
    work.compares = raw_a.compares + raw_b.compares
    work.reduces = raw_a.reduces + raw_b.reduces
    work.forwards = raw_a.forwards + raw_b.forwards

    if tracer.enabled:
        if len(raw_a.kinds):
            tracer.emit_rows(
                raw_a.kinds, raw_a.ready, pe=pe_id, level=level, arg0=raw_a.durs
            )
        if len(raw_b.kinds):
            tracer.emit_rows(
                raw_b.kinds, raw_b.ready, pe=pe_id, level=level, arg0=raw_b.durs
            )

    r_ind = np.concatenate([raw_a.ind, raw_b.ind])
    n_rows = len(r_ind)
    elements = input_a.values.shape[1] if len(input_a) else input_b.values.shape[1]
    if n_rows == 0:
        stream = _Stream(
            np.zeros(0, np.int64),
            np.zeros(0, np.int64),
            np.zeros(0, np.int64),
            np.zeros((0, elements), np.float64),
            [],
            min(input_a.word_lo, input_b.word_lo),
            max(input_a.word_hi, input_b.word_hi),
        )
        return stream, work

    r_ent = np.concatenate([raw_a.ent, raw_b.ent])
    r_ready = np.concatenate([raw_a.ready, raw_b.ready])
    r_hops = np.concatenate([raw_a.hops, raw_b.hops])
    r_src = np.concatenate([raw_a.src, raw_b.src])
    r_blk = np.concatenate([raw_a.blk, raw_b.blk])
    r_row = np.concatenate([raw_a.row, raw_b.row])

    # ------------------------------------------------------------------
    # Merge unit: group rows by indices id in first-appearance order.
    # ------------------------------------------------------------------
    unique_ids, first_idx, inverse, counts = np.unique(
        r_ind, return_index=True, return_inverse=True, return_counts=True
    )
    order = np.argsort(first_idx, kind="stable")
    n_groups = len(unique_ids)

    group_ready = np.full(n_groups, _I64_MIN, dtype=np.int64)
    np.maximum.at(group_ready, inverse, r_ready)
    group_hops = np.full(n_groups, _I64_MIN, dtype=np.int64)
    np.maximum.at(group_hops, inverse, r_hops)
    src_min = np.full(n_groups, _I64_MAX, dtype=np.int64)
    np.minimum.at(src_min, inverse, r_src)
    src_max = np.full(n_groups, _I64_MIN, dtype=np.int64)
    np.maximum.at(src_max, inverse, r_src)

    firsts = first_idx[order]
    counts_o = counts[order]
    src_first = r_src[firsts]
    entry_counts_all = np.concatenate(
        [input_a.entry_counts, input_b.entry_counts]
    )
    uniform_src = (src_min == src_max)[order] & (src_first >= 0)
    # Forwarded-intact fast path: every member is a forward of the same
    # input message and the group holds all of that message's entries —
    # reuse its (already canonical) header.
    fast = (
        (counts_o > 1)
        & uniform_src
        & (counts_o == entry_counts_all[np.maximum(src_first, 0)])
    )
    single = counts_o == 1
    slow = ~(single | fast)

    # members[0] supplies the value in every merge path; ready/hops are
    # the first member's on the single/fast paths and the group max on
    # the slow path (forwarded-intact groups are ready-uniform).
    out_ready = np.where(slow, group_ready[order], r_ready[firsts])
    out_hops = np.where(slow, group_hops[order], r_hops[firsts])
    out_blk = r_blk[firsts]
    out_row = r_row[firsts]
    out_ind = unique_ids[order]

    multi = counts_o > 1
    work.merges = int(multi.sum())
    if tracer.enabled and work.merges:
        tracer.emit_rows(
            np.full(work.merges, _KIND_MERGE, dtype=np.int16),
            out_ready[multi],
            pe=pe_id,
            level=level,
            arg0=counts_o[multi],
        )

    # Entry lists per group (python loop; slow-path groups are the only
    # ones that need real work — dedup in member order, canonical sort).
    entry_tuples_all = input_a.entry_tuples + input_b.entry_tuples
    member_order = np.argsort(inverse, kind="stable")
    starts = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    r_ent_l = r_ent.tolist()
    firsts_l = firsts.tolist()
    src_first_l = src_first.tolist()
    single_l = single.tolist()
    fast_l = fast.tolist()
    order_l = order.tolist()
    out_entries: List[Tuple[int, ...]] = []
    duplicates = 0
    for position, group in enumerate(order_l):
        if single_l[position]:
            out_entries.append((r_ent_l[firsts_l[position]],))
        elif fast_l[position]:
            out_entries.append(entry_tuples_all[src_first_l[position]])
        else:
            members = member_order[starts[group] : starts[group + 1]]
            seen = set()
            entries: List[int] = []
            for pos in members.tolist():
                entry = r_ent_l[pos]
                if entry in seen:
                    duplicates += 1
                else:
                    seen.add(entry)
                    entries.append(entry)
            if check_values:

                def member_value(pos: int) -> np.ndarray:
                    code = int(r_blk[pos])
                    value_row = int(r_row[pos])
                    if code == 0:
                        return input_a.values[value_row]
                    if code == 1:
                        return input_b.values[value_row]
                    if code == 2:
                        return operator.combine(
                            input_a.values[raw_a.cmsg[value_row]],
                            input_b.values[raw_a.cpartner[value_row]],
                        )
                    return operator.combine(
                        input_b.values[raw_b.cmsg[value_row]],
                        input_a.values[raw_b.cpartner[value_row]],
                    )

                reference = member_value(int(members[0]))
                for pos in members[1:]:
                    value = member_value(int(pos))
                    if not np.allclose(value, reference):
                        raise AssertionError(
                            f"{pe_name}: merge-unit invariant violated — "
                            "outputs with indices "
                            f"{sorted(pool.frozen(int(r_ind[pos])))} carry "
                            "different values"
                        )
            if len(entries) > 1:
                entries.sort(key=pool.entry_key)
            out_entries.append(tuple(entries))
    work.duplicates_removed = duplicates

    # ------------------------------------------------------------------
    # Issue limit: stalls are assigned in (ready cycle, sorted indices)
    # order — one extra cycle per compute_units outputs in a tie run —
    # but the stream is handed to the parent level in canonical
    # sorted-indices order, mirroring _apply_issue_limit: list order
    # steers the parent's matching/merging and must stay independent of
    # memory timing.
    # ------------------------------------------------------------------
    n_out = len(out_ind)
    perm = np.argsort(out_ready, kind="stable")
    ready_sorted = out_ready[perm]
    perm_l = perm.tolist()
    out_ind_l = out_ind.tolist()
    ready_sorted_l = ready_sorted.tolist()
    runs = []
    run_start = 0
    while run_start < n_out:
        run_stop = run_start + 1
        ready_value = ready_sorted_l[run_start]
        while run_stop < n_out and ready_sorted_l[run_stop] == ready_value:
            run_stop += 1
        if run_stop - run_start > 1:
            runs.append((run_start, run_stop))
        run_start = run_stop
    if runs:
        pool.ensure_keys(
            out_ind_l[p] for start, stop in runs for p in perm_l[start:stop]
        )
        keys = pool._indices_keys
        for start, stop in runs:
            perm_l[start:stop] = sorted(
                perm_l[start:stop], key=lambda p: keys[out_ind_l[p]]
            )
        perm = np.asarray(perm_l, dtype=np.int64)
    units = config.compute_units
    # Scatter the stall-adjusted ready cycles back to original rows, then
    # re-permute everything canonically by indices key.
    final_ready = np.empty(n_out, dtype=np.int64)
    final_ready[np.asarray(perm_l, dtype=np.int64)] = (
        ready_sorted + np.arange(n_out, dtype=np.int64) // units
    )
    pool.ensure_keys(out_ind_l)
    keys = pool._indices_keys
    perm_l = sorted(range(n_out), key=lambda p: keys[out_ind_l[p]])
    perm = np.asarray(perm_l, dtype=np.int64)
    final_ready = final_ready[perm]
    work.outputs = n_out

    # Materialize output values: forwards copy straight from the input
    # blocks; reduces combine lazily, only for the surviving group-first
    # rows (a small fraction of all reduce rows at the upper levels).
    out_values = np.empty((n_out, elements), dtype=np.float64)
    blk_perm = out_blk[perm]
    row_perm = out_row[perm]
    for code, block in enumerate((input_a.values, input_b.values)):
        mask = blk_perm == code
        if mask.any():
            out_values[mask] = block[row_perm[mask]]
    for code, raw, own_vals, partner_vals in (
        (2, raw_a, input_a.values, input_b.values),
        (3, raw_b, input_b.values, input_a.values),
    ):
        mask = blk_perm == code
        if mask.any():
            needed = row_perm[mask]
            out_values[mask] = operator.combine(
                own_vals[raw.cmsg[needed]], partner_vals[raw.cpartner[needed]]
            )

    stream = _Stream(
        out_ind[perm],
        final_ready,
        out_hops[perm],
        out_values,
        [out_entries[p] for p in perm_l],
        min(input_a.word_lo, input_b.word_lo),
        max(input_a.word_hi, input_b.word_hi),
    )
    return stream, work


def _build_index_order(
    tree: FafnirTree, leaf_inputs: Dict[int, List[List[Message]]]
) -> Tuple[List[int], Dict[Tuple[int, int], Tuple[int, int]]]:
    """Leaf-major universe numbering plus per-FIFO bit ranges.

    Walking the level-0 PEs in tree order and each PE's two FIFOs in
    side order assigns consecutive bit positions to each FIFO's injected
    indices, so every subtree owns one contiguous bit (hence word) range.
    Indices that appear only inside query entries (e.g. vectors lost to
    faults) are appended at the tail — they belong to no partner stream.
    """
    index_order: List[int] = []
    seen: set = set()
    side_ranges: Dict[Tuple[int, int], Tuple[int, int]] = {}
    entry_sets: set = set()
    for leaf in tree.leaves():
        fifos = leaf_inputs.get(leaf.pe_id, [[], []])
        for side, stream in enumerate(fifos):
            lo = len(index_order)
            for message in stream:
                for index in message.indices:
                    if index not in seen:
                        seen.add(index)
                        index_order.append(index)
                entry_sets.update(message.entries)
            side_ranges[(leaf.pe_id, side)] = (lo, len(index_order))
    tail = set().union(*entry_sets) - seen if entry_sets else set()
    index_order.extend(sorted(tail))
    return index_order, side_ranges


def run_tree_soa(
    tree: FafnirTree,
    config: FafnirConfig,
    operator: ReductionOperator,
    tracer: Tracer,
    check_values: bool,
    kernel: str,
    leaf_inputs: Dict[int, List[List[Message]]],
) -> Tuple[List[Message], Dict[int, PEWork]]:
    """Level-synchronous SoA replacement for ``FafnirEngine._run_tree``.

    Takes the same per-leaf FIFO contents and returns the same
    ``(root outputs, per-PE work)`` pair — byte-identical messages, work
    counters, and trace events.  Between the leaf fold and the root
    materialization no ``Message``/``Header`` objects exist.
    """
    index_order, side_ranges = _build_index_order(tree, leaf_inputs)
    pool = _SetPool(index_order)
    elements = config.vector_elements

    per_pe_work: Dict[int, PEWork] = {}
    streams: Dict[int, _Stream] = {}
    for level in range(tree.num_levels):
        for pe_id in tree.level_ids(level):
            node = tree.pe(pe_id)
            if node.is_leaf:
                # The FIFO fold is inherently sequential (greedy closure
                # in arrival order), so it stays a Python loop — but in
                # the pool domain: buffered sets carry big-int masks and
                # the folded rows intern directly into columnar streams.
                fold_work = PEWork()
                raw_a, raw_b = leaf_inputs[pe_id]
                lo_a, hi_a = side_ranges[(pe_id, 0)]
                lo_b, hi_b = side_ranges[(pe_id, 1)]
                input_a = _fold_leaf_stream(
                    pool,
                    raw_a,
                    config,
                    operator,
                    tracer,
                    pe_id,
                    node.level,
                    fold_work,
                    lo_a >> 6,
                    (hi_a + 63) >> 6,
                    elements,
                )
                input_b = _fold_leaf_stream(
                    pool,
                    raw_b,
                    config,
                    operator,
                    tracer,
                    pe_id,
                    node.level,
                    fold_work,
                    lo_b >> 6,
                    (hi_b + 63) >> 6,
                    elements,
                )
            else:
                fold_work = PEWork()
                left, right = node.children  # type: ignore[misc]
                input_a = streams.pop(left)
                input_b = streams.pop(right)
            stream, work = _process_pe(
                pool,
                input_a,
                input_b,
                config,
                operator,
                tracer,
                check_values,
                pe_id,
                node.level,
                f"PE{pe_id}",
            )
            streams[pe_id] = stream
            per_pe_work[pe_id] = work.merged_with(fold_work)

    root = streams[tree.root_id]
    outputs: List[Message] = []
    ready_l = root.ready.tolist()
    hops_l = root.hops.tolist()
    ind_l = root.indices_id.tolist()
    for position in range(len(root)):
        header = Header(
            indices=pool.frozen(ind_l[position]),
            entries=tuple(
                pool.frozen(e) for e in root.entry_tuples[position]
            ),
        )
        outputs.append(
            Message(
                header=header,
                value=root.values[position],
                ready_cycle=ready_l[position],
                hops=hops_l[position],
            )
        )
    return outputs, per_pe_work
