"""Batch-pipelined throughput model.

The paper's scalability argument (Fig. 13) is about *throughput*: under
load, FAFNIR keeps the DRAM reading batch k+1 while the tree drains batch k,
so the steady-state cost of a batch is the **bottleneck stage**, not the
end-to-end latency.  This module turns per-batch measurements into a
pipelined schedule:

* stage 1 — DRAM occupancy (the cycles the memory system is busy for the
  batch's reads);
* stage 2 — tree occupancy (the cycles the PE tree needs beyond what hides
  behind memory).

Steady-state cycles per batch = max(stage 1, stage 2); the first batch pays
the full fill latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.core.engine import FafnirEngine, LookupStats


@dataclass(frozen=True)
class BatchStageCosts:
    """One batch's per-stage occupancies in PE cycles."""

    memory_cycles: int
    tree_cycles: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if min(self.memory_cycles, self.tree_cycles, self.latency_cycles) < 0:
            raise ValueError("cycle counts must be non-negative")

    @property
    def bottleneck_cycles(self) -> int:
        return max(self.memory_cycles, self.tree_cycles)

    @staticmethod
    def from_stats(stats: LookupStats) -> "BatchStageCosts":
        return BatchStageCosts(
            memory_cycles=stats.memory_latency_pe_cycles,
            tree_cycles=stats.compute_latency_pe_cycles,
            latency_cycles=stats.latency_pe_cycles,
        )


@dataclass
class PipelinedRun:
    """A schedule of many batches through the two-stage pipeline."""

    per_batch: List[BatchStageCosts]

    def __post_init__(self) -> None:
        if not self.per_batch:
            raise ValueError("need at least one batch")

    @property
    def batches(self) -> int:
        return len(self.per_batch)

    @property
    def serial_cycles(self) -> int:
        """Unpipelined total: every batch pays its full latency."""
        return sum(costs.latency_cycles for costs in self.per_batch)

    @property
    def pipelined_cycles(self) -> int:
        """Pipelined total: fill with the first batch's latency, then one
        bottleneck-stage interval per further batch."""
        first = self.per_batch[0].latency_cycles
        rest = sum(costs.bottleneck_cycles for costs in self.per_batch[1:])
        return first + rest

    @property
    def pipeline_speedup(self) -> float:
        return self.serial_cycles / self.pipelined_cycles

    def steady_state_cycles_per_batch(self) -> float:
        if self.batches == 1:
            return float(self.per_batch[0].latency_cycles)
        return (
            sum(costs.bottleneck_cycles for costs in self.per_batch[1:])
            / (self.batches - 1)
        )

    def queries_per_second(self, queries_per_batch: int, pe_clock_mhz: float = 200.0) -> float:
        if queries_per_batch <= 0 or pe_clock_mhz <= 0:
            raise ValueError("invalid arguments")
        seconds = self.pipelined_cycles / (pe_clock_mhz * 1e6)
        return self.batches * queries_per_batch / seconds


def simulate_stream(
    engine: FafnirEngine,
    batches: Sequence[Sequence[Sequence[int]]],
    source: Callable,
    deduplicate: bool = True,
) -> PipelinedRun:
    """Measure each batch on the engine and build the pipelined schedule.

    Each batch is measured from cold DRAM state (conservative: steady-state
    row-buffer reuse across batches would only help).
    """
    per_batch = [
        BatchStageCosts.from_stats(
            engine.run_batch(batch, source, deduplicate=deduplicate).stats
        )
        for batch in batches
    ]
    return PipelinedRun(per_batch=per_batch)
