"""Reduction operators applied by FAFNIR PEs.

The paper's reductions are element-wise summation, minimum, and average
(§II).  Every operator must be associative and commutative so that the tree
may combine vectors in whatever order they happen to meet; *mean* is handled
as a sum inside the tree plus a final host-side division by the query length
(the standard trick, since plain averaging is not associative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np


@dataclass(frozen=True)
class ReductionOperator:
    """An associative, commutative element-wise reduction.

    Attributes:
        name: operator identifier ("sum", "min", "max", "mean").
        combine: pairwise element-wise combiner used inside the tree.
        finalize: host-side post-processing of a fully reduced vector given
            the number of vectors that were folded into it.
    """

    name: str
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray]
    finalize: Callable[[np.ndarray, int], np.ndarray]

    def reduce_many(self, vectors: list) -> np.ndarray:
        """Oracle reduction of a whole list of vectors (for verification)."""
        if not vectors:
            raise ValueError("cannot reduce an empty list of vectors")
        accumulator = np.array(vectors[0], dtype=np.float64)
        for vector in vectors[1:]:
            accumulator = self.combine(accumulator, np.asarray(vector, dtype=np.float64))
        return self.finalize(accumulator, len(vectors))

    def __repr__(self) -> str:
        return f"ReductionOperator({self.name!r})"


def _identity_finalize(value: np.ndarray, count: int) -> np.ndarray:
    return value


def _mean_finalize(value: np.ndarray, count: int) -> np.ndarray:
    if count <= 0:
        raise ValueError("count must be positive")
    return value / count


SUM = ReductionOperator("sum", np.add, _identity_finalize)
MIN = ReductionOperator("min", np.minimum, _identity_finalize)
MAX = ReductionOperator("max", np.maximum, _identity_finalize)
MEAN = ReductionOperator("mean", np.add, _mean_finalize)

_OPERATORS: Dict[str, ReductionOperator] = {
    op.name: op for op in (SUM, MIN, MAX, MEAN)
}


def get_operator(name: str) -> ReductionOperator:
    """Look up an operator by name; raises ``KeyError`` for unknown names."""
    try:
        return _OPERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown reduction operator {name!r}; "
            f"available: {sorted(_OPERATORS)}"
        ) from None


def available_operators() -> list:
    return sorted(_OPERATORS)
