"""Interactive (single-query) processing mode (paper §IV-C).

The batch mechanism is an optimisation, not a requirement: "the same
mechanism can also be used for interactive processing, in which all nodes
would either forward or reduce without performing any comparisons".  With a
single in-flight query, every value in the tree belongs to it, so a PE
simply reduces whenever both inputs hold data and forwards otherwise — no
headers, no compare units on the critical path.

This mode is what a latency-critical online recommendation service would
use for one-off lookups; the batch engine amortises far better under load
(see ``examples/interactive_latency.py`` and the mode-comparison tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clocks import convert_cycles
from repro.core.config import FafnirConfig
from repro.core.engine import VectorSource
from repro.core.operators import ReductionOperator, SUM, get_operator
from repro.core.tree import FafnirTree
from repro.memory.config import MemoryConfig
from repro.memory.mapping import RowMajorPlacement
from repro.memory.request import ReadRequest
from repro.memory.system import MemorySystem
from repro.memory.trace import AccessStats


@dataclass
class InteractiveResult:
    """One query's reduced vector plus latency measurements."""

    vector: np.ndarray
    latency_pe_cycles: int
    memory_latency_pe_cycles: int
    memory: AccessStats

    @property
    def tree_latency_pe_cycles(self) -> int:
        return self.latency_pe_cycles - self.memory_latency_pe_cycles


class InteractiveEngine:
    """Single-query lookups with compare-free PEs."""

    def __init__(
        self,
        config: Optional[FafnirConfig] = None,
        operator: ReductionOperator = SUM,
        memory_config: Optional[MemoryConfig] = None,
    ) -> None:
        self.config = config or FafnirConfig()
        if isinstance(operator, str):
            operator = get_operator(operator)
        self.operator = operator
        if memory_config is None:
            memory_config = MemoryConfig().scaled_to_ranks(self.config.total_ranks)
        if memory_config.geometry.total_ranks != self.config.total_ranks:
            raise ValueError("memory geometry does not match the configuration")
        self.memory = MemorySystem(memory_config)
        self.placement = RowMajorPlacement(
            memory_config.geometry, self.config.vector_bytes
        )
        self.tree = FafnirTree(self.config)

    @property
    def stage_cycles(self) -> int:
        """Per-PE latency without the compare unit: just the reduce paths."""
        latencies = self.config.latencies
        return max(latencies.reduce_value, latencies.forward)

    def lookup_one(
        self, query: Sequence[int], source: VectorSource, reset_memory: bool = True
    ) -> InteractiveResult:
        """Gather-and-reduce one query with minimal latency."""
        indices = sorted(set(int(i) for i in query))
        if not indices:
            raise ValueError("query must contain at least one index")
        if len(indices) > self.config.max_query_len:
            raise ValueError(
                f"query of {len(indices)} indices exceeds the configured "
                f"maximum of {self.config.max_query_len}"
            )
        if reset_memory:
            self.memory.reset()

        requests: List[ReadRequest] = []
        for index in indices:
            requests.extend(self.placement.requests_for(index))
        completions, stats = self.memory.execute(requests)
        # A placement may split one vector into several row-aligned reads
        # (all tagged with the same index); the vector is only usable once
        # its *last* piece lands, so keep the max finish cycle per index.
        finish: Dict[int, int] = {}
        for completion in completions:
            tag = completion.request.tag
            previous = finish.get(tag)
            if previous is None or completion.finish_cycle > previous:
                finish[tag] = completion.finish_cycle

        # Seed each leaf input side with (partial value, ready cycle).
        per_pe: Dict[int, List[Tuple[np.ndarray, int]]] = {}
        for index in indices:
            value = np.asarray(source(index), dtype=np.float64)
            if value.shape != (self.config.vector_elements,):
                raise ValueError(
                    f"vector {index} has shape {value.shape}; expected "
                    f"({self.config.vector_elements},)"
                )
            rank = self.placement.home_rank(index)
            assert rank is not None
            leaf = self.tree.leaf_for_rank(rank)
            ready = convert_cycles(
                finish[index], self.config.dram_clock, self.config.pe_clock
            )
            per_pe.setdefault(leaf.pe_id, []).append((value, ready))

        stage = self.stage_cycles
        outputs: Dict[int, Optional[Tuple[np.ndarray, int]]] = {}
        for pe_id in self.tree.bottom_up_ids():
            node = self.tree.pe(pe_id)
            if node.is_leaf:
                items = per_pe.get(pe_id, [])
            else:
                left, right = node.children  # type: ignore[misc]
                items = [
                    item
                    for item in (outputs.get(left), outputs.get(right))
                    if item is not None
                ]
            if not items:
                outputs[pe_id] = None
                continue
            # The PE folds everything it sees — no comparisons needed.
            value, ready = items[0]
            for other_value, other_ready in items[1:]:
                value = self.operator.combine(value, other_value)
                ready = max(ready, other_ready)
            outputs[pe_id] = (value, ready + stage)

        root = outputs[self.tree.root_id]
        assert root is not None
        value, ready = root
        return InteractiveResult(
            vector=self.operator.finalize(value.copy(), len(indices)),
            latency_pe_cycles=ready,
            memory_latency_pe_cycles=convert_cycles(
                stats.finish_cycle, self.config.dram_clock, self.config.pe_clock
            ),
            memory=stats,
        )
