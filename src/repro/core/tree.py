"""FAFNIR tree topology (paper Fig. 4a).

The tree's leaves attach to the ranks of the memory system (one leaf PE per
two ranks in the reference configuration) and internal PEs pairwise combine
subtrees up to a single root.  PEs are grouped into *DIMM/rank nodes* (the
7-PE subtree covering one channel's 8 ranks) and the *channel node* (the 3
PEs joining the four channels) — the physical chips of the paper's ASIC and
FPGA implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import FafnirConfig
from repro.memory.config import MemoryGeometry


@dataclass(frozen=True)
class TreePE:
    """One position in the tree.

    Attributes:
        pe_id: unique id; leaves come first, then level by level to the root.
        level: 0 for leaves, increasing toward the root.
        children: ids of the two child PEs (None for leaves).
        leaf_ranks: global rank ids feeding this PE (leaves only).
    """

    pe_id: int
    level: int
    children: Optional[Tuple[int, int]]
    leaf_ranks: Optional[Tuple[int, ...]]

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class FafnirTree:
    """The static PE interconnect for a given configuration."""

    def __init__(
        self, config: FafnirConfig, rank_order: Optional[Sequence[int]] = None
    ) -> None:
        """Build the tree; ``rank_order`` optionally rewires ranks to leaves.

        ``rank_order`` is a permutation of ``range(total_ranks)``: leaf PE
        *i* is fed by ``rank_order[i*per_leaf : (i+1)*per_leaf]``.  The
        default is the identity wiring (rank 2i and 2i+1 on leaf i, paper
        Fig. 4a); a permuted order models boards whose physical rank wiring
        does not follow the logical numbering.
        """
        self.config = config
        if rank_order is None:
            rank_order = range(config.total_ranks)
        order = [int(rank) for rank in rank_order]
        if sorted(order) != list(range(config.total_ranks)):
            raise ValueError(
                "rank_order must be a permutation of "
                f"range({config.total_ranks})"
            )
        self._rank_order = order
        self._pes: Dict[int, TreePE] = {}
        self._levels: List[List[int]] = []
        self._leaf_of_rank: Dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        per_leaf = self.config.ranks_per_leaf_pe
        next_id = 0
        current: List[int] = []
        for leaf in range(self.config.num_leaf_pes):
            ranks = tuple(
                self._rank_order[leaf * per_leaf : (leaf + 1) * per_leaf]
            )
            self._pes[next_id] = TreePE(
                pe_id=next_id, level=0, children=None, leaf_ranks=ranks
            )
            for rank in ranks:
                self._leaf_of_rank[rank] = next_id
            current.append(next_id)
            next_id += 1
        self._levels.append(list(current))

        level = 1
        while len(current) > 1:
            parents: List[int] = []
            for left, right in zip(current[0::2], current[1::2]):
                self._pes[next_id] = TreePE(
                    pe_id=next_id,
                    level=level,
                    children=(left, right),
                    leaf_ranks=None,
                )
                parents.append(next_id)
                next_id += 1
            self._levels.append(list(parents))
            current = parents
            level += 1

    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return len(self._pes)

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def root_id(self) -> int:
        return self._levels[-1][0]

    def pe(self, pe_id: int) -> TreePE:
        return self._pes[pe_id]

    def level_ids(self, level: int) -> List[int]:
        return list(self._levels[level])

    def leaves(self) -> List[TreePE]:
        return [self._pes[i] for i in self._levels[0]]

    def bottom_up_ids(self) -> List[int]:
        """All PE ids ordered leaves-first, root last."""
        return [pe_id for level in self._levels for pe_id in level]

    def leaf_for_rank(self, rank: int) -> TreePE:
        """The leaf PE whose FIFO a given rank feeds."""
        if not 0 <= rank < self.config.total_ranks:
            raise ValueError(f"rank {rank} out of range")
        return self._pes[self._leaf_of_rank[rank]]

    def covered_ranks(self, pe_id: int) -> Tuple[int, ...]:
        """All memory ranks in the subtree rooted at ``pe_id``."""
        pe = self._pes[pe_id]
        if pe.is_leaf:
            assert pe.leaf_ranks is not None
            return pe.leaf_ranks
        left, right = pe.children  # type: ignore[misc]
        return self.covered_ranks(left) + self.covered_ranks(right)

    # ------------------------------------------------------------------
    def node_grouping(self, geometry: MemoryGeometry) -> Dict[int, str]:
        """Assign each PE to a physical chip (paper Fig. 4a).

        PEs whose subtree stays within one channel belong to that channel's
        *DIMM/rank node*; PEs joining multiple channels form the *channel
        node*.  For the 32-rank reference system this yields four 7-PE
        DIMM/rank nodes and one 3-PE channel node.
        """
        grouping: Dict[int, str] = {}
        for pe_id in self._pes:
            channels = {
                geometry.channel_of(rank) for rank in self.covered_ranks(pe_id)
            }
            if len(channels) == 1:
                grouping[pe_id] = f"dimm_rank_node_ch{channels.pop()}"
            else:
                grouping[pe_id] = "channel_node"
        return grouping

    def connection_count(self) -> int:
        """Internal tree links: one per non-root PE (2m − 2 for m leaves...).

        The paper's §IV-A counts ``2m − 2`` connections inside the tree for
        ``m`` memory devices plus ``c`` links from the root to the cores.
        Here we count the PE-to-PE links (child→parent edges).
        """
        return self.num_pes - 1
