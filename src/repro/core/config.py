"""FAFNIR accelerator configuration (paper §IV-B, Table I, Table IV)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.clocks import Clock, DRAM_CLOCK, PE_CLOCK


@dataclass(frozen=True)
class PELatencies:
    """Per-operation compute-unit latencies in PE cycles (paper Table IV).

    The paper's FPGA implementation at 200 MHz reports: compare 12 cycles,
    reduce (value) 4, reduce (header) 16, forward 2.  Reduce and forward are
    parallel paths after the compare, so a PE's critical path is
    ``compare + max(reduce_value, reduce_header)``.
    """

    compare: int = 12
    reduce_value: int = 4
    reduce_header: int = 16
    forward: int = 2

    def __post_init__(self) -> None:
        for name in ("compare", "reduce_value", "reduce_header", "forward"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} latency must be positive")

    @property
    def reduce_path(self) -> int:
        """Compare followed by the slower of the two reduce sub-units."""
        return self.compare + max(self.reduce_value, self.reduce_header)

    @property
    def forward_path(self) -> int:
        return self.compare + self.forward

    @property
    def critical_path(self) -> int:
        """The pipeline-stage latency: reduce is slower than forward."""
        return max(self.reduce_path, self.forward_path)


@dataclass(frozen=True)
class FafnirConfig:
    """Shape and timing of one FAFNIR instance.

    Defaults reproduce the paper's reference system: 32 ranks (4 channels ×
    4 DIMMs × 2 ranks), one leaf PE per two ranks, 512 B embedding vectors,
    queries of up to 16 indices, and batch-sized PE buffers (n = m = B).
    """

    batch_size: int = 32
    max_query_len: int = 16
    vector_bytes: int = 512
    element_bytes: int = 4
    total_ranks: int = 32
    ranks_per_leaf_pe: int = 2
    num_tables: int = 32
    latencies: PELatencies = field(default_factory=PELatencies)
    pe_clock: Clock = PE_CLOCK
    dram_clock: Clock = DRAM_CLOCK

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.max_query_len <= 0:
            raise ValueError("max_query_len must be positive")
        if self.vector_bytes <= 0 or self.element_bytes <= 0:
            raise ValueError("vector/element sizes must be positive")
        if self.vector_bytes % self.element_bytes != 0:
            raise ValueError("vector_bytes must be a multiple of element_bytes")
        if self.total_ranks < 1:
            raise ValueError("need at least one rank")
        if self.ranks_per_leaf_pe < 1:
            raise ValueError("ranks_per_leaf_pe must be >= 1")
        if self.total_ranks % self.ranks_per_leaf_pe != 0:
            raise ValueError("ranks must divide evenly into leaf PEs")
        leaves = self.total_ranks // self.ranks_per_leaf_pe
        if leaves & (leaves - 1):
            raise ValueError(
                f"number of leaf PEs must be a power of two, got {leaves}"
            )
        if self.num_tables <= 0:
            raise ValueError("num_tables must be positive")

    @property
    def vector_elements(self) -> int:
        return self.vector_bytes // self.element_bytes

    @property
    def num_leaf_pes(self) -> int:
        return self.total_ranks // self.ranks_per_leaf_pe

    @property
    def tree_levels(self) -> int:
        """Number of PE levels from leaves to root inclusive."""
        return int(math.log2(self.num_leaf_pes)) + 1

    @property
    def num_pes(self) -> int:
        """A binary tree over L leaves has 2L − 1 PEs (31 for 16 leaves)."""
        return 2 * self.num_leaf_pes - 1

    @property
    def compute_units(self) -> int:
        """Compute units per PE; the paper sizes n = m = B units."""
        return self.batch_size

    @property
    def buffer_entries(self) -> int:
        """Entries per input FIFO (n = m = B)."""
        return self.batch_size

    @property
    def index_bits(self) -> int:
        """Bits to name one embedding table (5 bits for 32 tables)."""
        return max(1, math.ceil(math.log2(self.num_tables)))

    @property
    def header_bytes(self) -> float:
        """Wire bytes of one header: q index slots of index_bits each.

        For q=16 and 5-bit ids this is the paper's 10 B (16 × 5 / 8).
        """
        return self.max_query_len * self.index_bits / 8

    @property
    def entry_bytes(self) -> float:
        """One buffer entry: a vector value plus its header (Fig. 5)."""
        return self.vector_bytes + self.header_bytes

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to plain data (JSON-compatible) for configs on disk."""
        return {
            "batch_size": self.batch_size,
            "max_query_len": self.max_query_len,
            "vector_bytes": self.vector_bytes,
            "element_bytes": self.element_bytes,
            "total_ranks": self.total_ranks,
            "ranks_per_leaf_pe": self.ranks_per_leaf_pe,
            "num_tables": self.num_tables,
            "latencies": {
                "compare": self.latencies.compare,
                "reduce_value": self.latencies.reduce_value,
                "reduce_header": self.latencies.reduce_header,
                "forward": self.latencies.forward,
            },
            "pe_clock_mhz": self.pe_clock.freq_mhz,
            "dram_clock_mhz": self.dram_clock.freq_mhz,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FafnirConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {
            "batch_size",
            "max_query_len",
            "vector_bytes",
            "element_bytes",
            "total_ranks",
            "ranks_per_leaf_pe",
            "num_tables",
            "latencies",
            "pe_clock_mhz",
            "dram_clock_mhz",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown configuration keys: {sorted(unknown)}")
        latencies = data.get("latencies", {})
        return FafnirConfig(
            batch_size=data.get("batch_size", 32),
            max_query_len=data.get("max_query_len", 16),
            vector_bytes=data.get("vector_bytes", 512),
            element_bytes=data.get("element_bytes", 4),
            total_ranks=data.get("total_ranks", 32),
            ranks_per_leaf_pe=data.get("ranks_per_leaf_pe", 2),
            num_tables=data.get("num_tables", 32),
            latencies=PELatencies(
                compare=latencies.get("compare", 12),
                reduce_value=latencies.get("reduce_value", 4),
                reduce_header=latencies.get("reduce_header", 16),
                forward=latencies.get("forward", 2),
            ),
            pe_clock=Clock(data.get("pe_clock_mhz", 200.0)),
            dram_clock=Clock(data.get("dram_clock_mhz", 1200.0)),
        )

    def with_batch_size(self, batch_size: int) -> "FafnirConfig":
        return FafnirConfig(
            batch_size=batch_size,
            max_query_len=self.max_query_len,
            vector_bytes=self.vector_bytes,
            element_bytes=self.element_bytes,
            total_ranks=self.total_ranks,
            ranks_per_leaf_pe=self.ranks_per_leaf_pe,
            num_tables=self.num_tables,
            latencies=self.latencies,
            pe_clock=self.pe_clock,
            dram_clock=self.dram_clock,
        )

    def with_ranks(
        self, total_ranks: int, ranks_per_leaf_pe: Optional[int] = None
    ) -> "FafnirConfig":
        per_leaf = self.ranks_per_leaf_pe if ranks_per_leaf_pe is None else ranks_per_leaf_pe
        if total_ranks % per_leaf != 0 or total_ranks < per_leaf:
            per_leaf = 1
        return FafnirConfig(
            batch_size=self.batch_size,
            max_query_len=self.max_query_len,
            vector_bytes=self.vector_bytes,
            element_bytes=self.element_bytes,
            total_ranks=total_ranks,
            ranks_per_leaf_pe=per_leaf,
            num_tables=self.num_tables,
            latencies=self.latencies,
            pe_clock=self.pe_clock,
            dram_clock=self.dram_clock,
        )
