"""Processing-element model: compute units plus merge unit (paper Fig. 5).

A PE takes two input message lists (A from its left child or rank pair, B
from its right), and for every *entry* (outstanding query remainder) of every
input message decides among three actions:

* **reduce** — a partner message on the other input whose ``indices`` are all
  contained in the entry exists; combine the values, union the indices, and
  shrink the entry by the partner's indices.
* **forward** — no partner matches; pass the value along with that entry
  unchanged.
* complete entries (empty remainder) are always forwarded — the value is a
  finished query answer on its way to the root.

The compute units examine both directions (A-entries against B-indices and
vice versa), so the same reduction is typically discovered twice; the
**merge unit** then groups raw outputs by ``indices`` set, removing exact
duplicates and concatenating the query entries of outputs that carry the
same data (paper Fig. 6d).

Timing is annotated per message: an output is ready one pipeline stage after
the later of its parents, and the PE's finite compute units impose a simple
one-output-per-unit-per-cycle issue limit on top.

Two interchangeable kernel implementations back the compute units:

* ``"scalar"`` — the original pure-Python ``O(entries × partners)`` scan,
  kept as the executable specification;
* ``"vector"`` (default) — NumPy kernels (sparse intersection counting for
  the scan, membership gathers via :mod:`repro.core.bitset` for the fold)
  that evaluate every entry-vs-partner subset test of one invocation in a
  few array operations and combine all matched values in one batched
  ``operator.combine`` call.

Both kernels produce byte-identical outputs, headers, ready cycles, and
:class:`PEWork` counters; the vector path simply gets there without the
Python inner loops (see ``benchmarks/bench_engine_hotpath.py`` for the
tracked speedup).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitset import IndexUniverse
from repro.core.config import FafnirConfig
from repro.core.header import Header, Message, entry_sort_key, sorted_tuple
from repro.core.operators import ReductionOperator
from repro.obs.events import PE_FORWARD, PE_MERGE, PE_REDUCE
from repro.obs.tracer import NULL_TRACER, Tracer

KERNEL_SCALAR = "scalar"
KERNEL_VECTOR = "vector"
KERNELS = (KERNEL_SCALAR, KERNEL_VECTOR)

# Below this many entry-vs-partner pairs the NumPy set-up cost exceeds the
# loop it replaces; both kernels are exact, so the cutover is purely a
# performance knob.
_VECTOR_SCAN_CUTOVER = 64
_VECTOR_FOLD_CUTOVER = 8


@dataclass
class PEWork:
    """Operation counts for one PE invocation (drives timing/power stats).

    These counters are the ground truth the event stream must agree with:
    when a :class:`~repro.obs.Tracer` is attached, every ``reduces`` /
    ``forwards`` / ``merges`` increment also emits one ``pe_reduce`` /
    ``pe_forward`` / ``pe_merge`` :class:`~repro.obs.TraceEvent`, so
    ``repro.obs.per_level_counts(events)`` equals the per-level sums
    produced by :func:`repro.core.stats.tree_utilization` over
    ``LookupStats.per_pe_work``.  The scalar and vector kernels increment
    (and therefore emit) at the same semantic points, which is what makes
    their event streams comparable with ``==``.
    """

    compares: int = 0
    reduces: int = 0
    forwards: int = 0
    merges: int = 0
    duplicates_removed: int = 0
    outputs: int = 0
    peak_input_occupancy: int = 0

    def merged_with(self, other: "PEWork") -> "PEWork":
        return PEWork(
            compares=self.compares + other.compares,
            reduces=self.reduces + other.reduces,
            forwards=self.forwards + other.forwards,
            merges=self.merges + other.merges,
            duplicates_removed=self.duplicates_removed + other.duplicates_removed,
            outputs=self.outputs + other.outputs,
            peak_input_occupancy=max(
                self.peak_input_occupancy, other.peak_input_occupancy
            ),
        )


@dataclass
class PEResult:
    outputs: List[Message]
    work: PEWork


@dataclass
class _RawOutput:
    """A compute-unit output before the merge unit.

    ``source_header`` is set on forwards: it names the input message whose
    entry this row carries unchanged, letting the merge unit reuse that
    message's (already canonical) header when a group turns out to be one
    message forwarded intact.
    """

    indices: FrozenSet[int]
    entry: FrozenSet[int]
    value: np.ndarray
    ready_cycle: int
    hops: int
    was_reduce: bool
    source_header: Optional[Header] = None


class ProcessingElement:
    """One node of the FAFNIR tree.

    Instances are stateless between invocations; :meth:`process` consumes the
    two input FIFOs' contents for one batch and returns merged outputs.
    """

    def __init__(
        self,
        config: FafnirConfig,
        operator: ReductionOperator,
        name: str = "PE",
        check_values: bool = False,
        kernel: str = KERNEL_VECTOR,
        tracer: Tracer = NULL_TRACER,
        pe_id: Optional[int] = None,
        level: Optional[int] = None,
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(f"unknown PE kernel {kernel!r}; choose from {KERNELS}")
        self.config = config
        self.operator = operator
        self.name = name
        self.check_values = check_values
        self.kernel = kernel
        # Tracing: events are emitted exactly where the PEWork counters
        # increment, in both kernels, so scalar and vector runs produce
        # ==-equal event streams (asserted by the differential tests).
        # Every emission is guarded by ``tracer.enabled`` — one attribute
        # read when tracing is off.
        self.tracer = tracer
        self.pe_id = pe_id
        self.level = level

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _emit_op(self, kind: str, cycle: int, dur_cycles: int) -> None:
        """Emit one PE-operation event (callers guard on ``tracer.enabled``)."""
        self.tracer.emit_packed(
            kind,
            cycle,
            pe=self.pe_id,
            level=self.level,
            args=(dur_cycles,),
        )

    def _emit_merge(self, cycle: int, members: int) -> None:
        """Emit one merge-unit event (callers guard on ``tracer.enabled``)."""
        self.tracer.emit_packed(
            PE_MERGE,
            cycle,
            pe=self.pe_id,
            level=self.level,
            args=(members,),
        )

    # ------------------------------------------------------------------
    # Compute units — kernel dispatch
    # ------------------------------------------------------------------
    def _scan_side(
        self,
        own: Sequence[Message],
        partners: Sequence[Message],
        work: PEWork,
        raw: List[_RawOutput],
    ) -> None:
        if self.kernel == KERNEL_VECTOR:
            pairs = sum(len(m.entries) for m in own) * max(1, len(partners))
            if pairs >= _VECTOR_SCAN_CUTOVER:
                self._scan_side_vector(own, partners, work, raw)
                return
        self._scan_side_scalar(own, partners, work, raw)

    def _scan_side_scalar(
        self,
        own: Sequence[Message],
        partners: Sequence[Message],
        work: PEWork,
        raw: List[_RawOutput],
    ) -> None:
        latencies = self.config.latencies
        tracer = self.tracer
        for message in own:
            for entry in message.entries:
                if not entry:
                    # Finished answer: travels up untouched.
                    work.forwards += 1
                    ready = message.ready_cycle + latencies.forward_path
                    if tracer.enabled:
                        self._emit_op(PE_FORWARD, ready, latencies.forward_path)
                    raw.append(
                        _RawOutput(
                            indices=message.indices,
                            entry=entry,
                            value=message.value,
                            ready_cycle=ready,
                            hops=message.hops + 1,
                            was_reduce=False,
                            source_header=message.header,
                        )
                    )
                    continue
                # Reduce with the *maximal* matching partner.  The subtree-
                # completion invariant guarantees the other input holds one
                # message covering exactly this query's indices beneath that
                # subtree; reducing with it (rather than every smaller
                # partial) is what keeps the PE's output count within the
                # paper's min(nm+n+m, B) bound.
                best = None
                for partner in partners:
                    work.compares += 1
                    if partner.indices <= entry:
                        if best is None or len(partner.indices) > len(best.indices):
                            best = partner
                if best is not None:
                    work.reduces += 1
                    ready = (
                        max(message.ready_cycle, best.ready_cycle)
                        + latencies.reduce_path
                    )
                    if tracer.enabled:
                        self._emit_op(PE_REDUCE, ready, latencies.reduce_path)
                    raw.append(
                        _RawOutput(
                            indices=message.indices | best.indices,
                            entry=entry - best.indices,
                            value=self.operator.combine(
                                message.value, best.value
                            ),
                            ready_cycle=ready,
                            hops=max(message.hops, best.hops) + 1,
                            was_reduce=True,
                        )
                    )
                else:
                    work.forwards += 1
                    ready = message.ready_cycle + latencies.forward_path
                    if tracer.enabled:
                        self._emit_op(PE_FORWARD, ready, latencies.forward_path)
                    raw.append(
                        _RawOutput(
                            indices=message.indices,
                            entry=entry,
                            value=message.value,
                            ready_cycle=ready,
                            hops=message.hops + 1,
                            was_reduce=False,
                            source_header=message.header,
                        )
                    )

    def _scan_side_vector(
        self,
        own: Sequence[Message],
        partners: Sequence[Message],
        work: PEWork,
        raw: List[_RawOutput],
    ) -> None:
        """Intersection-counting kernel equivalent of :meth:`_scan_side_scalar`.

        One row per (message, entry) pair, in scalar scan order.  The subset
        tests ``partner ⊆ entry`` are evaluated by accumulating, index by
        index, how many of each partner's members every distinct entry
        contains; a partner is contained exactly when its count reaches its
        size.  All matched values are combined in one batched
        ``operator.combine`` call; the surviving Python loop only
        materialises the raw-output records.
        """
        latencies = self.config.latencies
        msg_of: List[int] = []
        entries: List[FrozenSet[int]] = []
        for position, message in enumerate(own):
            for entry in message.entries:
                msg_of.append(position)
                entries.append(entry)
        rows = len(entries)
        if rows == 0:
            return

        num_partners = len(partners)
        best_of = np.full(rows, -1, dtype=np.int64)
        # Identical entries choose identical partners, so the kernel only
        # ever sees each distinct non-empty entry once.
        slot_of: Dict[FrozenSet[int], int] = {}
        row_slot = np.full(rows, -1, dtype=np.int64)
        for row, entry in enumerate(entries):
            if entry:
                slot = slot_of.setdefault(entry, len(slot_of))
                row_slot[row] = slot
        if slot_of and num_partners:
            partner_indices = [p.indices for p in partners]
            partner_sizes = np.fromiter(
                (len(s) for s in partner_indices), np.int16, num_partners
            )
            # Sparse intersection counting.  Almost every (entry, partner)
            # pair shares no index at all, so instead of testing each pair
            # directly the kernel accumulates, index by index, how many of
            # partner j's members entry i contains; containment is then
            # ``count == |partner|``.  Work is Σ_u |entries∋u|·|partners∋u|
            # — proportional to the actual index overlap, not to
            # rows × partners × width.
            max_entry = max(len(entry) for entry in slot_of)
            cols_by_u: Dict[int, List[int]] = {}
            for j, index_set in enumerate(partner_indices):
                # A partner wider than the widest entry can never be
                # contained in one — keep it out of the accumulation (near
                # the root this drops partners whose folded index sets hold
                # thousands of members).
                if len(index_set) <= max_entry:
                    for u in index_set:
                        cols_by_u.setdefault(u, []).append(j)
            rows_by_u: Dict[int, List[int]] = {}
            for slot, entry in enumerate(slot_of):
                for u in entry:
                    if u in cols_by_u:
                        rows_by_u.setdefault(u, []).append(slot)
            count_type = np.uint8 if max_entry < 255 else np.int32
            count = np.zeros((len(slot_of), num_partners), dtype=count_type)
            for u, slots in rows_by_u.items():
                count[np.ix_(slots, cols_by_u[u])] += 1
            # Ineligible partners keep count 0 but have size > max_entry, so
            # clipping their compare target to max_entry + 1 (which a count
            # can never reach) keeps them uncontained without a mask.
            targets = np.minimum(partner_sizes, max_entry + 1).astype(
                count_type
            )
            contained = count == targets[None, :]
            # Maximal match, first-partner tie-break: every header names at
            # least one index, so sizes are ≥ 1 and ``contained * sizes`` is
            # positive exactly for contained partners; argmax then
            # reproduces the scalar loop's "strictly greater wins, earlier
            # partner kept on ties" and an all-zero row means no match.
            score = contained * partner_sizes[None, :]
            choice = score.argmax(axis=1)
            matched = score[np.arange(len(slot_of)), choice] > 0
            slot_best = np.where(matched, choice, -1)
            live = row_slot >= 0
            best_of[live] = slot_best[row_slot[live]]

        # The scalar loop charges one compare per partner for every
        # non-empty entry, match or not.
        work.compares += num_partners * int((row_slot >= 0).sum())

        msg_index = np.asarray(msg_of, dtype=np.int64)
        reduce_rows = np.nonzero(best_of >= 0)[0]
        if reduce_rows.size:
            own_ready = np.fromiter(
                (m.ready_cycle for m in own), np.int64, len(own)
            )
            own_hops = np.fromiter((m.hops for m in own), np.int64, len(own))
            partner_ready = np.fromiter(
                (p.ready_cycle for p in partners), np.int64, num_partners
            )
            partner_hops = np.fromiter(
                (p.hops for p in partners), np.int64, num_partners
            )
            chosen = best_of[reduce_rows]
            own_values = np.stack([m.value for m in own])
            partner_values = np.stack([p.value for p in partners])
            combined = self.operator.combine(
                own_values[msg_index[reduce_rows]], partner_values[chosen]
            )
            reduce_ready = (
                np.maximum(own_ready[msg_index[reduce_rows]], partner_ready[chosen])
                + latencies.reduce_path
            ).tolist()
            reduce_hops = (
                np.maximum(own_hops[msg_index[reduce_rows]], partner_hops[chosen]) + 1
            ).tolist()

        best_list = best_of.tolist()
        own_indices = [m.indices for m in own]
        partner_list = list(partners)
        forward_path = latencies.forward_path
        tracer = self.tracer
        # Rows of one message matched to one partner share the same union;
        # caching it also reuses the frozenset object, so the merge unit's
        # group dict hashes each (large, near-root) union once.
        union_cache: Dict[Tuple[int, int], FrozenSet[int]] = {}
        slot = 0
        for row in range(rows):
            message = own[msg_of[row]]
            entry = entries[row]
            best_index = best_list[row]
            if best_index >= 0:
                # reduce_rows is ascending, so a running slot counter walks
                # the batched-combine results in row order.
                partner = partner_list[best_index]
                pair = (msg_of[row], best_index)
                union = union_cache.get(pair)
                if union is None:
                    union = own_indices[msg_of[row]] | partner.indices
                    union_cache[pair] = union
                work.reduces += 1
                if tracer.enabled:
                    self._emit_op(
                        PE_REDUCE, reduce_ready[slot], latencies.reduce_path
                    )
                raw.append(
                    _RawOutput(
                        indices=union,
                        entry=entry - partner.indices,
                        value=combined[slot],
                        ready_cycle=reduce_ready[slot],
                        hops=reduce_hops[slot],
                        was_reduce=True,
                    )
                )
                slot += 1
            else:
                work.forwards += 1
                if tracer.enabled:
                    self._emit_op(
                        PE_FORWARD,
                        message.ready_cycle + forward_path,
                        forward_path,
                    )
                raw.append(
                    _RawOutput(
                        indices=own_indices[msg_of[row]],
                        entry=entry,
                        value=message.value,
                        ready_cycle=message.ready_cycle + forward_path,
                        hops=message.hops + 1,
                        was_reduce=False,
                        source_header=message.header,
                    )
                )

    # ------------------------------------------------------------------
    # Merge unit
    # ------------------------------------------------------------------
    def _merge(self, raw: List[_RawOutput], work: PEWork) -> List[Message]:
        """Group raw outputs by indices set; dedup and concatenate entries."""
        groups: Dict[FrozenSet[int], List[_RawOutput]] = {}
        for output in raw:
            groups.setdefault(output.indices, []).append(output)

        merged: List[Message] = []
        for indices, members in groups.items():
            # Fast path: one input message forwarded intact (every one of
            # its entries, nothing else in the group).  The merged header
            # would be rebuilt from exactly the source header's canonical
            # entries, so reuse it; ready/hops are uniform across members.
            source = members[0].source_header
            if (
                source is not None
                and len(members) == len(source.entries)
                and all(m.source_header is source for m in members)
            ):
                if len(members) > 1:
                    work.merges += 1
                    if self.tracer.enabled:
                        self._emit_merge(members[0].ready_cycle, len(members))
                merged.append(
                    Message(
                        header=source,
                        value=members[0].value,
                        ready_cycle=members[0].ready_cycle,
                        hops=members[0].hops,
                    )
                )
                continue
            seen_entries = set()
            entries: List[FrozenSet[int]] = []
            ready = 0
            hops = 0
            for member in members:
                if member.entry in seen_entries:
                    work.duplicates_removed += 1
                else:
                    seen_entries.add(member.entry)
                    entries.append(member.entry)
                ready = max(ready, member.ready_cycle)
                hops = max(hops, member.hops)
            if len(members) > 1:
                work.merges += 1
                if self.tracer.enabled:
                    self._emit_merge(ready, len(members))
            if self.check_values:
                reference = members[0].value
                for member in members[1:]:
                    if not np.allclose(member.value, reference):
                        raise AssertionError(
                            f"{self.name}: merge-unit invariant violated — "
                            f"outputs with indices {sorted(indices)} carry "
                            "different values"
                        )
            # ``entries`` is already deduplicated above; sorting it
            # canonically here is exactly Header.make minus the redundant
            # second dedup pass (a single entry needs no sort at all).
            if len(entries) == 1:
                canonical = (entries[0],)
            else:
                canonical = tuple(sorted(entries, key=entry_sort_key))
            merged.append(
                Message(
                    header=Header(indices=indices, entries=canonical),
                    value=members[0].value,
                    ready_cycle=ready,
                    hops=hops,
                )
            )
        return merged

    def _apply_issue_limit(self, outputs: List[Message]) -> List[Message]:
        """Finite compute units: at most ``compute_units`` outputs per cycle."""
        units = self.config.compute_units
        # Stalls are assigned in (ready_cycle, sorted indices) order: the
        # earliest-ready outputs grab the free units first.  Sorting by the
        # cheap int key first and breaking ties per run avoids materialising
        # the sorted-indices key for messages whose ready cycle is unique —
        # near the root those index sets hold thousands of members.
        outputs.sort(key=operator.attrgetter("ready_cycle"))
        start = 0
        total = len(outputs)
        while start < total:
            stop = start + 1
            ready = outputs[start].ready_cycle
            while stop < total and outputs[stop].ready_cycle == ready:
                stop += 1
            if stop - start > 1:
                outputs[start:stop] = sorted(
                    outputs[start:stop], key=lambda m: sorted_tuple(m.indices)
                )
            start = stop
        for position, message in enumerate(outputs):
            message.ready_cycle += position // units
        # Hand the list to the parent level in canonical sorted-indices
        # order.  The stall assignment above is timing (who waits for a
        # free unit); the *list* order steers the parent's greedy matching
        # and merge grouping, which must not depend on when memory happened
        # to deliver the operands — the invariant that keeps functional
        # outputs byte-identical under the opt-in hot-index tier.  Indices
        # sets are unique after the merge unit, so this is a strict total
        # order.
        outputs.sort(key=lambda m: sorted_tuple(m.indices))
        return outputs

    # ------------------------------------------------------------------
    def process(
        self, input_a: Sequence[Message], input_b: Sequence[Message]
    ) -> PEResult:
        """Run one batch through this PE.

        Either input may be empty (e.g. a rank holding no requested vector),
        in which case everything on the other input is forwarded — the paper's
        automatic-forward case for PE (4|15) in Fig. 6.
        """
        work = PEWork(
            peak_input_occupancy=max(len(input_a), len(input_b))
        )
        raw: List[_RawOutput] = []
        self._scan_side(input_a, input_b, work, raw)
        self._scan_side(input_b, input_a, work, raw)
        outputs = self._merge(raw, work)
        outputs = self._apply_issue_limit(outputs)
        work.outputs = len(outputs)
        return PEResult(outputs=outputs, work=work)

    # ------------------------------------------------------------------
    # Intra-FIFO streaming combination (leaf PEs)
    # ------------------------------------------------------------------
    def fold_stream(self, stream: Sequence[Message], work: PEWork) -> List[Message]:
        """Combine messages arriving sequentially on *one* input FIFO.

        In the paper's reference workload a query touches at most one vector
        per rank (table-number bits select the rank, Fig. 4b), so vectors
        needing each other always arrive on *different* PE inputs.  A general
        sparse-gathering library cannot assume that: two indices of one query
        may be homed in the same rank.  Physically those items stream through
        the leaf PE's FIFO one after another, and the compute units compare
        each arriving item against the entries already buffered (Fig. 5 shows
        the units iterating over the buffer).  This method models that
        streaming self-combination: it computes the closure of pairwise
        reductions within one FIFO, charging the reduce path per combination
        but no forward cost for items that merely sit in the buffer.

        Messages that do not interact pass through untouched, so for
        paper-style workloads this is an identity with zero added latency.

        Combination is greedy: each arriving item reduces, per query entry,
        with the *maximal* already-buffered match — the running accumulator
        for that query within this FIFO.  This keeps the buffered message
        count linear in the stream length (the full pairwise closure would
        be exponential for heavily co-located queries) while preserving the
        completion invariant: after the fold, the buffer holds one message
        covering exactly each query's indices homed on this FIFO.
        """
        if self.kernel == KERNEL_VECTOR and len(stream) >= _VECTOR_FOLD_CUTOVER:
            return self._fold_stream_vector(stream, work)
        return self._fold_stream_scalar(stream, work)

    def _fold_stream_scalar(
        self, stream: Sequence[Message], work: PEWork
    ) -> List[Message]:
        latencies = self.config.latencies
        buffer: List[Message] = []

        def insert(message: Message) -> None:
            produced: List[Message] = []
            for entry in message.entries:
                if not entry:
                    continue
                best = None
                for other in buffer:
                    work.compares += 1
                    if other.indices <= entry:
                        if best is None or len(other.indices) > len(best.indices):
                            best = other
                if best is not None:
                    work.reduces += 1
                    ready = (
                        max(message.ready_cycle, best.ready_cycle)
                        + latencies.reduce_path
                    )
                    if self.tracer.enabled:
                        self._emit_op(PE_REDUCE, ready, latencies.reduce_path)
                    produced.append(
                        Message(
                            header=message.header.reduced_with(
                                best.indices, entry
                            ),
                            value=self.operator.combine(
                                message.value, best.value
                            ),
                            ready_cycle=ready,
                            hops=max(message.hops, best.hops),
                        )
                    )
            buffer.append(message)
            for combined in produced:
                already = any(
                    other.indices == combined.indices
                    and set(combined.entries) <= set(other.entries)
                    for other in buffer
                )
                if already:
                    work.duplicates_removed += 1
                else:
                    insert(combined)

        # FIFO arrival order — the deterministic append order built by
        # ``FafnirEngine._leaf_inputs`` — not ready-cycle order: which pairs
        # fold (and therefore the reduced values' float association) must
        # not depend on DRAM scheduling or the hot-index tier, only the
        # ready arithmetic may.
        for message in stream:
            insert(message)
        return self._coalesce(buffer, work)

    def _fold_stream_vector(
        self, stream: Sequence[Message], work: PEWork
    ) -> List[Message]:
        """Membership-gather kernel equivalent of :meth:`_fold_stream_scalar`.

        The buffer's ``indices`` sets are mirrored in an incrementally grown
        position matrix (one padded row of universe positions per buffered
        message), so each arriving entry tests containment against the
        *whole* buffer in one gather-and-reduce instead of a Python scan —
        cost proportional to the widest buffered set, not to the index
        universe.  Insertion order, greedy-match choices, and all ``PEWork``
        counters are identical to the scalar fold.
        """
        latencies = self.config.latencies
        universe = IndexUniverse(
            [m.indices for m in stream]
            + [entry for m in stream for entry in m.entries]
        )
        position_of = universe.position_map()
        sentinel = universe.size
        buffer: List[Message] = []
        rows_by_indices: Dict[FrozenSet[int], List[int]] = {}
        capacity = max(4, 2 * len(stream))
        width = max((len(m.indices) for m in stream), default=1)
        buffer_pos = np.full((capacity, width), sentinel, dtype=np.int64)
        buffer_sizes = np.zeros(capacity, dtype=np.int64)

        def append_row(message: Message) -> None:
            nonlocal capacity, width, buffer_pos, buffer_sizes
            if len(buffer) > capacity:
                raise AssertionError("buffer bookkeeping out of sync")
            if len(buffer) == capacity:
                capacity *= 2
                buffer_pos = np.vstack(
                    [buffer_pos, np.full_like(buffer_pos, sentinel)]
                )
                buffer_sizes = np.concatenate(
                    [buffer_sizes, np.zeros_like(buffer_sizes)]
                )
            positions = [position_of[i] for i in message.indices]
            if len(positions) > width:
                grown = np.full(
                    (capacity, len(positions)), sentinel, dtype=np.int64
                )
                grown[:, :width] = buffer_pos
                buffer_pos = grown
                width = len(positions)
            row = len(buffer)
            buffer_pos[row, : len(positions)] = positions
            buffer_pos[row, len(positions):] = sentinel
            buffer_sizes[row] = len(positions)
            rows_by_indices.setdefault(message.indices, []).append(row)
            buffer.append(message)

        def insert(message: Message) -> None:
            produced: List[Message] = []
            count = len(buffer)
            live = [entry for entry in message.entries if entry]
            if live:
                work.compares += count * len(live)
            if live and count:
                membership = np.zeros(sentinel + 1, dtype=bool)
                membership[sentinel] = True
                for entry in live:
                    positions = [position_of[i] for i in entry]
                    membership[positions] = True
                    contained = membership[buffer_pos[:count]].all(axis=1)
                    membership[positions] = False
                    # Sizes are ≥ 1 (headers name at least one index), so
                    # ``contained * sizes`` is positive exactly for
                    # contained buffer rows; argmax keeps the earliest
                    # maximal match, like the scalar scan.
                    score = contained * buffer_sizes[:count]
                    choice = int(score.argmax())
                    if score[choice] <= 0:
                        continue
                    best = buffer[choice]
                    work.reduces += 1
                    ready = (
                        max(message.ready_cycle, best.ready_cycle)
                        + latencies.reduce_path
                    )
                    if self.tracer.enabled:
                        self._emit_op(PE_REDUCE, ready, latencies.reduce_path)
                    produced.append(
                        Message(
                            header=message.header.reduced_with(
                                best.indices, entry
                            ),
                            value=self.operator.combine(
                                message.value, best.value
                            ),
                            ready_cycle=ready,
                            hops=max(message.hops, best.hops),
                        )
                    )
            append_row(message)
            for combined in produced:
                already = any(
                    set(combined.entries) <= set(buffer[row].entries)
                    for row in rows_by_indices.get(combined.indices, ())
                )
                if already:
                    work.duplicates_removed += 1
                else:
                    insert(combined)

        # FIFO arrival order, matching the scalar fold exactly.
        for message in stream:
            insert(message)
        return self._coalesce(buffer, work)

    def _coalesce(self, messages: List[Message], work: PEWork) -> List[Message]:
        """Merge same-``indices`` messages without charging PE latency."""
        groups: Dict[FrozenSet[int], List[Message]] = {}
        for message in messages:
            groups.setdefault(message.indices, []).append(message)
        coalesced: List[Message] = []
        for members in groups.values():
            base = members[0]
            if len(members) == 1:
                coalesced.append(base)
                continue
            header = base.header
            ready = base.ready_cycle
            hops = base.hops
            for member in members[1:]:
                header = header.merged_with(member.header)
                ready = max(ready, member.ready_cycle)
                hops = max(hops, member.hops)
            work.merges += 1
            if self.tracer.enabled:
                self._emit_merge(ready, len(members))
            coalesced.append(
                Message(
                    header=header, value=base.value, ready_cycle=ready, hops=hops
                )
            )
        return coalesced

    def theoretical_output_bound(self, n: int, m: int) -> int:
        """Paper §IV-B: at most min(nm + n + m, B) distinct outputs."""
        return min(n * m + n + m, self.config.batch_size * self.config.max_query_len)
