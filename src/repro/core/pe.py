"""Processing-element model: compute units plus merge unit (paper Fig. 5).

A PE takes two input message lists (A from its left child or rank pair, B
from its right), and for every *entry* (outstanding query remainder) of every
input message decides among three actions:

* **reduce** — a partner message on the other input whose ``indices`` are all
  contained in the entry exists; combine the values, union the indices, and
  shrink the entry by the partner's indices.
* **forward** — no partner matches; pass the value along with that entry
  unchanged.
* complete entries (empty remainder) are always forwarded — the value is a
  finished query answer on its way to the root.

The compute units examine both directions (A-entries against B-indices and
vice versa), so the same reduction is typically discovered twice; the
**merge unit** then groups raw outputs by ``indices`` set, removing exact
duplicates and concatenating the query entries of outputs that carry the
same data (paper Fig. 6d).

Timing is annotated per message: an output is ready one pipeline stage after
the later of its parents, and the PE's finite compute units impose a simple
one-output-per-unit-per-cycle issue limit on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.core.config import FafnirConfig
from repro.core.header import Header, Message
from repro.core.operators import ReductionOperator


@dataclass
class PEWork:
    """Operation counts for one PE invocation (drives timing/power stats)."""

    compares: int = 0
    reduces: int = 0
    forwards: int = 0
    merges: int = 0
    duplicates_removed: int = 0
    outputs: int = 0
    peak_input_occupancy: int = 0

    def merged_with(self, other: "PEWork") -> "PEWork":
        return PEWork(
            compares=self.compares + other.compares,
            reduces=self.reduces + other.reduces,
            forwards=self.forwards + other.forwards,
            merges=self.merges + other.merges,
            duplicates_removed=self.duplicates_removed + other.duplicates_removed,
            outputs=self.outputs + other.outputs,
            peak_input_occupancy=max(
                self.peak_input_occupancy, other.peak_input_occupancy
            ),
        )


@dataclass
class PEResult:
    outputs: List[Message]
    work: PEWork


@dataclass
class _RawOutput:
    """A compute-unit output before the merge unit."""

    indices: FrozenSet[int]
    entry: FrozenSet[int]
    value: np.ndarray
    ready_cycle: int
    hops: int
    was_reduce: bool


class ProcessingElement:
    """One node of the FAFNIR tree.

    Instances are stateless between invocations; :meth:`process` consumes the
    two input FIFOs' contents for one batch and returns merged outputs.
    """

    def __init__(
        self,
        config: FafnirConfig,
        operator: ReductionOperator,
        name: str = "PE",
        check_values: bool = False,
    ) -> None:
        self.config = config
        self.operator = operator
        self.name = name
        self.check_values = check_values

    # ------------------------------------------------------------------
    # Compute units
    # ------------------------------------------------------------------
    def _scan_side(
        self,
        own: Sequence[Message],
        partners: Sequence[Message],
        work: PEWork,
        raw: List[_RawOutput],
    ) -> None:
        latencies = self.config.latencies
        for message in own:
            for entry in message.entries:
                if not entry:
                    # Finished answer: travels up untouched.
                    work.forwards += 1
                    raw.append(
                        _RawOutput(
                            indices=message.indices,
                            entry=entry,
                            value=message.value,
                            ready_cycle=message.ready_cycle
                            + latencies.forward_path,
                            hops=message.hops + 1,
                            was_reduce=False,
                        )
                    )
                    continue
                # Reduce with the *maximal* matching partner.  The subtree-
                # completion invariant guarantees the other input holds one
                # message covering exactly this query's indices beneath that
                # subtree; reducing with it (rather than every smaller
                # partial) is what keeps the PE's output count within the
                # paper's min(nm+n+m, B) bound.
                best = None
                for partner in partners:
                    work.compares += 1
                    if partner.indices <= entry:
                        if best is None or len(partner.indices) > len(best.indices):
                            best = partner
                if best is not None:
                    work.reduces += 1
                    raw.append(
                        _RawOutput(
                            indices=message.indices | best.indices,
                            entry=entry - best.indices,
                            value=self.operator.combine(
                                message.value, best.value
                            ),
                            ready_cycle=max(
                                message.ready_cycle, best.ready_cycle
                            )
                            + latencies.reduce_path,
                            hops=max(message.hops, best.hops) + 1,
                            was_reduce=True,
                        )
                    )
                else:
                    work.forwards += 1
                    raw.append(
                        _RawOutput(
                            indices=message.indices,
                            entry=entry,
                            value=message.value,
                            ready_cycle=message.ready_cycle
                            + latencies.forward_path,
                            hops=message.hops + 1,
                            was_reduce=False,
                        )
                    )

    # ------------------------------------------------------------------
    # Merge unit
    # ------------------------------------------------------------------
    def _merge(self, raw: List[_RawOutput], work: PEWork) -> List[Message]:
        """Group raw outputs by indices set; dedup and concatenate entries."""
        groups: Dict[FrozenSet[int], List[_RawOutput]] = {}
        for output in raw:
            groups.setdefault(output.indices, []).append(output)

        merged: List[Message] = []
        for indices, members in groups.items():
            seen_entries = set()
            entries: List[FrozenSet[int]] = []
            ready = 0
            hops = 0
            for member in members:
                if member.entry in seen_entries:
                    work.duplicates_removed += 1
                else:
                    seen_entries.add(member.entry)
                    entries.append(member.entry)
                ready = max(ready, member.ready_cycle)
                hops = max(hops, member.hops)
            if len(members) > 1:
                work.merges += 1
            if self.check_values:
                reference = members[0].value
                for member in members[1:]:
                    if not np.allclose(member.value, reference):
                        raise AssertionError(
                            f"{self.name}: merge-unit invariant violated — "
                            f"outputs with indices {sorted(indices)} carry "
                            "different values"
                        )
            merged.append(
                Message(
                    header=Header.make(indices, entries),
                    value=members[0].value,
                    ready_cycle=ready,
                    hops=hops,
                )
            )
        return merged

    def _apply_issue_limit(self, outputs: List[Message]) -> List[Message]:
        """Finite compute units: at most ``compute_units`` outputs per cycle."""
        units = self.config.compute_units
        outputs.sort(key=lambda m: (m.ready_cycle, sorted(m.indices)))
        for position, message in enumerate(outputs):
            message.ready_cycle += position // units
        return outputs

    # ------------------------------------------------------------------
    def process(
        self, input_a: Sequence[Message], input_b: Sequence[Message]
    ) -> PEResult:
        """Run one batch through this PE.

        Either input may be empty (e.g. a rank holding no requested vector),
        in which case everything on the other input is forwarded — the paper's
        automatic-forward case for PE (4|15) in Fig. 6.
        """
        work = PEWork(
            peak_input_occupancy=max(len(input_a), len(input_b))
        )
        raw: List[_RawOutput] = []
        self._scan_side(input_a, input_b, work, raw)
        self._scan_side(input_b, input_a, work, raw)
        outputs = self._merge(raw, work)
        outputs = self._apply_issue_limit(outputs)
        work.outputs = len(outputs)
        return PEResult(outputs=outputs, work=work)

    # ------------------------------------------------------------------
    # Intra-FIFO streaming combination (leaf PEs)
    # ------------------------------------------------------------------
    def fold_stream(self, stream: Sequence[Message], work: PEWork) -> List[Message]:
        """Combine messages arriving sequentially on *one* input FIFO.

        In the paper's reference workload a query touches at most one vector
        per rank (table-number bits select the rank, Fig. 4b), so vectors
        needing each other always arrive on *different* PE inputs.  A general
        sparse-gathering library cannot assume that: two indices of one query
        may be homed in the same rank.  Physically those items stream through
        the leaf PE's FIFO one after another, and the compute units compare
        each arriving item against the entries already buffered (Fig. 5 shows
        the units iterating over the buffer).  This method models that
        streaming self-combination: it computes the closure of pairwise
        reductions within one FIFO, charging the reduce path per combination
        but no forward cost for items that merely sit in the buffer.

        Messages that do not interact pass through untouched, so for
        paper-style workloads this is an identity with zero added latency.

        Combination is greedy: each arriving item reduces, per query entry,
        with the *maximal* already-buffered match — the running accumulator
        for that query within this FIFO.  This keeps the buffered message
        count linear in the stream length (the full pairwise closure would
        be exponential for heavily co-located queries) while preserving the
        completion invariant: after the fold, the buffer holds one message
        covering exactly each query's indices homed on this FIFO.
        """
        latencies = self.config.latencies
        buffer: List[Message] = []

        def insert(message: Message) -> None:
            produced: List[Message] = []
            for entry in message.entries:
                if not entry:
                    continue
                best = None
                for other in buffer:
                    work.compares += 1
                    if other.indices <= entry:
                        if best is None or len(other.indices) > len(best.indices):
                            best = other
                if best is not None:
                    work.reduces += 1
                    produced.append(
                        Message(
                            header=message.header.reduced_with(
                                best.indices, entry
                            ),
                            value=self.operator.combine(
                                message.value, best.value
                            ),
                            ready_cycle=max(
                                message.ready_cycle, best.ready_cycle
                            )
                            + latencies.reduce_path,
                            hops=max(message.hops, best.hops),
                        )
                    )
            buffer.append(message)
            for combined in produced:
                already = any(
                    other.indices == combined.indices
                    and set(combined.entries) <= set(other.entries)
                    for other in buffer
                )
                if already:
                    work.duplicates_removed += 1
                else:
                    insert(combined)

        for message in sorted(stream, key=lambda m: m.ready_cycle):
            insert(message)
        return self._coalesce(buffer, work)

    def _coalesce(self, messages: List[Message], work: PEWork) -> List[Message]:
        """Merge same-``indices`` messages without charging PE latency."""
        groups: Dict[FrozenSet[int], List[Message]] = {}
        for message in messages:
            groups.setdefault(message.indices, []).append(message)
        coalesced: List[Message] = []
        for members in groups.values():
            base = members[0]
            if len(members) == 1:
                coalesced.append(base)
                continue
            header = base.header
            ready = base.ready_cycle
            hops = base.hops
            for member in members[1:]:
                header = header.merged_with(member.header)
                ready = max(ready, member.ready_cycle)
                hops = max(hops, member.hops)
            work.merges += 1
            coalesced.append(
                Message(
                    header=header, value=base.value, ready_cycle=ready, hops=hops
                )
            )
        return coalesced

    def theoretical_output_bound(self, n: int, m: int) -> int:
        """Paper §IV-B: at most min(nm + n + m, B) distinct outputs."""
        return min(n * m + n + m, self.config.batch_size * self.config.max_query_len)
