"""Cycle-stepped microsimulation of one PE (paper Fig. 5).

The engines in :mod:`repro.core.engine` charge a PE a fixed pipeline-stage
latency per message plus an issue limit.  This module simulates the PE's
microarchitecture as described in the paper — per-compute-unit sequential
comparison of one input item's query entries against every item of the
other input, parallel reduce/forward paths, and a one-result-per-cycle merge
unit — and is used to check that the coarse model's latency and throughput
assumptions are sound (``tests/core/test_microsim.py``).

Operation:

* every (message, entry) pair is a *task*; tasks are assigned round-robin
  to the ``compute_units`` units in input order;
* a unit issues one comparison per cycle; an entry's reduce/forward decision
  falls when its scan over the partner input completes (choosing the
  maximal matching partner, as in :class:`~repro.core.pe.ProcessingElement`);
* the decided result then traverses the reduce path (compare + reduce) or
  the forward path (compare + forward);
* the merge unit retires one result per cycle, deduplicating and merging
  same-data outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import FafnirConfig
from repro.core.header import Header, Message
from repro.core.operators import ReductionOperator, SUM


@dataclass
class MicrosimReport:
    """Cycle-level outcome of one PE batch."""

    outputs: List[Message]
    finish_cycle: int
    comparisons: int
    unit_busy_cycles: List[int]
    merge_retires: int

    @property
    def unit_utilization(self) -> float:
        """Mean fraction of the busy window each compute unit spent comparing."""
        if self.finish_cycle <= 0:
            return 0.0
        return float(np.mean(self.unit_busy_cycles)) / self.finish_cycle


@dataclass
class _Task:
    message: Message
    entry: FrozenSet[int]
    side: str
    start_cycle: int = 0
    decide_cycle: int = 0


class PEMicrosim:
    """One PE at comparison granularity."""

    def __init__(
        self, config: FafnirConfig, operator: ReductionOperator = SUM
    ) -> None:
        self.config = config
        self.operator = operator

    def run(
        self, input_a: Sequence[Message], input_b: Sequence[Message]
    ) -> MicrosimReport:
        latencies = self.config.latencies
        units = self.config.compute_units

        # Build tasks: one per (message, pending entry); complete entries
        # bypass the compute units (pure forward).
        tasks: List[_Task] = []
        bypass: List[Tuple[Message, FrozenSet[int]]] = []
        for side, own in (("A", input_a), ("B", input_b)):
            for message in own:
                for entry in message.entries:
                    if entry:
                        tasks.append(_Task(message=message, entry=entry, side=side))
                    else:
                        bypass.append((message, entry))

        # Round-robin tasks onto units; each unit scans sequentially.
        unit_free = [0] * units
        unit_busy = [0] * units
        comparisons = 0
        results: List[Tuple[int, FrozenSet[int], FrozenSet[int], np.ndarray, int]] = []
        # (ready_cycle, indices, entry, value, hops)

        for position, task in enumerate(tasks):
            unit = position % units
            partners = input_b if task.side == "A" else input_a
            scan_length = max(1, len(partners))
            start = max(unit_free[unit], task.message.ready_cycle)
            task.start_cycle = start
            task.decide_cycle = start + scan_length
            unit_free[unit] = task.decide_cycle
            unit_busy[unit] += scan_length
            comparisons += len(partners)

            best: Optional[Message] = None
            for partner in partners:
                if partner.indices <= task.entry:
                    if best is None or len(partner.indices) > len(best.indices):
                        best = partner
            if best is not None:
                ready = (
                    max(task.decide_cycle, best.ready_cycle)
                    + latencies.reduce_path
                )
                results.append(
                    (
                        ready,
                        task.message.indices | best.indices,
                        task.entry - best.indices,
                        self.operator.combine(task.message.value, best.value),
                        max(task.message.hops, best.hops) + 1,
                    )
                )
            else:
                ready = task.decide_cycle + latencies.forward_path
                results.append(
                    (
                        ready,
                        task.message.indices,
                        task.entry,
                        task.message.value,
                        task.message.hops + 1,
                    )
                )

        for message, entry in bypass:
            results.append(
                (
                    message.ready_cycle + latencies.forward_path,
                    message.indices,
                    entry,
                    message.value,
                    message.hops + 1,
                )
            )

        # Merge unit: one retirement per cycle, dedup + same-data merging.
        results.sort(key=lambda item: (item[0], sorted(item[1])))
        merge_free = 0
        merge_retires = 0
        grouped: Dict[FrozenSet[int], Dict[str, object]] = {}
        finish = 0
        for ready, indices, entry, value, hops in results:
            retire = max(ready, merge_free) + 1
            merge_free = retire
            merge_retires += 1
            finish = max(finish, retire)
            slot = grouped.setdefault(
                indices,
                {"entries": set(), "value": value, "ready": 0, "hops": 0},
            )
            slot["entries"].add(entry)
            slot["ready"] = max(slot["ready"], retire)  # type: ignore[arg-type]
            slot["hops"] = max(slot["hops"], hops)  # type: ignore[arg-type]

        outputs = [
            Message(
                header=Header.make(indices, sorted(slot["entries"], key=sorted)),
                value=slot["value"],
                ready_cycle=slot["ready"],
                hops=slot["hops"],
            )
            for indices, slot in grouped.items()
        ]
        return MicrosimReport(
            outputs=outputs,
            finish_cycle=finish,
            comparisons=comparisons,
            unit_busy_cycles=unit_busy,
            merge_retires=merge_retires,
        )
