"""FAFNIR core: the near-memory intelligent reduction tree."""

from repro.core.accelerator import FafnirAccelerator
from repro.core.batch import BatchPlan, normalize_queries, plan_batch
from repro.core.config import FafnirConfig, PELatencies
from repro.core.engine import (
    FafnirEngine,
    LookupResult,
    LookupStats,
    MultiBatchResult,
    PipelineStats,
)
from repro.core.header import Header, Message
from repro.core.microsim import MicrosimReport, PEMicrosim
from repro.core.phased import PhasedFafnirEngine
from repro.core.pipeline import BatchStageCosts, PipelinedRun, simulate_stream
from repro.core.interactive import InteractiveEngine, InteractiveResult
from repro.core.stats import LevelUtilization, TreeUtilization, tree_utilization
from repro.core.operators import (
    MAX,
    MEAN,
    MIN,
    SUM,
    ReductionOperator,
    available_operators,
    get_operator,
)
from repro.core.pe import (
    KERNEL_SCALAR,
    KERNEL_VECTOR,
    KERNELS,
    PEResult,
    PEWork,
    ProcessingElement,
)
from repro.core.sharding import (
    ShardedRunner,
    fleet_makespan_pe_cycles,
    shard_batches,
)
from repro.core.tree import FafnirTree, TreePE

__all__ = [
    "BatchPlan",
    "BatchStageCosts",
    "PipelinedRun",
    "simulate_stream",
    "FafnirAccelerator",
    "FafnirConfig",
    "FafnirEngine",
    "FafnirTree",
    "Header",
    "InteractiveEngine",
    "InteractiveResult",
    "KERNELS",
    "KERNEL_SCALAR",
    "KERNEL_VECTOR",
    "LevelUtilization",
    "LookupResult",
    "LookupStats",
    "MultiBatchResult",
    "PipelineStats",
    "ShardedRunner",
    "fleet_makespan_pe_cycles",
    "shard_batches",
    "MAX",
    "MEAN",
    "MIN",
    "Message",
    "MicrosimReport",
    "PEMicrosim",
    "PELatencies",
    "PhasedFafnirEngine",
    "PEResult",
    "PEWork",
    "ProcessingElement",
    "ReductionOperator",
    "SUM",
    "TreePE",
    "TreeUtilization",
    "tree_utilization",
    "available_operators",
    "get_operator",
    "normalize_queries",
    "plan_batch",
]
