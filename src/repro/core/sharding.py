"""Fan independent batch streams across worker processes.

One FAFNIR instance pipelines batches through one tree; a production
deployment replicates the whole memory-plus-tree stack and routes
independent batch streams at the replicas (the scale-out step every
later serving PR builds on).  :class:`ShardedRunner` models that: each
*shard* is a sequence of hardware batches executed by a per-worker
:class:`~repro.core.engine.FafnirEngine` in its own process, so the
Python-side simulation itself runs in parallel on multi-core hosts.

Because shards are independent replicas, the modelled wall-clock of the
fleet is the **maximum** of the shards' pipelined makespans
(:func:`fleet_makespan_pe_cycles`), while functional outputs concatenate
shard by shard.

Workers are created with the ``fork`` start method where available (the
engine, config, and operator objects transfer by inheritance or pickling);
``source`` must be picklable — a module-level function, ``functools.partial``
of one, or a bound method of a picklable object.  If process creation is
unavailable (restricted sandboxes, missing semaphores), the runner falls
back to in-process execution with identical results.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine, MultiBatchResult, VectorSource
from repro.core.operators import ReductionOperator, SUM
from repro.core.pe import KERNEL_VECTOR
from repro.memory.config import MemoryConfig
from repro.obs.sinks import InMemorySink
from repro.obs.tracer import Tracer

Batch = Sequence[Sequence[int]]
Shard = Sequence[Batch]


def shard_batches(batches: Sequence[Batch], shards: int) -> List[List[Batch]]:
    """Round-robin split of a batch stream into ``shards`` substreams."""
    if shards <= 0:
        raise ValueError("shards must be positive")
    buckets: List[List[Batch]] = [[] for _ in range(min(shards, len(batches)))]
    for position, batch in enumerate(batches):
        buckets[position % len(buckets)].append(batch)
    return buckets


def _run_shard(
    config: Optional[FafnirConfig],
    operator: ReductionOperator,
    memory_config: Optional[MemoryConfig],
    kernel: str,
    batches: Shard,
    source: VectorSource,
    deduplicate: bool,
    pipeline: bool,
    trace: bool = False,
) -> MultiBatchResult:
    """Worker entry point: one engine, one shard (module-level: picklable).

    With ``trace=True`` the worker records its replica's events into an
    in-process sink and ships them back on ``MultiBatchResult.events`` —
    :class:`~repro.obs.events.TraceEvent` is plain picklable data, so the
    stream crosses the process boundary with the rest of the result.
    """
    sink = InMemorySink() if trace else None
    engine = FafnirEngine(
        config=config,
        operator=operator,
        memory_config=memory_config,
        kernel=kernel,
        tracer=Tracer([sink]) if sink is not None else None,
    )
    result = engine.run_batches(
        batches, source, deduplicate=deduplicate, pipeline=pipeline
    )
    if sink is not None:
        result.events = list(sink.events)
    return result


class ShardedRunner:
    """Executes independent batch shards on per-process FAFNIR replicas."""

    def __init__(
        self,
        config: Optional[FafnirConfig] = None,
        operator: ReductionOperator = SUM,
        memory_config: Optional[MemoryConfig] = None,
        kernel: str = KERNEL_VECTOR,
        max_workers: Optional[int] = None,
        trace: bool = False,
    ) -> None:
        self.config = config
        self.operator = operator
        self.memory_config = memory_config
        self.kernel = kernel
        self.max_workers = max_workers
        self.trace = trace

    def run(
        self,
        shards: Sequence[Shard],
        source: VectorSource,
        deduplicate: bool = True,
        pipeline: bool = True,
    ) -> List[MultiBatchResult]:
        """Run every shard; results are ordered like ``shards``."""
        if not shards:
            raise ValueError("need at least one shard")
        workers = self.max_workers or multiprocessing.cpu_count()
        workers = min(workers, len(shards))
        if workers <= 1 or len(shards) == 1:
            return self._run_serial(shards, source, deduplicate, pipeline)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            context = multiprocessing.get_context()
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                futures = [
                    pool.submit(
                        _run_shard,
                        self.config,
                        self.operator,
                        self.memory_config,
                        self.kernel,
                        shard,
                        source,
                        deduplicate,
                        pipeline,
                        self.trace,
                    )
                    for shard in shards
                ]
                return [future.result() for future in futures]
        except (OSError, PermissionError):
            # Restricted environments (no process spawning / semaphores):
            # same results, one process.
            return self._run_serial(shards, source, deduplicate, pipeline)

    def _run_serial(
        self,
        shards: Sequence[Shard],
        source: VectorSource,
        deduplicate: bool,
        pipeline: bool,
    ) -> List[MultiBatchResult]:
        return [
            _run_shard(
                self.config,
                self.operator,
                self.memory_config,
                self.kernel,
                shard,
                source,
                deduplicate,
                pipeline,
                self.trace,
            )
            for shard in shards
        ]


def fleet_makespan_pe_cycles(results: Sequence[MultiBatchResult]) -> int:
    """Wall-clock of the replica fleet: slowest shard's pipelined makespan."""
    if not results:
        raise ValueError("need at least one shard result")
    return max(r.pipeline.pipelined_latency_pe_cycles for r in results)
