"""Fan independent batch streams across worker processes, fault-tolerantly.

One FAFNIR instance pipelines batches through one tree; a production
deployment replicates the whole memory-plus-tree stack and routes
independent batch streams at the replicas (the scale-out step every
later serving PR builds on).  :class:`ShardedRunner` models that: each
*shard* is a sequence of hardware batches executed by a per-worker
:class:`~repro.core.engine.FafnirEngine` in its own process, so the
Python-side simulation itself runs in parallel on multi-core hosts.

Because shards are independent replicas, the modelled wall-clock of the
fleet is the **maximum** of the shards' pipelined makespans
(:func:`fleet_makespan_pe_cycles`), while functional outputs concatenate
shard by shard.

Workers are created with the ``fork`` start method where available (the
engine, config, and operator objects transfer by inheritance or pickling);
``source`` must be picklable — a module-level function, ``functools.partial``
of one, or a bound method of a picklable object.

Failure handling distinguishes two regimes:

* **cannot spawn processes at all** (restricted sandboxes, missing
  semaphores) — detected at pool creation / first submission, before any
  shard has produced a result: the runner falls back to in-process
  execution with identical results and (with ``trace=True``) identical
  event streams;
* **a worker died or hung mid-run** (``BrokenProcessPool``, a shard
  exceeding the policy's wall-clock timeout, or an injected
  :class:`~repro.faults.plan.SimulatedWorkerCrash`) — completed shards
  are **kept**, and only the failed shards are re-dispatched onto a fresh
  pool of healthy workers, up to ``FaultPolicy.max_shard_retries`` times;
  a shard that exhausts its budget is run in-process as the last healthy
  "worker" (``degrade``) or raises :class:`ShardFailedError`
  (``fail_fast``).  Each re-dispatch is recorded as a
  ``shard_redispatched`` trace event on the recovered shard's stream.

A :class:`~repro.faults.plan.FaultPlan` passed to the runner ships to
every worker (it is plain picklable data), so rank degradation and
leaf-boundary corruption fire inside the replicas while crash/hang faults
fire at the worker boundary the runner itself guards.

**Cross-shard reduction** (:meth:`ShardedRunner.run_reduced`) is the
opt-in table-parallel mode: instead of routing whole batches at replica
shards, every query is *split* along an
:class:`~repro.comm.partition.IndexPartition`, each shard reduces the
slice of the index space it owns, and the partials ride a second-level
reduction schedule (``reduction=`` names it) over a modeled inter-node
link back to one answer per query — byte-identical to a single-node
engine for subtree-aligned partitions.  The shard sub-streams run
through the same :meth:`run` machinery, so crash/hang faults on a shard
are detected and its partials re-dispatched before the reduction tree
completes, and index-keyed fault plans degrade queries to the exact
vectors and statuses the single-node engine reports.  The comm-phase
trace events (``shard_msg_sent``/``shard_reduced``) are synthesized in
the parent from the deterministic partials, so serial-fallback and
process-pool runs ship identical reduction event streams.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # sharding ← comm.reducer ← core.engine: import lazily
    from repro.comm.partition import IndexPartition
    from repro.comm.reducer import ReducedRunResult

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine, MultiBatchResult, VectorSource
from repro.core.operators import ReductionOperator, SUM
from repro.core.pe import KERNEL_VECTOR
from repro.faults.plan import (
    FAULT_WORKER_CRASH,
    FAULT_WORKER_HANG,
    FaultError,
    FaultPlan,
    ShardFailedError,
    SimulatedWorkerCrash,
)
from repro.faults.policy import FaultPolicy
from repro.hw.link import LinkModel
from repro.memory.config import MemoryConfig
from repro.obs.events import (
    FAULT_DETECTED,
    FAULT_INJECTED,
    SHARD_REDISPATCHED,
    TraceEvent,
)
from repro.obs.sinks import InMemorySink
from repro.obs.tracer import Tracer
from repro.tiering.cache import HotTierConfig

Batch = Sequence[Sequence[int]]
Shard = Sequence[Batch]


def shard_batches(batches: Sequence[Batch], shards: int) -> List[List[Batch]]:
    """Round-robin split of a batch stream into ``shards`` substreams.

    An empty stream yields an empty shard list (which
    :meth:`ShardedRunner.run` maps to an empty result list) rather than
    tripping an unrelated "need at least one shard" error downstream.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    if not batches:
        return []
    buckets: List[List[Batch]] = [[] for _ in range(min(shards, len(batches)))]
    for position, batch in enumerate(batches):
        buckets[position % len(buckets)].append(batch)
    return buckets


def _run_shard(
    config: Optional[FafnirConfig],
    operator: ReductionOperator,
    memory_config: Optional[MemoryConfig],
    kernel: str,
    batches: Shard,
    source: VectorSource,
    deduplicate: bool,
    pipeline: bool,
    trace: bool = False,
    faults: Optional[FaultPlan] = None,
    fault_policy: Optional[FaultPolicy] = None,
    shard_index: int = 0,
    attempt: int = 0,
    in_process: bool = False,
    cache: Optional[HotTierConfig] = None,
) -> MultiBatchResult:
    """Worker entry point: one engine, one shard (module-level: picklable).

    With ``trace=True`` the worker records its replica's events into an
    in-process sink and ships them back on ``MultiBatchResult.events`` —
    :class:`~repro.obs.events.TraceEvent` is plain picklable data, so the
    stream crosses the process boundary with the rest of the result.

    Crash/hang faults fire here, at the worker boundary: a crash kills
    the process outright (surfacing as ``BrokenProcessPool`` in the
    parent) unless the shard runs in-process, where it raises
    :class:`SimulatedWorkerCrash` instead of taking the caller down; a
    hang sleeps past the parent's watchdog (skipped in-process — there is
    no watchdog to trip and no second process to stall).
    """
    if faults is not None:
        if faults.shard_crashes(shard_index, attempt):
            if in_process:
                raise SimulatedWorkerCrash(
                    f"shard {shard_index} worker crashed (attempt {attempt})"
                )
            os._exit(1)
        if faults.shard_hangs(shard_index, attempt) and not in_process:
            time.sleep(faults.hang_seconds)
    sink = InMemorySink() if trace else None
    engine = FafnirEngine(
        config=config,
        operator=operator,
        memory_config=memory_config,
        kernel=kernel,
        tracer=Tracer([sink]) if sink is not None else None,
        faults=faults,
        fault_policy=fault_policy,
        cache=cache,
    )
    result = engine.run_batches(
        batches, source, deduplicate=deduplicate, pipeline=pipeline
    )
    if sink is not None:
        result.events = list(sink.events)
    return result


class ShardedRunner:
    """Executes independent batch shards on per-process FAFNIR replicas."""

    def __init__(
        self,
        config: Optional[FafnirConfig] = None,
        operator: ReductionOperator = SUM,
        memory_config: Optional[MemoryConfig] = None,
        kernel: str = KERNEL_VECTOR,
        max_workers: Optional[int] = None,
        trace: bool = False,
        faults: Optional[FaultPlan] = None,
        fault_policy: Optional[FaultPolicy] = None,
        reduction: Optional[str] = None,
        num_shards: Optional[int] = None,
        partition: Optional["IndexPartition"] = None,
        link: Optional[LinkModel] = None,
        cache: Optional[HotTierConfig] = None,
        hedge: Optional["HedgePolicy"] = None,
    ) -> None:
        """Build the runner.

        The last four parameters configure the opt-in cross-shard
        reduction mode consumed by :meth:`run_reduced`:

        Args:
            reduction: schedule name (``"gather"``, ``"reduce_scatter"``,
                ``"recursive_doubling"``); ``None`` leaves the runner in
                plain replica mode.
            num_shards: table-parallel shard count; defaults to the
                partition's piece count, or 2 when neither is given.
            partition: index-space ownership; defaults to the
                subtree-aligned :meth:`IndexPartition.by_home_rank` split
                of the configured tree (the byte-exact case).
            link: inter-node link model (latency/bandwidth); defaults to
                :class:`~repro.hw.link.LinkModel`'s PCIe-class numbers.
            cache: opt-in per-replica hot-index tier
                (:class:`~repro.tiering.cache.HotTierConfig`, plain
                picklable data) — every worker engine builds its own
                tier from this description, so cached sharded runs stay
                byte-identical to uncached ones while each replica's
                modeled DRAM traffic drops.
            hedge: opt-in hedged re-dispatch of straggler shards
                (:class:`~repro.resilience.hedging.HedgePolicy`) consumed
                by :meth:`run_reduced` when the fault plan stretches a
                piece's local completion.
        """
        self.config = config
        self.operator = operator
        self.memory_config = memory_config
        self.kernel = kernel
        self.max_workers = max_workers
        self.trace = trace
        self.faults = faults
        self.fault_policy = fault_policy if fault_policy is not None else FaultPolicy()
        self.reduction = reduction
        if partition is None and num_shards is not None:
            from repro.comm.partition import IndexPartition

            partition = IndexPartition.by_home_rank(
                config if config is not None else FafnirConfig(), num_shards
            )
        self.partition = partition
        self.link = link
        self.cache = cache
        self.hedge = hedge

    def run(
        self,
        shards: Sequence[Shard],
        source: VectorSource,
        deduplicate: bool = True,
        pipeline: bool = True,
    ) -> List[MultiBatchResult]:
        """Run every shard; results are ordered like ``shards``.

        An empty shard list (an empty batch stream) returns an empty
        result list.  Worker failures are recovered per the runner's
        :class:`FaultPolicy` — see the module docstring for the regimes.
        """
        if not shards:
            return []
        workers = self.max_workers or multiprocessing.cpu_count()
        workers = min(workers, len(shards))
        if workers <= 1 or len(shards) == 1:
            return self._run_serial(shards, source, deduplicate, pipeline)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            context = multiprocessing.get_context()

        policy = self.fault_policy
        results: List[Optional[MultiBatchResult]] = [None] * len(shards)
        attempts = [0] * len(shards)
        redispatch_events: Dict[int, List[TraceEvent]] = {}
        pending = list(range(len(shards)))
        while pending:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(workers, len(pending)), mp_context=context
                )
            except (OSError, PermissionError):
                return self._recover_without_processes(
                    shards, source, deduplicate, pipeline, results, pending
                )
            submitted: Dict[int, object] = {}
            spawn_failed = False
            broken_on_submit: List[int] = []
            try:
                for index in pending:
                    submitted[index] = pool.submit(
                        _run_shard,
                        self.config,
                        self.operator,
                        self.memory_config,
                        self.kernel,
                        shards[index],
                        source,
                        deduplicate,
                        pipeline,
                        self.trace,
                        self.faults,
                        policy,
                        index,
                        attempts[index],
                        False,
                        self.cache,
                    )
            except (OSError, PermissionError):
                # Process spawning is unavailable (restricted sandbox) —
                # not a worker death; recover in-process without re-running
                # any shard that already completed.
                spawn_failed = True
            except BrokenProcessPool:
                # A worker died fast enough to break the pool mid-submission;
                # the unsubmitted shards are worker deaths, not spawn failures.
                broken_on_submit = [i for i in pending if i not in submitted]
            failed: List[Tuple[int, str]] = []
            failed.extend((i, FAULT_WORKER_CRASH) for i in broken_on_submit)
            if not spawn_failed:
                for index, future in submitted.items():
                    try:
                        results[index] = future.result(  # type: ignore[attr-defined]
                            timeout=policy.shard_timeout_s
                        )
                    except FuturesTimeoutError:
                        failed.append((index, FAULT_WORKER_HANG))
                    except (BrokenProcessPool, SimulatedWorkerCrash):
                        failed.append((index, FAULT_WORKER_CRASH))
            pool.shutdown(wait=False, cancel_futures=True)
            if spawn_failed:
                return self._recover_without_processes(
                    shards, source, deduplicate, pipeline, results, pending
                )

            pending = []
            for index, reason in failed:
                redispatch_events.setdefault(index, []).extend(
                    self._shard_fault_events(index, attempts[index], reason)
                )
                if attempts[index] >= policy.max_shard_retries:
                    if policy.fail_fast:
                        raise ShardFailedError(
                            f"shard {index} failed ({reason}) and exhausted "
                            f"its re-dispatch budget "
                            f"({policy.max_shard_retries} retries)"
                        )
                    # Last resort: the parent process is the one worker
                    # guaranteed healthy.
                    results[index] = self._run_one_in_process(
                        shards[index],
                        index,
                        attempts[index] + 1,
                        source,
                        deduplicate,
                        pipeline,
                    )
                else:
                    attempts[index] += 1
                    pending.append(index)

        final: List[MultiBatchResult] = []
        for index, result in enumerate(results):
            assert result is not None
            extra = redispatch_events.get(index)
            if extra and self.trace and result.events is not None:
                result.events = extra + result.events
            final.append(result)
        return final

    # --- cross-shard reduction ----------------------------------------
    def run_reduced(
        self,
        batches: Sequence[Batch],
        source: VectorSource,
        deduplicate: bool = True,
        pipeline: bool = True,
        schedule: Optional[Union[str, object]] = None,
    ) -> "ReducedRunResult":
        """Table-parallel execution: split, reduce locally, fold globally.

        Every query is split along the runner's partition; each active
        piece's sub-stream runs through :meth:`run` (inheriting the full
        crash/hang re-dispatch machinery) under the *partial* operator,
        and the partials are folded back per
        :mod:`repro.comm.reducer` — byte-identical to a single-node
        engine for subtree-aligned partitions, schedule and shard-order
        invariant always.

        Args:
            batches: the original (unsplit) batch stream.
            source: picklable vector source, as for :meth:`run`.
            deduplicate / pipeline: forwarded to every shard engine.
            schedule: override of the runner's ``reduction=`` schedule.

        Note: shard-crash fault plans address *active* shard positions
        (the order of ``ReducedRunResult.active_pieces``), since pieces
        untouched by the whole stream never start a worker.  Dead-shard
        plans (``FaultPlan.dead_shards``) address *piece ids*: a dead
        piece is never dispatched — its partials simply never arrive, the
        reducer routes around the absence, and the affected queries
        degrade (or the run raises, in fail-fast mode).
        """
        from repro.comm.partition import IndexPartition
        from repro.comm.reducer import (
            CrossShardReducer,
            ShardSplit,
            partial_operator,
        )
        from repro.faults.plan import ShardFailedError

        if not batches:
            raise ValueError("need at least one batch")
        name = schedule if schedule is not None else self.reduction
        if name is None:
            raise ValueError(
                "no reduction schedule configured; pass reduction= to the "
                "runner or schedule= to run_reduced"
            )
        partition = self.partition
        if partition is None:
            partition = IndexPartition.by_home_rank(
                self.config if self.config is not None else FafnirConfig(), 2
            )
        reducer = CrossShardReducer(
            partition=partition,
            schedule=name,
            link=self.link,
            operator=self.operator,
            config=self.config,
            faults=self.faults,
            policy=self.fault_policy,
            hedge=self.hedge,
        )
        split = ShardSplit(batches, partition)
        dead = frozenset(
            piece
            for piece in split.active_pieces
            if self.faults is not None and self.faults.shard_is_dead(piece)
        )
        if dead and self.fault_policy.fail_fast:
            raise ShardFailedError(
                f"dead shard(s) {sorted(dead)} with fail-fast policy; use "
                "FaultPolicy.graceful() to route around them"
            )
        streams = [
            stream
            for piece, stream in zip(split.active_pieces, split.shard_streams())
            if piece not in dead
        ]
        saved_operator = self.operator
        self.operator = partial_operator(saved_operator)
        try:
            shard_results = self.run(
                streams,
                source,
                deduplicate=deduplicate,
                pipeline=pipeline,
            )
        finally:
            self.operator = saved_operator
        return reducer.combine(batches, split, shard_results, absent_pieces=dead)

    # ------------------------------------------------------------------
    def _shard_fault_events(
        self, index: int, attempt: int, reason: str
    ) -> List[TraceEvent]:
        """The detect→re-dispatch events of one shard failure.

        Workers die before they can record anything, so the surviving side
        (the parent, or the in-process retry loop) is the only place this
        part of the lifecycle can be observed from.  The injection event is
        synthesized only when the installed plan really scheduled the
        fault — a genuine (non-injected) worker death still gets its
        detection and re-dispatch on the record.
        """
        if not self.trace:
            return []
        events: List[TraceEvent] = []
        if self.faults is not None and (
            (reason == FAULT_WORKER_CRASH and self.faults.shard_crashes(index, attempt))
            or (reason == FAULT_WORKER_HANG and self.faults.shard_hangs(index, attempt))
        ):
            events.append(
                TraceEvent(
                    FAULT_INJECTED,
                    cycle=0,
                    args={"fault": reason, "shard": index, "attempt": attempt},
                )
            )
        events.append(
            TraceEvent(
                FAULT_DETECTED,
                cycle=0,
                args={"fault": reason, "shard": index, "attempt": attempt},
            )
        )
        events.append(
            TraceEvent(
                SHARD_REDISPATCHED,
                cycle=0,
                args={"fault": reason, "shard": index, "attempt": attempt + 1},
            )
        )
        return events

    def _recover_without_processes(
        self,
        shards: Sequence[Shard],
        source: VectorSource,
        deduplicate: bool,
        pipeline: bool,
        results: List[Optional[MultiBatchResult]],
        pending: Sequence[int],
    ) -> List[MultiBatchResult]:
        """Finish ``pending`` shards in-process, keeping completed results."""
        for index in pending:
            results[index] = self._run_one_in_process(
                shards[index], index, 0, source, deduplicate, pipeline
            )
        return [result for result in results if result is not None]

    def _run_one_in_process(
        self,
        shard: Shard,
        index: int,
        attempt: int,
        source: VectorSource,
        deduplicate: bool,
        pipeline: bool,
    ) -> MultiBatchResult:
        """Run one shard in-process with the same bounded-retry loop.

        Injected crashes raise :class:`SimulatedWorkerCrash` here instead
        of killing the caller; each recovery records the same
        detect→re-dispatch events the process-pool path synthesizes, so a
        traced serial run and a traced parallel run tell the same story.
        """
        policy = self.fault_policy
        fault_events: List[TraceEvent] = []
        while True:
            try:
                result = _run_shard(
                    self.config,
                    self.operator,
                    self.memory_config,
                    self.kernel,
                    shard,
                    source,
                    deduplicate,
                    pipeline,
                    self.trace,
                    self.faults,
                    policy,
                    index,
                    attempt,
                    True,
                    self.cache,
                )
                if fault_events and result.events is not None:
                    result.events = fault_events + result.events
                return result
            except SimulatedWorkerCrash:
                fault_events.extend(
                    self._shard_fault_events(index, attempt, FAULT_WORKER_CRASH)
                )
                if attempt >= policy.max_shard_retries:
                    raise ShardFailedError(
                        f"shard {index} crashed in-process and exhausted its "
                        f"re-dispatch budget ({policy.max_shard_retries} "
                        "retries)"
                    )
                attempt += 1

    def _run_serial(
        self,
        shards: Sequence[Shard],
        source: VectorSource,
        deduplicate: bool,
        pipeline: bool,
    ) -> List[MultiBatchResult]:
        return [
            self._run_one_in_process(
                shard, index, 0, source, deduplicate, pipeline
            )
            for index, shard in enumerate(shards)
        ]


def fleet_makespan_pe_cycles(results: Sequence[MultiBatchResult]) -> int:
    """Wall-clock of the replica fleet: slowest shard's pipelined makespan."""
    if not results:
        raise ValueError("need at least one shard result")
    return max(r.pipeline.pipelined_latency_pe_cycles for r in results)
