"""Cycle-approximate execution of embedding-lookup batches on FAFNIR.

The engine glues the three layers together:

1. **Host** — batch preprocessing (:mod:`repro.core.batch`) produces the
   unique-index read list and initial headers.
2. **Memory** — reads are issued to the DDR4 model
   (:mod:`repro.memory`); each vector's message becomes ready at its DRAM
   completion time, converted into the PE clock domain.
3. **Tree** — messages flow leaves→root through
   :class:`~repro.core.pe.ProcessingElement` instances; per-message ready
   cycles model the paper's conflict-free pipelining of distinct queries
   through distinct tree routes.

The result is one reduced vector per query plus a :class:`LookupStats`
record with everything the evaluation figures need (latency split, DRAM
behaviour, per-level PE work, data movement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.clocks import convert_cycles
from repro.core.batch import BatchPlan, plan_batch
from repro.core.config import FafnirConfig
from repro.core.header import Message
from repro.core.operators import ReductionOperator, SUM, get_operator
from repro.core.pe import PEWork, ProcessingElement
from repro.core.tree import FafnirTree
from repro.memory.config import MemoryConfig
from repro.memory.mapping import RowMajorPlacement
from repro.memory.request import ReadRequest
from repro.memory.system import MemorySystem
from repro.memory.trace import AccessStats

VectorSource = Callable[[int], np.ndarray]


@dataclass
class LookupStats:
    """Measurements from one batch lookup."""

    memory: AccessStats
    per_pe_work: Dict[int, PEWork] = field(default_factory=dict)
    latency_pe_cycles: int = 0
    memory_latency_pe_cycles: int = 0
    total_lookups: int = 0
    unique_reads: int = 0
    dram_bytes_read: int = 0
    output_bytes: int = 0
    naive_movement_bytes: int = 0

    @property
    def compute_latency_pe_cycles(self) -> int:
        """Tree-side latency not hidden behind memory accesses."""
        return max(0, self.latency_pe_cycles - self.memory_latency_pe_cycles)

    @property
    def unique_fraction(self) -> float:
        return self.unique_reads / self.total_lookups if self.total_lookups else 0.0

    @property
    def accesses_saved(self) -> int:
        return self.total_lookups - self.unique_reads

    @property
    def total_work(self) -> PEWork:
        total = PEWork()
        for work in self.per_pe_work.values():
            total = total.merged_with(work)
        return total

    @property
    def movement_reduction_factor(self) -> float:
        """Bytes the baseline ships to cores ÷ bytes FAFNIR ships (n·q·v / n·v)."""
        if not self.output_bytes:
            return 0.0
        return self.naive_movement_bytes / self.output_bytes

    def latency_ns(self, config: FafnirConfig) -> float:
        return config.pe_clock.cycles_to_ns(self.latency_pe_cycles)


@dataclass
class LookupResult:
    """Per-query reduced vectors (submission order) and run statistics."""

    vectors: List[np.ndarray]
    stats: LookupStats
    plan: BatchPlan


class FafnirEngine:
    """Executes batches of embedding-lookup queries on one FAFNIR instance."""

    def __init__(
        self,
        config: Optional[FafnirConfig] = None,
        operator: ReductionOperator = SUM,
        memory_config: Optional[MemoryConfig] = None,
        check_values: bool = False,
    ) -> None:
        self.config = config or FafnirConfig()
        if isinstance(operator, str):
            operator = get_operator(operator)
        self.operator = operator
        if memory_config is None:
            memory_config = MemoryConfig().scaled_to_ranks(self.config.total_ranks)
        if memory_config.geometry.total_ranks != self.config.total_ranks:
            raise ValueError(
                "memory geometry rank count "
                f"({memory_config.geometry.total_ranks}) does not match the "
                f"FAFNIR configuration ({self.config.total_ranks})"
            )
        self.memory = MemorySystem(memory_config)
        self.placement = RowMajorPlacement(
            memory_config.geometry, self.config.vector_bytes
        )
        self.tree = FafnirTree(self.config)
        self._check_values = check_values
        self._last_memory_stats = AccessStats()

    # ------------------------------------------------------------------
    def _fetch_from_memory(self, plan: BatchPlan) -> Dict[int, int]:
        """Issue all planned reads; returns per-index DRAM finish cycles."""
        requests: List[ReadRequest] = []
        for index in plan.reads:
            requests.extend(self.placement.requests_for(index))
        completions, stats = self.memory.execute(requests)
        self._last_memory_stats = stats

        finish: Dict[int, int] = {}
        for completion in completions:
            index = completion.request.tag
            assert isinstance(index, int)
            # The message needs the data once; extra (non-deduplicated)
            # reads of the same vector only add bus pressure.
            previous = finish.get(index)
            if previous is None or completion.finish_cycle < previous:
                finish[index] = completion.finish_cycle
        return finish

    def _leaf_inputs(
        self,
        plan: BatchPlan,
        finish_cycles: Dict[int, int],
        source: VectorSource,
    ) -> Dict[int, List[List[Message]]]:
        """Build each leaf PE's two input FIFOs from the fetched vectors."""
        per_leaf: Dict[int, List[List[Message]]] = {
            leaf.pe_id: [[], []] for leaf in self.tree.leaves()
        }
        vector_elements = self.config.vector_elements
        for index in plan.unique_indices:
            value = np.asarray(source(index), dtype=np.float64)
            if value.shape != (vector_elements,):
                raise ValueError(
                    f"vector {index} has shape {value.shape}; expected "
                    f"({vector_elements},)"
                )
            rank = self.placement.home_rank(index)
            assert rank is not None
            leaf = self.tree.leaf_for_rank(rank)
            side = 0 if (rank - leaf.leaf_ranks[0]) < len(leaf.leaf_ranks) / 2 else 1
            ready = convert_cycles(
                finish_cycles[index], self.config.dram_clock, self.config.pe_clock
            )
            per_leaf[leaf.pe_id][side].append(
                Message(header=plan.headers[index], value=value, ready_cycle=ready)
            )
        return per_leaf

    def _run_tree(
        self, leaf_inputs: Dict[int, List[List[Message]]]
    ) -> tuple:
        """Propagate messages leaves→root; returns (root outputs, per-PE work)."""
        outputs: Dict[int, List[Message]] = {}
        per_pe_work: Dict[int, PEWork] = {}
        for pe_id in self.tree.bottom_up_ids():
            node = self.tree.pe(pe_id)
            pe = ProcessingElement(
                self.config,
                self.operator,
                name=f"PE{pe_id}",
                check_values=self._check_values,
            )
            if node.is_leaf:
                # Items from one rank stream through one FIFO and may
                # self-combine there (general workloads; a no-op for the
                # paper's one-vector-per-rank queries).
                fold_work = PEWork()
                raw_a, raw_b = leaf_inputs[pe_id]
                input_a = pe.fold_stream(raw_a, fold_work)
                input_b = pe.fold_stream(raw_b, fold_work)
            else:
                fold_work = PEWork()
                left, right = node.children  # type: ignore[misc]
                input_a = outputs.get(left, [])
                input_b = outputs.get(right, [])
            result = pe.process(input_a, input_b)
            outputs[pe_id] = result.outputs
            per_pe_work[pe_id] = result.work.merged_with(fold_work)
        return outputs[self.tree.root_id], per_pe_work

    def _collect_results(
        self, plan: BatchPlan, root_outputs: Sequence[Message]
    ) -> tuple:
        """Match root messages to queries; returns (vectors, completion cycles)."""
        by_indices: Dict[frozenset, Message] = {}
        for message in root_outputs:
            if message.header.complete_entries:
                by_indices[message.indices] = message

        vectors: List[np.ndarray] = []
        ready_cycles: List[int] = []
        for position, query in enumerate(plan.queries):
            message = by_indices.get(query)
            if message is None:
                raise RuntimeError(
                    f"tree failed to complete query {position} "
                    f"({sorted(query)}) — FAFNIR's completion guarantee was "
                    "violated; this is a bug"
                )
            vectors.append(self.operator.finalize(message.value.copy(), len(query)))
            ready_cycles.append(message.ready_cycle)
        return vectors, ready_cycles

    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: Sequence[Sequence[int]],
        source: VectorSource,
        deduplicate: bool = True,
        reset_memory: bool = True,
    ) -> LookupResult:
        """Execute one batch of queries and return reduced vectors + stats.

        Args:
            queries: batch of index lists (one list per query).
            source: callable giving the stored vector for a global index.
            deduplicate: eliminate redundant reads (the paper's mechanism);
                pass ``False`` for the ablation baseline.
            reset_memory: start from cold row buffers (deterministic runs).
        """
        if len(queries) > self.config.batch_size:
            raise ValueError(
                f"batch of {len(queries)} exceeds configured batch size "
                f"{self.config.batch_size}"
            )
        if reset_memory:
            self.memory.reset()

        plan = plan_batch(
            queries, max_query_len=self.config.max_query_len, deduplicate=deduplicate
        )
        finish_cycles = self._fetch_from_memory(plan)
        leaf_inputs = self._leaf_inputs(plan, finish_cycles, source)
        root_outputs, per_pe_work = self._run_tree(leaf_inputs)
        vectors, ready_cycles = self._collect_results(plan, root_outputs)

        memory_stats = self._last_memory_stats
        memory_pe_cycles = convert_cycles(
            memory_stats.finish_cycle, self.config.dram_clock, self.config.pe_clock
        )
        stats = LookupStats(
            memory=memory_stats,
            per_pe_work=per_pe_work,
            latency_pe_cycles=max(ready_cycles) if ready_cycles else 0,
            memory_latency_pe_cycles=memory_pe_cycles,
            total_lookups=plan.total_lookups,
            unique_reads=len(plan.unique_indices),
            dram_bytes_read=memory_stats.bytes_read,
            output_bytes=len(plan.queries) * self.config.vector_bytes,
            naive_movement_bytes=plan.total_lookups * self.config.vector_bytes,
        )
        return LookupResult(vectors=vectors, stats=stats, plan=plan)
