"""Cycle-approximate execution of embedding-lookup batches on FAFNIR.

The engine glues the three layers together:

1. **Host** — batch preprocessing (:mod:`repro.core.batch`) produces the
   unique-index read list and initial headers.
2. **Memory** — reads are issued to the DDR4 model
   (:mod:`repro.memory`); each vector's message becomes ready at its DRAM
   completion time, converted into the PE clock domain.
3. **Tree** — messages flow leaves→root through
   :class:`~repro.core.pe.ProcessingElement` instances; per-message ready
   cycles model the paper's conflict-free pipelining of distinct queries
   through distinct tree routes.

The result is one reduced vector per query plus a :class:`LookupStats`
record with everything the evaluation figures need (latency split, DRAM
behaviour, per-level PE work, data movement).
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.clocks import convert_cycles
from repro.core.batch import BatchPlan, plan_batch
from repro.core.config import FafnirConfig
from repro.core.header import Header, Message
from repro.core.operators import ReductionOperator, SUM, get_operator
from repro.core.pe import KERNEL_VECTOR, KERNELS, PEWork, ProcessingElement
from repro.core.soa import run_tree_soa
from repro.core.tree import FafnirTree, TreePE
from repro.faults.plan import (
    FAULT_SOURCE_ERROR,
    FAULT_VECTOR_CORRUPTION,
    FaultPlan,
    SourceFaultError,
    VectorCorruptionError,
)
from repro.faults.policy import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    FaultPolicy,
)
from repro.memory.config import MemoryConfig
from repro.memory.mapping import RowMajorPlacement, VectorPlacement
from repro.memory.request import ReadRequest
from repro.memory.system import MemorySystem
from repro.memory.trace import AccessStats
from repro.obs.events import (
    BATCH_COMPLETE,
    BATCH_START,
    FAULT_DETECTED,
    FAULT_INJECTED,
    FIFO_ENQUEUE,
    FIFO_STALL,
    LEAF_INJECT,
    PIPELINE_BATCH,
    QUERY_COMPLETE,
    QUERY_DEGRADED,
    RETRY_ISSUED,
    TraceEvent,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.tiering.cache import HotTierConfig

VectorSource = Callable[[int], np.ndarray]

#: Object-per-message tree sweep (the reference implementation).
ENGINE_OBJECT = "object"
#: Level-synchronous structure-of-arrays sweep (:mod:`repro.core.soa`).
ENGINE_SOA = "soa"
ENGINES = (ENGINE_OBJECT, ENGINE_SOA)


@dataclass
class LookupStats:
    """Measurements from one batch lookup.

    ``per_pe_work`` maps ``pe_id`` → the :class:`~repro.core.pe.PEWork`
    accumulated across every invocation of that PE during the batch; feed
    it (via this object) to :func:`repro.core.stats.tree_utilization` for
    the per-level / per-chip rollup.  The same quantities are observable
    event-by-event through ``repro.obs`` when the engine is constructed
    with a tracer: ``memory.reads`` counts ``mem_read_complete`` events,
    each query contributes one ``query_complete`` event at its
    ``ready_cycle``, and per-level reduce counts match
    ``repro.obs.per_level_counts``.  The counters here are always
    collected; the event stream is opt-in and purely observational.
    """

    memory: AccessStats
    per_pe_work: Dict[int, PEWork] = field(default_factory=dict)
    latency_pe_cycles: int = 0
    memory_latency_pe_cycles: int = 0
    total_lookups: int = 0
    unique_reads: int = 0
    dram_bytes_read: int = 0
    output_bytes: int = 0
    naive_movement_bytes: int = 0

    @property
    def compute_latency_pe_cycles(self) -> int:
        """Tree-side latency not hidden behind memory accesses."""
        return max(0, self.latency_pe_cycles - self.memory_latency_pe_cycles)

    @property
    def unique_fraction(self) -> float:
        return self.unique_reads / self.total_lookups if self.total_lookups else 0.0

    @property
    def accesses_saved(self) -> int:
        return self.total_lookups - self.unique_reads

    @property
    def total_work(self) -> PEWork:
        total = PEWork()
        for work in self.per_pe_work.values():
            total = total.merged_with(work)
        return total

    @property
    def movement_reduction_factor(self) -> float:
        """Bytes the baseline ships to cores ÷ bytes FAFNIR ships (n·q·v / n·v)."""
        if not self.output_bytes:
            return 0.0
        return self.naive_movement_bytes / self.output_bytes

    def latency_ns(self, config: FafnirConfig) -> float:
        return config.pe_clock.cycles_to_ns(self.latency_pe_cycles)


@dataclass
class LookupResult:
    """Per-query reduced vectors (submission order) and run statistics.

    ``statuses`` is populated by fault-injected runs under a ``degrade``
    policy: per query, :data:`~repro.faults.policy.STATUS_OK` (all indices
    folded), :data:`~repro.faults.policy.STATUS_DEGRADED` (reduced over
    the surviving subset — the vector matches a CPU oracle on exactly
    those indices), or :data:`~repro.faults.policy.STATUS_FAILED` (no
    index survived; the vector is all-NaN poison, never silent zeros).
    ``None`` means the run saw no fault machinery — every query is ``ok``.

    ``ready_pe_cycles`` is each query's completion cycle at the tree root
    (submission order, same length as ``vectors``; failed queries carry 0).
    The batch-level ``stats.latency_pe_cycles`` is its maximum; the
    per-query values let the cross-shard reducer time each query's partial
    individually.
    """

    vectors: List[np.ndarray]
    stats: LookupStats
    plan: BatchPlan
    statuses: Optional[List[str]] = None
    dropped_indices: FrozenSet[int] = frozenset()
    ready_pe_cycles: List[int] = field(default_factory=list)

    @property
    def query_statuses(self) -> List[str]:
        if self.statuses is not None:
            return list(self.statuses)
        return [STATUS_OK] * len(self.vectors)


@dataclass
class PipelineStats:
    """Timing of a multi-batch stream through one FAFNIR instance.

    The paper's host streams batch *k*'s reads at the memory while the tree
    is still draining batch *k−1* (§IV, Fig. 13): the memory system is the
    serializing resource, the tree pipelines distinct batches through
    distinct routes.  ``pipelined_latency_pe_cycles`` is the makespan under
    that overlap; ``serial_latency_pe_cycles`` is the no-overlap sum used by
    a batch-at-a-time host.
    """

    batches: int
    total_queries: int
    serial_latency_pe_cycles: int
    pipelined_latency_pe_cycles: int
    memory_busy_pe_cycles: int
    batch_completion_cycles: List[int] = field(default_factory=list)

    @property
    def pipeline_speedup(self) -> float:
        if not self.pipelined_latency_pe_cycles:
            return 1.0
        return self.serial_latency_pe_cycles / self.pipelined_latency_pe_cycles

    def makespan_ns(self, config: FafnirConfig) -> float:
        return config.pe_clock.cycles_to_ns(self.pipelined_latency_pe_cycles)

    def throughput_queries_per_s(self, config: FafnirConfig) -> float:
        ns = self.makespan_ns(config)
        return self.total_queries / (ns * 1e-9) if ns else 0.0


@dataclass
class MultiBatchResult:
    """Results of a streamed batch sequence plus pipeline timing."""

    results: List[LookupResult]
    pipeline: PipelineStats
    events: Optional[List[TraceEvent]] = None

    @property
    def vectors(self) -> List[np.ndarray]:
        """All per-query outputs, in submission order across batches."""
        return [vector for result in self.results for vector in result.vectors]

    @property
    def statuses(self) -> List[str]:
        """Per-query ``ok``/``degraded``/``failed``, aligned with ``vectors``."""
        return [
            status for result in self.results for status in result.query_statuses
        ]

    @property
    def memory_stats(self) -> AccessStats:
        merged: Optional[AccessStats] = None
        for result in self.results:
            merged = (
                result.stats.memory
                if merged is None
                else merged.merged_with(result.stats.memory)
            )
        return merged if merged is not None else AccessStats()


class FafnirEngine:
    """Executes batches of embedding-lookup queries on one FAFNIR instance."""

    def __init__(
        self,
        config: Optional[FafnirConfig] = None,
        operator: ReductionOperator = SUM,
        memory_config: Optional[MemoryConfig] = None,
        check_values: bool = False,
        kernel: str = KERNEL_VECTOR,
        tracer: Optional[Tracer] = None,
        rank_order: Optional[Sequence[int]] = None,
        faults: Optional[FaultPlan] = None,
        fault_policy: Optional[FaultPolicy] = None,
        engine: str = ENGINE_OBJECT,
        cache: Optional[HotTierConfig] = None,
        placement: Optional[VectorPlacement] = None,
    ) -> None:
        """Build one FAFNIR instance.

        Args:
            config: accelerator shape and timing (paper defaults if None).
            operator: reduction operator (name or instance).
            memory_config: DDR4/HBM substrate; must match ``total_ranks``.
            check_values: enable the merge-unit value-consistency assertion.
            kernel: PE compute-unit implementation (``"scalar"``/``"vector"``).
            tracer: event tracer threaded through the memory system, every
                PE, and the engine's own host-side hooks; ``None`` installs
                the zero-overhead :data:`~repro.obs.tracer.NULL_TRACER`.
            rank_order: optional permutation of ``range(total_ranks)``
                rewiring ranks to leaf PEs (boards whose physical wiring
                does not follow the logical numbering).
            faults: seeded chaos script; ``None`` (the default) keeps every
                code path byte-identical to a fault-free build.
            fault_policy: recovery budgets and the ``fail_fast``/``degrade``
                exhaustion mode (defaults to ``fail_fast``).
            engine: tree-sweep implementation.  ``"object"`` (default) walks
                one :class:`ProcessingElement` at a time over per-message
                objects; ``"soa"`` runs the level-synchronous
                structure-of-arrays sweep (:mod:`repro.core.soa`) — the same
                results, work counters, and trace events, byte for byte,
                with no per-message objects between fold and root.
            cache: opt-in rank-level hot-index tier
                (:class:`~repro.tiering.cache.HotTierConfig`); ``None``
                (the default) keeps the memory path byte-identical to an
                uncached build.  The tier only changes modeled latency
                and DRAM access counts — functional results are
                invariant.
            placement: optional data-placement override (any
                :class:`~repro.memory.mapping.VectorPlacement`, e.g. a
                placement-optimizer
                :class:`~repro.tiering.placement.PermutedRankPlacement`);
                ``None`` uses the paper's row-major placement.
        """
        if kernel not in KERNELS:
            raise ValueError(f"unknown PE kernel {kernel!r}; choose from {KERNELS}")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        self.config = config or FafnirConfig()
        if isinstance(operator, str):
            operator = get_operator(operator)
        self.operator = operator
        if memory_config is None:
            memory_config = MemoryConfig().scaled_to_ranks(self.config.total_ranks)
        if memory_config.geometry.total_ranks != self.config.total_ranks:
            raise ValueError(
                "memory geometry rank count "
                f"({memory_config.geometry.total_ranks}) does not match the "
                f"FAFNIR configuration ({self.config.total_ranks})"
            )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults
        self.fault_policy = fault_policy if fault_policy is not None else FaultPolicy()
        self.cache_config = cache
        self.memory = MemorySystem(
            memory_config,
            tracer=self.tracer,
            faults=faults,
            fault_policy=self.fault_policy,
            cache=cache,
        )
        self.placement: VectorPlacement = (
            placement
            if placement is not None
            else RowMajorPlacement(
                memory_config.geometry, self.config.vector_bytes
            )
        )
        self.tree = FafnirTree(self.config, rank_order=rank_order)
        self._check_values = check_values
        self._kernel = kernel
        self._engine = engine
        self._last_memory_stats = AccessStats()
        self._lost_read_indices: Set[int] = set()

    # ------------------------------------------------------------------
    def _fetch_from_memory(self, plan: BatchPlan) -> Dict[int, List[int]]:
        """Issue all planned reads; returns per-index DRAM finish cycles.

        Each entry of ``plan.reads`` is one *occurrence*: a deduplicated
        plan has one occurrence per unique index, the ablation plan one per
        (query, index) lookup.  The result maps each index to its
        occurrences' finish cycles in issue order, where an occurrence
        finishes when the **last** of its split requests completes (a vector
        is usable only once every piece has arrived).
        """
        requests: List[ReadRequest] = []
        occurrences: List[tuple] = []
        for index in plan.reads:
            pieces = self.placement.requests_for(index)
            occurrences.append((index, len(requests), len(requests) + len(pieces)))
            requests.extend(pieces)
        completions, stats = self.memory.execute(requests)
        self._last_memory_stats = stats

        finish: Dict[int, List[int]] = {}
        lost_positions = self.memory.failed_positions
        self._lost_read_indices = set()
        for index, start, stop in occurrences:
            cycle = max(
                completion.finish_cycle for completion in completions[start:stop]
            )
            finish.setdefault(index, []).append(cycle)
            if lost_positions and not lost_positions.isdisjoint(range(start, stop)):
                # Any lost split request loses the whole vector; a vector
                # with any lost occurrence is dropped entirely (the engine
                # degrades per index, not per occurrence).
                self._lost_read_indices.add(index)
        return finish

    @staticmethod
    def _fifo_side(leaf: TreePE, rank: int) -> int:
        """Which of the leaf PE's two input FIFOs a rank feeds.

        Derived from the rank's *position* in ``leaf.leaf_ranks`` — the
        first half of the leaf's ranks share FIFO 0, the rest FIFO 1 — so
        the routing stays correct for non-contiguous or permuted
        rank-to-leaf wirings (arithmetic on ``rank - leaf_ranks[0]`` would
        silently misroute those).
        """
        ranks = leaf.leaf_ranks
        assert ranks is not None
        try:
            position = ranks.index(rank)
        except ValueError:
            raise ValueError(
                f"rank {rank} is not wired to leaf PE {leaf.pe_id} "
                f"(ranks {ranks})"
            ) from None
        return 0 if 2 * position < len(ranks) else 1

    def _leaf_inputs(
        self,
        plan: BatchPlan,
        finish_cycles: Dict[int, List[int]],
        source: VectorSource,
    ) -> Dict[int, List[List[Message]]]:
        """Build each leaf PE's two input FIFOs from the fetched vectors.

        With deduplication each index yields one message.  The ablation
        path instead emits one message per read occurrence, each carrying
        the entry of the query that occurrence serves and becoming ready at
        *its own* read's completion — the redundant reads the ablation pays
        for are charged individually rather than all riding the earliest
        copy (they later coalesce in the leaf FIFO, exactly as redundant
        copies physically would).
        """
        per_leaf: Dict[int, List[List[Message]]] = {
            leaf.pe_id: [[], []] for leaf in self.tree.leaves()
        }
        vector_elements = self.config.vector_elements
        queries_using: Dict[int, List] = {}
        if not plan.deduplicated:
            for query in plan.queries:
                for index in query:
                    queries_using.setdefault(index, []).append(query)
        for index in plan.unique_indices:
            value = np.asarray(source(index), dtype=np.float64)
            if value.shape != (vector_elements,):
                raise ValueError(
                    f"vector {index} has shape {value.shape}; expected "
                    f"({vector_elements},)"
                )
            rank = self.placement.home_rank(index)
            assert rank is not None
            leaf = self.tree.leaf_for_rank(rank)
            side = self._fifo_side(leaf, rank)
            fifo = per_leaf[leaf.pe_id][side]
            cycles = finish_cycles[index]
            if plan.deduplicated:
                ready = convert_cycles(
                    cycles[0], self.config.dram_clock, self.config.pe_clock
                )
                fifo.append(
                    Message(
                        header=plan.headers[index], value=value, ready_cycle=ready
                    )
                )
                if self.tracer.enabled:
                    self._emit_inject(leaf, side, rank, index, ready, len(fifo))
            else:
                # plan.reads lists occurrences query-major, so occurrence j
                # of this index belongs to the j-th query containing it.
                for query, cycle in zip(queries_using[index], cycles):
                    ready = convert_cycles(
                        cycle, self.config.dram_clock, self.config.pe_clock
                    )
                    fifo.append(
                        Message(
                            header=Header.make({index}, [query - {index}]),
                            value=value,
                            ready_cycle=ready,
                        )
                    )
                    if self.tracer.enabled:
                        self._emit_inject(
                            leaf, side, rank, index, ready, len(fifo)
                        )
        return per_leaf

    def _emit_inject(
        self,
        leaf: TreePE,
        side: int,
        rank: int,
        index: int,
        ready: int,
        depth: int,
    ) -> None:
        """Record one vector's arrival at a leaf FIFO (tracing enabled only).

        Emits a ``leaf_inject`` for the message itself and a
        ``fifo_enqueue`` carrying the FIFO's occupancy after the append;
        occupancy beyond ``config.buffer_entries`` additionally raises a
        ``fifo_stall`` — the backpressure signal a sized hardware FIFO
        would assert (the functional model itself is unbounded).
        """
        self.tracer.emit_packed(
            LEAF_INJECT,
            ready,
            pe=leaf.pe_id,
            level=leaf.level,
            rank=rank,
            args=(index,),
        )
        self.tracer.emit_packed(
            FIFO_ENQUEUE,
            ready,
            pe=leaf.pe_id,
            level=leaf.level,
            args=(side, depth),
        )
        if depth > self.config.buffer_entries:
            self.tracer.emit_packed(
                FIFO_STALL,
                ready,
                pe=leaf.pe_id,
                level=leaf.level,
                args=(side, depth),
            )

    def _run_tree(
        self, leaf_inputs: Dict[int, List[List[Message]]]
    ) -> tuple:
        """Propagate messages leaves→root; returns (root outputs, per-PE work)."""
        if self._engine == ENGINE_SOA:
            return run_tree_soa(
                self.tree,
                self.config,
                self.operator,
                self.tracer,
                self._check_values,
                self._kernel,
                leaf_inputs,
            )
        outputs: Dict[int, List[Message]] = {}
        per_pe_work: Dict[int, PEWork] = {}
        for pe_id in self.tree.bottom_up_ids():
            node = self.tree.pe(pe_id)
            pe = ProcessingElement(
                self.config,
                self.operator,
                name=f"PE{pe_id}",
                check_values=self._check_values,
                kernel=self._kernel,
                tracer=self.tracer,
                pe_id=pe_id,
                level=node.level,
            )
            if node.is_leaf:
                # Items from one rank stream through one FIFO and may
                # self-combine there (general workloads; a no-op for the
                # paper's one-vector-per-rank queries).
                fold_work = PEWork()
                raw_a, raw_b = leaf_inputs[pe_id]
                input_a = pe.fold_stream(raw_a, fold_work)
                input_b = pe.fold_stream(raw_b, fold_work)
            else:
                fold_work = PEWork()
                left, right = node.children  # type: ignore[misc]
                input_a = outputs.get(left, [])
                input_b = outputs.get(right, [])
            result = pe.process(input_a, input_b)
            outputs[pe_id] = result.outputs
            per_pe_work[pe_id] = result.work.merged_with(fold_work)
        return outputs[self.tree.root_id], per_pe_work

    def _collect_results(
        self,
        plan: BatchPlan,
        root_outputs: Sequence[Message],
        query_positions: Optional[Sequence[int]] = None,
    ) -> tuple:
        """Match root messages to queries; returns (vectors, completion cycles).

        ``query_positions`` relabels the emitted ``query_complete`` events
        when ``plan`` is a degraded re-plan whose queries map back to
        different submission positions in the original batch.
        """
        by_indices: Dict[frozenset, Message] = {}
        for message in root_outputs:
            if message.header.complete_entries:
                by_indices[message.indices] = message

        vectors: List[np.ndarray] = []
        ready_cycles: List[int] = []
        for position, query in enumerate(plan.queries):
            message = by_indices.get(query)
            if message is None:
                raise RuntimeError(
                    f"tree failed to complete query {position} "
                    f"({sorted(query)}) — FAFNIR's completion guarantee was "
                    "violated; this is a bug"
                )
            vectors.append(self.operator.finalize(message.value.copy(), len(query)))
            ready_cycles.append(message.ready_cycle)
            if self.tracer.enabled:
                label = (
                    query_positions[position]
                    if query_positions is not None
                    else position
                )
                self.tracer.emit_packed(
                    QUERY_COMPLETE,
                    message.ready_cycle,
                    args=(label, len(query)),
                )
        return vectors, ready_cycles

    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: Sequence[Sequence[int]],
        source: VectorSource,
        deduplicate: bool = True,
        reset_memory: bool = True,
    ) -> LookupResult:
        """Execute one batch of queries and return reduced vectors + stats.

        Args:
            queries: batch of index lists (one list per query).
            source: callable giving the stored vector for a global index.
            deduplicate: eliminate redundant reads (the paper's mechanism);
                pass ``False`` for the ablation baseline.
            reset_memory: start from cold row buffers (deterministic runs).
        """
        if len(queries) > self.config.batch_size:
            raise ValueError(
                f"batch of {len(queries)} exceeds configured batch size "
                f"{self.config.batch_size}"
            )
        if self.faults is not None:
            return self._run_batch_faulty(queries, source, deduplicate, reset_memory)
        if reset_memory:
            self.memory.reset()
        if self.tracer.enabled:
            self.tracer.emit(
                TraceEvent(
                    BATCH_START,
                    cycle=0,
                    args={"queries": len(queries), "dedup": deduplicate},
                )
            )

        plan = plan_batch(
            queries, max_query_len=self.config.max_query_len, deduplicate=deduplicate
        )
        finish_cycles = self._fetch_from_memory(plan)
        leaf_inputs = self._leaf_inputs(plan, finish_cycles, source)
        root_outputs, per_pe_work = self._run_tree(leaf_inputs)
        vectors, ready_cycles = self._collect_results(plan, root_outputs)

        memory_stats = self._last_memory_stats
        memory_pe_cycles = convert_cycles(
            memory_stats.finish_cycle, self.config.dram_clock, self.config.pe_clock
        )
        stats = LookupStats(
            memory=memory_stats,
            per_pe_work=per_pe_work,
            latency_pe_cycles=max(ready_cycles) if ready_cycles else 0,
            memory_latency_pe_cycles=memory_pe_cycles,
            total_lookups=plan.total_lookups,
            unique_reads=len(plan.unique_indices),
            dram_bytes_read=memory_stats.bytes_read,
            output_bytes=len(plan.queries) * self.config.vector_bytes,
            naive_movement_bytes=plan.total_lookups * self.config.vector_bytes,
        )
        if self.tracer.enabled:
            self.tracer.emit(
                TraceEvent(
                    BATCH_COMPLETE,
                    cycle=stats.latency_pe_cycles,
                    args={
                        "queries": len(plan.queries),
                        "unique_reads": len(plan.unique_indices),
                    },
                )
            )
        return LookupResult(
            vectors=vectors, stats=stats, plan=plan, ready_pe_cycles=ready_cycles
        )

    # --- fault-injected execution -------------------------------------
    def _run_batch_faulty(
        self,
        queries: Sequence[Sequence[int]],
        source: VectorSource,
        deduplicate: bool,
        reset_memory: bool,
    ) -> LookupResult:
        """One batch under an installed :class:`FaultPlan`.

        Memory reads are issued exactly once; rank faults surface as lost
        indices via :attr:`MemorySystem.failed_positions`, leaf-boundary
        faults (transient source errors, vector corruption) surface during
        prefetch.  Under ``fail_fast`` any unrecovered fault has already
        raised by the time the drop set is known; under ``degrade`` the
        batch is re-planned without the dropped indices so the tree's
        completion guarantee holds for what remains, and every query gets
        an explicit ``ok``/``degraded``/``failed`` status.
        """
        if reset_memory:
            self.memory.reset()
        if self.tracer.enabled:
            self.tracer.emit(
                TraceEvent(
                    BATCH_START,
                    cycle=0,
                    args={
                        "queries": len(queries),
                        "dedup": deduplicate,
                        "faults": True,
                    },
                )
            )

        plan = plan_batch(
            queries, max_query_len=self.config.max_query_len, deduplicate=deduplicate
        )
        finish_cycles = self._fetch_from_memory(plan)
        dropped: Set[int] = set(self._lost_read_indices)
        values: Dict[int, np.ndarray] = {}
        for index in plan.unique_indices:
            if index in dropped:
                continue
            value = self._fetch_one_vector(source, index)
            if value is None:
                dropped.add(index)
            else:
                values[index] = value

        statuses: Optional[List[str]] = None
        if not dropped:
            leaf_inputs = self._leaf_inputs(plan, finish_cycles, values.__getitem__)
            root_outputs, per_pe_work = self._run_tree(leaf_inputs)
            vectors, ready_cycles = self._collect_results(plan, root_outputs)
            statuses = [STATUS_OK] * len(vectors)
        else:
            vectors, ready_cycles, statuses, per_pe_work = self._run_degraded(
                plan, finish_cycles, values, dropped, deduplicate
            )

        memory_stats = self._last_memory_stats
        memory_pe_cycles = convert_cycles(
            memory_stats.finish_cycle, self.config.dram_clock, self.config.pe_clock
        )
        stats = LookupStats(
            memory=memory_stats,
            per_pe_work=per_pe_work,
            latency_pe_cycles=max(ready_cycles) if ready_cycles else 0,
            memory_latency_pe_cycles=memory_pe_cycles,
            total_lookups=plan.total_lookups,
            unique_reads=len(plan.unique_indices),
            dram_bytes_read=memory_stats.bytes_read,
            output_bytes=len(plan.queries) * self.config.vector_bytes,
            naive_movement_bytes=plan.total_lookups * self.config.vector_bytes,
        )
        if self.tracer.enabled:
            self.tracer.emit(
                TraceEvent(
                    BATCH_COMPLETE,
                    cycle=stats.latency_pe_cycles,
                    args={
                        "queries": len(plan.queries),
                        "unique_reads": len(plan.unique_indices),
                        "dropped_indices": len(dropped),
                    },
                )
            )
        return LookupResult(
            vectors=vectors,
            stats=stats,
            plan=plan,
            statuses=statuses,
            dropped_indices=frozenset(dropped),
            ready_pe_cycles=ready_cycles,
        )

    def _fetch_one_vector(
        self, source: VectorSource, index: int
    ) -> Optional[np.ndarray]:
        """Fetch one vector through the source- and corruption-fault gauntlet.

        Models two leaf-boundary hazards: a flaky source (the fetch
        attempt raises; retried up to ``max_source_retries``) and in-flight
        corruption (the vector arrives bit-flipped or NaN-poisoned; the
        leaf's modelled end-to-end integrity check catches it and the
        vector is re-read up to ``max_corruption_retries``).  Returns the
        clean vector, ``None`` when the budget is exhausted under
        ``degrade``, or raises under ``fail_fast``.
        """
        assert self.faults is not None
        plan = self.faults
        policy = self.fault_policy
        rank = self.placement.home_rank(index)

        attempt = 0
        while plan.source_raises(index, attempt):
            exhausted = attempt >= policy.max_source_retries
            self._emit_leaf_fault(
                FAULT_SOURCE_ERROR, rank, index, attempt, exhausted
            )
            if exhausted:
                if policy.fail_fast:
                    raise SourceFaultError(
                        f"vector source for index {index} kept raising; "
                        f"retry budget ({policy.max_source_retries}) exhausted"
                    )
                return None
            attempt += 1

        value = np.asarray(source(index), dtype=np.float64)

        attempt = 0
        while True:
            corrupted = plan.corrupt_vector(index, attempt, value)
            if corrupted is None:
                return value
            exhausted = attempt >= policy.max_corruption_retries
            self._emit_leaf_fault(
                FAULT_VECTOR_CORRUPTION, rank, index, attempt, exhausted
            )
            if exhausted:
                if policy.fail_fast:
                    raise VectorCorruptionError(
                        f"vector {index} failed its leaf-boundary integrity "
                        f"check on every fetch; retry budget "
                        f"({policy.max_corruption_retries}) exhausted"
                    )
                return None
            attempt += 1

    def _emit_leaf_fault(
        self,
        fault: str,
        rank: Optional[int],
        index: int,
        attempt: int,
        exhausted: bool,
    ) -> None:
        """One inject→detect(→retry) step of a leaf-boundary fault."""
        if not self.tracer.enabled:
            return
        base = {"fault": fault, "index": index, "attempt": attempt}
        self.tracer.emit(
            TraceEvent(FAULT_INJECTED, cycle=0, rank=rank, args=dict(base))
        )
        detected = dict(base)
        if exhausted:
            detected["fatal"] = True
        self.tracer.emit(
            TraceEvent(FAULT_DETECTED, cycle=0, rank=rank, args=detected)
        )
        if not exhausted:
            retry = dict(base)
            retry["attempt"] = attempt + 1
            self.tracer.emit(
                TraceEvent(RETRY_ISSUED, cycle=0, rank=rank, args=retry)
            )

    def _run_degraded(
        self,
        plan: BatchPlan,
        finish_cycles: Dict[int, List[int]],
        values: Dict[int, np.ndarray],
        dropped: Set[int],
        deduplicate: bool,
    ) -> Tuple[List[np.ndarray], List[int], List[str], Dict[int, PEWork]]:
        """Complete a batch that lost vectors: re-plan, run, degrade.

        The surviving indices are re-planned so every header's query sets
        reference only vectors that will actually arrive — the tree's
        completion guarantee then holds for the reduced batch.  Each
        original query maps to ``ok`` (untouched), ``degraded`` (reduced
        over its surviving subset; the output matches a CPU oracle on
        exactly those indices), or ``failed`` (nothing survived; all-NaN).
        Memory reads were already issued once — the re-plan reuses the
        recorded completion cycles, so no DRAM traffic is double-counted.
        """
        vector_elements = self.config.vector_elements
        statuses: List[str] = []
        effective: List[List[int]] = []
        for query in plan.queries:
            remaining = sorted(query - dropped)
            effective.append(remaining)
            if len(remaining) == len(query):
                statuses.append(STATUS_OK)
            elif remaining:
                statuses.append(STATUS_DEGRADED)
            else:
                statuses.append(STATUS_FAILED)

        surviving = [
            (position, indices)
            for position, indices in enumerate(effective)
            if indices
        ]
        per_pe_work: Dict[int, PEWork] = {}
        sub_vectors: List[np.ndarray] = []
        sub_ready: List[int] = []
        if surviving:
            sub_plan = plan_batch(
                [indices for _, indices in surviving],
                max_query_len=self.config.max_query_len,
                deduplicate=deduplicate,
            )
            needed = _Counter(sub_plan.reads)
            sub_finish = {
                index: (finish_cycles[index] + [finish_cycles[index][-1]] * count)[
                    :count
                ]
                for index, count in needed.items()
            }
            leaf_inputs = self._leaf_inputs(
                sub_plan, sub_finish, values.__getitem__
            )
            root_outputs, per_pe_work = self._run_tree(leaf_inputs)
            sub_vectors, sub_ready = self._collect_results(
                sub_plan,
                root_outputs,
                query_positions=[position for position, _ in surviving],
            )

        vectors: List[np.ndarray] = []
        ready_cycles: List[int] = []
        cursor = 0
        for position, query in enumerate(plan.queries):
            if statuses[position] == STATUS_FAILED:
                vectors.append(np.full(vector_elements, np.nan))
                ready_cycles.append(0)
            else:
                vectors.append(sub_vectors[cursor])
                ready_cycles.append(sub_ready[cursor])
                cursor += 1
            if statuses[position] != STATUS_OK and self.tracer.enabled:
                self.tracer.emit(
                    TraceEvent(
                        QUERY_DEGRADED,
                        cycle=ready_cycles[-1],
                        args={
                            "query": position,
                            "status": statuses[position],
                            "dropped": sorted(query & dropped),
                        },
                    )
                )
        return vectors, ready_cycles, statuses, per_pe_work

    # ------------------------------------------------------------------
    def run_batches(
        self,
        batches: Sequence[Sequence[Sequence[int]]],
        source: VectorSource,
        deduplicate: bool = True,
        pipeline: bool = True,
    ) -> MultiBatchResult:
        """Stream a sequence of batches through the engine (paper §IV).

        With ``pipeline=True`` the host issues batch *k*'s reads the moment
        the memory system frees up, while the tree is still draining batch
        *k−1* — the memory is the serializing resource and batch *k*
        completes at ``memory_start(k) + in_tree_latency(k)``.  With
        ``pipeline=False`` each batch waits for the previous one's root
        outputs (batch-at-a-time host), which is the serial sum.

        Functional outputs are identical either way; only the
        :class:`PipelineStats` timing differs.
        """
        if not batches:
            raise ValueError("need at least one batch")
        results: List[LookupResult] = []
        completions: List[int] = []
        memory_cursor = 0
        serial_cursor = 0
        for position, batch in enumerate(batches):
            result = self.run_batch(
                batch, source, deduplicate=deduplicate, reset_memory=True
            )
            stats = result.stats
            if pipeline:
                completions.append(memory_cursor + stats.latency_pe_cycles)
            else:
                completions.append(serial_cursor + stats.latency_pe_cycles)
                serial_cursor += stats.latency_pe_cycles
            if self.tracer.enabled:
                self.tracer.emit(
                    TraceEvent(
                        PIPELINE_BATCH,
                        cycle=completions[-1],
                        args={
                            "batch": position,
                            "queries": len(result.plan.queries),
                            "memory_start": memory_cursor,
                            "pipelined": pipeline,
                        },
                    )
                )
            memory_cursor += stats.memory_latency_pe_cycles
            results.append(result)

        serial_total = sum(r.stats.latency_pe_cycles for r in results)
        pipeline_stats = PipelineStats(
            batches=len(results),
            total_queries=sum(len(r.plan.queries) for r in results),
            serial_latency_pe_cycles=serial_total,
            pipelined_latency_pe_cycles=max(completions),
            memory_busy_pe_cycles=memory_cursor,
            batch_completion_cycles=completions,
        )
        return MultiBatchResult(results=results, pipeline=pipeline_stats)
