"""Header wire format: packing headers into their hardware bit budget.

The paper budgets each in-flight header at ``q`` index slots of
``index_bits`` each — 10 bytes for q = 16 slots of 5 bits (Table I
discussion, Fig. 4b).  A header's ``indices`` and ``queries`` fields share
that budget: the encoding is

    [count(indices)] [indices...] [entry separators + entry indices...]

with every token one ``index_bits``-wide slot and one slot reserved per
field count/separator.  This module packs and unpacks headers against the
budget, so buffer-overflow behaviour (a header that physically cannot be
represented) is an explicit, testable condition rather than an implicit
assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.config import FafnirConfig
from repro.core.header import Header


class HeaderOverflowError(ValueError):
    """A header does not fit the configured wire budget."""


@dataclass(frozen=True)
class WireFormat:
    """The bit-level header layout for one configuration.

    ``index_bits`` must name every distinct *table* (5 bits for 32); the
    per-header slot budget is ``max_query_len`` index slots plus one count
    slot per field and one separator per query entry.
    """

    index_bits: int
    slot_budget: int

    @staticmethod
    def for_config(config: FafnirConfig) -> "WireFormat":
        # The paper's 10 B budget = q slots; we add the bookkeeping slots
        # explicitly so the budget accounting is honest.
        return WireFormat(
            index_bits=config.index_bits,
            slot_budget=2 * config.max_query_len + 2,
        )

    @property
    def max_index(self) -> int:
        return (1 << self.index_bits) - 1

    def slots_needed(self, header: Header) -> int:
        """Slots to encode: 1 count + indices + per-entry (1 sep + items)."""
        slots = 1 + len(header.indices)
        for entry in header.entries:
            slots += 1 + len(entry)
        return slots

    def fits(self, header: Header) -> bool:
        return self.slots_needed(header) <= self.slot_budget

    # ------------------------------------------------------------------
    def encode(self, header: Header) -> bytes:
        """Pack a header into bytes; raises :class:`HeaderOverflowError` if
        it exceeds the slot budget or an index exceeds ``index_bits``."""
        if not self.fits(header):
            raise HeaderOverflowError(
                f"header needs {self.slots_needed(header)} slots, budget is "
                f"{self.slot_budget}"
            )
        # Field counts travel in the same index_bits-wide slots, so they are
        # subject to the same range check — a 5-bit format cannot describe
        # more than 31 indices or entries per field.
        tokens: List[int] = [self._check_index(len(header.indices))]
        for index in sorted(header.indices):
            tokens.append(self._check_index(index))
        tokens.append(self._check_index(len(header.entries)))
        for entry in header.entries:
            tokens.append(self._check_index(len(entry)))
            for index in sorted(entry):
                tokens.append(self._check_index(index))

        bits = 0
        value = 0
        for token in tokens:
            value = (value << self.index_bits) | token
            bits += self.index_bits
        # Prefix with the token count so decode knows where to stop.
        payload_bytes = (bits + 7) // 8
        return bytes([len(tokens)]) + value.to_bytes(max(1, payload_bytes), "big")

    def decode(self, blob: bytes) -> Header:
        """Inverse of :meth:`encode`."""
        if not blob:
            raise ValueError("empty header blob")
        token_count = blob[0]
        value = int.from_bytes(blob[1:], "big")
        tokens: List[int] = []
        mask = (1 << self.index_bits) - 1
        for position in range(token_count):
            shift = (token_count - 1 - position) * self.index_bits
            tokens.append((value >> shift) & mask)

        cursor = 0

        def take() -> int:
            nonlocal cursor
            if cursor >= len(tokens):
                raise ValueError("truncated header blob")
            token = tokens[cursor]
            cursor += 1
            return token

        index_count = take()
        indices = [take() for _ in range(index_count)]
        entry_count = take()
        entries: List[Tuple[int, ...]] = []
        for _ in range(entry_count):
            entry_len = take()
            entries.append(tuple(take() for _ in range(entry_len)))
        if cursor != len(tokens):
            raise ValueError("trailing tokens in header blob")
        return Header.make(indices, entries)

    def _check_index(self, index: int) -> int:
        if not 0 <= index <= self.max_index:
            raise HeaderOverflowError(
                f"index {index} exceeds the {self.index_bits}-bit wire format"
            )
        return index

    # ------------------------------------------------------------------
    def wire_bytes(self, header: Header) -> int:
        """Encoded size in bytes (for bandwidth accounting)."""
        return len(self.encode(header))
