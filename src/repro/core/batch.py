"""Host-side batch preprocessing (paper §IV-C, Fig. 6b).

Before a batch of queries is issued to the tree, the host:

1. normalises each query to a set of global vector indices,
2. extracts the batch's **unique** indices — each is read from DRAM exactly
   once, however many queries share it, and
3. builds the initial header for every unique index: its ``queries`` field
   holds, per query using the index, the query's *other* indices.

The ``deduplicate=False`` path issues one read per (query, index) occurrence
instead — the ablation the paper uses to separate FAFNIR's parallel-tree
speedup (Fig. 13 solid bars) from its redundant-access elimination
(striped bars, Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.header import Header


Query = FrozenSet[int]


@dataclass(frozen=True)
class BatchPlan:
    """Everything the engine needs to run one batch.

    Attributes:
        queries: normalised query index sets, in submission order.
        reads: vector indices to fetch from memory (unique, or one per
            occurrence when deduplication is disabled).
        headers: initial header for each distinct index in ``reads``.
        deduplicated: whether redundant reads were eliminated.
    """

    queries: Tuple[Query, ...]
    reads: Tuple[int, ...]
    headers: Dict[int, Header]
    deduplicated: bool

    @property
    def total_lookups(self) -> int:
        """Sum of query lengths — the naive access count."""
        return sum(len(query) for query in self.queries)

    @property
    def unique_indices(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.reads)))

    @property
    def unique_fraction(self) -> float:
        """Fraction of lookups that are unique (paper Fig. 3)."""
        total = self.total_lookups
        return len(self.unique_indices) / total if total else 0.0

    @property
    def accesses_saved(self) -> int:
        """Memory reads avoided relative to the naive plan (paper Fig. 15)."""
        return self.total_lookups - len(self.reads)


def normalize_queries(
    raw_queries: Sequence[Sequence[int]], max_query_len: Optional[int] = None
) -> Tuple[Query, ...]:
    """Validate and canonicalise a batch of queries.

    Duplicate indices *within* one query are collapsed (the tree's header
    algebra works on sets); duplicate queries across the batch are kept —
    they are distinct outputs that happen to be equal.
    """
    if not raw_queries:
        raise ValueError("batch must contain at least one query")
    queries: List[Query] = []
    for position, raw in enumerate(raw_queries):
        query = frozenset(int(i) for i in raw)
        if not query:
            raise ValueError(f"query {position} is empty")
        if any(i < 0 for i in query):
            raise ValueError(f"query {position} contains a negative index")
        if max_query_len is not None and len(query) > max_query_len:
            raise ValueError(
                f"query {position} has {len(query)} indices, "
                f"exceeding the configured maximum of {max_query_len}"
            )
        queries.append(query)
    return tuple(queries)


def plan_batch(
    raw_queries: Sequence[Sequence[int]],
    max_query_len: Optional[int] = None,
    deduplicate: bool = True,
) -> BatchPlan:
    """Build the read list and initial headers for one batch."""
    queries = normalize_queries(raw_queries, max_query_len)

    # One pass over the batch (Header.initial per index would rescan every
    # query for every unique index — quadratic in batch size × query length).
    entries_of: Dict[int, List[Query]] = {}
    for query in queries:
        for index in query:
            entries_of.setdefault(index, []).append(query - {index})
    unique = sorted(entries_of)
    headers = {
        index: Header.make({index}, entries_of[index]) for index in unique
    }

    if deduplicate:
        reads = tuple(unique)
    else:
        reads = tuple(index for query in queries for index in sorted(query))
    return BatchPlan(
        queries=queries,
        reads=reads,
        headers=headers,
        deduplicated=deduplicate,
    )
