"""Message headers flowing through the FAFNIR tree (paper §IV-B, Fig. 4/6).

Every value moving from the leaves toward the root carries a header with two
fields:

* ``indices`` — the set of embedding-vector indices *already folded into* the
  carried value.  The invariant maintained by every PE is that the value is
  exactly the reduction of the vectors named by ``indices``.
* ``entries`` (the paper's *queries* field) — one remaining-index set per
  query that still needs this value.  An entry lists the indices that must
  still be folded in before that query's output is complete; an **empty**
  entry means the carried value *is* that query's final answer.

Example from the paper: a message whose value is ``v50 ⊕ v11`` with one query
still needing vectors 94 and 26 has header ``[indices: {50, 11} | queries:
{94, 26}]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

Indices = FrozenSet[int]


@lru_cache(maxsize=1 << 16)
def sorted_tuple(indices: Indices) -> Tuple[int, ...]:
    """Cached ascending tuple of an index set.

    The same remainder sets recur in headers at every tree level, so the
    canonical-order sort keys are memoised on the (hashable, immutable)
    frozensets themselves.
    """
    return tuple(sorted(indices))


@lru_cache(maxsize=1 << 16)
def entry_sort_key(entry: Indices) -> Tuple[int, Tuple[int, ...]]:
    """Canonical ordering key for header entries (cached per frozenset)."""
    return (len(entry), tuple(sorted(entry)))


def _canonical_entries(entries: Iterable[Indices]) -> Tuple[Indices, ...]:
    """Deduplicate and canonically order remaining-index sets.

    Duplicate entries are redundant: two queries that need exactly the same
    remaining indices on top of the same carried value are satisfied by the
    same upstream reductions (the merge unit's dedup, paper §IV-B).
    """
    unique = {frozenset(entry) for entry in entries}
    return tuple(sorted(unique, key=entry_sort_key))


@dataclass(frozen=True)
class Header:
    """The (indices, queries) pair attached to every in-tree value."""

    indices: Indices
    entries: Tuple[Indices, ...]

    def __post_init__(self) -> None:
        if not self.indices:
            raise ValueError("a header must cover at least one index")
        for entry in self.entries:
            if entry and not entry.isdisjoint(self.indices):
                raise ValueError(
                    f"entry {sorted(entry)} overlaps indices {sorted(self.indices)}"
                )

    @staticmethod
    def make(indices: Iterable[int], entries: Iterable[Iterable[int]]) -> "Header":
        """Build a canonical header from plain iterables."""
        return Header(
            indices=frozenset(indices),
            entries=_canonical_entries(frozenset(e) for e in entries),
        )

    @staticmethod
    def initial(unique_index: int, queries: Sequence[Iterable[int]]) -> "Header":
        """Host-side header for one unique index of a batch (§IV-C, Fig. 6b).

        For each query containing ``unique_index``, the entry is the query's
        other indices — what must still be gathered for that query.
        """
        entries: List[Indices] = []
        for query in queries:
            query_set = frozenset(query)
            if unique_index in query_set:
                entries.append(query_set - {unique_index})
        if not entries:
            raise ValueError(
                f"index {unique_index} does not appear in any query of the batch"
            )
        return Header.make({unique_index}, entries)

    @property
    def complete_entries(self) -> Tuple[Indices, ...]:
        """Entries already satisfied: the carried value answers those queries."""
        return tuple(entry for entry in self.entries if not entry)

    @property
    def pending_entries(self) -> Tuple[Indices, ...]:
        """Entries still waiting for more indices to be folded in."""
        return tuple(entry for entry in self.entries if entry)

    def completed_queries(self) -> Tuple[Indices, ...]:
        """Full index sets of the queries this message fully answers.

        Entries are deduplicated, so at most one empty entry exists and the
        result has at most one element.
        """
        return (self.indices,) if self.complete_entries else ()

    def reduced_with(self, other_indices: Indices, entry: Indices) -> "Header":
        """Header of the reduction of this value (via ``entry``) with a partner.

        Preconditions (checked): ``entry`` is one of our entries and the
        partner's ``other_indices`` is a subset of it — the paper's match
        condition "B[x].queries[j] contains all elements of A[i].indices".
        """
        if entry not in self.entries:
            raise ValueError("entry does not belong to this header")
        if not other_indices <= entry:
            raise ValueError("partner indices are not contained in the entry")
        # A single entry is trivially canonical — skip Header.make's dedup.
        return Header(
            indices=self.indices | other_indices,
            entries=(entry - other_indices,),
        )

    def forwarded(self, entry: Indices) -> "Header":
        """Header carrying just one of our entries onward unchanged."""
        if entry not in self.entries:
            raise ValueError("entry does not belong to this header")
        return Header(indices=self.indices, entries=(entry,))

    def merged_with(self, other: "Header") -> "Header":
        """Merge two headers for the *same* data (equal ``indices`` sets)."""
        if self.indices != other.indices:
            raise ValueError("only headers with equal indices may merge")
        return Header.make(self.indices, self.entries + other.entries)

    def header_bits(self, index_bits: int, max_query_len: int) -> int:
        """Size of this header's wire encoding in bits.

        The paper budgets ``q`` index slots of ``index_bits`` each (10 B for
        q=16 with 5-bit ids, Table I discussion).
        """
        if index_bits <= 0 or max_query_len <= 0:
            raise ValueError("index_bits and max_query_len must be positive")
        return index_bits * max_query_len

    def __repr__(self) -> str:
        inx = ",".join(str(i) for i in sorted(self.indices))
        parts = ["|".join(str(i) for i in sorted(e)) or "∅" for e in self.entries]
        return f"[indices:{inx} queries:{'; '.join(parts)}]"


@dataclass
class Message:
    """A value in flight through the tree, plus timing annotation.

    Attributes:
        header: provenance and outstanding-query bookkeeping.
        value: the carried (partially reduced) vector.
        ready_cycle: PE-clock cycle at which this message is available to the
            consuming PE — the cycle-approximate engine threads latency
            through these annotations.
        hops: number of PEs this message has traversed (for stats).
    """

    header: Header
    value: np.ndarray
    ready_cycle: int = 0
    hops: int = 0

    def __post_init__(self) -> None:
        self.value = np.asarray(self.value, dtype=np.float64)
        if self.ready_cycle < 0:
            raise ValueError("ready_cycle must be non-negative")

    @property
    def indices(self) -> Indices:
        return self.header.indices

    @property
    def entries(self) -> Tuple[Indices, ...]:
        return self.header.entries

    def clone_for_entry(self, entry: Indices, ready_cycle: int) -> "Message":
        """Forwarded copy carrying only ``entry``."""
        return Message(
            header=self.header.forwarded(entry),
            value=self.value,
            ready_cycle=ready_cycle,
            hops=self.hops + 1,
        )
