"""Public facade: the FAFNIR accelerator as a downstream user sees it.

Typical use::

    from repro import FafnirAccelerator
    from repro.workloads import EmbeddingTableSet

    tables = EmbeddingTableSet.random(num_tables=32, rows_per_table=4096,
                                      vector_bytes=512, seed=7)
    fafnir = FafnirAccelerator(operator="sum")
    result = fafnir.lookup(tables.vector, [[3, 77, 515], [77, 9]])
    result.vectors       # one reduced 128-element vector per query
    result.stats         # latency / DRAM / data-movement measurements
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine, LookupResult, VectorSource
from repro.core.operators import ReductionOperator, get_operator
from repro.memory.config import MemoryConfig


class FafnirAccelerator:
    """A configured FAFNIR instance with a stable, small public API."""

    def __init__(
        self,
        config: Optional[FafnirConfig] = None,
        operator: Union[str, ReductionOperator] = "sum",
        memory_config: Optional[MemoryConfig] = None,
        check_values: bool = False,
    ) -> None:
        if isinstance(operator, str):
            operator = get_operator(operator)
        self.config = config or FafnirConfig()
        self.operator = operator
        self._engine = FafnirEngine(
            config=self.config,
            operator=operator,
            memory_config=memory_config,
            check_values=check_values,
        )

    @property
    def engine(self) -> FafnirEngine:
        """The underlying engine, for advanced inspection."""
        return self._engine

    def lookup(
        self,
        source: VectorSource,
        queries: Sequence[Sequence[int]],
        deduplicate: bool = True,
    ) -> LookupResult:
        """Gather-and-reduce a batch of queries.

        Batches larger than the hardware batch size are served as several
        hardware-sized sub-batches (paper §IV-B: "larger batch sizes defined
        by software ... are served as several small batches at hardware").
        """
        hardware_batch = self.config.batch_size
        if len(queries) <= hardware_batch:
            return self._engine.run_batch(queries, source, deduplicate=deduplicate)

        merged: Optional[LookupResult] = None
        for start in range(0, len(queries), hardware_batch):
            chunk = queries[start : start + hardware_batch]
            result = self._engine.run_batch(chunk, source, deduplicate=deduplicate)
            merged = result if merged is None else _concatenate(merged, result)
        assert merged is not None
        return merged

    def verify_against_oracle(
        self,
        source: VectorSource,
        queries: Sequence[Sequence[int]],
        rtol: float = 1e-9,
    ) -> bool:
        """Check a lookup against a direct NumPy reduction (for testing)."""
        result = self.lookup(source, queries)
        for query, produced in zip(result.plan.queries, result.vectors):
            expected = self.operator.reduce_many(
                [np.asarray(source(i), dtype=np.float64) for i in sorted(query)]
            )
            if not np.allclose(produced, expected, rtol=rtol):
                return False
        return True


def _concatenate(first: LookupResult, second: LookupResult) -> LookupResult:
    """Fold a later sub-batch's results into an accumulated LookupResult."""
    from dataclasses import replace

    stats = first.stats
    other = second.stats
    merged_stats = replace(
        stats,
        memory=stats.memory.merged_with(other.memory),
        latency_pe_cycles=stats.latency_pe_cycles + other.latency_pe_cycles,
        memory_latency_pe_cycles=stats.memory_latency_pe_cycles
        + other.memory_latency_pe_cycles,
        total_lookups=stats.total_lookups + other.total_lookups,
        unique_reads=stats.unique_reads + other.unique_reads,
        dram_bytes_read=stats.dram_bytes_read + other.dram_bytes_read,
        output_bytes=stats.output_bytes + other.output_bytes,
        naive_movement_bytes=stats.naive_movement_bytes
        + other.naive_movement_bytes,
    )
    merged_stats.per_pe_work = {
        pe_id: stats.per_pe_work.get(pe_id, _empty_work()).merged_with(
            other.per_pe_work.get(pe_id, _empty_work())
        )
        for pe_id in set(stats.per_pe_work) | set(other.per_pe_work)
    }
    from repro.core.batch import BatchPlan

    merged_plan = BatchPlan(
        queries=first.plan.queries + second.plan.queries,
        reads=first.plan.reads + second.plan.reads,
        headers={**first.plan.headers, **second.plan.headers},
        deduplicated=first.plan.deduplicated and second.plan.deduplicated,
    )
    return LookupResult(
        vectors=first.vectors + second.vectors,
        stats=merged_stats,
        plan=merged_plan,
    )


def _empty_work():
    from repro.core.pe import PEWork

    return PEWork()
