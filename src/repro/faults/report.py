"""Chaos-run accounting: injected vs. detected vs. recovered, from events.

The recovery pipeline is fully observable — every injection emits a
``fault_injected`` event, every detection a ``fault_detected`` (with
``fatal: true`` when the retry budget is exhausted), every re-issue a
``retry_issued`` / ``shard_redispatched``, and every query that lost data
a ``query_degraded``.  :func:`recovery_report` folds a recorded stream
(or the concatenation of per-shard streams a traced
:class:`~repro.core.sharding.ShardedRunner` ships back) into the summary
the ``repro.cli chaos`` subcommand prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.faults.policy import STATUS_DEGRADED, STATUS_FAILED
from repro.obs.events import (
    FAULT_DETECTED,
    FAULT_INJECTED,
    QUERY_DEGRADED,
    RETRY_ISSUED,
    SHARD_REDISPATCHED,
    TraceEvent,
)


@dataclass
class RecoveryReport:
    """Counts of the inject → detect → retry → recover pipeline.

    ``recovered`` counts detections that did not end in giving up: each
    ``fault_detected`` either precedes a successful retry (recovered) or
    carries ``fatal: true`` (the site's budget was exhausted and the
    affected vector/shard was dropped or degraded).
    """

    injected: Dict[str, int] = field(default_factory=dict)
    detected: Dict[str, int] = field(default_factory=dict)
    fatal: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    redispatches: int = 0
    degraded_queries: int = 0
    failed_queries: int = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_detected(self) -> int:
        return sum(self.detected.values())

    @property
    def total_fatal(self) -> int:
        return sum(self.fatal.values())

    @property
    def recovered(self) -> int:
        return self.total_detected - self.total_fatal

    @property
    def detection_rate(self) -> float:
        """Fraction of injections that were detected (1.0 when none fired).

        Zero-query runs inject nothing; calling that perfect detection
        keeps rate-based assertions (CI floors, chaos sweeps) from
        dividing by zero or special-casing the empty run.
        """
        if not self.total_injected:
            return 1.0
        return min(1.0, self.total_detected / self.total_injected)

    @property
    def recovery_rate(self) -> float:
        """Fraction of detections that recovered (1.0 when none fired)."""
        if not self.total_detected:
            return 1.0
        return self.recovered / self.total_detected

    def render(self) -> str:
        lines: List[str] = ["fault recovery report"]
        kinds = sorted(set(self.injected) | set(self.detected))
        if not kinds:
            lines.append("  no faults injected")
        for kind in kinds:
            lines.append(
                f"  {kind:20s} injected {self.injected.get(kind, 0):4d}  "
                f"detected {self.detected.get(kind, 0):4d}  "
                f"unrecovered {self.fatal.get(kind, 0):4d}"
            )
        lines.append(
            f"  totals: {self.total_injected} injected, "
            f"{self.total_detected} detected, {self.recovered} recovered, "
            f"{self.retries} retries, {self.redispatches} shard re-dispatches"
        )
        lines.append(
            f"  rates: detection {self.detection_rate:.2f}, "
            f"recovery {self.recovery_rate:.2f}"
        )
        lines.append(
            f"  queries degraded: {self.degraded_queries}, "
            f"failed: {self.failed_queries}"
        )
        return "\n".join(lines)


def recovery_report(events: Iterable[TraceEvent]) -> RecoveryReport:
    """Fold a recorded event stream into a :class:`RecoveryReport`."""
    report = RecoveryReport()
    for event in events:
        fault = str(event.args.get("fault", "unknown"))
        if event.kind == FAULT_INJECTED:
            report.injected[fault] = report.injected.get(fault, 0) + 1
        elif event.kind == FAULT_DETECTED:
            report.detected[fault] = report.detected.get(fault, 0) + 1
            if event.args.get("fatal"):
                report.fatal[fault] = report.fatal.get(fault, 0) + 1
        elif event.kind == RETRY_ISSUED:
            report.retries += 1
        elif event.kind == SHARD_REDISPATCHED:
            report.redispatches += 1
        elif event.kind == QUERY_DEGRADED:
            status = event.args.get("status")
            if status == STATUS_FAILED:
                report.failed_queries += 1
            elif status == STATUS_DEGRADED:
                report.degraded_queries += 1
    return report
