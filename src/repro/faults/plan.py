"""Deterministic, seed-driven fault injection.

A :class:`FaultPlan` is the chaos script of one run: given the same seed
and the same workload, the same faults fire at the same sites on every
execution, in any process (decisions hash the seed with stable site keys,
so they do not depend on call order or interpreter state).  The plan is
plain picklable data — :class:`~repro.core.sharding.ShardedRunner` ships
it to worker processes alongside the engine configuration.

Injection sites (each guarded by the owning component):

=========================  ================================================
site                       effect
=========================  ================================================
rank latency degradation   reads on a listed rank take ``multiplier``×
                           their modelled service time (``MemorySystem``)
rank read timeout          a read on a flaky rank is lost and must be
                           re-issued after backoff (``MemorySystem``)
vector corruption          a fetched vector is bit-flipped or NaN-poisoned
                           at the leaf boundary (``FafnirEngine``)
transient source error     the vector source raises on a fetch attempt
                           (``FafnirEngine``)
worker crash / hang        a shard worker dies or stalls on its first
                           attempt(s) (``ShardedRunner``)
link message loss          a cross-shard reduction message is dropped on
                           the wire and must be retransmitted after a
                           detection timeout (``comm`` schedules)
link bandwidth degradation a listed (src, dst) link carries messages at
                           ``multiplier``× their modelled wire time
                           (``comm`` schedules)
shard straggler            a shard's local completion cycles stretch by a
                           multiplier (``CrossShardReducer``; hedged
                           re-dispatch can cut the tail)
shard dead                 a shard's partials never arrive; the reducer
                           routes around it by dropping its pieces through
                           the absent-piece-skipping ``canonical_fold``
=========================  ================================================

Link loss and bandwidth degradation are **timing** faults: the modeled
fabric is eventually reliable (link-layer retransmission, with a final
host-mediated escalation when the retransmit budget runs out in
``degrade`` mode), so functional bytes never change.  A dead shard is the
**functional** link-class fault: its pieces are absent from the fold and
the affected queries degrade exactly like engine-side index drops.

The plan only *decides*; the components inject, emit the ``fault_*``
trace events, and run the :class:`~repro.faults.policy.FaultPolicy`
recovery machinery.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

import numpy as np

# --- fault type labels (the ``fault`` arg of fault_* events) ---------------
FAULT_RANK_DEGRADED = "rank_degraded"
FAULT_RANK_TIMEOUT = "rank_timeout"
FAULT_VECTOR_CORRUPTION = "vector_corruption"
FAULT_SOURCE_ERROR = "source_error"
FAULT_WORKER_CRASH = "worker_crash"
FAULT_WORKER_HANG = "worker_hang"
FAULT_LINK_LOSS = "link_loss"
FAULT_LINK_DEGRADED = "link_degraded"
FAULT_SHARD_STRAGGLER = "shard_straggler"
FAULT_SHARD_DEAD = "shard_dead"

FAULT_KINDS = (
    FAULT_RANK_DEGRADED,
    FAULT_RANK_TIMEOUT,
    FAULT_VECTOR_CORRUPTION,
    FAULT_SOURCE_ERROR,
    FAULT_WORKER_CRASH,
    FAULT_WORKER_HANG,
    FAULT_LINK_LOSS,
    FAULT_LINK_DEGRADED,
    FAULT_SHARD_STRAGGLER,
    FAULT_SHARD_DEAD,
)

# --- corruption modes ------------------------------------------------------
CORRUPT_NAN = "nan"
CORRUPT_BITFLIP = "bitflip"
CORRUPT_MODES = (CORRUPT_NAN, CORRUPT_BITFLIP)


class FaultError(RuntimeError):
    """Base class of every error the fault subsystem raises."""


class RankTimeoutError(FaultError):
    """A DRAM read kept timing out after the full retry budget."""


class VectorCorruptionError(FaultError):
    """A fetched vector failed its integrity check on every retry."""


class TransientSourceError(FaultError):
    """The injected source exception (recoverable by retrying)."""


class SourceFaultError(FaultError):
    """The vector source kept raising after the full retry budget."""


class SimulatedWorkerCrash(FaultError):
    """In-process stand-in for a worker death (serial execution only)."""


class ShardFailedError(FaultError):
    """A shard could not be completed within the re-dispatch budget."""


class LinkFailedError(FaultError):
    """A message kept getting lost after the full retransmit budget."""


def _decision_rng(seed: int, site: str, *keys: int) -> np.random.Generator:
    """A generator keyed by (seed, site, keys) — order-independent."""
    material = [seed & 0xFFFFFFFF, zlib.crc32(site.encode("ascii"))]
    material.extend(int(key) & 0xFFFFFFFF for key in keys)
    return np.random.default_rng(material)


@dataclass
class FaultPlan:
    """The seeded chaos script for one run (plain picklable data).

    Attributes:
        seed: root of every probabilistic decision the plan makes.
        rank_latency_multipliers: rank → service-time multiplier (> 1
            degrades; reads on other ranks are untouched).
        rank_timeout_probability: rank → per-(read, attempt) probability
            that the read is lost and must be retried.
        vector_corruption_probability: per-(vector, attempt) probability
            that a fetched vector arrives corrupted at the leaf boundary.
        corruption_mode: :data:`CORRUPT_NAN` (poison with NaNs) or
            :data:`CORRUPT_BITFLIP` (flip one mantissa bit per element of
            a random slice — silent without an integrity check).
        source_failure_probability: per-(vector, attempt) probability that
            the vector source raises :class:`TransientSourceError`.
        crash_shards: shard positions whose worker dies on early attempts.
        hang_shards: shard positions whose worker stalls on early attempts.
        crash_attempts: number of leading attempts that crash/hang before
            the shard behaves (1 models a transient fault the first
            re-dispatch recovers; a value ≥ the retry budget models a
            persistent failure).
        hang_seconds: how long a hung worker sleeps (must exceed the
            policy's ``shard_timeout_s`` for the watchdog to matter).
        link_loss_probability: per-(message, attempt) probability that a
            cross-shard reduction message is dropped on the wire (timing
            only — the fabric is eventually reliable).
        link_bandwidth_multipliers: directed (src, dst) shard pair →
            wire-time multiplier (> 1 degrades that link; others are
            untouched).
        straggler_multipliers: piece id → local-completion multiplier
            (> 1 stretches that shard's partials; hedged re-dispatch can
            cut the tail).
        dead_shards: piece ids whose partials never arrive — the reducer
            routes around them by dropping their pieces from the fold.
            (Note: addressed by *piece id*, unlike ``crash_shards`` which
            addresses dispatch positions.)
    """

    seed: int = 0
    rank_latency_multipliers: Dict[int, float] = field(default_factory=dict)
    rank_timeout_probability: Dict[int, float] = field(default_factory=dict)
    vector_corruption_probability: float = 0.0
    corruption_mode: str = CORRUPT_NAN
    source_failure_probability: float = 0.0
    crash_shards: FrozenSet[int] = frozenset()
    hang_shards: FrozenSet[int] = frozenset()
    crash_attempts: int = 1
    hang_seconds: float = 5.0
    link_loss_probability: float = 0.0
    link_bandwidth_multipliers: Dict[Tuple[int, int], float] = field(
        default_factory=dict
    )
    straggler_multipliers: Dict[int, float] = field(default_factory=dict)
    dead_shards: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.corruption_mode not in CORRUPT_MODES:
            raise ValueError(
                f"unknown corruption mode {self.corruption_mode!r}; "
                f"choose from {CORRUPT_MODES}"
            )
        for name in (
            "vector_corruption_probability",
            "source_failure_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        for rank, multiplier in self.rank_latency_multipliers.items():
            if multiplier < 1.0:
                raise ValueError(
                    f"rank {rank} latency multiplier {multiplier} < 1 "
                    "(degradation can only slow reads down)"
                )
        for rank, probability in self.rank_timeout_probability.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"rank {rank} timeout probability not in [0, 1]")
        if self.crash_attempts < 0:
            raise ValueError("crash_attempts must be non-negative")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")
        if not 0.0 <= self.link_loss_probability <= 1.0:
            raise ValueError("link_loss_probability must be within [0, 1]")
        for pair, multiplier in self.link_bandwidth_multipliers.items():
            if multiplier < 1.0:
                raise ValueError(
                    f"link {pair} bandwidth multiplier {multiplier} < 1 "
                    "(degradation can only slow transfers down)"
                )
        for piece, multiplier in self.straggler_multipliers.items():
            if multiplier < 1.0:
                raise ValueError(
                    f"piece {piece} straggler multiplier {multiplier} < 1 "
                    "(stragglers can only finish later)"
                )
        self.crash_shards = frozenset(self.crash_shards)
        self.hang_shards = frozenset(self.hang_shards)
        self.dead_shards = frozenset(self.dead_shards)

    # --- memory-side decisions --------------------------------------------
    @property
    def touches_memory(self) -> bool:
        return bool(self.rank_latency_multipliers or self.rank_timeout_probability)

    def read_latency_multiplier(self, rank: int) -> float:
        return self.rank_latency_multipliers.get(rank, 1.0)

    def read_times_out(self, rank: int, position: int, attempt: int) -> bool:
        """Whether the read at batch ``position`` is lost on ``attempt``."""
        probability = self.rank_timeout_probability.get(rank, 0.0)
        if probability <= 0.0:
            return False
        rng = _decision_rng(self.seed, "read_timeout", rank, position, attempt)
        return bool(rng.random() < probability)

    # --- leaf-boundary decisions ------------------------------------------
    def source_raises(self, index: int, attempt: int) -> bool:
        if self.source_failure_probability <= 0.0:
            return False
        rng = _decision_rng(self.seed, "source_error", index, attempt)
        return bool(rng.random() < self.source_failure_probability)

    def corrupt_vector(
        self, index: int, attempt: int, value: np.ndarray
    ) -> Optional[np.ndarray]:
        """The corrupted copy of ``value``, or ``None`` when no fault fires."""
        if self.vector_corruption_probability <= 0.0:
            return None
        rng = _decision_rng(self.seed, "corruption", index, attempt)
        if rng.random() >= self.vector_corruption_probability:
            return None
        corrupted = np.array(value, dtype=np.float64, copy=True)
        span = max(1, corrupted.size // 8)
        start = int(rng.integers(0, max(1, corrupted.size - span + 1)))
        if self.corruption_mode == CORRUPT_NAN:
            corrupted[start : start + span] = np.nan
        else:
            bits = corrupted.view(np.uint64)
            bits[start : start + span] ^= np.uint64(1) << np.uint64(
                int(rng.integers(0, 52))
            )
        return corrupted

    # --- shard-side decisions ---------------------------------------------
    def shard_crashes(self, shard: int, attempt: int) -> bool:
        return shard in self.crash_shards and attempt < self.crash_attempts

    def shard_hangs(self, shard: int, attempt: int) -> bool:
        return shard in self.hang_shards and attempt < self.crash_attempts

    # --- link / reduction-side decisions ----------------------------------
    @property
    def touches_links(self) -> bool:
        return bool(self.link_loss_probability or self.link_bandwidth_multipliers)

    @property
    def touches_reduction(self) -> bool:
        return bool(
            self.touches_links or self.straggler_multipliers or self.dead_shards
        )

    def message_dropped(
        self, batch: int, step: int, src: int, dst: int, attempt: int
    ) -> bool:
        """Whether the (batch, step, src→dst) message is lost on ``attempt``."""
        if self.link_loss_probability <= 0.0:
            return False
        rng = _decision_rng(
            self.seed, "link_loss", batch, step, src, dst, attempt
        )
        return bool(rng.random() < self.link_loss_probability)

    def link_multiplier(self, src: int, dst: int) -> float:
        return self.link_bandwidth_multipliers.get((src, dst), 1.0)

    def shard_slowdown(self, piece: int) -> float:
        return self.straggler_multipliers.get(piece, 1.0)

    def shard_is_dead(self, piece: int) -> bool:
        return piece in self.dead_shards

    # ----------------------------------------------------------------------
    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan rolled to a different seed."""
        plan = FaultPlan(
            seed=seed,
            rank_latency_multipliers=dict(self.rank_latency_multipliers),
            rank_timeout_probability=dict(self.rank_timeout_probability),
            vector_corruption_probability=self.vector_corruption_probability,
            corruption_mode=self.corruption_mode,
            source_failure_probability=self.source_failure_probability,
            crash_shards=self.crash_shards,
            hang_shards=self.hang_shards,
            crash_attempts=self.crash_attempts,
            hang_seconds=self.hang_seconds,
            link_loss_probability=self.link_loss_probability,
            link_bandwidth_multipliers=dict(self.link_bandwidth_multipliers),
            straggler_multipliers=dict(self.straggler_multipliers),
            dead_shards=self.dead_shards,
        )
        return plan
