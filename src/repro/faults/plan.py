"""Deterministic, seed-driven fault injection.

A :class:`FaultPlan` is the chaos script of one run: given the same seed
and the same workload, the same faults fire at the same sites on every
execution, in any process (decisions hash the seed with stable site keys,
so they do not depend on call order or interpreter state).  The plan is
plain picklable data — :class:`~repro.core.sharding.ShardedRunner` ships
it to worker processes alongside the engine configuration.

Injection sites (each guarded by the owning component):

=========================  ================================================
site                       effect
=========================  ================================================
rank latency degradation   reads on a listed rank take ``multiplier``×
                           their modelled service time (``MemorySystem``)
rank read timeout          a read on a flaky rank is lost and must be
                           re-issued after backoff (``MemorySystem``)
vector corruption          a fetched vector is bit-flipped or NaN-poisoned
                           at the leaf boundary (``FafnirEngine``)
transient source error     the vector source raises on a fetch attempt
                           (``FafnirEngine``)
worker crash / hang        a shard worker dies or stalls on its first
                           attempt(s) (``ShardedRunner``)
=========================  ================================================

The plan only *decides*; the components inject, emit the ``fault_*``
trace events, and run the :class:`~repro.faults.policy.FaultPolicy`
recovery machinery.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional

import numpy as np

# --- fault type labels (the ``fault`` arg of fault_* events) ---------------
FAULT_RANK_DEGRADED = "rank_degraded"
FAULT_RANK_TIMEOUT = "rank_timeout"
FAULT_VECTOR_CORRUPTION = "vector_corruption"
FAULT_SOURCE_ERROR = "source_error"
FAULT_WORKER_CRASH = "worker_crash"
FAULT_WORKER_HANG = "worker_hang"

FAULT_KINDS = (
    FAULT_RANK_DEGRADED,
    FAULT_RANK_TIMEOUT,
    FAULT_VECTOR_CORRUPTION,
    FAULT_SOURCE_ERROR,
    FAULT_WORKER_CRASH,
    FAULT_WORKER_HANG,
)

# --- corruption modes ------------------------------------------------------
CORRUPT_NAN = "nan"
CORRUPT_BITFLIP = "bitflip"
CORRUPT_MODES = (CORRUPT_NAN, CORRUPT_BITFLIP)


class FaultError(RuntimeError):
    """Base class of every error the fault subsystem raises."""


class RankTimeoutError(FaultError):
    """A DRAM read kept timing out after the full retry budget."""


class VectorCorruptionError(FaultError):
    """A fetched vector failed its integrity check on every retry."""


class TransientSourceError(FaultError):
    """The injected source exception (recoverable by retrying)."""


class SourceFaultError(FaultError):
    """The vector source kept raising after the full retry budget."""


class SimulatedWorkerCrash(FaultError):
    """In-process stand-in for a worker death (serial execution only)."""


class ShardFailedError(FaultError):
    """A shard could not be completed within the re-dispatch budget."""


def _decision_rng(seed: int, site: str, *keys: int) -> np.random.Generator:
    """A generator keyed by (seed, site, keys) — order-independent."""
    material = [seed & 0xFFFFFFFF, zlib.crc32(site.encode("ascii"))]
    material.extend(int(key) & 0xFFFFFFFF for key in keys)
    return np.random.default_rng(material)


@dataclass
class FaultPlan:
    """The seeded chaos script for one run (plain picklable data).

    Attributes:
        seed: root of every probabilistic decision the plan makes.
        rank_latency_multipliers: rank → service-time multiplier (> 1
            degrades; reads on other ranks are untouched).
        rank_timeout_probability: rank → per-(read, attempt) probability
            that the read is lost and must be retried.
        vector_corruption_probability: per-(vector, attempt) probability
            that a fetched vector arrives corrupted at the leaf boundary.
        corruption_mode: :data:`CORRUPT_NAN` (poison with NaNs) or
            :data:`CORRUPT_BITFLIP` (flip one mantissa bit per element of
            a random slice — silent without an integrity check).
        source_failure_probability: per-(vector, attempt) probability that
            the vector source raises :class:`TransientSourceError`.
        crash_shards: shard positions whose worker dies on early attempts.
        hang_shards: shard positions whose worker stalls on early attempts.
        crash_attempts: number of leading attempts that crash/hang before
            the shard behaves (1 models a transient fault the first
            re-dispatch recovers; a value ≥ the retry budget models a
            persistent failure).
        hang_seconds: how long a hung worker sleeps (must exceed the
            policy's ``shard_timeout_s`` for the watchdog to matter).
    """

    seed: int = 0
    rank_latency_multipliers: Dict[int, float] = field(default_factory=dict)
    rank_timeout_probability: Dict[int, float] = field(default_factory=dict)
    vector_corruption_probability: float = 0.0
    corruption_mode: str = CORRUPT_NAN
    source_failure_probability: float = 0.0
    crash_shards: FrozenSet[int] = frozenset()
    hang_shards: FrozenSet[int] = frozenset()
    crash_attempts: int = 1
    hang_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.corruption_mode not in CORRUPT_MODES:
            raise ValueError(
                f"unknown corruption mode {self.corruption_mode!r}; "
                f"choose from {CORRUPT_MODES}"
            )
        for name in (
            "vector_corruption_probability",
            "source_failure_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        for rank, multiplier in self.rank_latency_multipliers.items():
            if multiplier < 1.0:
                raise ValueError(
                    f"rank {rank} latency multiplier {multiplier} < 1 "
                    "(degradation can only slow reads down)"
                )
        for rank, probability in self.rank_timeout_probability.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"rank {rank} timeout probability not in [0, 1]")
        if self.crash_attempts < 0:
            raise ValueError("crash_attempts must be non-negative")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")
        self.crash_shards = frozenset(self.crash_shards)
        self.hang_shards = frozenset(self.hang_shards)

    # --- memory-side decisions --------------------------------------------
    @property
    def touches_memory(self) -> bool:
        return bool(self.rank_latency_multipliers or self.rank_timeout_probability)

    def read_latency_multiplier(self, rank: int) -> float:
        return self.rank_latency_multipliers.get(rank, 1.0)

    def read_times_out(self, rank: int, position: int, attempt: int) -> bool:
        """Whether the read at batch ``position`` is lost on ``attempt``."""
        probability = self.rank_timeout_probability.get(rank, 0.0)
        if probability <= 0.0:
            return False
        rng = _decision_rng(self.seed, "read_timeout", rank, position, attempt)
        return bool(rng.random() < probability)

    # --- leaf-boundary decisions ------------------------------------------
    def source_raises(self, index: int, attempt: int) -> bool:
        if self.source_failure_probability <= 0.0:
            return False
        rng = _decision_rng(self.seed, "source_error", index, attempt)
        return bool(rng.random() < self.source_failure_probability)

    def corrupt_vector(
        self, index: int, attempt: int, value: np.ndarray
    ) -> Optional[np.ndarray]:
        """The corrupted copy of ``value``, or ``None`` when no fault fires."""
        if self.vector_corruption_probability <= 0.0:
            return None
        rng = _decision_rng(self.seed, "corruption", index, attempt)
        if rng.random() >= self.vector_corruption_probability:
            return None
        corrupted = np.array(value, dtype=np.float64, copy=True)
        span = max(1, corrupted.size // 8)
        start = int(rng.integers(0, max(1, corrupted.size - span + 1)))
        if self.corruption_mode == CORRUPT_NAN:
            corrupted[start : start + span] = np.nan
        else:
            bits = corrupted.view(np.uint64)
            bits[start : start + span] ^= np.uint64(1) << np.uint64(
                int(rng.integers(0, 52))
            )
        return corrupted

    # --- shard-side decisions ---------------------------------------------
    def shard_crashes(self, shard: int, attempt: int) -> bool:
        return shard in self.crash_shards and attempt < self.crash_attempts

    def shard_hangs(self, shard: int, attempt: int) -> bool:
        return shard in self.hang_shards and attempt < self.crash_attempts

    # ----------------------------------------------------------------------
    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan rolled to a different seed."""
        plan = FaultPlan(
            seed=seed,
            rank_latency_multipliers=dict(self.rank_latency_multipliers),
            rank_timeout_probability=dict(self.rank_timeout_probability),
            vector_corruption_probability=self.vector_corruption_probability,
            corruption_mode=self.corruption_mode,
            source_failure_probability=self.source_failure_probability,
            crash_shards=self.crash_shards,
            hang_shards=self.hang_shards,
            crash_attempts=self.crash_attempts,
            hang_seconds=self.hang_seconds,
        )
        return plan
