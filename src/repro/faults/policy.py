"""Recovery policy: what the serving stack does when a fault fires.

A :class:`FaultPolicy` is orthogonal to the :class:`~repro.faults.plan.FaultPlan`:
the plan decides *which* faults occur (seeded, deterministic), the policy
decides *how hard* the stack fights back (retry budgets, backoff, shard
timeouts) and *what happens* when recovery is exhausted:

* ``fail_fast`` (the default) raises — exactly today's "fail loudly, never
  wrongly" behaviour, and with no plan installed the code path is
  byte-identical to a build without the fault subsystem;
* ``degrade`` returns per-query statuses (:data:`STATUS_OK` /
  :data:`STATUS_DEGRADED` / :data:`STATUS_FAILED`) with partial results:
  a degraded query is reduced over the subset of its indices that
  survived, a failed query yields an all-NaN vector — visible poison,
  never silent corruption.

Read-retry backoff is accounted in **simulated DRAM-clock cycles** (it
inflates the affected completions' finish cycles, which the engine then
converts to PE cycles like any other memory latency); shard timeouts are
host **wall-clock seconds** because worker hangs are a property of the
simulation process, not of the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# --- recovery modes --------------------------------------------------------
MODE_FAIL_FAST = "fail_fast"
MODE_DEGRADE = "degrade"
MODES = (MODE_FAIL_FAST, MODE_DEGRADE)

# --- per-query outcome statuses --------------------------------------------
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"
STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_FAILED)

# Serving-only outcome: the admission controller refused the request before
# it reached the engine.  Deliberately NOT part of :data:`STATUSES` — query
# results never carry it, and existing per-query accounting (``repro.cli
# chaos``) is unchanged.
STATUS_SHED = "shed"
REQUEST_STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_SHED, STATUS_FAILED)


@dataclass(frozen=True)
class FaultPolicy:
    """Retry budgets, timeouts, and the exhaustion behaviour.

    Attributes:
        mode: :data:`MODE_FAIL_FAST` (raise on unrecoverable faults) or
            :data:`MODE_DEGRADE` (per-query statuses with partial results).
        max_read_retries: re-issues of a timed-out DRAM read before the
            vector is declared lost.
        read_timeout_cycles: DRAM cycles after a read's nominal completion
            at which the loss is detected (the watchdog deadline).
        read_retry_backoff_cycles: base backoff between read retries, in
            DRAM cycles; attempt *k* waits ``base · 2^k``.
        max_source_retries: retries of a vector source that raised a
            transient exception.
        max_corruption_retries: re-fetches of a vector whose leaf-boundary
            integrity check failed.
        shard_timeout_s: wall-clock seconds a shard worker may run before
            the runner declares it hung (``None`` disables the watchdog).
        max_shard_retries: re-dispatches of a crashed / hung / lost shard
            before it is declared failed.
        max_link_retransmits: link-layer retransmissions of a dropped
            cross-shard message before the fabric escalates (fail-fast
            raises :class:`~repro.faults.plan.LinkFailedError`; degrade
            mode charges one host-mediated resend that always delivers).
        link_timeout_cycles: PE cycles after a message's nominal arrival
            at which the loss is detected (each drop costs this plus the
            retransmitted wire time).
    """

    mode: str = MODE_FAIL_FAST
    max_read_retries: int = 2
    read_timeout_cycles: int = 2048
    read_retry_backoff_cycles: int = 256
    max_source_retries: int = 2
    max_corruption_retries: int = 2
    shard_timeout_s: Optional[float] = None
    max_shard_retries: int = 2
    max_link_retransmits: int = 3
    link_timeout_cycles: int = 512

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; choose from {MODES}")
        for name in (
            "max_read_retries",
            "read_timeout_cycles",
            "read_retry_backoff_cycles",
            "max_source_retries",
            "max_corruption_retries",
            "max_shard_retries",
            "max_link_retransmits",
            "link_timeout_cycles",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive (or None)")

    @property
    def fail_fast(self) -> bool:
        return self.mode == MODE_FAIL_FAST

    @classmethod
    def graceful(cls, **overrides: object) -> "FaultPolicy":
        """A degrade-mode policy with the default retry budgets."""
        overrides.setdefault("mode", MODE_DEGRADE)
        return cls(**overrides)  # type: ignore[arg-type]
