"""Fault injection and fault-tolerant serving for the FAFNIR stack.

FAFNIR's functional guarantee — every query fully reduced at NDP — is
easy to uphold on a perfect fleet; a production near-memory serving stack
is defined by how it behaves when ranks slow down, vectors arrive
corrupted, sources flake, and shard workers die.  This package supplies
both halves of that story:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the deterministic seeded
  chaos script (rank degradation/timeouts, leaf-boundary corruption,
  transient source errors, worker crash/hang) plus the typed
  :class:`FaultError` hierarchy;
* :mod:`repro.faults.policy` — :class:`FaultPolicy`, the recovery knobs
  (retry budgets, backoff in simulated DRAM cycles, shard wall-clock
  timeouts) and the ``fail_fast`` vs. ``degrade`` exhaustion modes with
  the per-query :data:`STATUS_OK` / :data:`STATUS_DEGRADED` /
  :data:`STATUS_FAILED` vocabulary;
* :mod:`repro.faults.report` — :func:`recovery_report`, folding the
  ``fault_*`` trace events of a chaos run into injected / detected /
  recovered counts (the ``repro.cli chaos`` summary).

Injection is threaded through :class:`~repro.memory.system.MemorySystem`
(rank latency + timeouts with cycle-accounted backoff),
:class:`~repro.core.engine.FafnirEngine` (corruption + source faults with
graceful per-query degradation), and
:class:`~repro.core.sharding.ShardedRunner` (crash/hang detection,
bounded re-dispatch).  With no plan installed every component follows its
original code path byte for byte.
"""

from repro.faults.plan import (
    CORRUPT_BITFLIP,
    CORRUPT_MODES,
    CORRUPT_NAN,
    FAULT_KINDS,
    FAULT_LINK_DEGRADED,
    FAULT_LINK_LOSS,
    FAULT_RANK_DEGRADED,
    FAULT_RANK_TIMEOUT,
    FAULT_SHARD_DEAD,
    FAULT_SHARD_STRAGGLER,
    FAULT_SOURCE_ERROR,
    FAULT_VECTOR_CORRUPTION,
    FAULT_WORKER_CRASH,
    FAULT_WORKER_HANG,
    FaultError,
    FaultPlan,
    LinkFailedError,
    RankTimeoutError,
    ShardFailedError,
    SimulatedWorkerCrash,
    SourceFaultError,
    TransientSourceError,
    VectorCorruptionError,
)
from repro.faults.policy import (
    MODE_DEGRADE,
    MODE_FAIL_FAST,
    MODES,
    REQUEST_STATUSES,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    STATUSES,
    FaultPolicy,
)
from repro.faults.report import RecoveryReport, recovery_report

__all__ = [
    "CORRUPT_BITFLIP",
    "CORRUPT_MODES",
    "CORRUPT_NAN",
    "FAULT_KINDS",
    "FAULT_LINK_DEGRADED",
    "FAULT_LINK_LOSS",
    "FAULT_RANK_DEGRADED",
    "FAULT_RANK_TIMEOUT",
    "FAULT_SHARD_DEAD",
    "FAULT_SHARD_STRAGGLER",
    "FAULT_SOURCE_ERROR",
    "FAULT_VECTOR_CORRUPTION",
    "FAULT_WORKER_CRASH",
    "FAULT_WORKER_HANG",
    "FaultError",
    "FaultPlan",
    "FaultPolicy",
    "LinkFailedError",
    "MODES",
    "MODE_DEGRADE",
    "MODE_FAIL_FAST",
    "RankTimeoutError",
    "RecoveryReport",
    "REQUEST_STATUSES",
    "STATUSES",
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SHED",
    "ShardFailedError",
    "SimulatedWorkerCrash",
    "SourceFaultError",
    "TransientSourceError",
    "VectorCorruptionError",
    "recovery_report",
]
