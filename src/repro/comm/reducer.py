"""Cross-shard reduction: split queries over pieces, fold partials back.

The table-parallel execution model has three phases:

1. **Split** (:class:`ShardSplit`) — every query is cut along the
   :class:`~repro.comm.partition.IndexPartition`; each piece gets the
   sub-queries it owns indices of, batched into its own stream.  Empty
   sub-batches are dropped (a shard untouched by a batch does no work and
   ships no bytes — the sparse-awareness contract), with back-pointers
   retained so partials can be reassembled in submission order.
2. **Local reduction** — each shard runs its stream through an ordinary
   :class:`~repro.core.engine.FafnirEngine` under the *partial* operator
   (:func:`partial_operator`): the tree combine runs as usual but the
   host-side finalize is deferred, so a MEAN shard ships raw sums and the
   divide-by-count happens exactly once, at the very end, like the
   single-node engine does.
3. **Combine** (:class:`CrossShardReducer`) — per batch, the partials
   ride a pluggable :class:`~repro.comm.schedule.ReductionSchedule` over
   the modeled link for *timing*, while the *numbers* always go through
   :func:`~repro.comm.schedule.canonical_fold` — the schedule decides
   cost, never bytes.  Failed partials (every index the shard owned was
   dropped by faults) are skipped by the fold exactly as an absent
   subtree forwards in hardware, and surviving-index counts are summed
   across shards so ok/degraded/failed statuses match the single-node
   verdicts.

With a subtree-aligned partition the whole three-phase pipeline is
**byte-identical** to running the batches on one node — the property the
reduction differential matrix asserts, including under index-keyed fault
plans.

**Resilience.**  A :class:`~repro.faults.plan.FaultPlan` can make pieces
*straggle* (their local completions stretch by a multiplier; a
:class:`~repro.resilience.hedging.HedgePolicy` races a healthy replica
against the tail) or go *dead* (their partials never arrive — the runner
routes around them by handing the reducer an ``absent_pieces`` set, and
the absent-piece-skipping :func:`canonical_fold` does the rest: surviving
queries stay bit-identical to a run without the dead shard's indices,
affected queries degrade or fail exactly like engine-side drops).  Link
loss and bandwidth degradation are consumed inside the schedules; all of
it is timing-or-absence, never silent numeric change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import FafnirConfig
from repro.core.engine import MultiBatchResult
from repro.core.operators import ReductionOperator, _identity_finalize, get_operator
from repro.comm.partition import IndexPartition
from repro.comm.schedule import (
    ReductionSchedule,
    ScheduleOutcome,
    canonical_fold,
    get_schedule,
)
from repro.faults.plan import (
    FAULT_SHARD_DEAD,
    FAULT_SHARD_STRAGGLER,
    FaultPlan,
)
from repro.faults.policy import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    FaultPolicy,
)
from repro.hw.link import LinkModel
from repro.obs.events import (
    FAULT_DETECTED,
    FAULT_INJECTED,
    HEDGE_ISSUED,
    TraceEvent,
)
from repro.resilience.hedging import HedgeAccounting, HedgePolicy, plan_hedges

Batch = Sequence[Sequence[int]]


def partial_operator(operator: Union[str, ReductionOperator]) -> ReductionOperator:
    """The shard-local variant of ``operator``: combine now, finalize never.

    Finalization (MEAN's divide-by-count) must see the *global* surviving
    count, so shards run with it stubbed out and the reducer applies the
    real finalize once after the cross-shard fold.  The stub is the
    module-level :func:`~repro.core.operators._identity_finalize`, keeping
    the operator picklable for worker processes.
    """
    if isinstance(operator, str):
        operator = get_operator(operator)
    return ReductionOperator(operator.name, operator.combine, _identity_finalize)


@dataclass(frozen=True)
class _Slot:
    """Where one (batch, query) sub-query landed in a piece's stream."""

    piece: int
    stream_pos: int
    query_pos: int


class ShardSplit:
    """One batch stream cut along a partition into per-piece streams.

    Attributes:
        streams: piece → its list of non-empty sub-batches.
        batch_of: piece → original batch position of each sub-batch.
        contributors: per original batch, query position → the slots
            holding that query's per-piece sub-queries.
        active_pieces: pieces with at least one sub-batch, ascending.
    """

    def __init__(self, batches: Sequence[Batch], partition: IndexPartition) -> None:
        self.partition = partition
        self.num_pieces = partition.num_pieces
        self.streams: Dict[int, List[List[List[int]]]] = {}
        self.batch_of: Dict[int, List[int]] = {}
        self.contributors: List[Dict[int, List[_Slot]]] = []
        for batch_pos, batch in enumerate(batches):
            per_piece: Dict[int, List[Tuple[int, List[int]]]] = {}
            slots: Dict[int, List[_Slot]] = {}
            for query_pos, query in enumerate(batch):
                for piece, indices in partition.split_query(query).items():
                    per_piece.setdefault(piece, []).append((query_pos, indices))
            for piece in sorted(per_piece):
                stream = self.streams.setdefault(piece, [])
                self.batch_of.setdefault(piece, []).append(batch_pos)
                sub_batch: List[List[int]] = []
                for sub_pos, (query_pos, indices) in enumerate(per_piece[piece]):
                    sub_batch.append(indices)
                    slots.setdefault(query_pos, []).append(
                        _Slot(piece, len(stream), sub_pos)
                    )
                stream.append(sub_batch)
            self.contributors.append(slots)
        self.active_pieces: List[int] = sorted(self.streams)

    def shard_streams(self) -> List[List[List[List[int]]]]:
        """The per-piece batch streams, ordered like ``active_pieces``
        (the shard list handed to :meth:`ShardedRunner.run`)."""
        return [self.streams[piece] for piece in self.active_pieces]


@dataclass
class ReducedBatchResult:
    """One batch after the cross-shard fold.

    ``local_ready_pe_cycles`` are per-query completion cycles of the
    slowest contributing *partial* (schedule-independent — they measure
    shard-local work); ``outcome`` carries the schedule's modeled cost for
    the batch's comm phase.
    """

    vectors: List[np.ndarray]
    statuses: List[str]
    local_ready_pe_cycles: List[int]
    outcome: ScheduleOutcome
    comm_start_pe_cycles: int = 0
    comm_end_pe_cycles: int = 0
    hedged_pieces: List[int] = field(default_factory=list)


@dataclass
class ReducedRunResult:
    """A whole batch stream executed table-parallel and reduced.

    ``events`` are the comm-phase trace events (``shard_msg_sent`` /
    ``shard_reduced``) re-based onto absolute PE cycles; shard-local
    streams stay on ``shard_results[i].events`` when tracing was on.
    """

    batches: List[ReducedBatchResult]
    schedule: str
    partition: IndexPartition
    link: LinkModel
    shard_results: List[MultiBatchResult] = field(default_factory=list)
    active_pieces: List[int] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    local_makespan_pe_cycles: int = 0
    comm_pe_cycles: int = 0
    makespan_pe_cycles: int = 0
    absent_pieces: List[int] = field(default_factory=list)
    hedges: HedgeAccounting = field(default_factory=HedgeAccounting)

    @property
    def vectors(self) -> List[np.ndarray]:
        """All reduced vectors, submission order across batches."""
        return [vector for batch in self.batches for vector in batch.vectors]

    @property
    def statuses(self) -> List[str]:
        return [status for batch in self.batches for status in batch.statuses]

    @property
    def local_latencies(self) -> List[int]:
        return [
            cycles
            for batch in self.batches
            for cycles in batch.local_ready_pe_cycles
        ]

    @property
    def total_comm_bytes(self) -> int:
        return sum(batch.outcome.total_bytes for batch in self.batches)

    @property
    def total_messages(self) -> int:
        return sum(batch.outcome.message_count for batch in self.batches)

    @property
    def total_steps(self) -> int:
        return sum(batch.outcome.steps for batch in self.batches)


class CrossShardReducer:
    """Folds per-shard partial results back into per-query answers."""

    def __init__(
        self,
        partition: IndexPartition,
        schedule: Union[str, ReductionSchedule],
        link: Optional[LinkModel] = None,
        operator: Union[str, ReductionOperator] = "sum",
        config: Optional[FafnirConfig] = None,
        faults: Optional[FaultPlan] = None,
        policy: Optional[FaultPolicy] = None,
        hedge: Optional[HedgePolicy] = None,
    ) -> None:
        self.partition = partition
        self.schedule = (
            get_schedule(schedule) if isinstance(schedule, str) else schedule
        )
        self.link = link if link is not None else LinkModel()
        self.operator = (
            get_operator(operator) if isinstance(operator, str) else operator
        )
        self.config = config if config is not None else FafnirConfig()
        self.faults = faults
        self.policy = policy
        self.hedge = hedge

    def combine(
        self,
        batches: Sequence[Batch],
        split: ShardSplit,
        shard_results: Sequence[MultiBatchResult],
        absent_pieces: FrozenSet[int] = frozenset(),
    ) -> ReducedRunResult:
        """Fold ``shard_results`` (ordered like ``split.active_pieces``).

        Each shard's partials must have been produced under
        :func:`partial_operator`; this is where the real finalize runs.
        ``absent_pieces`` are active pieces whose partials never arrived
        (dead shards the runner routed around); ``shard_results`` must be
        ordered like the active pieces *minus* the absent ones.
        """
        present_pieces = [
            piece for piece in split.active_pieces if piece not in absent_pieces
        ]
        by_piece: Dict[int, MultiBatchResult] = dict(
            zip(present_pieces, shard_results)
        )
        if len(by_piece) != len(shard_results):
            raise ValueError(
                f"{len(shard_results)} shard results for "
                f"{len(present_pieces)} present pieces"
            )
        faults = self.faults
        stragglers_active = bool(
            faults is not None and faults.straggler_multipliers
        )
        vector_elements = self.config.vector_elements
        reduced: List[ReducedBatchResult] = []
        events: List[TraceEvent] = []
        hedges = HedgeAccounting()
        for piece in sorted(absent_pieces):
            events.append(
                TraceEvent(
                    FAULT_INJECTED,
                    cycle=0,
                    args={"fault": FAULT_SHARD_DEAD, "shard": piece},
                )
            )
            events.append(
                TraceEvent(
                    FAULT_DETECTED,
                    cycle=0,
                    args={"fault": FAULT_SHARD_DEAD, "shard": piece, "fatal": True},
                )
            )
        comm_cursor = 0
        for batch_pos, batch in enumerate(batches):
            slots = split.contributors[batch_pos]
            touched: Dict[int, frozenset] = {}
            vectors: List[np.ndarray] = []
            statuses: List[str] = []
            local_ready: List[int] = []
            contrib_ready: List[Dict[int, int]] = []
            for query_pos, query in enumerate(batch):
                entries: Dict[int, np.ndarray] = {}
                total_surviving = 0
                query_unique = len(frozenset(int(index) for index in query))
                ready = 0
                ready_by_piece: Dict[int, int] = {}
                for slot in slots.get(query_pos, []):
                    if slot.piece not in by_piece:
                        continue  # dead shard — its subtree is absent
                    result = by_piece[slot.piece].results[slot.stream_pos]
                    sub_query = result.plan.queries[slot.query_pos]
                    surviving = len(sub_query) - len(
                        result.dropped_indices & sub_query
                    )
                    if not surviving:
                        continue  # failed partial — absent subtree, forward
                    entries[slot.piece] = result.vectors[slot.query_pos]
                    total_surviving += surviving
                    existing = touched.get(slot.piece, frozenset())
                    touched[slot.piece] = existing | {query_pos}
                    if result.ready_pe_cycles:
                        slot_ready = result.ready_pe_cycles[slot.query_pos]
                        ready = max(ready, slot_ready)
                        ready_by_piece[slot.piece] = slot_ready
                if entries:
                    folded = canonical_fold(
                        entries, self.partition.num_pieces, self.operator.combine
                    )
                    vectors.append(
                        self.operator.finalize(folded.copy(), total_surviving)
                    )
                else:
                    vectors.append(np.full(vector_elements, np.nan))
                local_ready.append(ready)
                contrib_ready.append(ready_by_piece)
                if total_surviving == query_unique:
                    statuses.append(STATUS_OK)
                elif total_surviving:
                    statuses.append(STATUS_DEGRADED)
                else:
                    statuses.append(STATUS_FAILED)

            outcome = self.schedule.run(
                touched,
                self.partition.num_pieces,
                self.config.vector_bytes,
                self.link,
                faults=faults,
                policy=self.policy,
                batch=batch_pos,
            )
            # The batch's comm phase starts once every contributing shard
            # has drained the batch locally, and batches share the link.
            piece_done: Dict[int, int] = {}
            for piece, result in by_piece.items():
                for stream_pos, orig_pos in enumerate(split.batch_of[piece]):
                    if orig_pos == batch_pos:
                        piece_done[piece] = max(
                            piece_done.get(piece, 0),
                            result.pipeline.batch_completion_cycles[stream_pos],
                        )
            hedged_pieces: List[int] = []
            if stragglers_active and piece_done:
                assert faults is not None
                slowed = {
                    piece: int(math.ceil(done * faults.shard_slowdown(piece)))
                    for piece, done in piece_done.items()
                }
                for piece in sorted(slowed):
                    if slowed[piece] > piece_done[piece]:
                        events.append(
                            TraceEvent(
                                FAULT_INJECTED,
                                cycle=slowed[piece],
                                args={
                                    "fault": FAULT_SHARD_STRAGGLER,
                                    "shard": piece,
                                    "batch": batch_pos,
                                    "multiplier": faults.shard_slowdown(piece),
                                },
                            )
                        )
                effective = slowed
                if self.hedge is not None:
                    effective, decisions = plan_hedges(
                        slowed, piece_done, self.hedge
                    )
                    for decision in decisions:
                        hedges.absorb(decision)
                        hedged_pieces.append(decision.piece)
                        events.append(
                            TraceEvent(
                                HEDGE_ISSUED,
                                cycle=decision.issued_at,
                                args={
                                    "shard": decision.piece,
                                    "batch": batch_pos,
                                    "issued_at": decision.issued_at,
                                    "won": decision.won,
                                    "saved": decision.saved_cycles,
                                    "wasted": decision.wasted_cycles,
                                },
                            )
                        )
                partials_done = max(effective.values(), default=0)
                # Per-query readies stretch with their piece, capped by the
                # post-race effective completion when a hedge cut the tail.
                local_ready = [
                    max(
                        (
                            min(
                                int(
                                    math.ceil(
                                        slot_ready * faults.shard_slowdown(piece)
                                    )
                                ),
                                effective.get(piece, slowed.get(piece, slot_ready)),
                            )
                            for piece, slot_ready in ready_by_piece.items()
                        ),
                        default=0,
                    )
                    for ready_by_piece in contrib_ready
                ]
            else:
                partials_done = max(piece_done.values(), default=0)
            comm_start = max(partials_done, comm_cursor)
            comm_cursor = comm_start + outcome.comm_pe_cycles
            for event in outcome.events:
                events.append(
                    TraceEvent(
                        event.kind,
                        cycle=event.cycle + comm_start,
                        args=dict(event.args, batch=batch_pos),
                    )
                )
            reduced.append(
                ReducedBatchResult(
                    vectors=vectors,
                    statuses=statuses,
                    local_ready_pe_cycles=local_ready,
                    outcome=outcome,
                    comm_start_pe_cycles=comm_start,
                    comm_end_pe_cycles=comm_cursor,
                    hedged_pieces=hedged_pieces,
                )
            )

        local_makespan = max(
            (r.pipeline.pipelined_latency_pe_cycles for r in shard_results),
            default=0,
        )
        return ReducedRunResult(
            batches=reduced,
            schedule=self.schedule.name,
            partition=self.partition,
            link=self.link,
            shard_results=list(shard_results),
            active_pieces=list(split.active_pieces),
            events=events,
            local_makespan_pe_cycles=local_makespan,
            comm_pe_cycles=sum(b.outcome.comm_pe_cycles for b in reduced),
            makespan_pe_cycles=max(local_makespan, comm_cursor),
            absent_pieces=sorted(absent_pieces),
            hedges=hedges,
        )
